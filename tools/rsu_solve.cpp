/**
 * @file
 * rsu_solve — command-line MRF inference driver.
 *
 * Runs any of the library's applications on a PGM image (or a
 * synthetic scene when no input is given) with a selectable
 * sampler, reporting energy trajectories, mixing diagnostics, and
 * writing the result as PGM.
 *
 * Usage:
 *   rsu_solve --app seg|denoise [--input file.pgm]
 *             [--sampler rsu|gibbs|metropolis|icm|anneal]
 *             [--labels N] [--iterations N] [--temperature T]
 *             [--weight W] [--width K] [--two-pass]
 *             [--output out.pgm] [--seed S]
 *
 * Segmentation and denoising accept arbitrary grayscale PGMs;
 * motion/stereo/recall need multi-part inputs and live in
 * examples/ instead.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rsu.h"

namespace {

using namespace rsu;

struct Options
{
    std::string app = "seg";
    std::string sampler = "rsu";
    std::string input;
    std::string output = "rsu_solve_out.pgm";
    int labels = 5;
    int iterations = 100;
    double temperature = 0.0; // 0 = application default
    int weight = 0;           // 0 = application default
    int width = 1;
    bool two_pass = false;
    uint64_t seed = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--app seg|denoise] [--input f.pgm]\n"
        "          [--sampler rsu|gibbs|metropolis|icm|anneal]\n"
        "          [--labels N] [--iterations N]\n"
        "          [--temperature T] [--weight W] [--width K]\n"
        "          [--two-pass] [--output f.pgm] [--seed S]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--app")
            opt.app = value();
        else if (arg == "--sampler")
            opt.sampler = value();
        else if (arg == "--input")
            opt.input = value();
        else if (arg == "--output")
            opt.output = value();
        else if (arg == "--labels")
            opt.labels = std::atoi(value());
        else if (arg == "--iterations")
            opt.iterations = std::atoi(value());
        else if (arg == "--temperature")
            opt.temperature = std::atof(value());
        else if (arg == "--weight")
            opt.weight = std::atoi(value());
        else if (arg == "--width")
            opt.width = std::atoi(value());
        else if (arg == "--two-pass")
            opt.two_pass = true;
        else if (arg == "--seed")
            opt.seed = std::strtoull(value(), nullptr, 10);
        else
            usage(argv[0]);
    }
    if (opt.app != "seg" && opt.app != "denoise")
        usage(argv[0]);
    if (opt.labels < 2 || opt.labels > 8) {
        std::fprintf(stderr, "labels must be 2..8\n");
        std::exit(2);
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    // ---- Input image ----
    vision::Image image;
    if (!opt.input.empty()) {
        image = vision::Image::readPgm(opt.input).requantized(63);
        std::printf("input: %s (%dx%d)\n", opt.input.c_str(),
                    image.width(), image.height());
    } else {
        rng::Xoshiro256 rng(opt.seed ^ 0x5ce0e9a5ULL);
        auto scene = vision::makeSegmentationScene(
            160, 120, opt.labels, 3.0, rng);
        image = scene.image;
        std::printf("input: synthetic 160x120 scene (%d regions)\n",
                    opt.labels);
    }

    // ---- Application model ----
    std::unique_ptr<mrf::SingletonModel> model;
    std::vector<uint8_t> means;
    mrf::MrfConfig config;
    if (opt.app == "seg") {
        means = vision::SegmentationModel::kmeansMeans(image,
                                                       opt.labels);
        model = std::make_unique<vision::SegmentationModel>(image,
                                                            means);
        config = vision::segmentationConfig(
            image, opt.labels,
            opt.temperature > 0 ? opt.temperature : 6.0,
            opt.weight > 0 ? opt.weight : 6);
    } else {
        auto denoise =
            std::make_unique<vision::DenoiseModel>(image,
                                                   opt.labels);
        for (int l = 0; l < opt.labels; ++l)
            means.push_back(denoise->levelValue(
                static_cast<core::Label>(l)));
        model = std::move(denoise);
        config = vision::denoiseConfig(
            image, opt.labels,
            opt.temperature > 0 ? opt.temperature : 4.0,
            opt.weight > 0 ? opt.weight : 2);
    }

    mrf::GridMrf mrf(config, *model);
    mrf.initializeMaximumLikelihood();
    std::printf("model: %s, M=%d, T=%.1f, w=%d; initial energy "
                "%lld\n",
                opt.app.c_str(), config.num_labels,
                config.temperature, config.energy.doubleton_weight,
                static_cast<long long>(mrf.totalEnergy()));

    // ---- Solve ----
    mrf::MarginalMapEstimator estimator(mrf, opt.iterations / 5);
    std::vector<double> energy_chain;

    auto record = [&](const std::function<void()> &sweep) {
        estimator.run(opt.iterations, [&] {
            sweep();
        });
        for (int64_t e : estimator.energyTrajectory())
            energy_chain.push_back(static_cast<double>(e));
    };

    if (opt.sampler == "gibbs") {
        mrf::GibbsSampler sampler(mrf, opt.seed);
        record([&] { sampler.sweep(); });
    } else if (opt.sampler == "metropolis") {
        mrf::MetropolisSampler sampler(mrf, opt.seed);
        record([&] { sampler.sweep(); });
        std::printf("metropolis acceptance rate: %.1f%%\n",
                    100.0 * sampler.acceptanceRate());
    } else if (opt.sampler == "icm") {
        mrf::IcmSolver solver(mrf);
        const int sweeps = solver.solve(opt.iterations);
        std::printf("icm: fixed point after %d sweeps\n", sweeps);
    } else if (opt.sampler == "rsu" || opt.sampler == "anneal") {
        auto ucfg = mrf::RsuGibbsSampler::unitConfigFor(mrf);
        ucfg.width = opt.width;
        ucfg.two_pass_offset = opt.two_pass;
        core::RsuG unit(ucfg, opt.seed);
        mrf::RsuGibbsSampler sampler(mrf, unit);
        if (opt.sampler == "anneal") {
            mrf::AnnealingSchedule schedule;
            schedule.start_temperature = config.temperature * 2.0;
            schedule.stop_temperature = 1.0;
            schedule.cooling_factor = 0.75;
            schedule.sweeps_per_stage =
                std::max(1, opt.iterations / 10);
            const int64_t best = mrf::anneal(
                mrf, schedule,
                [&](double t) { sampler.setTemperature(t); },
                [&] { sampler.sweep(); });
            std::printf("annealed best energy: %lld\n",
                        static_cast<long long>(best));
        } else {
            record([&] { sampler.sweep(); });
        }
        const auto &stats = unit.stats();
        std::printf("rsu device: %llu samples, %llu label evals, "
                    "%llu stalls, latency %d cycles/sample\n",
                    static_cast<unsigned long long>(stats.samples),
                    static_cast<unsigned long long>(
                        stats.label_evals),
                    static_cast<unsigned long long>(
                        stats.stall_cycles),
                    unit.latencyCycles());
    } else {
        usage(argv[0]);
    }

    // ---- Report ----
    std::printf("final energy: %lld\n",
                static_cast<long long>(mrf.totalEnergy()));
    if (energy_chain.size() > 20) {
        const std::vector<double> tail(
            energy_chain.end() -
                static_cast<long>(energy_chain.size() / 2),
            energy_chain.end());
        std::printf("autocorrelation time (2nd half): %.2f sweeps, "
                    "ESS %.0f\n",
                    mrf::autocorrelationTime(tail),
                    mrf::effectiveSampleSize(tail));
    }

    // Result image from the estimator's mode (or the final state
    // for icm/anneal, which bypass the estimator).
    std::vector<core::Label> labels;
    if (estimator.retained() > 0)
        labels = estimator.estimate();
    else
        labels = mrf.labels();

    vision::Image out(image.width(), image.height(), 63);
    for (int i = 0; i < out.size(); ++i)
        out.pixels()[i] = means[labels[i] & 0x7];
    out.writePgm(opt.output);
    std::printf("wrote %s\n", opt.output.c_str());
    return 0;
}
