#!/bin/sh
# Reproduce every paper table/figure and collect outputs.
#
# Usage: scripts/reproduce.sh [build-dir] [results-dir]
set -e

BUILD=${1:-build}
RESULTS=${2:-results}
ROOT=$(cd "$(dirname "$0")/.." && pwd)

cd "$ROOT"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

mkdir -p "$RESULTS"

echo "== tests =="
ctest --test-dir "$BUILD" --output-on-failure \
    | tee "$RESULTS/test_output.txt" | tail -2

echo "== benchmarks =="
for b in "$BUILD"/bench/*; do
    name=$(basename "$b")
    echo "-- $name"
    (cd "$RESULTS" && "$ROOT/$b" > "$name.txt" 2>&1)
done

echo "== examples =="
for e in "$BUILD"/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] || continue
    name=$(basename "$e")
    echo "-- $name"
    (cd "$RESULTS" && "$ROOT/$e" > "example_$name.txt" 2>&1)
done

echo "done; outputs (tables, PGM images) are in $RESULTS/"
