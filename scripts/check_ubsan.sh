#!/usr/bin/env bash
# Rebuild the mrf/runtime-labelled tests under
# UndefinedBehaviorSanitizer alone and run them. The SIMD sweep
# kernels lean on integer edge cases ASan does not see — 128-bit
# draw scaling, Q32 weight accumulation, lane widening/narrowing —
# and a pure UBSan build keeps those checked without ASan's shadow
# memory slowing the vector paths. Kept out of the default (tier-1)
# build so `ctest` stays fast; run this script directly, or
# configure the main build with -DRSU_UBSAN_CHECK=ON to register it
# as a CTest test labelled "ubsan".
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${SOURCE_DIR}/build-ubsan}"

cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build "${BUILD_DIR}" -j \
    --target mrf_test runtime_test robustness_test fast_sweep_test simd_sweep_test \
    workload_test

# Only the labelled (mrf + runtime) tests: the sampler kernels, the
# lookup tables, and the chromatic executor that drives them.
ctest --test-dir "${BUILD_DIR}" -L 'runtime|mrf' \
    --output-on-failure -j "$(nproc)"

echo "UndefinedBehaviorSanitizer check passed."
