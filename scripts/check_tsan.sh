#!/usr/bin/env bash
# Rebuild the concurrency-sensitive tests under ThreadSanitizer and
# run them. Kept out of the default (tier-1) build so `ctest` stays
# fast; run this script directly, or configure the main build with
# -DRSU_TSAN_CHECK=ON to register it as a CTest test labelled
# "tsan".
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${SOURCE_DIR}/build-tsan}"

cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "${BUILD_DIR}" -j \
    --target runtime_test robustness_test mrf_test fast_sweep_test simd_sweep_test \
    workload_test

# Only the labelled (runtime + mrf) tests: the suites that exercise
# the thread pool, the chromatic executor, and the sampler kernels
# it drives.
ctest --test-dir "${BUILD_DIR}" -L 'runtime|mrf' \
    --output-on-failure -j "$(nproc)"

echo "ThreadSanitizer check passed."
