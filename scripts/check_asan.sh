#!/usr/bin/env bash
# Rebuild the mrf/runtime-labelled tests under AddressSanitizer +
# UndefinedBehaviorSanitizer and run them. The table-driven fast
# sweep kernels index precomputed arrays with raw site/label
# arithmetic; this build polices those accesses. Kept out of the
# default (tier-1) build so `ctest` stays fast; run this script
# directly, or configure the main build with -DRSU_ASAN_CHECK=ON to
# register it as a CTest test labelled "asan".
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${SOURCE_DIR}/build-asan}"

cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "${BUILD_DIR}" -j \
    --target mrf_test runtime_test robustness_test fast_sweep_test simd_sweep_test \
    workload_test

# Only the labelled (mrf + runtime) tests: the sampler kernels, the
# lookup tables, and the chromatic executor that drives them.
ctest --test-dir "${BUILD_DIR}" -L 'runtime|mrf' \
    --output-on-failure -j "$(nproc)"

echo "Address/UB sanitizer check passed."
