#include "vision/segmentation.h"

#include "vision/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace rsu::vision {

SegmentationModel::SegmentationModel(const Image &image,
                                     std::vector<uint8_t> class_means)
    : image_(image), means_(std::move(class_means))
{
    if (means_.empty() || means_.size() > 8)
        throw std::invalid_argument("SegmentationModel: label count "
                                    "must be 1..8 (scalar labels are "
                                    "3-bit)");
    for (uint8_t m : means_) {
        if (m > 63)
            throw std::invalid_argument("SegmentationModel: means "
                                        "must be 6-bit");
    }
}

uint8_t
SegmentationModel::data1(int x, int y) const
{
    return image_.at(x, y);
}

uint8_t
SegmentationModel::data2(int, int, rsu::mrf::Label label) const
{
    return means_[label & 0x7];
}

std::vector<uint8_t>
SegmentationModel::evenMeans(int num_labels)
{
    std::vector<uint8_t> means(num_labels);
    for (int i = 0; i < num_labels; ++i) {
        means[i] = static_cast<uint8_t>((2 * i + 1) * 63 /
                                        (2 * num_labels));
    }
    return means;
}

std::vector<uint8_t>
SegmentationModel::kmeansMeans(const Image &image, int num_labels,
                               int iterations)
{
    // Histogram-based 1-D k-means: cheap and deterministic.
    std::array<uint32_t, 64> hist{};
    for (uint8_t p : image.pixels())
        ++hist[std::min<uint8_t>(p, 63)];

    std::vector<double> centers(num_labels);
    for (int i = 0; i < num_labels; ++i)
        centers[i] = (2.0 * i + 1.0) * 63.0 / (2.0 * num_labels);

    for (int it = 0; it < iterations; ++it) {
        std::vector<double> sum(num_labels, 0.0);
        std::vector<double> count(num_labels, 0.0);
        for (int v = 0; v < 64; ++v) {
            if (hist[v] == 0)
                continue;
            int best = 0;
            for (int c = 1; c < num_labels; ++c) {
                if (std::abs(v - centers[c]) <
                    std::abs(v - centers[best]))
                    best = c;
            }
            sum[best] += static_cast<double>(hist[v]) * v;
            count[best] += hist[v];
        }
        for (int c = 0; c < num_labels; ++c) {
            if (count[c] > 0.0)
                centers[c] = sum[c] / count[c];
        }
    }

    std::sort(centers.begin(), centers.end());
    std::vector<uint8_t> means(num_labels);
    for (int c = 0; c < num_labels; ++c)
        means[c] = clampPixel(centers[c], 63);
    return means;
}

rsu::mrf::MrfConfig
segmentationConfig(const Image &image, int num_labels,
                   double temperature, int doubleton_weight)
{
    rsu::mrf::MrfConfig config;
    config.width = image.width();
    config.height = image.height();
    config.num_labels = num_labels;
    config.temperature = temperature;
    config.energy.mode = rsu::core::LabelMode::Scalar;
    config.energy.doubleton_weight = doubleton_weight;
    config.energy.singleton_shift = 4;
    return config;
}

} // namespace rsu::vision
