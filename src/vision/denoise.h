/**
 * @file
 * Image restoration / denoising (extension application).
 *
 * The original MRF-MCMC vision application (Geman & Geman 1984,
 * paper reference [11]): recover a piecewise-smooth image from a
 * noisy observation. Labels are quantized intensity levels; the
 * singleton compares the observed pixel (data1) with the candidate
 * level's intensity (data2), the doubleton enforces smoothness
 * between neighbouring levels. Included as a fourth workload beyond
 * the paper's three to exercise the full pipeline on a problem with
 * ordinal labels.
 */

#ifndef RSU_VISION_DENOISE_H
#define RSU_VISION_DENOISE_H

#include <vector>

#include "mrf/grid_mrf.h"
#include "vision/image.h"

namespace rsu::vision {

/** Singleton model: observed intensity vs. quantized level. */
class DenoiseModel : public rsu::mrf::SingletonModel
{
  public:
    /**
     * @param noisy 6-bit observation (must outlive the model)
     * @param num_levels quantized intensity levels (2..8)
     */
    DenoiseModel(const Image &noisy, int num_levels);

    uint8_t data1(int x, int y) const override;
    uint8_t data2(int x, int y, rsu::mrf::Label label) const override;
    bool data2PerLabel() const override { return true; }

    int numLabels() const { return num_levels_; }

    /** 6-bit intensity represented by level @p label. */
    uint8_t levelValue(rsu::mrf::Label label) const;

    /** Reconstruct an image from a level labelling. */
    Image reconstruct(const std::vector<rsu::mrf::Label> &labels) const;

  private:
    const Image &noisy_;
    int num_levels_;
};

/** MRF configuration for a denoising problem. Defaults tuned by a
 * PSNR sweep over (T, weight) at moderate noise (EXPERIMENTS.md). */
rsu::mrf::MrfConfig
denoiseConfig(const Image &noisy, int num_levels,
              double temperature = 4.0, int doubleton_weight = 2);

} // namespace rsu::vision

#endif // RSU_VISION_DENOISE_H
