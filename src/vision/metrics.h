/**
 * @file
 * Solution-quality metrics for the vision workloads.
 */

#ifndef RSU_VISION_METRICS_H
#define RSU_VISION_METRICS_H

#include <vector>

#include "core/types.h"
#include "vision/image.h"

namespace rsu::vision {

/** Fraction of sites whose label equals the ground truth. */
double labelAccuracy(const std::vector<rsu::core::Label> &result,
                     const std::vector<rsu::core::Label> &truth);

/**
 * Mean endpoint error of a motion labelling: average Euclidean
 * distance between estimated and true displacement vectors (labels
 * are packed 2 x 3-bit codes).
 */
double meanEndpointError(const std::vector<rsu::core::Label> &result,
                         const std::vector<rsu::core::Label> &truth);

/** Peak signal-to-noise ratio between two equally sized images. */
double psnr(const Image &a, const Image &b);

} // namespace rsu::vision

#endif // RSU_VISION_METRICS_H
