#include "vision/motion.h"

#include <stdexcept>

namespace rsu::vision {

using rsu::core::labelX1;
using rsu::core::labelX2;
using rsu::core::packVectorLabel;

MotionModel::MotionModel(const Image &frame1, const Image &frame2,
                         int radius)
    : frame1_(frame1), frame2_(frame2), radius_(radius)
{
    if (radius_ < 1 || radius_ > 3)
        throw std::invalid_argument("MotionModel: radius must be "
                                    "1..3 (2 x 3-bit labels)");
    if (frame1_.width() != frame2_.width() ||
        frame1_.height() != frame2_.height())
        throw std::invalid_argument("MotionModel: frame size "
                                    "mismatch");
}

uint8_t
MotionModel::data1(int x, int y) const
{
    return frame1_.at(x, y);
}

uint8_t
MotionModel::data2(int x, int y, rsu::mrf::Label label) const
{
    const int dx = labelX1(label) - radius_;
    const int dy = labelX2(label) - radius_;
    return frame2_.atClamped(x + dx, y + dy);
}

rsu::mrf::Label
MotionModel::indexToLabel(int index, int radius)
{
    const int w = 2 * radius + 1;
    return packVectorLabel(index % w, index / w);
}

int
MotionModel::labelToIndex(rsu::mrf::Label label, int radius)
{
    const int w = 2 * radius + 1;
    return labelX2(label) * w + labelX1(label);
}

rsu::mrf::MrfConfig
motionConfig(const Image &frame1, int radius, double temperature,
             int doubleton_weight)
{
    rsu::mrf::MrfConfig config;
    config.width = frame1.width();
    config.height = frame1.height();
    const int w = 2 * radius + 1;
    config.num_labels = w * w;
    config.temperature = temperature;
    config.energy.mode = rsu::core::LabelMode::Vector;
    config.energy.doubleton_weight = doubleton_weight;
    // Motion's data term is the difference between *independent*
    // pixels under wrong displacements — typically ~7 intensity
    // levels on textured content. A shift of 2 keeps that signal
    // (49 >> 2 = 12) where the default 4 would flush it to 3.
    config.energy.singleton_shift = 2;
    config.label_codes.resize(config.num_labels);
    for (int i = 0; i < config.num_labels; ++i) {
        config.label_codes[i] = MotionModel::indexToLabel(i, radius);
    }
    return config;
}

} // namespace rsu::vision
