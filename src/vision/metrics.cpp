#include "vision/metrics.h"

#include <cmath>
#include <stdexcept>

namespace rsu::vision {

double
labelAccuracy(const std::vector<rsu::core::Label> &result,
              const std::vector<rsu::core::Label> &truth)
{
    if (result.size() != truth.size() || result.empty())
        throw std::invalid_argument("labelAccuracy: size mismatch");
    size_t correct = 0;
    for (size_t i = 0; i < result.size(); ++i) {
        if (result[i] == truth[i])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(result.size());
}

double
meanEndpointError(const std::vector<rsu::core::Label> &result,
                  const std::vector<rsu::core::Label> &truth)
{
    if (result.size() != truth.size() || result.empty())
        throw std::invalid_argument("meanEndpointError: size "
                                    "mismatch");
    double total = 0.0;
    for (size_t i = 0; i < result.size(); ++i) {
        const int dx = rsu::core::labelX1(result[i]) -
                       rsu::core::labelX1(truth[i]);
        const int dy = rsu::core::labelX2(result[i]) -
                       rsu::core::labelX2(truth[i]);
        total += std::sqrt(static_cast<double>(dx * dx + dy * dy));
    }
    return total / static_cast<double>(result.size());
}

double
psnr(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("psnr: size mismatch");
    double mse = 0.0;
    for (int i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a.pixels()[i]) -
                         static_cast<double>(b.pixels()[i]);
        mse += d * d;
    }
    mse /= a.size();
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    const double peak = a.maxval();
    return 10.0 * std::log10(peak * peak / mse);
}

} // namespace rsu::vision
