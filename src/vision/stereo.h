/**
 * @file
 * Stereo vision matching (paper sections 7-8 workload).
 *
 * Disparity estimation on a rectified pair (Tappen & Freeman): each
 * left-image pixel's label is its disparity (M = 5 in the paper's
 * evaluation). The singleton compares the left pixel (data1) with
 * the right-image pixel displaced by the candidate disparity
 * (data2); labels are scalar 3-bit values.
 */

#ifndef RSU_VISION_STEREO_H
#define RSU_VISION_STEREO_H

#include "mrf/grid_mrf.h"
#include "vision/image.h"

namespace rsu::vision {

/** Singleton model: disparity-shifted intensity difference. */
class StereoModel : public rsu::mrf::SingletonModel
{
  public:
    /**
     * @param left,right rectified 6-bit pair (must outlive the
     *        model)
     * @param num_disparities labels 0..num_disparities-1 (<= 8)
     */
    StereoModel(const Image &left, const Image &right,
                int num_disparities);

    uint8_t data1(int x, int y) const override;
    uint8_t data2(int x, int y, rsu::mrf::Label label) const override;
    bool data2PerLabel() const override { return true; }

    int numLabels() const { return num_disparities_; }

  private:
    const Image &left_;
    const Image &right_;
    int num_disparities_;
};

/** MRF configuration for a stereo problem. */
rsu::mrf::MrfConfig
stereoConfig(const Image &left, int num_disparities,
             double temperature = 8.0, int doubleton_weight = 8);

} // namespace rsu::vision

#endif // RSU_VISION_STEREO_H
