/**
 * @file
 * Associative pattern recall (extension application).
 *
 * The paper lists associative memory among the MRF applications an
 * RSU-G serves (sections 1 and 4.1, after Geman & Graffigne). The
 * instance here is pattern completion: a stored binary pattern is
 * observed through a channel that *erases* some pixels and *flips*
 * others; recall infers the original by combining the smoothness
 * prior with the surviving observations.
 *
 * The singleton model uses the neighbour-validity-free trick the
 * datapath already supports: an erased pixel carries data1 == data2
 * for every candidate, so its singleton contributes nothing and the
 * prior alone drives it — no architecture changes needed.
 */

#ifndef RSU_VISION_RECALL_H
#define RSU_VISION_RECALL_H

#include <vector>

#include "mrf/grid_mrf.h"
#include "rng/xoshiro256.h"
#include "vision/image.h"

namespace rsu::vision {

/** A corrupted-observation recall problem. */
struct RecallProblem
{
    std::vector<rsu::core::Label> pattern; //!< stored binary truth
    std::vector<uint8_t> observed;         //!< 0/1 observations
    std::vector<bool> known;               //!< false = erased pixel
    int width = 0;
    int height = 0;
};

/**
 * Corrupt a binary pattern: each pixel is erased with
 * @p erase_fraction and (if not erased) flipped with
 * @p flip_fraction.
 */
RecallProblem corruptPattern(const std::vector<rsu::core::Label> &pattern,
                             int width, int height,
                             double erase_fraction,
                             double flip_fraction,
                             rsu::rng::Xoshiro256 &rng);

/** Generate a blobby binary test pattern. */
std::vector<rsu::core::Label>
makeBinaryPattern(int width, int height, rsu::rng::Xoshiro256 &rng);

/** Singleton model: observed bits where known, silence elsewhere. */
class RecallModel : public rsu::mrf::SingletonModel
{
  public:
    /**
     * @param problem must outlive the model
     * @param evidence_strength 6-bit separation between the bit
     *        values in the data inputs (mismatch energy =
     *        strength^2 >> 4)
     */
    explicit RecallModel(const RecallProblem &problem,
                         int evidence_strength = 24);

    uint8_t data1(int x, int y) const override;
    uint8_t data2(int x, int y, rsu::mrf::Label label) const override;
    bool data2PerLabel() const override { return true; }

  private:
    const RecallProblem &problem_;
    uint8_t strength_;
};

/**
 * MRF configuration for a recall problem.
 *
 * @param evidence_strength 6-bit separation between the two
 *        observation values; larger = stronger data term
 */
rsu::mrf::MrfConfig
recallConfig(const RecallProblem &problem, double temperature = 2.0,
             int doubleton_weight = 3, int evidence_strength = 24);

} // namespace rsu::vision

#endif // RSU_VISION_RECALL_H
