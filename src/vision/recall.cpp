#include "vision/recall.h"

#include <cmath>
#include <stdexcept>

namespace rsu::vision {

RecallProblem
corruptPattern(const std::vector<rsu::core::Label> &pattern,
               int width, int height, double erase_fraction,
               double flip_fraction, rsu::rng::Xoshiro256 &rng)
{
    if (static_cast<int>(pattern.size()) != width * height)
        throw std::invalid_argument("corruptPattern: size mismatch");
    if (erase_fraction < 0.0 || erase_fraction > 1.0 ||
        flip_fraction < 0.0 || flip_fraction > 1.0)
        throw std::invalid_argument("corruptPattern: fractions must "
                                    "be in [0, 1]");

    RecallProblem problem;
    problem.pattern = pattern;
    problem.width = width;
    problem.height = height;
    problem.observed.resize(pattern.size());
    problem.known.resize(pattern.size());
    for (size_t i = 0; i < pattern.size(); ++i) {
        if (rng.uniform() < erase_fraction) {
            problem.known[i] = false;
            problem.observed[i] = 0;
            continue;
        }
        problem.known[i] = true;
        const bool flip = rng.uniform() < flip_fraction;
        problem.observed[i] =
            flip ? (pattern[i] ^ 1) : (pattern[i] & 1);
    }
    return problem;
}

std::vector<rsu::core::Label>
makeBinaryPattern(int width, int height, rsu::rng::Xoshiro256 &rng)
{
    std::vector<rsu::core::Label> pattern(
        static_cast<size_t>(width) * height, 0);
    // A few overlapping discs plus a bar, mirroring the blobby
    // shapes associative recall demos use.
    for (int blob = 0; blob < 4; ++blob) {
        const double cx = rng.uniform() * width;
        const double cy = rng.uniform() * height;
        const double rad =
            (0.1 + 0.15 * rng.uniform()) * std::min(width, height);
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                const double dx = x - cx, dy = y - cy;
                if (dx * dx + dy * dy <= rad * rad)
                    pattern[y * width + x] = 1;
            }
        }
    }
    const int bar_y = height / 2;
    for (int x = width / 8; x < width - width / 8; ++x)
        pattern[bar_y * width + x] = 1;
    return pattern;
}

RecallModel::RecallModel(const RecallProblem &problem,
                         int evidence_strength)
    : problem_(problem),
      strength_(static_cast<uint8_t>(evidence_strength))
{
    if (evidence_strength < 1 || evidence_strength > 63)
        throw std::invalid_argument("RecallModel: evidence strength "
                                    "must be 6-bit");
}

uint8_t
RecallModel::data1(int x, int y) const
{
    const size_t i = static_cast<size_t>(y) * problem_.width + x;
    if (!problem_.known[i])
        return 0;
    return problem_.observed[i] ? strength_ : 0;
}

uint8_t
RecallModel::data2(int x, int y, rsu::mrf::Label label) const
{
    const size_t i = static_cast<size_t>(y) * problem_.width + x;
    if (!problem_.known[i])
        return 0; // matches data1: erased pixels carry no evidence
    return (label & 1) ? strength_ : 0;
}

rsu::mrf::MrfConfig
recallConfig(const RecallProblem &problem, double temperature,
             int doubleton_weight, int evidence_strength)
{
    (void)evidence_strength; // carried by the RecallModel
    rsu::mrf::MrfConfig config;
    config.width = problem.width;
    config.height = problem.height;
    config.num_labels = 2;
    config.temperature = temperature;
    config.energy.mode = rsu::core::LabelMode::Scalar;
    config.energy.doubleton_weight = doubleton_weight;
    config.energy.singleton_shift = 4;
    return config;
}

} // namespace rsu::vision
