#include "vision/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace rsu::vision {

uint8_t
clampPixel(double v, uint8_t maxval)
{
    const double r = std::round(v);
    if (r < 0.0)
        return 0;
    if (r > static_cast<double>(maxval))
        return maxval;
    return static_cast<uint8_t>(r);
}

Image
makeValueNoise(int width, int height, int octaves, uint8_t maxval,
               rsu::rng::Xoshiro256 &rng)
{
    if (octaves < 1)
        throw std::invalid_argument("makeValueNoise: need octaves");
    std::vector<double> acc(static_cast<size_t>(width) * height, 0.0);
    double amplitude = 1.0;
    double total_amp = 0.0;

    for (int oct = 0; oct < octaves; ++oct) {
        // Lattice spacing halves each octave, starting coarse.
        const int cell = std::max(2, 32 >> oct);
        const int gw = width / cell + 2;
        const int gh = height / cell + 2;
        std::vector<double> lattice(
            static_cast<size_t>(gw) * gh);
        for (auto &v : lattice)
            v = rng.uniform();

        for (int y = 0; y < height; ++y) {
            const int gy = y / cell;
            const double fy = static_cast<double>(y % cell) / cell;
            for (int x = 0; x < width; ++x) {
                const int gx = x / cell;
                const double fx =
                    static_cast<double>(x % cell) / cell;
                const double v00 = lattice[gy * gw + gx];
                const double v10 = lattice[gy * gw + gx + 1];
                const double v01 = lattice[(gy + 1) * gw + gx];
                const double v11 = lattice[(gy + 1) * gw + gx + 1];
                const double top = v00 + (v10 - v00) * fx;
                const double bot = v01 + (v11 - v01) * fx;
                acc[y * width + x] +=
                    amplitude * (top + (bot - top) * fy);
            }
        }
        total_amp += amplitude;
        amplitude *= 0.55;
    }

    Image img(width, height, maxval);
    for (int i = 0; i < width * height; ++i) {
        img.pixels()[i] =
            clampPixel(acc[i] / total_amp * maxval, maxval);
    }
    return img;
}

SegmentationScene
makeSegmentationScene(int width, int height, int num_regions,
                      double noise_sigma, rsu::rng::Xoshiro256 &rng)
{
    if (num_regions < 2 || num_regions > 64)
        throw std::invalid_argument("makeSegmentationScene: bad "
                                    "region count");

    SegmentationScene scene;
    scene.truth.assign(static_cast<size_t>(width) * height, 0);
    scene.region_means.resize(num_regions);
    for (int r = 0; r < num_regions; ++r) {
        // Evenly spaced means across the 6-bit range so regions are
        // separable in intensity.
        scene.region_means[r] = static_cast<uint8_t>(
            (2 * r + 1) * 63 / (2 * num_regions));
    }

    // Paint blobs: several ellipses per non-background region.
    const int blobs_per_region = 3;
    for (int r = 1; r < num_regions; ++r) {
        for (int b = 0; b < blobs_per_region; ++b) {
            const double cx = rng.uniform() * width;
            const double cy = rng.uniform() * height;
            const double ax =
                (0.08 + 0.17 * rng.uniform()) * width;
            const double ay =
                (0.08 + 0.17 * rng.uniform()) * height;
            const double theta = rng.uniform() * 3.14159265;
            const double ct = std::cos(theta), st = std::sin(theta);
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    const double dx = x - cx, dy = y - cy;
                    const double u = (dx * ct + dy * st) / ax;
                    const double v = (-dx * st + dy * ct) / ay;
                    if (u * u + v * v <= 1.0) {
                        scene.truth[y * width + x] =
                            static_cast<rsu::core::Label>(r);
                    }
                }
            }
        }
    }

    scene.image = Image(width, height, 63);
    for (int i = 0; i < width * height; ++i) {
        const double mean = scene.region_means[scene.truth[i]];
        const double noisy =
            mean + rsu::rng::sampleNormal(rng, 0.0, noise_sigma);
        scene.image.pixels()[i] = clampPixel(noisy, 63);
    }
    return scene;
}

MotionScene
makeMotionScene(int width, int height, int num_objects, int radius,
                double noise_sigma, rsu::rng::Xoshiro256 &rng)
{
    if (radius < 1 || radius > 3)
        throw std::invalid_argument("makeMotionScene: radius must be "
                                    "1..3 (labels are 2 x 3-bit)");
    MotionScene scene;
    scene.radius = radius;
    scene.frame1 = makeValueNoise(width, height, 4, 63, rng);
    // High-frequency speckle makes local matching well-posed at
    // 6-bit precision (smooth gradients alone are ambiguous inside
    // a 7x7 window); applied before warping so it moves with the
    // scene.
    for (auto &p : scene.frame1.pixels()) {
        p = clampPixel(
            p + static_cast<int>(rng.below(21)) - 10, 63);
    }

    // Per-pixel ground-truth displacement; background is static.
    std::vector<int> dx(static_cast<size_t>(width) * height, 0);
    std::vector<int> dy(dx.size(), 0);

    for (int obj = 0; obj < num_objects; ++obj) {
        const int ow = std::max(8, width / 5);
        const int oh = std::max(8, height / 5);
        const int ox = static_cast<int>(
            rng.below(std::max(1, width - ow)));
        const int oy = static_cast<int>(
            rng.below(std::max(1, height - oh)));
        // Nonzero displacement within the search radius.
        int mx = 0, my = 0;
        while (mx == 0 && my == 0) {
            mx = static_cast<int>(rng.below(2 * radius + 1)) - radius;
            my = static_cast<int>(rng.below(2 * radius + 1)) - radius;
        }
        for (int y = oy; y < oy + oh && y < height; ++y) {
            for (int x = ox; x < ox + ow && x < width; ++x) {
                dx[y * width + x] = mx;
                dy[y * width + x] = my;
            }
        }
        // Give the object a distinct texture so it is trackable.
        const int delta =
            static_cast<int>(rng.below(30)) - 15;
        for (int y = oy; y < oy + oh && y < height; ++y) {
            for (int x = ox; x < ox + ow && x < width; ++x) {
                scene.frame1.set(
                    x, y,
                    clampPixel(scene.frame1.at(x, y) + delta, 63));
            }
        }
    }

    // Forward-map: frame2(p + d(p)) = frame1(p); fill then overwrite
    // moving pixels so occlusions resolve in favour of the mover.
    scene.frame2 = Image(width, height, 63);
    for (int y = 0; y < height; ++y)
        for (int x = 0; x < width; ++x)
            scene.frame2.set(x, y, scene.frame1.at(x, y));
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int i = y * width + x;
            if (dx[i] == 0 && dy[i] == 0)
                continue;
            const int tx = x + dx[i];
            const int ty = y + dy[i];
            if (tx >= 0 && tx < width && ty >= 0 && ty < height)
                scene.frame2.set(tx, ty, scene.frame1.at(x, y));
        }
    }

    if (noise_sigma > 0.0) {
        for (auto &p : scene.frame2.pixels()) {
            p = clampPixel(
                p + rsu::rng::sampleNormal(rng, 0.0, noise_sigma), 63);
        }
    }

    scene.truth.resize(dx.size());
    for (size_t i = 0; i < dx.size(); ++i) {
        scene.truth[i] = rsu::core::packVectorLabel(
            dx[i] + radius, dy[i] + radius);
    }
    return scene;
}

StereoScene
makeStereoScene(int width, int height, int num_disparities,
                double noise_sigma, rsu::rng::Xoshiro256 &rng)
{
    if (num_disparities < 2 || num_disparities > 8)
        throw std::invalid_argument("makeStereoScene: disparities "
                                    "must be 2..8 (3-bit labels)");
    StereoScene scene;
    scene.num_disparities = num_disparities;
    scene.left = makeValueNoise(width, height, 4, 63, rng);
    // Speckle for well-posed matching (see makeMotionScene).
    for (auto &p : scene.left.pixels()) {
        p = clampPixel(
            p + static_cast<int>(rng.below(21)) - 10, 63);
    }

    // Fronto-parallel rectangles at increasing disparity over a
    // zero-disparity background.
    scene.truth.assign(static_cast<size_t>(width) * height, 0);
    for (int d = 1; d < num_disparities; ++d) {
        const int rw = std::max(8, width / 4);
        const int rh = std::max(8, height / 4);
        const int rx = static_cast<int>(
            rng.below(std::max(1, width - rw)));
        const int ry = static_cast<int>(
            rng.below(std::max(1, height - rh)));
        for (int y = ry; y < ry + rh && y < height; ++y) {
            for (int x = rx; x < rx + rw && x < width; ++x) {
                scene.truth[y * width + x] =
                    static_cast<rsu::core::Label>(d);
            }
        }
    }

    scene.right = Image(width, height, 63);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int d = scene.truth[y * width + x];
            scene.right.set(x, y, scene.left.atClamped(x + d, y));
        }
    }

    if (noise_sigma > 0.0) {
        for (auto &p : scene.right.pixels()) {
            p = clampPixel(
                p + rsu::rng::sampleNormal(rng, 0.0, noise_sigma), 63);
        }
    }
    return scene;
}

} // namespace rsu::vision
