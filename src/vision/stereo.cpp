#include "vision/stereo.h"

#include <stdexcept>

namespace rsu::vision {

StereoModel::StereoModel(const Image &left, const Image &right,
                         int num_disparities)
    : left_(left), right_(right), num_disparities_(num_disparities)
{
    if (num_disparities_ < 2 || num_disparities_ > 8)
        throw std::invalid_argument("StereoModel: disparities must "
                                    "be 2..8 (3-bit labels)");
    if (left_.width() != right_.width() ||
        left_.height() != right_.height())
        throw std::invalid_argument("StereoModel: image size "
                                    "mismatch");
}

uint8_t
StereoModel::data1(int x, int y) const
{
    return left_.at(x, y);
}

uint8_t
StereoModel::data2(int x, int y, rsu::mrf::Label label) const
{
    return right_.atClamped(x - static_cast<int>(label & 0x7), y);
}

rsu::mrf::MrfConfig
stereoConfig(const Image &left, int num_disparities,
             double temperature, int doubleton_weight)
{
    rsu::mrf::MrfConfig config;
    config.width = left.width();
    config.height = left.height();
    config.num_labels = num_disparities;
    config.temperature = temperature;
    config.energy.mode = rsu::core::LabelMode::Scalar;
    config.energy.doubleton_weight = doubleton_weight;
    config.energy.singleton_shift = 4;
    return config;
}

} // namespace rsu::vision
