#include "vision/image.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rsu::vision {

Image::Image(int width, int height, uint8_t maxval, uint8_t fill)
    : width_(width), height_(height), maxval_(maxval)
{
    if (width < 1 || height < 1)
        throw std::invalid_argument("Image: empty dimensions");
    if (maxval == 0)
        throw std::invalid_argument("Image: maxval must be positive");
    pixels_.assign(static_cast<size_t>(width) * height, fill);
}

uint8_t
Image::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

Image
Image::requantized(uint8_t new_maxval) const
{
    Image out(width_, height_, new_maxval);
    for (int i = 0; i < size(); ++i) {
        const int v = (static_cast<int>(pixels_[i]) * new_maxval +
                       maxval_ / 2) /
                      maxval_;
        out.pixels_[i] = static_cast<uint8_t>(
            std::min<int>(v, new_maxval));
    }
    return out;
}

void
Image::writePgm(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("Image: cannot open " + path);
    out << "P5\n"
        << width_ << " " << height_ << "\n"
        << static_cast<int>(maxval_) << "\n";
    out.write(reinterpret_cast<const char *>(pixels_.data()),
              static_cast<std::streamsize>(pixels_.size()));
    if (!out)
        throw std::runtime_error("Image: write failed for " + path);
}

Image
Image::readPgm(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("Image: cannot open " + path);

    std::string magic;
    in >> magic;
    if (magic != "P5" && magic != "P2")
        throw std::runtime_error("Image: not a PGM file: " + path);

    auto next_token = [&in, &path]() -> int {
        // Skip whitespace and '#' comment lines between tokens.
        for (;;) {
            int c = in.peek();
            if (c == '#') {
                std::string line;
                std::getline(in, line);
            } else if (std::isspace(c)) {
                in.get();
            } else {
                break;
            }
        }
        int value;
        if (!(in >> value))
            throw std::runtime_error("Image: truncated header in " +
                                     path);
        return value;
    };

    const int width = next_token();
    const int height = next_token();
    const int maxval = next_token();
    if (width < 1 || height < 1 || maxval < 1 || maxval > 255)
        throw std::runtime_error("Image: bad PGM header in " + path);

    Image img(width, height, static_cast<uint8_t>(maxval));
    if (magic == "P5") {
        in.get(); // single whitespace after maxval
        in.read(reinterpret_cast<char *>(img.pixels_.data()),
                static_cast<std::streamsize>(img.pixels_.size()));
        if (in.gcount() !=
            static_cast<std::streamsize>(img.pixels_.size()))
            throw std::runtime_error("Image: truncated pixels in " +
                                     path);
    } else {
        for (auto &p : img.pixels_) {
            int v;
            if (!(in >> v))
                throw std::runtime_error("Image: truncated pixels "
                                         "in " +
                                         path);
            p = static_cast<uint8_t>(std::clamp(v, 0, maxval));
        }
    }
    return img;
}

} // namespace rsu::vision
