/**
 * @file
 * MRF image segmentation (paper sections 7-8 workload).
 *
 * Assigns one of M labels to each pixel by grouping similar pixels
 * based on intensity (Geman & Geman; Sziranyi et al.): the singleton
 * potential is the squared difference between the observed pixel
 * intensity (data1) and the candidate label's class mean (data2),
 * the doubleton the usual smoothness prior. M = 5 in the paper's
 * evaluation; the prototype demonstration uses M = 2.
 */

#ifndef RSU_VISION_SEGMENTATION_H
#define RSU_VISION_SEGMENTATION_H

#include <vector>

#include "mrf/grid_mrf.h"
#include "vision/image.h"

namespace rsu::vision {

/** Singleton model: intensity distance to per-class means. */
class SegmentationModel : public rsu::mrf::SingletonModel
{
  public:
    /**
     * @param image 6-bit observation (must outlive the model)
     * @param class_means one 6-bit intensity per label
     */
    SegmentationModel(const Image &image,
                      std::vector<uint8_t> class_means);

    uint8_t data1(int x, int y) const override;
    uint8_t data2(int x, int y, rsu::mrf::Label label) const override;
    bool data2PerLabel() const override { return true; }

    int numLabels() const
    {
        return static_cast<int>(means_.size());
    }
    const std::vector<uint8_t> &means() const { return means_; }

    /** Evenly spaced class means over [0, 63]. */
    static std::vector<uint8_t> evenMeans(int num_labels);

    /**
     * 1-D k-means over the image histogram — the usual way class
     * means are chosen when ground truth is unknown.
     */
    static std::vector<uint8_t> kmeansMeans(const Image &image,
                                            int num_labels,
                                            int iterations = 20);

  private:
    const Image &image_;
    std::vector<uint8_t> means_;
};

/** MRF configuration for a segmentation problem. */
rsu::mrf::MrfConfig
segmentationConfig(const Image &image, int num_labels,
                   double temperature = 8.0, int doubleton_weight = 8);

} // namespace rsu::vision

#endif // RSU_VISION_SEGMENTATION_H
