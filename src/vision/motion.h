/**
 * @file
 * Dense motion estimation (paper sections 7-8 workload).
 *
 * Bayesian motion-vector-field estimation (Konrad & Dubois): each
 * pixel's label is a 2-D displacement within a (2r+1) x (2r+1)
 * search window — the paper's 7x7 window yields M = 49 labels. A
 * label packs (dx + r) and (dy + r) as two 3-bit components; the
 * doubleton is the vector squared difference (Equation 2), the
 * singleton the squared difference between the source pixel in frame
 * 1 (data1) and the displaced destination pixel in frame 2 (data2 —
 * the per-candidate data stream that motivates the SINGLETON_D
 * register's per-label transfers).
 */

#ifndef RSU_VISION_MOTION_H
#define RSU_VISION_MOTION_H

#include "mrf/grid_mrf.h"
#include "vision/image.h"

namespace rsu::vision {

/** Singleton model: displaced-frame intensity difference. */
class MotionModel : public rsu::mrf::SingletonModel
{
  public:
    /**
     * @param frame1,frame2 consecutive 6-bit frames (must outlive
     *        the model)
     * @param radius search radius r (window is (2r+1)^2, r <= 3)
     */
    MotionModel(const Image &frame1, const Image &frame2, int radius);

    uint8_t data1(int x, int y) const override;
    uint8_t data2(int x, int y, rsu::mrf::Label label) const override;
    bool data2PerLabel() const override { return true; }

    int radius() const { return radius_; }

    /** Label count M = (2r+1)^2. */
    int numLabels() const
    {
        return (2 * radius_ + 1) * (2 * radius_ + 1);
    }

    /**
     * Map a window position index (row-major over the window) to the
     * packed vector label the datapath expects.
     */
    static rsu::mrf::Label indexToLabel(int index, int radius);

    /** Inverse of indexToLabel. */
    static int labelToIndex(rsu::mrf::Label label, int radius);

  private:
    const Image &frame1_;
    const Image &frame2_;
    int radius_;
};

/** MRF configuration for a motion problem. The defaults come from
 * a (temperature, weight) sweep against ground truth: T = 4 and a
 * weight of 2 balance the single-pixel data term against the
 * smoothness prior (see bench_convergence / EXPERIMENTS.md). */
rsu::mrf::MrfConfig
motionConfig(const Image &frame1, int radius,
             double temperature = 4.0, int doubleton_weight = 2);

} // namespace rsu::vision

#endif // RSU_VISION_MOTION_H
