#include "vision/denoise.h"

#include <stdexcept>

namespace rsu::vision {

DenoiseModel::DenoiseModel(const Image &noisy, int num_levels)
    : noisy_(noisy), num_levels_(num_levels)
{
    if (num_levels_ < 2 || num_levels_ > 8)
        throw std::invalid_argument("DenoiseModel: levels must be "
                                    "2..8 (3-bit labels)");
}

uint8_t
DenoiseModel::data1(int x, int y) const
{
    return noisy_.at(x, y);
}

uint8_t
DenoiseModel::data2(int, int, rsu::mrf::Label label) const
{
    return levelValue(label);
}

uint8_t
DenoiseModel::levelValue(rsu::mrf::Label label) const
{
    const int l = label & 0x7;
    return static_cast<uint8_t>((2 * l + 1) * 63 / (2 * num_levels_));
}

Image
DenoiseModel::reconstruct(
    const std::vector<rsu::mrf::Label> &labels) const
{
    Image out(noisy_.width(), noisy_.height(), 63);
    for (int i = 0; i < out.size(); ++i)
        out.pixels()[i] = levelValue(labels[i]);
    return out;
}

rsu::mrf::MrfConfig
denoiseConfig(const Image &noisy, int num_levels, double temperature,
              int doubleton_weight)
{
    rsu::mrf::MrfConfig config;
    config.width = noisy.width();
    config.height = noisy.height();
    config.num_labels = num_levels;
    config.temperature = temperature;
    config.energy.mode = rsu::core::LabelMode::Scalar;
    config.energy.doubleton_weight = doubleton_weight;
    config.energy.singleton_shift = 4;
    return config;
}

} // namespace rsu::vision
