/**
 * @file
 * Grayscale image container with PGM I/O.
 *
 * The vision applications operate on 6-bit grayscale (0..63) because
 * that is the RSU-G's data precision (paper section 4.4); the
 * container carries an explicit maximum value so 8-bit sources can
 * be represented and quantized explicitly rather than silently.
 */

#ifndef RSU_VISION_IMAGE_H
#define RSU_VISION_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace rsu::vision {

/** Single-channel image. */
class Image
{
  public:
    Image() = default;

    /** @param maxval largest representable pixel value (e.g. 63). */
    Image(int width, int height, uint8_t maxval = 63,
          uint8_t fill = 0);

    int width() const { return width_; }
    int height() const { return height_; }
    int size() const { return width_ * height_; }
    uint8_t maxval() const { return maxval_; }

    uint8_t
    at(int x, int y) const
    {
        return pixels_[y * width_ + x];
    }

    void
    set(int x, int y, uint8_t v)
    {
        pixels_[y * width_ + x] = v;
    }

    /** Pixel with coordinates clamped to the image bounds. */
    uint8_t atClamped(int x, int y) const;

    const std::vector<uint8_t> &pixels() const { return pixels_; }
    std::vector<uint8_t> &pixels() { return pixels_; }

    /** Requantize to a new maximum value (uniform rescale). */
    Image requantized(uint8_t new_maxval) const;

    /** Write as binary PGM (P5). Throws on I/O failure. */
    void writePgm(const std::string &path) const;

    /** Read a PGM file (P2 or P5). Throws on parse failure. */
    static Image readPgm(const std::string &path);

  private:
    int width_ = 0;
    int height_ = 0;
    uint8_t maxval_ = 63;
    std::vector<uint8_t> pixels_;
};

} // namespace rsu::vision

#endif // RSU_VISION_IMAGE_H
