/**
 * @file
 * Umbrella header: the whole RSU-Sim public API in one include.
 *
 * Fine-grained headers remain the recommended includes for library
 * consumers who care about compile times; this header exists for
 * exploratory code and examples.
 */

#ifndef RSU_RSU_H
#define RSU_RSU_H

// Entropy and software samplers.
#include "rng/discrete.h"
#include "rng/distributions.h"
#include "rng/splitmix64.h"
#include "rng/stats.h"
#include "rng/xoshiro256.h"

// RET device substrate.
#include "ret/forster.h"
#include "ret/qdled.h"
#include "ret/ret_circuit.h"
#include "ret/ret_network.h"
#include "ret/spad.h"
#include "ret/ttf_timer.h"

// The RSU core.
#include "core/energy_unit.h"
#include "core/intensity_map.h"
#include "core/rsu_g.h"
#include "core/rsu_isa.h"
#include "core/rsu_units.h"
#include "core/selection_unit.h"
#include "core/types.h"

// MRF substrate and samplers.
#include "mrf/annealing.h"
#include "mrf/belief_propagation.h"
#include "mrf/diagnostics.h"
#include "mrf/estimator.h"
#include "mrf/exact.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/icm.h"
#include "mrf/metropolis.h"
#include "mrf/rsu_gibbs.h"
#include "mrf/schedule.h"

// Vision applications.
#include "vision/denoise.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/recall.h"
#include "vision/segmentation.h"
#include "vision/stereo.h"
#include "vision/synthetic.h"

// Architecture models.
#include "arch/accel_sim.h"
#include "arch/accelerator_model.h"
#include "arch/cpu_model.h"
#include "arch/gpu_model.h"
#include "arch/power_area.h"
#include "arch/technology.h"
#include "arch/workload.h"

// Macro-scale prototype emulation.
#include "proto/prototype.h"

#endif // RSU_RSU_H
