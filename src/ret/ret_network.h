/**
 * @file
 * Resonance Energy Transfer network models.
 *
 * A RET network is a geometric arrangement of chromophores whose
 * pairwise non-radiative couplings realize an absorbing continuous-
 * time Markov chain over excitation states; the emission time of the
 * terminal fluorophore is therefore *phase-type* distributed (Wang,
 * Lebeck & Dwyer, IEEE Micro 2015 — reference [42] of the paper).
 *
 * Two models are provided:
 *
 *  - ExponentialNetwork: the single-stage network the RSU-G uses.
 *    Under excitation intensity I the ensemble's first emission is a
 *    Poisson arrival with rate baseRate * I, i.e. TTF ~ Exp(I*k).
 *
 *  - PhaseTypeNetwork: a general absorbing CTMC over chromophore
 *    excitation states, supporting the "virtually arbitrary
 *    probabilistic behavior" claim. Used by tests and by the
 *    extension samplers (Erlang / hypoexponential / Bernoulli race).
 *
 * Both carry a photobleaching wear model: each excitation cycle
 * deactivates a small fraction of the ensemble (paper section 9
 * discusses longevity); the effective emission rate scales with the
 * surviving fraction.
 */

#ifndef RSU_RET_RET_NETWORK_H
#define RSU_RET_RET_NETWORK_H

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.h"

namespace rsu::ret {

/** Wear model shared by the network types. */
struct WearModel
{
    /** Expected fraction of the ensemble lost per excitation cycle. */
    double bleach_per_cycle = 0.0;
    /** Encapsulation multiplier (<1 slows wear; 0 disables it). */
    double encapsulation_factor = 1.0;

    double effectiveBleach() const
    {
        return bleach_per_cycle * encapsulation_factor;
    }
};

/** Single-stage (exponential-TTF) RET network ensemble. */
class ExponentialNetwork
{
  public:
    /**
     * @param base_rate_per_ns emission rate per unit intensity for a
     *        fresh ensemble
     * @param wear photobleaching model (default: no wear)
     */
    explicit ExponentialNetwork(double base_rate_per_ns,
                                WearModel wear = {});

    /**
     * Draw a time-to-fluorescence (ns) under excitation intensity
     * @p intensity. Zero intensity never fires (returns infinity).
     * Each call ages the ensemble according to the wear model.
     */
    double sampleTtf(rsu::rng::Xoshiro256 &rng, double intensity);

    /** Current effective rate per unit intensity. */
    double effectiveRate() const;

    /** Fraction of the ensemble still optically active, in (0, 1]. */
    double survivingFraction() const { return surviving_; }

    /** Excitation cycles experienced so far. */
    uint64_t cycles() const { return cycles_; }

    /** Restore a fresh ensemble (models chromophore replacement). */
    void refresh();

    /**
     * Apply @p cycles of excitation wear without drawing samples
     * (closed form; wear is deterministic in the cycle count).
     * Longevity studies use this to age devices past billions of
     * cycles cheaply.
     */
    void age(uint64_t cycles);

  private:
    double base_rate_;
    WearModel wear_;
    double surviving_ = 1.0;
    uint64_t cycles_ = 0;
};

/**
 * General phase-type RET network: an absorbing CTMC whose absorption
 * time is the emission time.
 */
class PhaseTypeNetwork
{
  public:
    /**
     * @param rates rates[i][j] is the transition rate from transient
     *        state i to state j; j == size() means absorption
     *        (photon emission); diagonal entries are ignored.
     * @param initial_state excitation entry state
     */
    PhaseTypeNetwork(std::vector<std::vector<double>> rates,
                     int initial_state = 0);

    /** Number of transient states. */
    int size() const { return static_cast<int>(rates_.size()); }

    /**
     * Simulate the chain to absorption; returns the absorption time
     * in ns scaled by 1/intensity on the first hop (excitation is
     * intensity-gated). Returns infinity if the chain can leak to a
     * dark state (row with all-zero rates).
     */
    double sampleTtf(rsu::rng::Xoshiro256 &rng,
                     double intensity = 1.0) const;

    /** Mean absorption time (ns) at unit intensity, by linear solve. */
    double meanTtf() const;

    /** Erlang-k network: k sequential hops of rate @p rate. */
    static PhaseTypeNetwork makeErlang(int k, double rate);

    /**
     * Two-path Bernoulli race: absorbs through a "bright" path with
     * probability p = bright_rate / (bright_rate + dark_rate); the
     * dark path absorbs into state -2 (reported as infinity).
     */
    static PhaseTypeNetwork makeBernoulli(double bright_rate,
                                          double dark_rate);

  private:
    std::vector<std::vector<double>> rates_;
    int initial_state_;
};

} // namespace rsu::ret

#endif // RSU_RET_RET_NETWORK_H
