/**
 * @file
 * Time-to-fluorescence timing circuit.
 *
 * The RSU-G records each RET circuit's time to first photon detection
 * with an 8-bit shift register clocked 8x faster than the system
 * clock (paper section 5.2, "RET Sampling"). This model captures the
 * two architecturally relevant consequences:
 *
 *  - quantization: continuous arrival times collapse into sub-cycle
 *    ticks of width clockPeriod/8;
 *  - saturation: arrivals later than 255 ticks (or no arrival at
 *    all) read as the maximum register value.
 *
 * Quantized exponential arrivals are geometric in the tick index, so
 * closed-form race probabilities exist; the property tests compare
 * the emulated selection behaviour against them.
 */

#ifndef RSU_RET_TTF_TIMER_H
#define RSU_RET_TTF_TIMER_H

#include <cstdint>
#include <limits>

namespace rsu::ret {

/** Shift-register oversampling factor relative to the system clock. */
constexpr int kTtfOversample = 8;

/** Saturated register reading: photon not (yet) observed. */
constexpr uint8_t kTtfSaturated = 255;

/** 8-bit, 8x-oversampled time-to-fluorescence quantizer. */
class TtfTimer
{
  public:
    /**
     * @param clock_period_ns system clock period; the register tick
     *        is clock_period_ns / 8.
     */
    explicit TtfTimer(double clock_period_ns);

    /** Register tick width in nanoseconds. */
    double tickNs() const { return tick_ns_; }

    /**
     * Quantize a continuous arrival time (ns). Negative or infinite
     * times and times past the register range read as saturated.
     */
    uint8_t quantize(double arrival_ns) const;

    /**
     * Probability that an Exp(rate) arrival quantizes to tick @p q.
     * Ticks are geometric: P(q) = e^{-rate*q*tick} - e^{-rate*(q+1)*tick}
     * for q < 255, with the saturated bin absorbing the tail.
     * Used as the analytic oracle in property tests.
     */
    double tickProbability(double rate_per_ns, uint8_t q) const;

  private:
    double tick_ns_;
};

} // namespace rsu::ret

#endif // RSU_RET_TTF_TIMER_H
