/**
 * @file
 * Förster theory: from chromophore photophysics to RET rates.
 *
 * The rest of the RET substrate treats network rates as given; this
 * module derives them from first principles the way a RET-network
 * designer would (paper section 2.3, after Valeur & Berberan-Santos
 * [41] and Wang, Lebeck & Dwyer [42]):
 *
 *  - chromophores have Gaussian emission/excitation bands, a
 *    fluorescence lifetime and a quantum yield;
 *  - donor-acceptor coupling follows Förster theory: the transfer
 *    rate is k = (1/tau_D) (R0 / r)^6, with the Förster radius R0
 *    determined by the spectral overlap integral
 *    J = ∫ f_D(l) e_A(l) l^4 dl, the orientation factor kappa^2,
 *    the medium's refractive index, and the donor quantum yield;
 *  - a linear chain of chromophores maps onto an absorbing CTMC
 *    (PhaseTypeNetwork): forward RET hops race against each stage's
 *    spontaneous decay, and only the terminal acceptor's radiative
 *    decay produces a detectable photon.
 *
 * Units are relative (extinction scale 1.0 = a strong dye); the
 * overall scale constant is calibrated so a typical Cy3/Cy5-like
 * pair lands at R0 ~ 5 nm, the regime the paper's few-nanometre
 * DNA-scaffold spacings target.
 */

#ifndef RSU_RET_FORSTER_H
#define RSU_RET_FORSTER_H

#include <vector>

#include "ret/ret_network.h"

namespace rsu::ret {

/** Photophysical description of one chromophore. */
struct Chromophore
{
    double lifetime_ns = 3.0;       //!< fluorescence lifetime tau
    double quantum_yield = 0.8;     //!< radiative fraction phi
    double emission_peak_nm = 570.0;
    double excitation_peak_nm = 550.0;
    double band_width_nm = 30.0;    //!< Gaussian sigma, both bands
    double extinction = 1.0;        //!< relative absorption strength
};

/** Environment parameters of a RET pair/network. */
struct RetMedium
{
    double kappa_squared = 2.0 / 3.0; //!< isotropic orientation avg
    double refractive_index = 1.4;    //!< aqueous/DNA scaffold
};

/**
 * Spectral overlap integral J between a donor's emission band
 * (area-normalized) and an acceptor's excitation band (peak scaled
 * by extinction), weighted by lambda^4. Relative units (nm^4).
 */
double spectralOverlap(const Chromophore &donor,
                       const Chromophore &acceptor);

/** Förster radius R0 (nm) of a donor-acceptor pair. */
double forsterRadius(const Chromophore &donor,
                     const Chromophore &acceptor,
                     const RetMedium &medium = {});

/** RET rate (1/ns) at separation @p distance_nm. */
double transferRate(const Chromophore &donor,
                    const Chromophore &acceptor, double distance_nm,
                    const RetMedium &medium = {});

/** Transfer efficiency E = R0^6 / (R0^6 + r^6). */
double transferEfficiency(const Chromophore &donor,
                          const Chromophore &acceptor,
                          double distance_nm,
                          const RetMedium &medium = {});

/**
 * Build the absorbing CTMC of a linear RET cascade: excitation
 * enters at chromophores[0], hops forward with the Förster rates
 * implied by @p spacings_nm, loses to spontaneous decay at every
 * stage (intermediate emission is spectrally filtered, i.e. dark),
 * and emits a detectable photon only via the terminal
 * chromophore's radiative decay.
 *
 * @param chain chromophores in cascade order (>= 1)
 * @param spacings_nm distances between consecutive chromophores
 *        (size = chain.size() - 1)
 */
PhaseTypeNetwork
buildCascadeNetwork(const std::vector<Chromophore> &chain,
                    const std::vector<double> &spacings_nm,
                    const RetMedium &medium = {});

/**
 * End-to-end detection probability of the cascade (probability
 * that the entering excitation produces a terminal photon):
 * product of per-stage branching ratios. Analytic counterpart of
 * sampling buildCascadeNetwork().
 */
double cascadeEfficiency(const std::vector<Chromophore> &chain,
                         const std::vector<double> &spacings_nm,
                         const RetMedium &medium = {});

} // namespace rsu::ret

#endif // RSU_RET_FORSTER_H
