#include "ret/ttf_timer.h"

#include <cmath>
#include <stdexcept>

namespace rsu::ret {

TtfTimer::TtfTimer(double clock_period_ns)
{
    if (clock_period_ns <= 0.0)
        throw std::invalid_argument("TtfTimer: clock period must be "
                                    "positive");
    tick_ns_ = clock_period_ns / kTtfOversample;
}

uint8_t
TtfTimer::quantize(double arrival_ns) const
{
    if (arrival_ns < 0.0 || !std::isfinite(arrival_ns))
        return kTtfSaturated;
    const double ticks = arrival_ns / tick_ns_;
    if (ticks >= static_cast<double>(kTtfSaturated))
        return kTtfSaturated;
    return static_cast<uint8_t>(ticks);
}

double
TtfTimer::tickProbability(double rate_per_ns, uint8_t q) const
{
    if (rate_per_ns <= 0.0)
        return q == kTtfSaturated ? 1.0 : 0.0;
    const double a = rate_per_ns * tick_ns_;
    if (q == kTtfSaturated) {
        // Tail mass at or beyond the saturation boundary.
        return std::exp(-a * static_cast<double>(kTtfSaturated));
    }
    const double lo = std::exp(-a * static_cast<double>(q));
    const double hi = std::exp(-a * static_cast<double>(q + 1));
    return lo - hi;
}

} // namespace rsu::ret
