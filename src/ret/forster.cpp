#include "ret/forster.h"

#include <cmath>
#include <stdexcept>

namespace rsu::ret {

namespace {

/**
 * Scale constant of the R0^6 formula in this module's relative
 * unit system, calibrated so a typical strong dye pair (peaks
 * 550 -> 570 nm emission/excitation offset, sigma 30 nm, quantum
 * yield 0.8, extinction 1.0, kappa^2 = 2/3, n = 1.4) yields
 * R0 ~ 5 nm. In absolute units the constant would carry the
 * 9 ln(10) / (128 pi^5 N_A) factor of Förster's formula.
 */
constexpr double kForsterScale = 3.2e-6;

double
gaussian(double x, double mu, double sigma)
{
    const double d = (x - mu) / sigma;
    return std::exp(-0.5 * d * d) /
           (sigma * std::sqrt(2.0 * 3.14159265358979));
}

void
validate(const Chromophore &c)
{
    if (c.lifetime_ns <= 0.0 || c.quantum_yield <= 0.0 ||
        c.quantum_yield > 1.0 || c.band_width_nm <= 0.0 ||
        c.extinction <= 0.0) {
        throw std::invalid_argument("Chromophore: non-physical "
                                    "parameters");
    }
}

} // namespace

double
spectralOverlap(const Chromophore &donor, const Chromophore &acceptor)
{
    validate(donor);
    validate(acceptor);
    // Numeric integral over the visible band; the integrand is the
    // product of two Gaussians times lambda^4, smooth enough for a
    // plain midpoint rule at 1 nm steps.
    double j = 0.0;
    for (double l = 300.5; l < 900.0; l += 1.0) {
        const double f_d =
            gaussian(l, donor.emission_peak_nm, donor.band_width_nm);
        const double e_a =
            acceptor.extinction *
            gaussian(l, acceptor.excitation_peak_nm,
                     acceptor.band_width_nm) *
            (acceptor.band_width_nm * std::sqrt(2.0 * 3.14159265));
        // e_a is peak-normalized to `extinction` via the sigma
        // factor (so a narrow band is not penalized twice).
        j += f_d * e_a * l * l * l * l;
    }
    return j;
}

double
forsterRadius(const Chromophore &donor, const Chromophore &acceptor,
              const RetMedium &medium)
{
    if (medium.kappa_squared <= 0.0 || medium.refractive_index <= 0.0)
        throw std::invalid_argument("RetMedium: non-physical "
                                    "parameters");
    const double j = spectralOverlap(donor, acceptor);
    const double n4 = std::pow(medium.refractive_index, 4.0);
    const double r6 = kForsterScale * medium.kappa_squared *
                      donor.quantum_yield * j / n4;
    return std::pow(r6, 1.0 / 6.0);
}

double
transferRate(const Chromophore &donor, const Chromophore &acceptor,
             double distance_nm, const RetMedium &medium)
{
    if (distance_nm <= 0.0)
        throw std::invalid_argument("transferRate: distance must be "
                                    "positive");
    const double r0 = forsterRadius(donor, acceptor, medium);
    const double ratio = r0 / distance_nm;
    return std::pow(ratio, 6.0) / donor.lifetime_ns;
}

double
transferEfficiency(const Chromophore &donor,
                   const Chromophore &acceptor, double distance_nm,
                   const RetMedium &medium)
{
    const double k = transferRate(donor, acceptor, distance_nm,
                                  medium);
    return k / (k + 1.0 / donor.lifetime_ns);
}

PhaseTypeNetwork
buildCascadeNetwork(const std::vector<Chromophore> &chain,
                    const std::vector<double> &spacings_nm,
                    const RetMedium &medium)
{
    const int n = static_cast<int>(chain.size());
    if (n < 1)
        throw std::invalid_argument("buildCascadeNetwork: empty "
                                    "chain");
    if (static_cast<int>(spacings_nm.size()) != n - 1)
        throw std::invalid_argument("buildCascadeNetwork: need one "
                                    "spacing per hop");

    // Transient states: one per chromophore plus a dark trap at
    // index n; absorption (photon emission) is index n + 1.
    const int trap = n;
    const int states = n + 1;
    std::vector<std::vector<double>> rates(
        states, std::vector<double>(states + 1, 0.0));

    for (int i = 0; i < n; ++i) {
        validate(chain[i]);
        const double decay = 1.0 / chain[i].lifetime_ns;
        if (i < n - 1) {
            // Forward RET races against total spontaneous decay;
            // intermediate emission is filtered out -> dark.
            rates[i][i + 1] = transferRate(chain[i], chain[i + 1],
                                           spacings_nm[i], medium);
            rates[i][trap] = decay;
        } else {
            // Terminal acceptor: radiative fraction emits the
            // detectable photon; the rest decays dark.
            rates[i][states] = chain[i].quantum_yield * decay;
            rates[i][trap] = (1.0 - chain[i].quantum_yield) * decay;
        }
    }
    // The trap has no exits (dark).
    return PhaseTypeNetwork(std::move(rates), 0);
}

double
cascadeEfficiency(const std::vector<Chromophore> &chain,
                  const std::vector<double> &spacings_nm,
                  const RetMedium &medium)
{
    const int n = static_cast<int>(chain.size());
    if (n < 1 || static_cast<int>(spacings_nm.size()) != n - 1)
        throw std::invalid_argument("cascadeEfficiency: bad shapes");
    double efficiency = 1.0;
    for (int i = 0; i + 1 < n; ++i) {
        efficiency *= transferEfficiency(chain[i], chain[i + 1],
                                         spacings_nm[i], medium);
    }
    return efficiency * chain.back().quantum_yield;
}

} // namespace rsu::ret
