/**
 * @file
 * Single-photon avalanche detector model.
 *
 * The SPAD converts the RET network's first emitted photon into an
 * electrical edge for the TTF timer. Architecturally relevant
 * non-idealities (all optional, all default-off so the core model is
 * noise-free):
 *
 *  - detection efficiency: an emitted photon is missed with
 *    probability 1 - efficiency, in which case detection waits for a
 *    later emission — modelled as re-drawing from the same
 *    exponential (memorylessness makes this exact for the
 *    single-stage network: thinning a Poisson process scales its
 *    rate by the efficiency);
 *  - dark counts: spurious detections at a fixed Poisson rate race
 *    against the true signal;
 *  - dead time after a detection, honoured by the RET circuit's
 *    quiescence window.
 */

#ifndef RSU_RET_SPAD_H
#define RSU_RET_SPAD_H

#include "rng/xoshiro256.h"

namespace rsu::ret {

/** SPAD non-ideality parameters. */
struct SpadModel
{
    /** Photon detection efficiency in (0, 1]. */
    double efficiency = 1.0;
    /** Dark-count rate (counts per ns). */
    double dark_rate_per_ns = 0.0;
    /** Dead time after a detection (ns). */
    double dead_time_ns = 0.0;
};

/** Detection front-end for a RET circuit. */
class Spad
{
  public:
    explicit Spad(SpadModel model = {});

    /**
     * Convert a photon-arrival process of rate @p photon_rate_per_ns
     * into a detection time (ns). Infinite input rate handling: a
     * non-firing channel (rate 0) can still produce a dark count.
     * Returns infinity when nothing ever fires.
     */
    double detect(rsu::rng::Xoshiro256 &rng,
                  double photon_rate_per_ns) const;

    /**
     * Effective detection rate for a photon process of the given
     * rate (thinned signal plus dark counts). Analytic counterpart
     * of detect() used by the test oracles.
     */
    double effectiveRate(double photon_rate_per_ns) const;

    const SpadModel &model() const { return model_; }

  private:
    SpadModel model_;
};

} // namespace rsu::ret

#endif // RSU_RET_SPAD_H
