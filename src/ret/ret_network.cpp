#include "ret/ret_network.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rng/distributions.h"

namespace rsu::ret {

ExponentialNetwork::ExponentialNetwork(double base_rate_per_ns,
                                       WearModel wear)
    : base_rate_(base_rate_per_ns), wear_(wear)
{
    if (base_rate_ <= 0.0)
        throw std::invalid_argument("ExponentialNetwork: base rate "
                                    "must be positive");
}

double
ExponentialNetwork::sampleTtf(rsu::rng::Xoshiro256 &rng,
                              double intensity)
{
    ++cycles_;
    const double bleach = wear_.effectiveBleach();
    if (bleach > 0.0)
        surviving_ *= (1.0 - bleach);

    if (intensity <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double rate = effectiveRate() * intensity;
    return rsu::rng::sampleExponential(rng, rate);
}

double
ExponentialNetwork::effectiveRate() const
{
    return base_rate_ * surviving_;
}

void
ExponentialNetwork::refresh()
{
    surviving_ = 1.0;
}

void
ExponentialNetwork::age(uint64_t cycles)
{
    cycles_ += cycles;
    const double bleach = wear_.effectiveBleach();
    if (bleach > 0.0) {
        surviving_ *= std::pow(1.0 - bleach,
                               static_cast<double>(cycles));
    }
}

PhaseTypeNetwork::PhaseTypeNetwork(
    std::vector<std::vector<double>> rates, int initial_state)
    : rates_(std::move(rates)), initial_state_(initial_state)
{
    const int n = static_cast<int>(rates_.size());
    if (n == 0)
        throw std::invalid_argument("PhaseTypeNetwork: empty");
    if (initial_state_ < 0 || initial_state_ >= n)
        throw std::invalid_argument("PhaseTypeNetwork: bad initial "
                                    "state");
    for (const auto &row : rates_) {
        if (static_cast<int>(row.size()) != n + 1)
            throw std::invalid_argument("PhaseTypeNetwork: each row "
                                        "needs size() + 1 entries");
        for (double r : row) {
            if (r < 0.0)
                throw std::invalid_argument("PhaseTypeNetwork: "
                                            "negative rate");
        }
    }
}

double
PhaseTypeNetwork::sampleTtf(rsu::rng::Xoshiro256 &rng,
                            double intensity) const
{
    const int n = size();
    int state = initial_state_;
    double t = 0.0;
    bool first_hop = true;
    for (;;) {
        const auto &row = rates_[state];
        double total = 0.0;
        for (int j = 0; j <= n; ++j) {
            if (j != state)
                total += row[j];
        }
        if (total <= 0.0) {
            // Dark trap state: the excitation decays non-radiatively.
            return std::numeric_limits<double>::infinity();
        }
        // Excitation of the entry state is intensity-gated; hops
        // inside the network proceed at their geometric rates.
        const double hop_rate =
            first_hop ? total * intensity : total;
        if (hop_rate <= 0.0)
            return std::numeric_limits<double>::infinity();
        t += rsu::rng::sampleExponential(rng, hop_rate);
        first_hop = false;

        // Pick the destination proportional to the rates.
        double u = rng.uniform() * total;
        int next = n;
        for (int j = 0; j <= n; ++j) {
            if (j == state)
                continue;
            u -= row[j];
            if (u < 0.0) {
                next = j;
                break;
            }
        }
        if (next == n)
            return t; // absorbed: photon emitted
        state = next;
    }
}

double
PhaseTypeNetwork::meanTtf() const
{
    // Solve (I - P) m = h where m[i] is the mean absorption time from
    // state i, h[i] the mean holding time, and P the jump matrix.
    // Gaussian elimination on the small dense system.
    const int n = size();
    std::vector<std::vector<double>> a(n, std::vector<double>(n + 1));
    for (int i = 0; i < n; ++i) {
        double total = 0.0;
        for (int j = 0; j <= n; ++j) {
            if (j != i)
                total += rates_[i][j];
        }
        if (total <= 0.0)
            return std::numeric_limits<double>::infinity();
        for (int j = 0; j < n; ++j) {
            const double p =
                (j == i) ? 0.0 : rates_[i][j] / total;
            a[i][j] = (i == j ? 1.0 : 0.0) - p;
        }
        a[i][n] = 1.0 / total;
    }
    // Forward elimination with partial pivoting.
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        std::swap(a[col], a[pivot]);
        if (std::abs(a[col][col]) < 1e-15)
            return std::numeric_limits<double>::infinity();
        for (int r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const double f = a[r][col] / a[col][col];
            for (int j = col; j <= n; ++j)
                a[r][j] -= f * a[col][j];
        }
    }
    return a[initial_state_][n] / a[initial_state_][initial_state_];
}

PhaseTypeNetwork
PhaseTypeNetwork::makeErlang(int k, double rate)
{
    if (k < 1 || rate <= 0.0)
        throw std::invalid_argument("makeErlang: bad parameters");
    std::vector<std::vector<double>> rates(
        k, std::vector<double>(k + 1, 0.0));
    for (int i = 0; i < k; ++i)
        rates[i][i + 1] = rate; // last hop lands on index k: absorb
    return PhaseTypeNetwork(std::move(rates), 0);
}

PhaseTypeNetwork
PhaseTypeNetwork::makeBernoulli(double bright_rate, double dark_rate)
{
    if (bright_rate < 0.0 || dark_rate < 0.0 ||
        bright_rate + dark_rate <= 0.0) {
        throw std::invalid_argument("makeBernoulli: bad rates");
    }
    // State 0 races toward absorption (bright) or the trap state 1.
    std::vector<std::vector<double>> rates(
        2, std::vector<double>(3, 0.0));
    rates[0][2] = bright_rate;
    rates[0][1] = dark_rate;
    // State 1 has no exits: dark trap.
    return PhaseTypeNetwork(std::move(rates), 0);
}

} // namespace rsu::ret
