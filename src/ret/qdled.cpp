#include "ret/qdled.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rsu::ret {

QdLedBank::QdLedBank(const std::array<double, kNumLeds> &weights)
    : weights_(weights)
{
    for (double w : weights_) {
        if (w <= 0.0)
            throw std::invalid_argument("QdLedBank: weights must be "
                                        "positive");
    }
    for (int code = 0; code < kNumLedCodes; ++code) {
        double sum = 0.0;
        for (int k = 0; k < kNumLeds; ++k) {
            if (code & (1 << k))
                sum += weights_[k];
        }
        code_intensity_[code] = sum;
    }
}

QdLedBank::QdLedBank()
    : QdLedBank(designWeights(kDefaultLedDynamicRange))
{
}

double
QdLedBank::intensity(uint8_t code) const
{
    assert(code < kNumLedCodes);
    return code_intensity_[code];
}

double
QdLedBank::maxIntensity() const
{
    return code_intensity_[kNumLedCodes - 1];
}

double
QdLedBank::minIntensity() const
{
    double best = code_intensity_[kNumLedCodes - 1];
    for (int code = 1; code < kNumLedCodes; ++code)
        best = std::min(best, code_intensity_[code]);
    return best;
}

uint8_t
QdLedBank::nearestCode(double target) const
{
    if (target <= 0.0)
        return 0;
    int best_code = 1;
    double best_err = std::abs(std::log(code_intensity_[1] / target));
    for (int code = 2; code < kNumLedCodes; ++code) {
        const double err =
            std::abs(std::log(code_intensity_[code] / target));
        if (err < best_err) {
            best_err = err;
            best_code = code;
        }
    }
    return static_cast<uint8_t>(best_code);
}

std::array<double, kNumLeds>
QdLedBank::designWeights(double dynamic_range)
{
    if (dynamic_range < 1.0)
        throw std::invalid_argument("QdLedBank: dynamic range must be "
                                    ">= 1");
    const double r = std::pow(dynamic_range, 1.0 / 3.0);
    return {1.0, r, r * r, r * r * r};
}

} // namespace rsu::ret
