#include "ret/ret_circuit.h"

#include <cassert>
#include <stdexcept>

namespace rsu::ret {

namespace {

double
defaultBaseRate(const RetCircuitConfig &config)
{
    if (config.base_rate_per_ns > 0.0)
        return config.base_rate_per_ns;
    // Tune so the all-on code yields a 1 ns mean TTF.
    double max_intensity = 0.0;
    for (double w : config.led_weights)
        max_intensity += w;
    return 1.0 / max_intensity;
}

} // namespace

RetCircuit::RetCircuit(const RetCircuitConfig &config)
    : leds_(config.led_weights),
      network_(defaultBaseRate(config), config.wear),
      spad_(config.spad),
      timer_(config.clock_period_ns),
      quiescence_cycles_(config.quiescence_cycles)
{
    if (quiescence_cycles_ < 0)
        throw std::invalid_argument("RetCircuit: negative quiescence");
}

uint8_t
RetCircuit::sample(rsu::rng::Xoshiro256 &rng, uint8_t code)
{
    return timer_.quantize(sampleContinuousNs(rng, code));
}

double
RetCircuit::sampleContinuousNs(rsu::rng::Xoshiro256 &rng, uint8_t code)
{
    const double intensity = leds_.intensity(code);
    // Ages the ensemble even when nothing fires (LEDs still pump).
    const double photon_ttf = network_.sampleTtf(rng, intensity);
    // SPAD thinning of the underlying Poisson process is equivalent
    // to scaling its rate (memorylessness); redraw at the effective
    // rate instead of rejection-looping over individual photons.
    const double photon_rate =
        intensity > 0.0 ? network_.effectiveRate() * intensity : 0.0;
    if (spad_.model().efficiency >= 1.0 &&
        spad_.model().dark_rate_per_ns <= 0.0) {
        return photon_ttf;
    }
    return spad_.detect(rng, photon_rate);
}

uint8_t
RetCircuit::sampleAt(rsu::rng::Xoshiro256 &rng, uint8_t code,
                     uint64_t cycle)
{
    assert(readyAt(cycle) && "RET circuit fired during quiescence");
    busy_until_ = cycle + static_cast<uint64_t>(quiescence_cycles_);
    return sample(rng, code);
}

void
RetCircuit::setSpadModel(const SpadModel &model)
{
    spad_ = Spad(model);
}

double
RetCircuit::detectionRate(uint8_t code) const
{
    const double photon_rate =
        network_.effectiveRate() * leds_.intensity(code);
    return spad_.effectiveRate(photon_rate);
}

} // namespace rsu::ret
