#include "ret/spad.h"

#include <limits>
#include <stdexcept>

#include "rng/distributions.h"

namespace rsu::ret {

Spad::Spad(SpadModel model) : model_(model)
{
    if (model_.efficiency <= 0.0 || model_.efficiency > 1.0)
        throw std::invalid_argument("Spad: efficiency must be in "
                                    "(0, 1]");
    if (model_.dark_rate_per_ns < 0.0 || model_.dead_time_ns < 0.0)
        throw std::invalid_argument("Spad: negative noise parameter");
}

double
Spad::detect(rsu::rng::Xoshiro256 &rng,
             double photon_rate_per_ns) const
{
    const double rate = effectiveRate(photon_rate_per_ns);
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return rsu::rng::sampleExponential(rng, rate);
}

double
Spad::effectiveRate(double photon_rate_per_ns) const
{
    double rate = model_.dark_rate_per_ns;
    if (photon_rate_per_ns > 0.0)
        rate += photon_rate_per_ns * model_.efficiency;
    return rate;
}

} // namespace rsu::ret
