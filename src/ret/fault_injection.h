/**
 * @file
 * Deterministic device-fault injection for RSU-G units.
 *
 * The paper's own device characterization (section 5) names the
 * non-idealities a deployed molecular-optical sampler lives with:
 * ensemble variation across RET networks, SPAD dark counts and
 * finite efficiency, and the 8-bit TTF register's saturation. The
 * follow-on uncertainty-quantification work treats such sampler
 * non-ideality as a first-class statistical concern rather than a
 * reason to discard hardware. This module gives the serving stack a
 * way to *rehearse* those failures: a FaultPlan describes a fault
 * campaign over an array of units, and faultsFor() expands it into
 * the concrete per-unit afflictions — selected by seeded hashing, so
 * the same plan always breaks the same lanes of the same units, no
 * matter how many shards the runtime spreads them over.
 *
 * Fault classes (all default-off; an empty plan injects nothing):
 *  - stuck-at LED intensity bits: one bit of a lane's 4-bit LED
 *    on/off code is forced high or low, distorting the intensity
 *    ladder that realizes the Gibbs weights;
 *  - dead SPAD lanes: a lane's detector never fires, so every
 *    evaluation on it reads a saturated TTF;
 *  - elevated dark counts: spurious detections race the true signal
 *    at a fixed extra Poisson rate (the analytic race oracle,
 *    RsuG::raceDistribution, models this exactly — see the
 *    chi-square tests);
 *  - forced TTF saturation: the unit's shift registers stick at the
 *    saturated reading, making every race end with no winner.
 *
 * The plan also carries the health policy an afflicted unit runs
 * under: how many times an all-saturated race is re-raced before the
 * unit reports it, and how many unrecovered races it tolerates
 * before declaring itself failed (RsuG::failed()), which is the
 * signal the serving layer's degradation policy acts on.
 */

#ifndef RSU_RET_FAULT_INJECTION_H
#define RSU_RET_FAULT_INJECTION_H

#include <cstdint>
#include <vector>

namespace rsu::ret {

/** Concrete afflictions for one RSU-G unit (see RsuG::injectFaults).
 * Vectors are indexed by lane and sized to the unit's width. */
struct UnitFaults
{
    /** Per-lane LED-code bits stuck at 1 (OR mask, low 4 bits). */
    std::vector<uint8_t> led_stuck_high;

    /** Per-lane LED-code bits stuck at 0 (mask of dead bits). */
    std::vector<uint8_t> led_stuck_low;

    /** Per-lane dead-SPAD flag: the lane always reads saturated. */
    std::vector<uint8_t> dead_spad;

    /** Extra dark-count rate (per ns) added to every circuit. */
    double dark_rate_per_ns = 0.0;

    /** Whole-unit TTF register failure: every reading saturates. */
    bool force_ttf_saturation = false;

    /** Re-race attempts granted when a race ends all-saturated. */
    int max_reraces = 0;

    /** Unrecovered all-saturated races before the unit declares
     * failure; 0 = never declare failure. */
    uint64_t failure_threshold = 0;

    /** True when any affliction is present (health policy alone
     * does not count — it only matters once something is broken). */
    bool any() const;
};

/** A seeded fault campaign over an array of RSU-G units. */
struct FaultPlan
{
    /** Selects *which* lanes/units are afflicted; the same seed
     * always picks the same victims. */
    uint64_t seed = 1;

    /** Fraction of lanes with one stuck LED intensity bit. */
    double stuck_led_fraction = 0.0;

    /** Fraction of lanes whose SPAD is dead. */
    double dead_spad_fraction = 0.0;

    /** Fraction of units with elevated dark counts... */
    double dark_unit_fraction = 0.0;

    /** ...at this extra rate (counts per ns). */
    double dark_rate_per_ns = 0.0;

    /** Fraction of units whose TTF registers stick saturated. */
    double ttf_saturation_fraction = 0.0;

    /** Health policy installed alongside the faults. */
    int max_reraces = 2;
    uint64_t failure_threshold = 8;

    /** True when the plan can afflict anything at all. */
    bool anyFaults() const;

    /**
     * Expand the plan into unit @p unit_index's afflictions for a
     * @p lanes -wide unit. Deterministic in (seed, unit_index,
     * lane): a unit keeps its faults however the array around it is
     * resized or resharded.
     */
    UnitFaults faultsFor(int unit_index, int lanes) const;
};

} // namespace rsu::ret

#endif // RSU_RET_FAULT_INJECTION_H
