#include "ret/fault_injection.h"

#include <stdexcept>

#include "rng/splitmix64.h"

namespace rsu::ret {

namespace {

/** Salts keeping the per-fault-class Bernoulli draws independent. */
enum : uint64_t {
    kSaltStuckLed = 0x51ed,
    kSaltStuckPolarity = 0xb17,
    kSaltStuckBit = 0x5e1ec7,
    kSaltDeadSpad = 0xdead,
    kSaltDarkUnit = 0xda2c,
    kSaltTtfSaturation = 0x7f5a,
};

/** Deterministic 64-bit hash of (seed, salt, unit, lane). */
uint64_t
mix(uint64_t seed, uint64_t salt, int unit, int lane)
{
    rsu::rng::SplitMix64 h(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                           (static_cast<uint64_t>(unit) << 32) ^
                           static_cast<uint64_t>(lane));
    return h.next();
}

/** Bernoulli(@p fraction) draw from the hash stream. */
bool
afflicted(uint64_t seed, uint64_t salt, int unit, int lane,
          double fraction)
{
    if (fraction <= 0.0)
        return false;
    if (fraction >= 1.0)
        return true;
    // 53-bit uniform in [0, 1), the double-precision idiom.
    const double u =
        static_cast<double>(mix(seed, salt, unit, lane) >> 11) *
        0x1.0p-53;
    return u < fraction;
}

} // namespace

bool
UnitFaults::any() const
{
    if (dark_rate_per_ns > 0.0 || force_ttf_saturation)
        return true;
    for (const uint8_t m : led_stuck_high)
        if (m != 0)
            return true;
    for (const uint8_t m : led_stuck_low)
        if (m != 0)
            return true;
    for (const uint8_t d : dead_spad)
        if (d != 0)
            return true;
    return false;
}

bool
FaultPlan::anyFaults() const
{
    return stuck_led_fraction > 0.0 || dead_spad_fraction > 0.0 ||
           (dark_unit_fraction > 0.0 && dark_rate_per_ns > 0.0) ||
           ttf_saturation_fraction > 0.0;
}

UnitFaults
FaultPlan::faultsFor(int unit_index, int lanes) const
{
    if (unit_index < 0 || lanes < 1)
        throw std::invalid_argument(
            "FaultPlan: need unit_index >= 0 and lanes >= 1");
    UnitFaults faults;
    faults.led_stuck_high.assign(lanes, 0);
    faults.led_stuck_low.assign(lanes, 0);
    faults.dead_spad.assign(lanes, 0);
    faults.max_reraces = max_reraces;
    faults.failure_threshold = failure_threshold;

    for (int lane = 0; lane < lanes; ++lane) {
        if (afflicted(seed, kSaltStuckLed, unit_index, lane,
                      stuck_led_fraction)) {
            const uint8_t bit = static_cast<uint8_t>(
                1u << (mix(seed, kSaltStuckBit, unit_index, lane) &
                       0x3));
            if (mix(seed, kSaltStuckPolarity, unit_index, lane) & 1)
                faults.led_stuck_high[lane] = bit;
            else
                faults.led_stuck_low[lane] = bit;
        }
        if (afflicted(seed, kSaltDeadSpad, unit_index, lane,
                      dead_spad_fraction))
            faults.dead_spad[lane] = 1;
    }
    if (afflicted(seed, kSaltDarkUnit, unit_index, 0,
                  dark_unit_fraction))
        faults.dark_rate_per_ns = dark_rate_per_ns;
    if (afflicted(seed, kSaltTtfSaturation, unit_index, 0,
                  ttf_saturation_fraction))
        faults.force_ttf_saturation = true;
    return faults;
}

} // namespace rsu::ret
