/**
 * @file
 * Quantum-dot LED bank model.
 *
 * Each RET circuit is excited by four QD-LEDs under binary on/off
 * control (paper section 5.2, "Intensity Mapping"): the 4-bit signal
 * from the intensity lookup table selects which LEDs are lit, and the
 * LEDs are *sized* so that the 16 achievable summed intensities span a
 * large dynamic range — enough to represent the relative-probability
 * ratios demonstrated on the macro-scale prototype (up to ~255:1).
 *
 * The bank therefore has one design input: the per-LED optical
 * weights; the achievable intensity for a code is simply the sum of
 * the lit LEDs' weights. The default sizing is binary ({1,2,4,8}),
 * which makes the sorted intensity ladder the contiguous integers
 * 1..15 — the densest coverage four binary LEDs can achieve, at a
 * 15:1 dynamic range. Wider geometric sizings (up to the 255:1
 * ratios the prototype demonstrates) are available through
 * designWeights(), trading mid-range coverage for range; the
 * LED-design ablation bench quantifies that trade-off.
 */

#ifndef RSU_RET_QDLED_H
#define RSU_RET_QDLED_H

#include <array>
#include <cstdint>
#include <vector>

namespace rsu::ret {

/** Number of QD-LEDs per RET circuit (fixed by the RSU-G design). */
constexpr int kNumLeds = 4;

/** Number of distinct LED on/off codes. */
constexpr int kNumLedCodes = 1 << kNumLeds;

/** A bank of four binary-controlled QD-LEDs. */
class QdLedBank
{
  public:
    /**
     * @param weights relative optical power of each LED; all must be
     *                positive.
     */
    explicit QdLedBank(const std::array<double, kNumLeds> &weights);

    /** Bank with the default geometric sizing for @p dynamic_range. */
    QdLedBank();

    /**
     * Total optical intensity for a 4-bit on/off code.
     * Code 0 (all off) yields exactly 0.
     */
    double intensity(uint8_t code) const;

    /** Largest achievable intensity (all LEDs on). */
    double maxIntensity() const;

    /** Smallest non-zero achievable intensity. */
    double minIntensity() const;

    /**
     * Code whose intensity is closest to @p target on a log scale
     * (never code 0 unless @p target is exactly 0). Used to build the
     * energy-to-intensity lookup table.
     */
    uint8_t nearestCode(double target) const;

    const std::array<double, kNumLeds> &weights() const
    {
        return weights_;
    }

    /**
     * Design per-LED weights by geometric sizing w_k = r^k with
     * r = dynamic_range^(1/3), normalized so the smallest LED has
     * weight 1 (the largest then equals @p dynamic_range).
     * dynamic_range = 8 yields the binary {1,2,4,8} default whose
     * sums tile 1..15; larger values spread the ladder wider at the
     * cost of mid-range gaps.
     */
    static std::array<double, kNumLeds>
    designWeights(double dynamic_range);

  private:
    std::array<double, kNumLeds> weights_;
    std::array<double, kNumLedCodes> code_intensity_;
};

/** Default per-LED dynamic range: binary sizing, sums tile 1..15. */
constexpr double kDefaultLedDynamicRange = 8.0;

} // namespace rsu::ret

#endif // RSU_RET_QDLED_H
