/**
 * @file
 * Assembled RET circuit.
 *
 * A RET circuit is the paper's unit of optical sampling (section
 * 2.3): an on-chip QD-LED bank, an ensemble of RET networks, a SPAD,
 * and the 8x-oversampled TTF timer, plus the 4-cycle quiescence
 * window that creates the structural hazard section 5.3 resolves with
 * replication.
 *
 * The circuit's architecturally visible contract is small: given a
 * 4-bit LED code, return an 8-bit quantized time-to-fluorescence
 * whose distribution is (quantized) Exp(intensity(code) * k). All
 * optical non-idealities (SPAD efficiency/dark counts, photobleach
 * wear) funnel through this one class so higher layers never touch
 * device physics directly.
 */

#ifndef RSU_RET_RET_CIRCUIT_H
#define RSU_RET_RET_CIRCUIT_H

#include <cstdint>

#include "ret/qdled.h"
#include "ret/ret_network.h"
#include "ret/spad.h"
#include "ret/ttf_timer.h"
#include "rng/xoshiro256.h"

namespace rsu::ret {

/** Construction parameters for a RET circuit. */
struct RetCircuitConfig
{
    /** Per-LED optical weights (default: binary sizing, sums tile
     * the integers 1..15). */
    std::array<double, kNumLeds> led_weights =
        QdLedBank::designWeights(kDefaultLedDynamicRange);

    /**
     * Ensemble emission rate per unit intensity (per ns). The
     * default is tuned so the brightest code has a 1 ns mean TTF at
     * a 1 GHz system clock — a few-nanosecond sample, as the paper
     * advertises.
     */
    double base_rate_per_ns = 0.0; // 0 -> derived from led_weights

    /** System clock period (ns); the TTF tick is 1/8 of this. */
    double clock_period_ns = 1.0;

    /** Cycles the circuit needs to quiesce after firing (sec. 5.3). */
    int quiescence_cycles = 4;

    /** Optical non-idealities. */
    SpadModel spad;
    WearModel wear;
};

/** A single RET circuit with scheduling state. */
class RetCircuit
{
  public:
    explicit RetCircuit(const RetCircuitConfig &config = {});

    /**
     * Fire the circuit with LED code @p code and return the
     * quantized TTF. Does not touch scheduling state; use
     * sampleAt() when modelling pipeline occupancy.
     */
    uint8_t sample(rsu::rng::Xoshiro256 &rng, uint8_t code);

    /**
     * Continuous (unquantized) detection time in ns; infinity when
     * the channel cannot fire. Exposed for the prototype emulation,
     * which times with its own 250 ps FPGA timer.
     */
    double sampleContinuousNs(rsu::rng::Xoshiro256 &rng, uint8_t code);

    /** True when the circuit may fire at @p cycle. */
    bool readyAt(uint64_t cycle) const { return cycle >= busy_until_; }

    /**
     * Fire at @p cycle (must be ready) and reserve the quiescence
     * window.
     */
    uint8_t sampleAt(rsu::rng::Xoshiro256 &rng, uint8_t code,
                     uint64_t cycle);

    /** First cycle at which the circuit is ready again. */
    uint64_t busyUntil() const { return busy_until_; }

    /**
     * Effective detection rate (per ns) for a LED code — the analytic
     * oracle for the circuit's TTF distribution.
     */
    double detectionRate(uint8_t code) const;

    const QdLedBank &leds() const { return leds_; }

    /** Detector model currently installed. */
    const SpadModel &spadModel() const { return spad_.model(); }

    /**
     * Replace the detector model (fault injection: dead detectors,
     * elevated dark counts). Validated exactly like construction.
     */
    void setSpadModel(const SpadModel &model);

    const TtfTimer &timer() const { return timer_; }
    const ExponentialNetwork &network() const { return network_; }
    ExponentialNetwork &network() { return network_; }
    int quiescenceCycles() const { return quiescence_cycles_; }

  private:
    QdLedBank leds_;
    ExponentialNetwork network_;
    Spad spad_;
    TtfTimer timer_;
    int quiescence_cycles_;
    uint64_t busy_until_ = 0;
};

} // namespace rsu::ret

#endif // RSU_RET_RET_CIRCUIT_H
