#include "mrf/metropolis.h"

#include <cmath>

namespace rsu::mrf {

MetropolisSampler::MetropolisSampler(GridMrf &mrf, uint64_t seed,
                                     Schedule schedule)
    : mrf_(mrf), rng_(seed), schedule_(schedule)
{
}

Label
MetropolisSampler::updateSite(int x, int y)
{
    const Label current = mrf_.label(x, y);
    const Label proposal = mrf_.codeOf(
        static_cast<int>(rng_.below(mrf_.numLabels())));
    ++proposals_;
    ++work_.site_updates;
    ++work_.random_draws;

    if (proposal == current)
        return current;

    const Energy e_old = mrf_.conditionalEnergy(x, y, current);
    const Energy e_new = mrf_.conditionalEnergy(x, y, proposal);
    work_.energy_evals += 2;

    const int delta =
        static_cast<int>(e_new) - static_cast<int>(e_old);
    bool accept;
    if (delta <= 0) {
        accept = true;
    } else {
        const double p = std::exp(-static_cast<double>(delta) /
                                  mrf_.temperature());
        ++work_.exp_calls;
        ++work_.random_draws;
        accept = rng_.uniform() < p;
    }

    if (accept) {
        ++accepts_;
        mrf_.setLabel(x, y, proposal);
        return proposal;
    }
    return current;
}

void
MetropolisSampler::sweep()
{
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [this](int x, int y) { updateSite(x, y); });
}

void
MetropolisSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        sweep();
}

double
MetropolisSampler::acceptanceRate() const
{
    return proposals_ == 0
               ? 0.0
               : static_cast<double>(accepts_) /
                     static_cast<double>(proposals_);
}

} // namespace rsu::mrf
