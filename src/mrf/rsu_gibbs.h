/**
 * @file
 * Gibbs sweeps through an RSU-G device.
 *
 * The accelerated inner loop: per site, the per-pixel operand set
 * (neighbour labels, singleton data) is transferred to the RSU-G
 * through its instruction interface and a read-result draws the new
 * label from the device's first-to-fire race (paper section 6.1,
 * "Execution"). Two operating modes:
 *
 *  - Isa: drive the full RsuDevice control-register protocol,
 *    counting the dynamic RSU instructions a real program would
 *    issue — the mode the architecture models cost;
 *  - Direct: call RsuG::sample() directly, skipping instruction
 *    emulation for speed in large statistical experiments (the
 *    sampled distribution is identical by construction).
 */

#ifndef RSU_MRF_RSU_GIBBS_H
#define RSU_MRF_RSU_GIBBS_H

#include <cstdint>

#include "core/rsu_isa.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"

namespace rsu::mrf {

/** Gibbs sampler whose conditional draws run on an RSU-G. */
class RsuGibbsSampler
{
  public:
    /** Instruction-level vs direct device access. */
    enum class Mode { Isa, Direct };

    /**
     * @param mrf model to sample (mutated in place)
     * @param unit RSU-G device (must outlive the sampler); the
     *        sampler initializes it for the model's label count and
     *        temperature. The unit's energy datapath configuration
     *        must equal the model's — hardware and reference must
     *        compute identical energies — or the constructor
     *        throws. Use unitConfigFor() to build a matching unit.
     * @param schedule site visit order
     * @param mode access mode
     */
    RsuGibbsSampler(GridMrf &mrf, rsu::core::RsuG &unit,
                    Schedule schedule = Schedule::Checkerboard,
                    Mode mode = Mode::Direct);

    /**
     * RSU-G configuration matching @p mrf's energy datapath, with
     * every other knob taken from @p base.
     */
    static rsu::core::RsuGConfig
    unitConfigFor(const GridMrf &mrf,
                  rsu::core::RsuGConfig base = {});

    /** Resample one site through the device. */
    Label updateSite(int x, int y);

    /**
     * The Direct-mode site-update kernel with externally supplied
     * state: draw a new label for (x, y) of @p mrf through @p unit
     * (whose internal RNG is the entropy source), record costs in
     * @p work, and install it. @p data2 is caller-owned scratch with
     * at least numLabels() entries. The chromatic runtime
     * (src/runtime/) gives each worker its own emulated RSU-G —
     * exactly the paper's array-of-units organization — and drives
     * its row band through this entry point.
     */
    static Label updateSiteWith(GridMrf &mrf, rsu::core::RsuG &unit,
                                uint8_t *data2, SamplerWork &work,
                                int x, int y);

    /**
     * updateSiteWith() against staged data2: the site's candidate
     * operands come from a precomputed Data2Table row (built once
     * by GridMrf::buildData2Table()) instead of per-site virtual
     * data2() calls — zero-copy, identical operand values, so
     * results are bit-identical. Both this sampler and the
     * chromatic runtime stage their sweeps this way.
     */
    static Label updateSiteWith(GridMrf &mrf, rsu::core::RsuG &unit,
                                const rsu::core::Data2Table &staged,
                                SamplerWork &work, int x, int y);

    /** One MCMC iteration: every site updated once. */
    void sweep();

    /** Run @p n sweeps. */
    void run(int n);

    /** Dynamic RSU instructions issued (Isa mode only). */
    uint64_t rsuInstructions() const;

    /**
     * Install a new Gibbs temperature: updates the model and
     * rebuilds the unit's intensity map (a per-application
     * re-initialization, section 6.1). Used by annealing drivers.
     */
    void setTemperature(double t);

    const SamplerWork &work() const { return work_; }
    rsu::core::RsuG &unit() { return unit_; }

  private:
    GridMrf &mrf_;
    rsu::core::RsuG &unit_;
    rsu::core::RsuDevice device_;
    Schedule schedule_;
    Mode mode_;
    SamplerWork work_;
    rsu::core::Data2Table data2_; // staged per-site operands
};

} // namespace rsu::mrf

#endif // RSU_MRF_RSU_GIBBS_H
