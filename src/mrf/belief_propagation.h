/**
 * @file
 * Loopy belief propagation on the grid MRF.
 *
 * The paper's section 2.4 positions MCMC against deterministic
 * approximate inference (EP, VB, and — for grid vision problems —
 * max-product/sum-product BP, the comparator of Tappen & Freeman,
 * reference [39]). This module provides sum-product loopy BP over
 * the same GridMrf and hardware energy functions, so quality and
 * work comparisons against the Gibbs samplers are apples to
 * apples:
 *
 *  - messages live on directed lattice edges over M labels;
 *  - potentials come from the *same* limited-precision EnergyUnit
 *    (psi(x) = exp(-E/T)), so BP approximates the identical
 *    distribution the samplers draw from;
 *  - damping and a max-product switch cover the standard variants.
 *
 * On tree-structured (1-pixel-wide) models BP is exact, which the
 * tests pin against the brute-force oracle; on loopy grids it is
 * the fast-but-approximate baseline the paper argues domain
 * scientists accept reluctantly.
 */

#ifndef RSU_MRF_BELIEF_PROPAGATION_H
#define RSU_MRF_BELIEF_PROPAGATION_H

#include <vector>

#include "mrf/grid_mrf.h"

namespace rsu::mrf {

/** BP configuration. */
struct BpConfig
{
    int max_iterations = 50;
    /** Stop when no message component moves more than this. */
    double tolerance = 1e-5;
    /** Message damping in [0, 1); 0 = undamped. */
    double damping = 0.0;
    /** Max-product (MAP) instead of sum-product (marginals). */
    bool max_product = false;
};

/** Sum-product / max-product loopy BP engine. */
class BeliefPropagation
{
  public:
    /**
     * @param mrf the model (labels untouched; only the energy
     *        functions and data are read)
     * @param config solver parameters
     */
    explicit BeliefPropagation(const GridMrf &mrf,
                               BpConfig config = {});

    /**
     * Run message passing to convergence or the iteration cap.
     * @return iterations executed
     */
    int run();

    /** True when the last run() converged within tolerance. */
    bool converged() const { return converged_; }

    /** Approximate marginal of site (x, y) (candidate-index
     * order), from the beliefs after run(). */
    std::vector<double> belief(int x, int y) const;

    /** Labelling maximizing each site's belief (codes). */
    std::vector<Label> decode() const;

    /** Messages updated across all iterations (work metric). */
    uint64_t messageUpdates() const { return message_updates_; }

  private:
    // Directed edge index: 4 outgoing messages per site, in the
    // N/S/W/E order of EnergyInputs::neighbors.
    int edgeIndex(int x, int y, int dir) const;
    void initPotentials();

    const GridMrf &mrf_;
    BpConfig config_;
    int m_;
    std::vector<double> singleton_;  // [site][label] psi values
    std::vector<double> pairwise_;   // [label][label] psi values
    std::vector<double> messages_;   // [edge][label]
    std::vector<double> scratch_;
    bool converged_ = false;
    uint64_t message_updates_ = 0;
};

} // namespace rsu::mrf

#endif // RSU_MRF_BELIEF_PROPAGATION_H
