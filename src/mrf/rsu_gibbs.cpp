#include "mrf/rsu_gibbs.h"

#include <algorithm>
#include <stdexcept>

namespace rsu::mrf {

using rsu::core::packNeighbors;
using rsu::core::packSingletonD;
using rsu::core::RsuReg;

RsuGibbsSampler::RsuGibbsSampler(GridMrf &mrf, rsu::core::RsuG &unit,
                                 Schedule schedule, Mode mode)
    : mrf_(mrf), unit_(unit), device_(unit), schedule_(schedule),
      mode_(mode), data2_(mrf.buildData2Table())
{
    if (!(unit_.config().energy == mrf_.config().energy))
        throw std::invalid_argument(
            "RsuGibbsSampler: the RSU-G's energy datapath "
            "configuration must match the model's (use "
            "unitConfigFor())");
    unit_.initialize(mrf_.numLabels(), mrf_.temperature());
    unit_.setLabelCodes(mrf_.labelCodes());
}

rsu::core::RsuGConfig
RsuGibbsSampler::unitConfigFor(const GridMrf &mrf,
                               rsu::core::RsuGConfig base)
{
    base.energy = mrf.config().energy;
    return base;
}

Label
RsuGibbsSampler::updateSiteWith(GridMrf &mrf, rsu::core::RsuG &unit,
                                uint8_t *data2, SamplerWork &work,
                                int x, int y)
{
    const EnergyInputs in = mrf.referencedInputsAt(x, y);
    mrf.data2At(x, y, data2);

    const Label l = unit.sample(in, data2);

    work.energy_evals += mrf.numLabels();
    ++work.random_draws;
    ++work.site_updates;

    mrf.setLabel(x, y, l);
    return l;
}

Label
RsuGibbsSampler::updateSiteWith(GridMrf &mrf, rsu::core::RsuG &unit,
                                const rsu::core::Data2Table &staged,
                                SamplerWork &work, int x, int y)
{
    const EnergyInputs in = mrf.referencedInputsAt(x, y);

    const Label l = unit.sample(in, staged.row(mrf.index(x, y)));

    work.energy_evals += mrf.numLabels();
    ++work.random_draws;
    ++work.site_updates;

    mrf.setLabel(x, y, l);
    return l;
}

Label
RsuGibbsSampler::updateSite(int x, int y)
{
    if (mode_ == Mode::Direct)
        return updateSiteWith(mrf_, unit_, data2_, work_, x, y);

    const int m = mrf_.numLabels();
    const EnergyInputs in = mrf_.referencedInputsAt(x, y);
    const uint8_t *data2 = data2_.row(mrf_.index(x, y));

    Label l;
    {
        device_.write(RsuReg::Neighbors,
                      packNeighbors(in.neighbors, in.neighbor_valid));
        device_.write(RsuReg::SingletonA, in.data1);
        device_.write(RsuReg::EnergyOffset, in.energy_offset);
        if (mrf_.singleton().data2PerLabel()) {
            for (int base = 0; base < m; base += 8) {
                const int count = std::min(8, m - base);
                device_.write(RsuReg::SingletonD,
                              packSingletonD(&data2[base], count));
            }
        } else {
            device_.write(RsuReg::SingletonD,
                          packSingletonD(&data2[0], 1));
        }
        l = device_.readResult().label;
    }

    work_.energy_evals += m;
    ++work_.random_draws;
    ++work_.site_updates;

    mrf_.setLabel(x, y, l);
    return l;
}

void
RsuGibbsSampler::sweep()
{
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [this](int x, int y) { updateSite(x, y); });
}

void
RsuGibbsSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        sweep();
}

uint64_t
RsuGibbsSampler::rsuInstructions() const
{
    return device_.instructionCount();
}

void
RsuGibbsSampler::setTemperature(double t)
{
    mrf_.setTemperature(t);
    unit_.initialize(mrf_.numLabels(), t);
    unit_.setLabelCodes(mrf_.labelCodes());
}

} // namespace rsu::mrf
