#include "mrf/fast_sweep.h"

#include <cassert>

#include "rng/discrete.h"

namespace rsu::mrf {

using rsu::core::kEnergyMax;
using rsu::core::kLabelMask;

SweepTables::SweepTables(const GridMrf &mrf)
    : mrf_(&mrf), width_(mrf.width()), height_(mrf.height()),
      num_labels_(mrf.numLabels()), codes_(mrf.labelCodes()),
      singleton_(mrf.buildSingletonTable()),
      doubleton_(mrf.energyUnit(), mrf.labelCodes())
{
    sync();
}

void
SweepTables::sync()
{
    if (exp_.built() &&
        exp_.version() == mrf_->temperatureVersion())
        return;
    exp_.rebuild(mrf_->temperature(), mrf_->temperatureVersion());
}

Label
SweepTables::updateInterior(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                            double *weights, SamplerWork &work,
                            int x, int y) const
{
    assert(&mrf == mrf_);
    assert(x > 0 && x < width_ - 1 && y > 0 && y < height_ - 1);

    const int site = y * width_ + x;
    const Label *labels = mrf.labels().data();
    const int n0 = labels[site - width_] & kLabelMask;
    const int n1 = labels[site + width_] & kLabelMask;
    const int n2 = labels[site - 1] & kLabelMask;
    const int n3 = labels[site + 1] & kLabelMask;

    const uint16_t *s = singleton_.row(site);
    const double *et = exp_.data();
    const int m = num_labels_;
    for (int i = 0; i < m; ++i) {
        const int32_t *d = doubleton_.row(i);
        int e = s[i] + d[n0] + d[n1] + d[n2] + d[n3];
        e = e < kEnergyMax ? e : kEnergyMax;
        weights[i] = et[e];
    }
    // Logical baseline costs: the timing models charge the m
    // conditional-energy computations and m transcendentals this
    // site *represents*, not the loads that realized them.
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = codes_[choice];
    mrf.setLabel(x, y, l);
    return l;
}

Label
SweepTables::updateBorder(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                          double *weights, SamplerWork &work, int x,
                          int y) const
{
    assert(&mrf == mrf_);

    const int site = y * width_ + x;
    const Label *labels = mrf.labels().data();
    int n[4];
    int valid = 0;
    if (y > 0)
        n[valid++] = labels[site - width_] & kLabelMask;
    if (y + 1 < height_)
        n[valid++] = labels[site + width_] & kLabelMask;
    if (x > 0)
        n[valid++] = labels[site - 1] & kLabelMask;
    if (x + 1 < width_)
        n[valid++] = labels[site + 1] & kLabelMask;

    const uint16_t *s = singleton_.row(site);
    const double *et = exp_.data();
    const int m = num_labels_;
    for (int i = 0; i < m; ++i) {
        const int32_t *d = doubleton_.row(i);
        int e = s[i];
        for (int k = 0; k < valid; ++k)
            e += d[n[k]];
        e = e < kEnergyMax ? e : kEnergyMax;
        weights[i] = et[e];
    }
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = codes_[choice];
    mrf.setLabel(x, y, l);
    return l;
}

} // namespace rsu::mrf
