#include "mrf/fast_sweep.h"

#include <cassert>

#include "mrf/simd_kernels.h"
#include "rng/discrete.h"

namespace rsu::mrf {

using rsu::core::kEnergyMax;
using rsu::core::kLabelMask;
using rsu::core::kSimdPadLanes;

namespace {

constexpr int
padLabels(int num_labels)
{
    return (num_labels + kSimdPadLanes - 1) / kSimdPadLanes *
           kSimdPadLanes;
}

} // namespace

SweepTableSet::SweepTableSet(const GridMrf &mrf,
                             const rsu::core::RowParallelFor &parallel)
    : width_(mrf.width()), height_(mrf.height()),
      num_labels_(mrf.numLabels()),
      padded_labels_(padLabels(mrf.numLabels())),
      codes_(mrf.labelCodes()),
      singleton_(mrf.buildSingletonTable(padded_labels_, parallel)),
      doubleton_(mrf.energyUnit(), mrf.labelCodes()),
      transposed_(mrf.energyUnit(), mrf.labelCodes(),
                  padded_labels_)
{
}

SweepTables::SweepTables(const GridMrf &mrf)
    : SweepTables(mrf, std::make_shared<const SweepTableSet>(mrf))
{
}

SweepTables::SweepTables(const GridMrf &mrf,
                         std::shared_ptr<const SweepTableSet> set)
    : mrf_(&mrf), width_(mrf.width()), height_(mrf.height()),
      num_labels_(mrf.numLabels()), set_(std::move(set)),
      isa_(rsu::core::activeSimdIsa()),
      interior_fn_(detail::interiorSampleFor(isa_))
{
    assert(set_ && set_->width() == width_ &&
           set_->height() == height_ &&
           set_->numLabels() == num_labels_);
    sync();
}

void
SweepTables::sync()
{
    const uint64_t version = mrf_->temperatureVersion();
    if (!exp_.built() || exp_.version() != version)
        exp_.rebuild(mrf_->temperature(), version);
    if (!fixed_exp_.built() || fixed_exp_.version() != version)
        fixed_exp_.rebuild(mrf_->temperature(), version);
}

void
SweepTables::setSimdIsa(rsu::core::SimdIsa isa)
{
    isa_ = isa;
    interior_fn_ = detail::interiorSampleFor(isa);
}

Label
SweepTables::updateInterior(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                            double *weights, SamplerWork &work,
                            int x, int y) const
{
    assert(&mrf == mrf_);
    assert(x > 0 && x < width_ - 1 && y > 0 && y < height_ - 1);

    const int site = y * width_ + x;
    const Label *labels = mrf.labels().data();
    const int n0 = labels[site - width_] & kLabelMask;
    const int n1 = labels[site + width_] & kLabelMask;
    const int n2 = labels[site - 1] & kLabelMask;
    const int n3 = labels[site + 1] & kLabelMask;

    const uint16_t *s = set_->singleton().row(site);
    const double *et = exp_.data();
    const int m = num_labels_;
    for (int i = 0; i < m; ++i) {
        const int32_t *d = set_->doubleton().row(i);
        int e = s[i] + d[n0] + d[n1] + d[n2] + d[n3];
        e = e < kEnergyMax ? e : kEnergyMax;
        weights[i] = et[e];
    }
    // Logical baseline costs: the timing models charge the m
    // conditional-energy computations and m transcendentals this
    // site *represents*, not the loads that realized them.
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = set_->codes()[choice];
    mrf.setLabel(x, y, l);
    return l;
}

Label
SweepTables::updateBorder(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                          double *weights, SamplerWork &work, int x,
                          int y) const
{
    assert(&mrf == mrf_);

    const int site = y * width_ + x;
    const Label *labels = mrf.labels().data();
    int n[4];
    int valid = 0;
    if (y > 0)
        n[valid++] = labels[site - width_] & kLabelMask;
    if (y + 1 < height_)
        n[valid++] = labels[site + width_] & kLabelMask;
    if (x > 0)
        n[valid++] = labels[site - 1] & kLabelMask;
    if (x + 1 < width_)
        n[valid++] = labels[site + 1] & kLabelMask;

    const uint16_t *s = set_->singleton().row(site);
    const double *et = exp_.data();
    const int m = num_labels_;
    for (int i = 0; i < m; ++i) {
        const int32_t *d = set_->doubleton().row(i);
        int e = s[i];
        for (int k = 0; k < valid; ++k)
            e += d[n[k]];
        e = e < kEnergyMax ? e : kEnergyMax;
        weights[i] = et[e];
    }
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = set_->codes()[choice];
    mrf.setLabel(x, y, l);
    return l;
}

Label
SweepTables::updateBorderSimd(GridMrf &mrf,
                              rsu::rng::Xoshiro256 &rng,
                              rsu::rng::BlockRng &block,
                              uint32_t *weights, SamplerWork &work,
                              int x, int y) const
{
    assert(&mrf == mrf_);

    const int site = y * width_ + x;
    const Label *labels = mrf.labels().data();
    Label n[4];
    int valid = 0;
    if (y > 0)
        n[valid++] = labels[site - width_];
    if (y + 1 < height_)
        n[valid++] = labels[site + width_];
    if (x > 0)
        n[valid++] = labels[site - 1];
    if (x + 1 < width_)
        n[valid++] = labels[site + 1];

    // Scalar integer loop over the real candidates: border sites
    // are O(perimeter), and plain fixed-order integer arithmetic is
    // trivially identical across ISAs. Renormalized by the site
    // minimum exactly like the interior kernels (see
    // simd_kernels.h), reusing the weights buffer as energy
    // scratch.
    const uint16_t *s = set_->singleton().row(site);
    const auto &dt = set_->transposedDoubleton();
    const uint32_t *wt = fixed_exp_.data();
    const int m = num_labels_;
    int32_t *energies = reinterpret_cast<int32_t *>(weights);
    int emin = kEnergyMax;
    for (int i = 0; i < m; ++i) {
        int e = s[i];
        for (int k = 0; k < valid; ++k)
            e += dt.row(n[k])[i];
        e = e < kEnergyMax ? e : kEnergyMax;
        energies[i] = e;
        emin = e < emin ? e : emin;
    }
    for (int i = 0; i < m; ++i)
        weights[i] = wt[energies[i] - emin];
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice =
        detail::selectCandidateFixed(block.next(rng), weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = set_->codes()[choice];
    mrf.setLabel(x, y, l);
    return l;
}

} // namespace rsu::mrf
