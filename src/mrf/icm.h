/**
 * @file
 * Iterated Conditional Modes solver.
 *
 * The deterministic comparator (paper section 2.4 discusses why
 * domain scientists often still prefer MCMC): greedily set each site
 * to its conditional-energy argmin until a sweep changes nothing.
 * Fast but gets stuck in local minima — the convergence benchmarks
 * show where Gibbs reaches lower energies.
 */

#ifndef RSU_MRF_ICM_H
#define RSU_MRF_ICM_H

#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"

namespace rsu::mrf {

/** Greedy conditional-mode descent. */
class IcmSolver
{
  public:
    explicit IcmSolver(GridMrf &mrf,
                       Schedule schedule = Schedule::Raster);

    /**
     * One full sweep.
     * @return number of sites whose label changed
     */
    int sweep();

    /**
     * Sweep until a fixed point or @p max_sweeps.
     * @return sweeps executed
     */
    int solve(int max_sweeps = 100);

    const SamplerWork &work() const { return work_; }

  private:
    GridMrf &mrf_;
    Schedule schedule_;
    SamplerWork work_;
};

} // namespace rsu::mrf

#endif // RSU_MRF_ICM_H
