/**
 * @file
 * Candidate-vectorized sampling kernels for the Simd sweep path.
 *
 * An interior-site conditional is, per candidate i,
 *   e_i = singleton[i] + dT[n0][i] + dT[n1][i] + dT[n2][i] + dT[n3][i]
 *   w_i = fixedExp[min(e_i, kEnergyMax) - min_j e_j]
 * over rows of the padded SingletonTable and the
 * TransposedDoubletonTable — contiguous in i, so the candidate
 * dimension vectorizes directly: widening 16->32-bit loads, four
 * int32 adds, one clamp, a running vector min, one gather. The
 * site-minimum subtraction renormalizes per site — exp(x) is only
 * defined up to a factor inside a softmax, and shifting the
 * minimum energy to 0 pins the largest weight at the top of the
 * Q32 table, so quantization error stays ~2^-32 *relative to the
 * site's own scale*. Without it, a site whose best energy is high
 * gets only tiny integer weights and the floor-of-1 entries
 * distort the distribution measurably (the chi-square tests catch
 * exactly this).
 *
 * A kernel *samples*: it computes the weights and immediately
 * draws the candidate from one raw 64-bit variate, so the whole
 * site update stays in registers on the vector ISAs (the AVX2
 * kernel never spills the weights for M <= lane width, and its
 * selection is a branchless 64-bit prefix sum + compare-mask
 * popcount). Kernels exist per ISA (core/simd.h) and MUST be
 * semantically identical to selectCandidateFixed() over the scalar
 * weights: every computation — sums, the associative min, the
 * prefix sums — is exact integer arithmetic, so each ISA draws the
 * same candidate; the Simd path's cross-ISA determinism contract
 * rests on that.
 *
 * All rows must be padded to a multiple of kSimdPadLanes (8)
 * candidates; kernels may read the pad lanes and use @p weights as
 * scratch (contents unspecified after the call). Pad energies are
 * exactly kEnergyMax (saturated singleton + zero doubleton), which
 * never undercuts a real lane's clamped energy, so taking the min
 * across all padded lanes equals the min across real ones; pad
 * weights are masked to zero (vector select) or never scanned
 * (scalar select), so they cannot be drawn.
 *
 * Internal header: only fast_sweep.cpp and the per-ISA translation
 * units (simd_kernels.cpp, simd_kernels_avx2.cpp — the latter built
 * with -mavx2, reached only via runtime dispatch) include it.
 */

#ifndef RSU_MRF_SIMD_KERNELS_H
#define RSU_MRF_SIMD_KERNELS_H

#include <cstdint>

#include "core/simd.h"

namespace rsu::mrf::detail {

/**
 * Sample one interior site: compute the @p padded_m fixed-point
 * candidate weights (site-renormalized — see the file comment) and
 * return the candidate index in [0, m) drawn with the raw 64-bit
 * variate @p draw. @p s is the site's padded singleton row;
 * @p d0..@p d3 are the transposed-doubleton rows of the four
 * neighbour codes; @p w_of_e is the 256-entry FixedExpTable data;
 * @p m is the real candidate count. @p weights is caller-owned
 * scratch of @p padded_m entries (a positive multiple of
 * core::kSimdPadLanes); its contents after the call are
 * unspecified.
 */
using InteriorSampleFn = int (*)(const uint16_t *s,
                                 const int32_t *d0,
                                 const int32_t *d1,
                                 const int32_t *d2,
                                 const int32_t *d3,
                                 const uint32_t *w_of_e,
                                 uint32_t *weights, int padded_m,
                                 int m, uint64_t draw);

int interiorSampleScalar(const uint16_t *s, const int32_t *d0,
                         const int32_t *d1, const int32_t *d2,
                         const int32_t *d3, const uint32_t *w_of_e,
                         uint32_t *weights, int padded_m, int m,
                         uint64_t draw);
int interiorSampleSse2(const uint16_t *s, const int32_t *d0,
                       const int32_t *d1, const int32_t *d2,
                       const int32_t *d3, const uint32_t *w_of_e,
                       uint32_t *weights, int padded_m, int m,
                       uint64_t draw);
int interiorSampleAvx2(const uint16_t *s, const int32_t *d0,
                       const int32_t *d1, const int32_t *d2,
                       const int32_t *d3, const uint32_t *w_of_e,
                       uint32_t *weights, int padded_m, int m,
                       uint64_t draw);

/** The kernel for @p isa (Sse2/Avx2 fall back to scalar on
 * non-x86 builds, where the dispatcher never requests them). */
InteriorSampleFn interiorSampleFor(rsu::core::SimdIsa isa);

/**
 * Draw a candidate index from @p m fixed-point weights with one
 * raw 64-bit variate: scale @p draw to the weight total with a
 * 128-bit multiply (uniform in [0, total)), then scan the prefix
 * sums in candidate order. Pure 64-bit integer arithmetic in a
 * fixed order — identical on every ISA — and total >= m >= 1
 * because FixedExpTable floors weights at 1, so the scan always
 * terminates inside the loop. The reference semantics every
 * vectorized selection must reproduce exactly: the chosen index is
 * the count of prefix sums <= u, which is what the branchless
 * compare-mask implementations compute.
 */
inline int
selectCandidateFixed(uint64_t draw, const uint32_t *weights, int m)
{
    uint64_t total = 0;
    for (int i = 0; i < m; ++i)
        total += weights[i];
    const uint64_t u = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(draw) * total) >> 64);
    uint64_t run = 0;
    for (int i = 0; i < m; ++i) {
        run += weights[i];
        if (u < run)
            return i;
    }
    return m - 1; // unreachable: u < total == final run
}

} // namespace rsu::mrf::detail

#endif // RSU_MRF_SIMD_KERNELS_H
