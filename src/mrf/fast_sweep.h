/**
 * @file
 * Table-driven fast sweep path over a GridMrf.
 *
 * Bundles the three core lookup tables for one model —
 * SingletonTable (per-site candidate energies), DoubletonTable
 * (candidate x neighbour-code distances), ExpTable (exp(-e/T) per
 * 8-bit energy) — and provides the site-update kernels the fast
 * sweep runs on them. The kernels are *bit-identical* to
 * GibbsSampler::updateSiteWith: energies are exact integers, so
 * table lookups reproduce the reference sums exactly, the exp table
 * stores the very doubles std::exp would return, and the discrete
 * draw consumes the RNG identically. Any (seed, schedule, shard
 * count, temperature schedule) therefore produces the same label
 * field on either path — the correctness contract
 * tests/fast_sweep_test.cpp enforces.
 *
 * Two kernels implement the interior/border sweep split
 * (mrf::forEachSiteSplit): updateInterior() assumes all four
 * neighbours exist and runs a branch-free accumulation over the
 * candidates; updateBorder() keeps the validity checks. The split
 * iteration preserves the schedule's visit order, so the split never
 * changes results — only removes branches from the hot loop.
 *
 * Sharing: a SweepTables is immutable during sweeps and may be read
 * by any number of runtime shards concurrently. sync() — which
 * rebuilds the exp table when the model's temperatureVersion() has
 * moved (annealing) — must be called from one thread between
 * sweeps; the sequential and chromatic samplers both do this at
 * sweep start.
 *
 * SamplerWork counters record the *logical* baseline costs (m
 * energy evaluations and m exp calls per site) even though the fast
 * path replaces them with loads: the architecture models cost the
 * paper's straightforward-MCMC baseline, and that workload is
 * unchanged — only our software realization of it got faster.
 */

#ifndef RSU_MRF_FAST_SWEEP_H
#define RSU_MRF_FAST_SWEEP_H

#include <cstdint>
#include <vector>

#include "core/tables.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "rng/xoshiro256.h"

namespace rsu::mrf {

/** Precomputed tables + kernels for one GridMrf's fast sweeps. */
class SweepTables
{
  public:
    /**
     * Build all tables for @p mrf (one full scan of the static
     * singleton model; the model must not change afterwards). Holds
     * a reference to @p mrf for temperature synchronization — the
     * model must outlive the tables.
     */
    explicit SweepTables(const GridMrf &mrf);

    /**
     * Rebuild the exp table if the model's temperature changed
     * since the last sync (keyed to GridMrf::temperatureVersion()).
     * Call from a single thread between sweeps; cheap no-op when
     * the temperature is unchanged.
     */
    void sync();

    /**
     * Resample lattice-interior site (x, y) — all four neighbours
     * must exist. Branch-free candidate loop: five table loads and
     * an add per candidate. Bit-identical to
     * GibbsSampler::updateSiteWith.
     */
    Label updateInterior(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                         double *weights, SamplerWork &work, int x,
                         int y) const;

    /**
     * Resample any site, checking neighbour validity — the border
     * complement of updateInterior (also correct for interior
     * sites, just slower).
     */
    Label updateBorder(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                       double *weights, SamplerWork &work, int x,
                       int y) const;

    /** updateInterior/updateBorder dispatch on the coordinates. */
    Label
    updateSite(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
               double *weights, SamplerWork &work, int x, int y) const
    {
        const bool interior = x > 0 && x < width_ - 1 && y > 0 &&
                              y < height_ - 1;
        return interior
                   ? updateInterior(mrf, rng, weights, work, x, y)
                   : updateBorder(mrf, rng, weights, work, x, y);
    }

    const rsu::core::SingletonTable &
    singletonTable() const
    {
        return singleton_;
    }
    const rsu::core::DoubletonTable &
    doubletonTable() const
    {
        return doubleton_;
    }
    const rsu::core::ExpTable &expTable() const { return exp_; }

  private:
    const GridMrf *mrf_;
    int width_;
    int height_;
    int num_labels_;
    std::vector<Label> codes_; // candidate index -> code
    rsu::core::SingletonTable singleton_;
    rsu::core::DoubletonTable doubleton_;
    rsu::core::ExpTable exp_;
};

} // namespace rsu::mrf

#endif // RSU_MRF_FAST_SWEEP_H
