/**
 * @file
 * Table-driven fast sweep paths over a GridMrf.
 *
 * Two acceleration layers share one set of precomputed tables:
 *
 * - The **Table** path is *bit-identical* to
 *   GibbsSampler::updateSiteWith: energies are exact integers, so
 *   table lookups reproduce the reference sums exactly, the exp
 *   table stores the very doubles std::exp would return, and the
 *   discrete draw consumes the RNG identically. Any (seed,
 *   schedule, shard count, temperature schedule) therefore produces
 *   the same label field on either path — the correctness contract
 *   tests/fast_sweep_test.cpp enforces.
 *
 * - The **Simd** path additionally converts the exp weights to Q32
 *   fixed point (core::FixedExpTable) and vectorizes the candidate
 *   dimension with runtime-dispatched kernels (core/simd.h,
 *   mrf/simd_kernels.h). Because its weight accumulation and
 *   prefix-sum selection are associative integer operations, AVX2,
 *   SSE2, and the scalar fallback produce *identical* label fields
 *   for the same (seed, schedule, shard count) — self-deterministic
 *   across ISAs and runs, but NOT bit-identical to Table (weights
 *   are quantized; correctness is established statistically —
 *   tests/simd_sweep_test.cpp).
 *
 * SweepTableSet is the immutable static part — singleton energies
 * (padded rows), doubleton distances (both orientations), and label
 * codes. It depends only on (model, geometry, energy config,
 * codes), never on temperature, so the runtime's InferenceEngine
 * caches and shares one set across queued jobs on the same model;
 * construction can fan out over a thread pool via
 * core::RowParallelFor. SweepTables binds a shared (or owned) set
 * to one sampling chain, adding the temperature-dependent exp
 * tables and the site-update kernels.
 *
 * Sharing: both classes are immutable during sweeps and may be read
 * by any number of runtime shards concurrently. sync() — which
 * rebuilds the exp tables when the model's temperatureVersion() has
 * moved (annealing) — must be called from one thread between
 * sweeps; the sequential and chromatic samplers both do this at
 * sweep start.
 *
 * SamplerWork counters record the *logical* baseline costs (m
 * energy evaluations and m exp calls per site) even though the fast
 * paths replace them with loads: the architecture models cost the
 * paper's straightforward-MCMC baseline, and that workload is
 * unchanged — only our software realization of it got faster.
 */

#ifndef RSU_MRF_FAST_SWEEP_H
#define RSU_MRF_FAST_SWEEP_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simd.h"
#include "core/tables.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "rng/block.h"
#include "rng/xoshiro256.h"

namespace rsu::mrf {

namespace detail {
using InteriorSampleFn = int (*)(const uint16_t *, const int32_t *,
                                 const int32_t *, const int32_t *,
                                 const int32_t *, const uint32_t *,
                                 uint32_t *, int, int, uint64_t);
} // namespace detail

/**
 * The temperature-independent tables of one model: per-site
 * singleton energies (rows padded to the SIMD lane multiple),
 * doubleton distances in candidate-major (Table kernels) and
 * neighbour-major (Simd kernels) orientation, and the candidate ->
 * code decode. Immutable once built; share one instance across any
 * number of SweepTables / jobs on the same model (the engine's
 * table cache does exactly that).
 */
class SweepTableSet
{
  public:
    /**
     * Build all static tables for @p mrf (one full scan of the
     * static singleton model; the model must not change
     * afterwards). @p parallel optionally fans the per-row
     * singleton fills over worker threads
     * (runtime::parallelRowRunner) — the result is identical to a
     * sequential build.
     */
    explicit SweepTableSet(const GridMrf &mrf,
                           const rsu::core::RowParallelFor &parallel = {});

    int width() const { return width_; }
    int height() const { return height_; }
    int numLabels() const { return num_labels_; }

    /** Candidate row stride (numLabels() padded up to the SIMD
     * lane multiple, core::kSimdPadLanes). */
    int paddedLabels() const { return padded_labels_; }

    const std::vector<Label> &codes() const { return codes_; }
    const rsu::core::SingletonTable &singleton() const
    {
        return singleton_;
    }
    const rsu::core::DoubletonTable &doubleton() const
    {
        return doubleton_;
    }
    const rsu::core::TransposedDoubletonTable &
    transposedDoubleton() const
    {
        return transposed_;
    }

  private:
    int width_;
    int height_;
    int num_labels_;
    int padded_labels_;
    std::vector<Label> codes_; // candidate index -> code
    rsu::core::SingletonTable singleton_;
    rsu::core::DoubletonTable doubleton_;
    rsu::core::TransposedDoubletonTable transposed_;
};

/** Precomputed tables + kernels for one GridMrf's fast sweeps. */
class SweepTables
{
  public:
    /** Build a private SweepTableSet for @p mrf. Holds a reference
     * to @p mrf for temperature synchronization — the model must
     * outlive the tables. */
    explicit SweepTables(const GridMrf &mrf);

    /**
     * Bind an existing (typically cached) static set built for a
     * model identical to @p mrf's. Only the per-chain exp tables
     * are constructed — the expensive singleton scan is skipped.
     */
    SweepTables(const GridMrf &mrf,
                std::shared_ptr<const SweepTableSet> set);

    /**
     * Rebuild the exp tables if the model's temperature changed
     * since the last sync (keyed to GridMrf::temperatureVersion()).
     * Call from a single thread between sweeps; cheap no-op when
     * the temperature is unchanged.
     */
    void sync();

    /**
     * Select the Simd kernels' ISA (defaults to
     * core::activeSimdIsa(), i.e. the widest detected unless
     * RSU_SIMD narrows it). Any choice produces identical labels —
     * tests force Scalar here to prove it. Not thread-safe; call
     * between sweeps.
     */
    void setSimdIsa(rsu::core::SimdIsa isa);
    rsu::core::SimdIsa simdIsa() const { return isa_; }

    /**
     * Resample lattice-interior site (x, y) — all four neighbours
     * must exist. Branch-free candidate loop: five table loads and
     * an add per candidate. Bit-identical to
     * GibbsSampler::updateSiteWith.
     */
    Label updateInterior(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                         double *weights, SamplerWork &work, int x,
                         int y) const;

    /**
     * Resample any site, checking neighbour validity — the border
     * complement of updateInterior (also correct for interior
     * sites, just slower).
     */
    Label updateBorder(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                       double *weights, SamplerWork &work, int x,
                       int y) const;

    /** updateInterior/updateBorder dispatch on the coordinates. */
    Label
    updateSite(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
               double *weights, SamplerWork &work, int x, int y) const
    {
        const bool interior = x > 0 && x < width_ - 1 && y > 0 &&
                              y < height_ - 1;
        return interior
                   ? updateInterior(mrf, rng, weights, work, x, y)
                   : updateBorder(mrf, rng, weights, work, x, y);
    }

    /**
     * Simd-path interior update: the dispatched vector kernel
     * computes paddedLabels() fixed-point weights 8 candidates at a
     * time and draws the label from one buffered 64-bit variate via
     * integer prefix sums, in one fused call (AVX2 keeps the whole
     * update in registers for M <= 8). @p weights is caller-owned
     * scratch with at least paddedLabels() entries; @p block
     * buffers @p rng's raw stream. Identical results on every ISA.
     *
     * Defined inline: the per-site cost of this path is a handful
     * of table loads around one kernel call, so the sweep loops
     * must be able to hoist the table pointers out of their
     * per-row iteration — through an out-of-line call the loads
     * re-execute every site and dominate the profile (~3x on the
     * benchmark lattices).
     */
    Label
    updateInteriorSimd(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                       rsu::rng::BlockRng &block, uint32_t *weights,
                       SamplerWork &work, int x, int y) const
    {
        const int site = y * width_ + x;
        const Label *labels = mrf.labels().data();
        const auto &dt = set_->transposedDoubleton();
        const int m = num_labels_;
        // The singleton rows are the one stream large lattices pull
        // from memory (the doubleton rows and exp table stay
        // cached). For wide candidate rows — the generic kernel,
        // where each row spans multiple cache lines — fetch 8
        // checkerboard iterations ahead to keep the row loads off
        // the kernel's critical path; the register-resident M <= 16
        // kernels pack several sites per line and the extra
        // prefetch traffic only costs them.
        if (set_->paddedLabels() > 16 &&
            site + 16 < width_ * height_) {
            const uint16_t *ahead = set_->singleton().row(site + 16);
            __builtin_prefetch(ahead);
            __builtin_prefetch(ahead + 32);
        }
        const int choice = interior_fn_(
            set_->singleton().row(site), dt.row(labels[site - width_]),
            dt.row(labels[site + width_]), dt.row(labels[site - 1]),
            dt.row(labels[site + 1]), fixed_exp_.data(), weights,
            set_->paddedLabels(), m, block.next(rng));
        work.energy_evals += m;
        work.exp_calls += m;
        ++work.random_draws;
        ++work.site_updates;

        const Label l = set_->codes()[choice];
        mrf.setLabel(x, y, l);
        return l;
    }

    /** Simd-path border update (scalar integer arithmetic — the
     * same fixed-point draw, with neighbour validity checks). */
    Label updateBorderSimd(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                           rsu::rng::BlockRng &block,
                           uint32_t *weights, SamplerWork &work,
                           int x, int y) const;

    /** updateInteriorSimd/updateBorderSimd dispatch on the
     * coordinates. */
    Label
    updateSiteSimd(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                   rsu::rng::BlockRng &block, uint32_t *weights,
                   SamplerWork &work, int x, int y) const
    {
        const bool interior = x > 0 && x < width_ - 1 && y > 0 &&
                              y < height_ - 1;
        return interior ? updateInteriorSimd(mrf, rng, block,
                                             weights, work, x, y)
                        : updateBorderSimd(mrf, rng, block, weights,
                                           work, x, y);
    }

    int paddedLabels() const { return set_->paddedLabels(); }
    const SweepTableSet &set() const { return *set_; }
    std::shared_ptr<const SweepTableSet> sharedSet() const
    {
        return set_;
    }

    const rsu::core::SingletonTable &
    singletonTable() const
    {
        return set_->singleton();
    }
    const rsu::core::DoubletonTable &
    doubletonTable() const
    {
        return set_->doubleton();
    }
    const rsu::core::ExpTable &expTable() const { return exp_; }
    const rsu::core::FixedExpTable &
    fixedExpTable() const
    {
        return fixed_exp_;
    }

  private:
    const GridMrf *mrf_;
    int width_;
    int height_;
    int num_labels_;
    std::shared_ptr<const SweepTableSet> set_;
    rsu::core::ExpTable exp_;            // Table path weights
    rsu::core::FixedExpTable fixed_exp_; // Simd path weights
    rsu::core::SimdIsa isa_;
    detail::InteriorSampleFn interior_fn_;
};

} // namespace rsu::mrf

#endif // RSU_MRF_FAST_SWEEP_H
