/**
 * @file
 * Marginal-MAP estimation over MCMC samples.
 *
 * The applications' end goal (paper section 1): run the chain, then
 * report each site's most frequent label across the retained samples
 * — "identifying the mode of the generated samples". The estimator
 * is sampler-agnostic: it drives any callable that performs one MCMC
 * iteration, accumulates per-site label histograms after burn-in,
 * and records the energy trajectory for convergence studies.
 */

#ifndef RSU_MRF_ESTIMATOR_H
#define RSU_MRF_ESTIMATOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mrf/grid_mrf.h"

namespace rsu::mrf {

/** MCMC run driver and mode estimator. */
class MarginalMapEstimator
{
  public:
    /**
     * @param mrf the model whose state the sweeps mutate
     * @param burn_in iterations discarded before accumulation
     */
    explicit MarginalMapEstimator(GridMrf &mrf, int burn_in = 0);

    /**
     * Run @p iterations of @p sweep (burn-in included), recording
     * the total energy after every iteration and the per-site label
     * histogram after burn-in.
     */
    void run(int iterations, const std::function<void()> &sweep);

    /** Per-site modal labels across the retained samples. */
    std::vector<Label> estimate() const;

    /** Empirical marginal of site (x, y) from the retained samples. */
    std::vector<double> empiricalMarginal(int x, int y) const;

    /** Total energy after each iteration (length = iterations run). */
    const std::vector<int64_t> &energyTrajectory() const
    {
        return energy_;
    }

    /** Samples retained (iterations run minus burn-in). */
    int retained() const { return retained_; }

  private:
    GridMrf &mrf_;
    int burn_in_;
    int retained_ = 0;
    std::vector<std::vector<uint32_t>> histogram_; // [site][label]
    std::vector<int64_t> energy_;
};

} // namespace rsu::mrf

#endif // RSU_MRF_ESTIMATOR_H
