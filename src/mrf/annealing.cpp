#include "mrf/annealing.h"

#include <cmath>
#include <stdexcept>

namespace rsu::mrf {

std::vector<double>
AnnealingSchedule::temperatures() const
{
    // Non-finite parameters defeat the ordering checks below (every
    // comparison against NaN is false) and an infinite start never
    // cools below stop, so the stage loop would spin forever; reject
    // them before any range test.
    if (!std::isfinite(start_temperature) ||
        !std::isfinite(stop_temperature) ||
        !std::isfinite(cooling_factor))
        throw std::invalid_argument("AnnealingSchedule: "
                                    "temperatures and cooling "
                                    "factor must be finite");
    if (start_temperature <= 0.0 ||
        stop_temperature <= 0.0 ||
        start_temperature < stop_temperature)
        throw std::invalid_argument("AnnealingSchedule: need "
                                    "start >= stop > 0");
    if (cooling_factor <= 0.0 || cooling_factor >= 1.0)
        throw std::invalid_argument("AnnealingSchedule: cooling "
                                    "factor must be in (0, 1)");
    if (sweeps_per_stage < 1)
        throw std::invalid_argument("AnnealingSchedule: need "
                                    "sweeps per stage");
    std::vector<double> stages;
    for (double t = start_temperature; t >= stop_temperature;
         t *= cooling_factor) {
        stages.push_back(t);
    }
    if (stages.empty() || stages.back() > stop_temperature)
        stages.push_back(stop_temperature);
    return stages;
}

int64_t
anneal(GridMrf &mrf, const AnnealingSchedule &schedule,
       const std::function<void(double)> &set_temperature,
       const std::function<void()> &sweep)
{
    int64_t best_energy = mrf.totalEnergy();
    std::vector<Label> best_labels = mrf.labels();

    for (const double t : schedule.temperatures()) {
        set_temperature(t);
        for (int s = 0; s < schedule.sweeps_per_stage; ++s) {
            sweep();
            const int64_t e = mrf.totalEnergy();
            if (e < best_energy) {
                best_energy = e;
                best_labels = mrf.labels();
            }
        }
    }
    mrf.setLabels(best_labels);
    return best_energy;
}

} // namespace rsu::mrf
