#include "mrf/grid_mrf.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rsu::mrf {

GridMrf::GridMrf(const MrfConfig &config,
                 const SingletonModel &singleton)
    : config_(config), singleton_(singleton),
      energy_unit_(config.energy)
{
    if (config_.width < 1 || config_.height < 1)
        throw std::invalid_argument("GridMrf: empty lattice");
    if (config_.num_labels < 1 ||
        config_.num_labels > rsu::core::kMaxLabels) {
        throw std::invalid_argument("GridMrf: label count out of "
                                    "range");
    }
    if (config_.temperature <= 0.0)
        throw std::invalid_argument("GridMrf: temperature must be "
                                    "positive");

    if (config_.label_codes.empty()) {
        codes_.resize(config_.num_labels);
        for (int i = 0; i < config_.num_labels; ++i)
            codes_[i] = static_cast<Label>(i);
    } else {
        if (static_cast<int>(config_.label_codes.size()) !=
            config_.num_labels)
            throw std::invalid_argument("GridMrf: label_codes size "
                                        "must equal num_labels");
        codes_ = config_.label_codes;
    }
    code_to_index_.assign(rsu::core::kMaxLabels, -1);
    for (int i = 0; i < config_.num_labels; ++i) {
        const Label c = codes_[i] & rsu::core::kLabelMask;
        if (code_to_index_[c] != -1)
            throw std::invalid_argument("GridMrf: duplicate label "
                                        "code");
        code_to_index_[c] = i;
    }

    labels_.assign(static_cast<size_t>(size()), codes_[0]);
}

void
GridMrf::fillLabels(Label l)
{
    for (auto &lab : labels_)
        lab = l;
}

void
GridMrf::randomizeLabels(rsu::rng::Xoshiro256 &rng)
{
    for (auto &lab : labels_)
        lab = codes_[rng.below(config_.num_labels)];
}

void
GridMrf::setTemperature(double t)
{
    if (t <= 0.0)
        throw std::invalid_argument("GridMrf: temperature must be "
                                    "positive");
    config_.temperature = t;
    ++temperature_version_;
}

rsu::core::SingletonTable
GridMrf::buildSingletonTable() const
{
    return buildSingletonTable(0, {});
}

rsu::core::SingletonTable
GridMrf::buildSingletonTable(
    int padded_labels, const rsu::core::RowParallelFor &parallel) const
{
    return rsu::core::SingletonTable(
        width(), height(), numLabels(), padded_labels,
        [this](int x, int y, int i) {
            return energy_unit_.singleton(
                singleton_.data1(x, y),
                singleton_.data2(x, y, codes_[i]));
        },
        parallel);
}

rsu::core::Data2Table
GridMrf::buildData2Table() const
{
    return rsu::core::Data2Table(
        width(), height(), numLabels(), [this](int x, int y, int i) {
            return singleton_.data2(x, y, codes_[i]);
        });
}

void
GridMrf::initializeMaximumLikelihood()
{
    initializeMaximumLikelihood(buildSingletonTable());
}

void
GridMrf::initializeMaximumLikelihood(
    const rsu::core::SingletonTable &table)
{
    if (table.width() != width() || table.height() != height() ||
        table.numLabels() != numLabels())
        throw std::invalid_argument("GridMrf: singleton table shape "
                                    "mismatch");
    for (int site = 0; site < size(); ++site)
        labels_[site] = codes_[table.argminRow(site)];
}

void
GridMrf::setLabels(const std::vector<Label> &labels)
{
    if (labels.size() != labels_.size())
        throw std::invalid_argument("GridMrf: label grid size "
                                    "mismatch");
    labels_ = labels;
}

EnergyInputs
GridMrf::inputsAt(int x, int y) const
{
    assert(x >= 0 && x < width() && y >= 0 && y < height());
    EnergyInputs in;
    // Neighbour order: N, S, W, E.
    const int nx[4] = {x, x, x - 1, x + 1};
    const int ny[4] = {y - 1, y + 1, y, y};
    for (int i = 0; i < 4; ++i) {
        const bool ok = nx[i] >= 0 && nx[i] < width() && ny[i] >= 0 &&
                        ny[i] < height();
        in.neighbor_valid[i] = ok;
        in.neighbors[i] = ok ? label(nx[i], ny[i]) : 0;
    }
    in.data1 = singleton_.data1(x, y);
    in.data2 = 0;
    return in;
}

EnergyInputs
GridMrf::referencedInputsAt(int x, int y) const
{
    EnergyInputs in = inputsAt(x, y);
    in.energy_offset = conditionalEnergy(x, y, label(x, y));
    return in;
}

void
GridMrf::data2At(int x, int y, uint8_t *out) const
{
    for (int i = 0; i < numLabels(); ++i)
        out[i] = singleton_.data2(x, y, codes_[i]);
}

Energy
GridMrf::conditionalEnergy(int x, int y, Label l) const
{
    EnergyInputs in = inputsAt(x, y);
    in.data2 = singleton_.data2(x, y, l);
    return energy_unit_.evaluate(l, in);
}

std::vector<double>
GridMrf::conditionalDistribution(int x, int y) const
{
    const int m = numLabels();
    std::vector<double> probs(m);
    double total = 0.0;
    for (int i = 0; i < m; ++i) {
        const Energy e = conditionalEnergy(x, y, codes_[i]);
        probs[i] = std::exp(-static_cast<double>(e) /
                            config_.temperature);
        total += probs[i];
    }
    for (double &p : probs)
        p /= total;
    return probs;
}

int64_t
GridMrf::totalEnergy() const
{
    int64_t total = 0;
    for (int y = 0; y < height(); ++y) {
        for (int x = 0; x < width(); ++x) {
            const Label l = label(x, y);
            total += energy_unit_.singleton(
                singleton_.data1(x, y), singleton_.data2(x, y, l));
            if (x + 1 < width())
                total += energy_unit_.doubleton(l, label(x + 1, y));
            if (y + 1 < height())
                total += energy_unit_.doubleton(l, label(x, y + 1));
        }
    }
    return total;
}

} // namespace rsu::mrf
