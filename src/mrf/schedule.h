/**
 * @file
 * Sweep schedules for MCMC updates on the lattice.
 *
 * A first-order MRF's conditional-independence structure lets all
 * same-colour sites of a checkerboard partition update concurrently
 * (paper section 4.2, Figure 4) — the parallelism both the augmented
 * GPU and the discrete accelerator exploit. The software samplers
 * share these visit-order generators so every implementation sweeps
 * sites identically.
 */

#ifndef RSU_MRF_SCHEDULE_H
#define RSU_MRF_SCHEDULE_H

namespace rsu::mrf {

/** Site visit orders. */
enum class Schedule {
    Raster,       //!< row-major, sequential semantics
    Checkerboard, //!< all even-parity sites, then all odd-parity
};

/**
 * Invoke @p fn(x, y) for every site of rows [y0, y1) whose
 * checkerboard colour (x + y) mod 2 equals @p parity, in row-major
 * order. This is the shard primitive of the chromatic runtime: the
 * whole-lattice checkerboard sweep is the y0 = 0, y1 = height case,
 * and a row-band shard is any sub-range — both iterate sites in the
 * exact same per-row order, so shard boundaries never change which
 * sites a colour phase visits or in what order within a row.
 */
template <typename Fn>
void
forEachSiteInRows(int width, int y0, int y1, int parity, Fn &&fn)
{
    for (int y = y0; y < y1; ++y)
        for (int x = (parity ^ y) & 1; x < width; x += 2)
            fn(x, y);
}

/**
 * Invoke @p fn(x, y) for every site of a width x height lattice in
 * the given schedule's order.
 */
template <typename Fn>
void
forEachSite(int width, int height, Schedule schedule, Fn &&fn)
{
    if (schedule == Schedule::Raster) {
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                fn(x, y);
        return;
    }
    for (int parity = 0; parity < 2; ++parity)
        forEachSiteInRows(width, 0, height, parity, fn);
}

} // namespace rsu::mrf

#endif // RSU_MRF_SCHEDULE_H
