/**
 * @file
 * Sweep schedules for MCMC updates on the lattice.
 *
 * A first-order MRF's conditional-independence structure lets all
 * same-colour sites of a checkerboard partition update concurrently
 * (paper section 4.2, Figure 4) — the parallelism both the augmented
 * GPU and the discrete accelerator exploit. The software samplers
 * share these visit-order generators so every implementation sweeps
 * sites identically.
 */

#ifndef RSU_MRF_SCHEDULE_H
#define RSU_MRF_SCHEDULE_H

namespace rsu::mrf {

/** Site visit orders. */
enum class Schedule {
    Raster,       //!< row-major, sequential semantics
    Checkerboard, //!< all even-parity sites, then all odd-parity
};

/**
 * Invoke @p fn(x, y) for every site of rows [y0, y1) whose
 * checkerboard colour (x + y) mod 2 equals @p parity, in row-major
 * order. This is the shard primitive of the chromatic runtime: the
 * whole-lattice checkerboard sweep is the y0 = 0, y1 = height case,
 * and a row-band shard is any sub-range — both iterate sites in the
 * exact same per-row order, so shard boundaries never change which
 * sites a colour phase visits or in what order within a row.
 */
template <typename Fn>
void
forEachSiteInRows(int width, int y0, int y1, int parity, Fn &&fn)
{
    for (int y = y0; y < y1; ++y)
        for (int x = (parity ^ y) & 1; x < width; x += 2)
            fn(x, y);
}

/**
 * Invoke @p fn(x, y) for every site of a width x height lattice in
 * the given schedule's order.
 */
template <typename Fn>
void
forEachSite(int width, int height, Schedule schedule, Fn &&fn)
{
    if (schedule == Schedule::Raster) {
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                fn(x, y);
        return;
    }
    for (int parity = 0; parity < 2; ++parity)
        forEachSiteInRows(width, 0, height, parity, fn);
}

/**
 * forEachSiteInRows() with the visit split into lattice-interior and
 * lattice-border sites: @p interior(x, y) is invoked for sites whose
 * four neighbours all exist (x in [1, width-2], y in [1, height-2]),
 * @p border(x, y) for the rest. The visit order is *identical* to
 * forEachSiteInRows — the split changes which callable runs, never
 * the sequence — so a sampler that consumes entropy per site stays
 * bit-identical to an unsplit sweep. This is what lets the
 * table-driven fast path run a branch-free four-neighbour
 * accumulation over the interior while border sites keep the
 * validity checks. Classification is by *lattice* coordinates: a
 * row-band shard's first and last rows are interior when they are
 * interior rows of the lattice.
 */
template <typename FnInterior, typename FnBorder>
void
forEachSiteInRowsSplit(int width, int height, int y0, int y1,
                       int parity, FnInterior &&interior,
                       FnBorder &&border)
{
    for (int y = y0; y < y1; ++y) {
        int x = (parity ^ y) & 1;
        if (y == 0 || y == height - 1) {
            for (; x < width; x += 2)
                border(x, y);
            continue;
        }
        if (x == 0) {
            border(0, y);
            x = 2;
        }
        for (; x < width - 1; x += 2)
            interior(x, y);
        if (x == width - 1)
            border(x, y);
    }
}

/**
 * Raster-order interior/border split over rows [y0, y1); same
 * order-preservation contract as forEachSiteInRowsSplit.
 */
template <typename FnInterior, typename FnBorder>
void
forEachSiteRasterRowsSplit(int width, int height, int y0, int y1,
                           FnInterior &&interior, FnBorder &&border)
{
    for (int y = y0; y < y1; ++y) {
        if (y == 0 || y == height - 1) {
            for (int x = 0; x < width; ++x)
                border(x, y);
            continue;
        }
        border(0, y);
        for (int x = 1; x < width - 1; ++x)
            interior(x, y);
        if (width > 1)
            border(width - 1, y);
    }
}

/**
 * forEachSite() with the interior/border split, preserving the
 * schedule's exact visit order.
 */
template <typename FnInterior, typename FnBorder>
void
forEachSiteSplit(int width, int height, Schedule schedule,
                 FnInterior &&interior, FnBorder &&border)
{
    if (schedule == Schedule::Raster) {
        forEachSiteRasterRowsSplit(width, height, 0, height,
                                   interior, border);
        return;
    }
    for (int parity = 0; parity < 2; ++parity)
        forEachSiteInRowsSplit(width, height, 0, height, parity,
                               interior, border);
}

} // namespace rsu::mrf

#endif // RSU_MRF_SCHEDULE_H
