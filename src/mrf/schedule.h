/**
 * @file
 * Sweep schedules for MCMC updates on the lattice.
 *
 * A first-order MRF's conditional-independence structure lets all
 * same-colour sites of a checkerboard partition update concurrently
 * (paper section 4.2, Figure 4) — the parallelism both the augmented
 * GPU and the discrete accelerator exploit. The software samplers
 * share these visit-order generators so every implementation sweeps
 * sites identically.
 */

#ifndef RSU_MRF_SCHEDULE_H
#define RSU_MRF_SCHEDULE_H

namespace rsu::mrf {

/** Site visit orders. */
enum class Schedule {
    Raster,       //!< row-major, sequential semantics
    Checkerboard, //!< all even-parity sites, then all odd-parity
};

/**
 * Invoke @p fn(x, y) for every site of a width x height lattice in
 * the given schedule's order.
 */
template <typename Fn>
void
forEachSite(int width, int height, Schedule schedule, Fn &&fn)
{
    if (schedule == Schedule::Raster) {
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                fn(x, y);
        return;
    }
    for (int parity = 0; parity < 2; ++parity)
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                if (((x + y) & 1) == parity)
                    fn(x, y);
}

} // namespace rsu::mrf

#endif // RSU_MRF_SCHEDULE_H
