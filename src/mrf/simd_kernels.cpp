#include "mrf/simd_kernels.h"

#include "core/types.h"

#if defined(__x86_64__) || defined(__i386__)
#define RSU_SIMD_X86 1
#include <emmintrin.h>
#endif

namespace rsu::mrf::detail {

using rsu::core::kEnergyMax;

namespace {

/**
 * Fill @p weights[0, padded_m) with the site-renormalized
 * fixed-point weights — the scalar reference computation shared by
 * the scalar and SSE2 sample kernels (SSE2 vectorizes only the
 * energy accumulation; its selection stays scalar).
 */
void
weightsScalar(const uint16_t *s, const int32_t *d0,
              const int32_t *d1, const int32_t *d2,
              const int32_t *d3, const uint32_t *w_of_e,
              uint32_t *weights, int padded_m)
{
    // Pass 1: clamped energies (into the weights buffer as int32
    // scratch) and their minimum. Pads clamp to exactly kEnergyMax,
    // so min over all padded lanes == min over the real ones.
    int32_t *e = reinterpret_cast<int32_t *>(weights);
    int emin = kEnergyMax;
    for (int i = 0; i < padded_m; ++i) {
        int v = s[i] + d0[i] + d1[i] + d2[i] + d3[i];
        v = v < kEnergyMax ? v : kEnergyMax;
        e[i] = v;
        emin = v < emin ? v : emin;
    }
    // Pass 2: site-renormalized lookups (e - emin stays in
    // [0, kEnergyMax], so indexing is always in-bounds).
    for (int i = 0; i < padded_m; ++i)
        weights[i] = w_of_e[e[i] - emin];
}

} // namespace

int
interiorSampleScalar(const uint16_t *s, const int32_t *d0,
                     const int32_t *d1, const int32_t *d2,
                     const int32_t *d3, const uint32_t *w_of_e,
                     uint32_t *weights, int padded_m, int m,
                     uint64_t draw)
{
    weightsScalar(s, d0, d1, d2, d3, w_of_e, weights, padded_m);
    return selectCandidateFixed(draw, weights, m);
}

#ifdef RSU_SIMD_X86

int
interiorSampleSse2(const uint16_t *s, const int32_t *d0,
                   const int32_t *d1, const int32_t *d2,
                   const int32_t *d3, const uint32_t *w_of_e,
                   uint32_t *weights, int padded_m, int m,
                   uint64_t draw)
{
    const __m128i clamp = _mm_set1_epi32(kEnergyMax);
    const __m128i zero = _mm_setzero_si128();
    int32_t *e = reinterpret_cast<int32_t *>(weights);
    // Pass 1: 4-wide clamped energies into the scratch, with a
    // running 4-lane minimum.
    __m128i mn = clamp;
    for (int i = 0; i < padded_m; i += 4) {
        // 4 x uint16 singleton entries widened to int32 lanes.
        __m128i sv = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(s + i));
        __m128i ev = _mm_unpacklo_epi16(sv, zero);
        ev = _mm_add_epi32(
            ev, _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(d0 + i)));
        ev = _mm_add_epi32(
            ev, _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(d1 + i)));
        ev = _mm_add_epi32(
            ev, _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(d2 + i)));
        ev = _mm_add_epi32(
            ev, _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(d3 + i)));
        // min(e, 255) without SSE4.1 pminsd: blend through the
        // compare mask (energies are non-negative).
        __m128i gt = _mm_cmpgt_epi32(ev, clamp);
        ev = _mm_or_si128(_mm_andnot_si128(gt, ev),
                          _mm_and_si128(gt, clamp));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(e + i), ev);
        gt = _mm_cmpgt_epi32(mn, ev);
        mn = _mm_or_si128(_mm_andnot_si128(gt, mn),
                          _mm_and_si128(gt, ev));
    }
    alignas(16) int32_t mv[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(mv), mn);
    int emin = mv[0];
    emin = mv[1] < emin ? mv[1] : emin;
    emin = mv[2] < emin ? mv[2] : emin;
    emin = mv[3] < emin ? mv[3] : emin;
    // Pass 2: site-renormalized lookups — scalar, no gather before
    // AVX2 (the adds/clamp/min above are still 4-wide).
    for (int i = 0; i < padded_m; ++i)
        weights[i] = w_of_e[e[i] - emin];
    return selectCandidateFixed(draw, weights, m);
}

#else // !RSU_SIMD_X86

int
interiorSampleSse2(const uint16_t *s, const int32_t *d0,
                   const int32_t *d1, const int32_t *d2,
                   const int32_t *d3, const uint32_t *w_of_e,
                   uint32_t *weights, int padded_m, int m,
                   uint64_t draw)
{
    return interiorSampleScalar(s, d0, d1, d2, d3, w_of_e, weights,
                                padded_m, m, draw);
}

int
interiorSampleAvx2(const uint16_t *s, const int32_t *d0,
                   const int32_t *d1, const int32_t *d2,
                   const int32_t *d3, const uint32_t *w_of_e,
                   uint32_t *weights, int padded_m, int m,
                   uint64_t draw)
{
    return interiorSampleScalar(s, d0, d1, d2, d3, w_of_e, weights,
                                padded_m, m, draw);
}

#endif // RSU_SIMD_X86

InteriorSampleFn
interiorSampleFor(rsu::core::SimdIsa isa)
{
    switch (isa) {
    case rsu::core::SimdIsa::Avx2:
        return &interiorSampleAvx2;
    case rsu::core::SimdIsa::Sse2:
        return &interiorSampleSse2;
    default:
        return &interiorSampleScalar;
    }
}

} // namespace rsu::mrf::detail
