/**
 * @file
 * Simulated annealing on top of the Gibbs samplers.
 *
 * Geman & Geman's original MRF restoration (paper reference [11])
 * anneals the temperature toward zero so the chain settles into the
 * MAP configuration. The schedule driver works with either sampler:
 * the software Gibbs reads the model temperature dynamically, and
 * the RSU path re-initializes the unit's intensity map at each
 * stage — a per-application initialization the architecture already
 * supports (section 6.1), costing a handful of cycles per stage.
 */

#ifndef RSU_MRF_ANNEALING_H
#define RSU_MRF_ANNEALING_H

#include <functional>
#include <vector>

#include "mrf/grid_mrf.h"

namespace rsu::mrf {

/** Geometric cooling schedule. */
struct AnnealingSchedule
{
    double start_temperature = 16.0;
    double stop_temperature = 1.0;
    double cooling_factor = 0.8;  //!< T *= factor per stage
    int sweeps_per_stage = 5;

    /** Stage temperatures, highest first. */
    std::vector<double> temperatures() const;
};

/**
 * Anneal @p mrf under @p schedule.
 *
 * @param mrf the model (labels mutated in place; its configured
 *        temperature is updated stage by stage)
 * @param set_temperature callback installing a stage temperature
 *        into the sampling machinery (e.g. rebuilding the RSU LUT)
 * @param sweep one MCMC iteration at the current temperature
 * @return the best (lowest) total energy seen and the labelling
 *         that achieved it, which is restored into the model
 */
int64_t anneal(GridMrf &mrf, const AnnealingSchedule &schedule,
               const std::function<void(double)> &set_temperature,
               const std::function<void()> &sweep);

} // namespace rsu::mrf

#endif // RSU_MRF_ANNEALING_H
