#include "mrf/exact.h"

#include <cmath>
#include <stdexcept>

namespace rsu::mrf {

ExactInference::ExactInference(const GridMrf &mrf, uint64_t max_states)
    : width_(mrf.width()), num_labels_(mrf.numLabels())
{
    const int n = mrf.size();
    const int m = num_labels_;

    // Guard the exponential enumeration.
    double states = 1.0;
    for (int i = 0; i < n; ++i) {
        states *= m;
        if (states > static_cast<double>(max_states))
            throw std::invalid_argument("ExactInference: state space "
                                        "exceeds budget");
    }

    // Work on a scratch copy so the caller's labelling survives.
    GridMrf scratch(mrf.config(), mrf.singleton());

    marginals_.assign(n, std::vector<double>(m, 0.0));
    map_.assign(n, 0);

    std::vector<uint8_t> current(n, 0); // candidate indices
    std::vector<Label> codes(n);
    double best_weight = -1.0;
    double energy_acc = 0.0;

    for (;;) {
        for (int i = 0; i < n; ++i)
            codes[i] = mrf.codeOf(current[i]);
        scratch.setLabels(codes);
        const int64_t e = scratch.totalEnergy();
        const double w = std::exp(-static_cast<double>(e) /
                                  mrf.temperature());
        partition_ += w;
        energy_acc += w * static_cast<double>(e);
        for (int i = 0; i < n; ++i)
            marginals_[i][current[i]] += w;
        if (w > best_weight) {
            best_weight = w;
            map_ = codes;
        }

        // Odometer increment over the joint state space.
        int pos = 0;
        while (pos < n) {
            if (++current[pos] < m)
                break;
            current[pos] = 0;
            ++pos;
        }
        if (pos == n)
            break;
    }

    for (auto &row : marginals_)
        for (double &p : row)
            p /= partition_;
    mean_energy_ = energy_acc / partition_;
}

const std::vector<double> &
ExactInference::marginal(int x, int y) const
{
    return marginals_[y * width_ + x];
}

} // namespace rsu::mrf
