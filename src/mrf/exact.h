/**
 * @file
 * Brute-force inference oracle for tiny MRFs.
 *
 * Enumerates every joint labelling of a small lattice and computes
 * the exact Boltzmann distribution p(x) proportional to
 * exp(-E(x)/T) under the hardware energy functions. Provides exact
 * per-site marginals, the joint MAP, and the partition function —
 * the ground truth the MCMC property tests converge against.
 *
 * Complexity is num_labels^size; callers must keep lattices tiny
 * (the constructor enforces a state-count budget).
 */

#ifndef RSU_MRF_EXACT_H
#define RSU_MRF_EXACT_H

#include <cstdint>
#include <vector>

#include "mrf/grid_mrf.h"

namespace rsu::mrf {

/** Exhaustive-enumeration inference results. */
class ExactInference
{
  public:
    /**
     * Enumerate @p mrf's joint distribution.
     * @param mrf model (its current labelling is left untouched)
     * @param max_states enumeration budget guard
     */
    explicit ExactInference(const GridMrf &mrf,
                            uint64_t max_states = 1ULL << 24);

    /** Exact marginal distribution of site (x, y). */
    const std::vector<double> &marginal(int x, int y) const;

    /** Exact joint-MAP labelling. */
    const std::vector<Label> &mapLabels() const { return map_; }

    /** Partition function (sum of unnormalized weights). */
    double partition() const { return partition_; }

    /** Exact mean total energy under the Boltzmann distribution. */
    double meanEnergy() const { return mean_energy_; }

  private:
    int width_;
    int num_labels_;
    std::vector<std::vector<double>> marginals_; // [site][label]
    std::vector<Label> map_;
    double partition_ = 0.0;
    double mean_energy_ = 0.0;
};

} // namespace rsu::mrf

#endif // RSU_MRF_EXACT_H
