#include "mrf/belief_propagation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsu::mrf {

namespace {

/** Opposite lattice direction (N<->S, W<->E). */
inline int
opposite(int dir)
{
    return dir ^ 1;
}

} // namespace

BeliefPropagation::BeliefPropagation(const GridMrf &mrf,
                                     BpConfig config)
    : mrf_(mrf), config_(config), m_(mrf.numLabels())
{
    if (config_.max_iterations < 1)
        throw std::invalid_argument("BeliefPropagation: need "
                                    "iterations");
    if (config_.damping < 0.0 || config_.damping >= 1.0)
        throw std::invalid_argument("BeliefPropagation: damping "
                                    "must be in [0, 1)");
    initPotentials();
    messages_.assign(static_cast<size_t>(mrf_.size()) * 4 * m_,
                     1.0 / m_);
    scratch_.resize(m_);
}

int
BeliefPropagation::edgeIndex(int x, int y, int dir) const
{
    return (mrf_.index(x, y) * 4 + dir) * m_;
}

void
BeliefPropagation::initPotentials()
{
    const double t = mrf_.temperature();
    const auto &unit = mrf_.energyUnit();

    // Per-site singleton factors psi(x) = exp(-E_single / T),
    // using the hardware's exact integer singleton energies. (BP
    // factorizes per clique, so the datapath's joint 8-bit
    // saturation — a whole-sum effect — is not representable; see
    // header.)
    singleton_.resize(static_cast<size_t>(mrf_.size()) * m_);
    for (int y = 0; y < mrf_.height(); ++y) {
        for (int x = 0; x < mrf_.width(); ++x) {
            const uint8_t d1 = mrf_.singleton().data1(x, y);
            for (int i = 0; i < m_; ++i) {
                const int e = unit.singleton(
                    d1,
                    mrf_.singleton().data2(x, y, mrf_.codeOf(i)));
                singleton_[mrf_.index(x, y) * m_ + i] =
                    std::exp(-static_cast<double>(e) / t);
            }
        }
    }

    // Homogeneous pairwise factor (depends only on label codes).
    pairwise_.resize(static_cast<size_t>(m_) * m_);
    for (int i = 0; i < m_; ++i) {
        for (int j = 0; j < m_; ++j) {
            const int e =
                unit.doubleton(mrf_.codeOf(i), mrf_.codeOf(j));
            pairwise_[i * m_ + j] =
                std::exp(-static_cast<double>(e) / t);
        }
    }
}

int
BeliefPropagation::run()
{
    const int w = mrf_.width(), h = mrf_.height();
    // Neighbour offsets in the N/S/W/E order of EnergyInputs.
    const int dx[4] = {0, 0, -1, 1};
    const int dy[4] = {-1, 1, 0, 0};

    for (int iter = 1; iter <= config_.max_iterations; ++iter) {
        double max_delta = 0.0;
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                // Pre-product of singleton and all incoming
                // messages at this site.
                for (int i = 0; i < m_; ++i)
                    scratch_[i] =
                        singleton_[mrf_.index(x, y) * m_ + i];
                for (int in_dir = 0; in_dir < 4; ++in_dir) {
                    const int nx = x + dx[in_dir];
                    const int ny = y + dy[in_dir];
                    if (nx < 0 || nx >= w || ny < 0 || ny >= h)
                        continue;
                    // Message from that neighbour toward us
                    // travels in the opposite direction slot.
                    const double *msg =
                        &messages_[edgeIndex(nx, ny,
                                             opposite(in_dir))];
                    for (int i = 0; i < m_; ++i)
                        scratch_[i] *= msg[i];
                }

                // Emit one message per valid outgoing direction.
                for (int dir = 0; dir < 4; ++dir) {
                    const int nx = x + dx[dir];
                    const int ny = y + dy[dir];
                    if (nx < 0 || nx >= w || ny < 0 || ny >= h)
                        continue;
                    const double *back =
                        &messages_[edgeIndex(nx, ny,
                                             opposite(dir))];
                    double *out = &messages_[edgeIndex(x, y, dir)];

                    double total = 0.0;
                    std::vector<double> fresh(m_);
                    for (int j = 0; j < m_; ++j) {
                        double acc = 0.0;
                        for (int i = 0; i < m_; ++i) {
                            // Divide out the return message so the
                            // pre-product excludes it.
                            const double contrib =
                                scratch_[i] / back[i] *
                                pairwise_[i * m_ + j];
                            if (config_.max_product)
                                acc = std::max(acc, contrib);
                            else
                                acc += contrib;
                        }
                        fresh[j] = acc;
                        total += acc;
                    }
                    for (int j = 0; j < m_; ++j) {
                        double v = fresh[j] / total;
                        if (config_.damping > 0.0) {
                            v = config_.damping * out[j] +
                                (1.0 - config_.damping) * v;
                        }
                        max_delta = std::max(
                            max_delta, std::abs(v - out[j]));
                        out[j] = v;
                    }
                    ++message_updates_;
                }
            }
        }
        if (max_delta < config_.tolerance) {
            converged_ = true;
            return iter;
        }
    }
    converged_ = false;
    return config_.max_iterations;
}

std::vector<double>
BeliefPropagation::belief(int x, int y) const
{
    const int w = mrf_.width(), h = mrf_.height();
    const int dx[4] = {0, 0, -1, 1};
    const int dy[4] = {-1, 1, 0, 0};

    std::vector<double> b(m_);
    for (int i = 0; i < m_; ++i)
        b[i] = singleton_[mrf_.index(x, y) * m_ + i];
    for (int in_dir = 0; in_dir < 4; ++in_dir) {
        const int nx = x + dx[in_dir];
        const int ny = y + dy[in_dir];
        if (nx < 0 || nx >= w || ny < 0 || ny >= h)
            continue;
        const double *msg =
            &messages_[edgeIndex(nx, ny, opposite(in_dir))];
        for (int i = 0; i < m_; ++i)
            b[i] *= msg[i];
    }
    double total = 0.0;
    for (double v : b)
        total += v;
    for (double &v : b)
        v /= total;
    return b;
}

std::vector<Label>
BeliefPropagation::decode() const
{
    std::vector<Label> labels(mrf_.size());
    for (int y = 0; y < mrf_.height(); ++y) {
        for (int x = 0; x < mrf_.width(); ++x) {
            const auto b = belief(x, y);
            int best = 0;
            for (int i = 1; i < m_; ++i) {
                if (b[i] > b[best])
                    best = i;
            }
            labels[mrf_.index(x, y)] = mrf_.codeOf(best);
        }
    }
    return labels;
}

} // namespace rsu::mrf
