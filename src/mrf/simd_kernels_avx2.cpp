/**
 * @file
 * AVX2 interior sampling kernel — the only translation unit built
 * with -mavx2 (see src/mrf/CMakeLists.txt), so AVX2 instructions
 * cannot leak into code that runs on narrower machines. The
 * function is reached exclusively through detail::interiorSampleFor
 * after core::detectedSimdIsa() confirmed AVX2 support. On non-x86
 * targets the scalar-forwarding stub lives in simd_kernels.cpp and
 * this file compiles to nothing.
 *
 * Selection is branchless and register-resident: pad lanes are
 * masked to zero weight, the 8-lane blocks are widened to 64-bit
 * prefix sums (in-lane shift-add, then a cross-lane broadcast-add),
 * and the drawn index is the popcount of prefix sums <= u — exactly
 * the index selectCandidateFixed's scalar scan returns, because
 * both compute min{i : u < prefix_i} over the same exact integers.
 * The common M <= 8 case never touches the weights scratch at all;
 * larger M spills masked weights plus one 64-bit total per 8-lane
 * block, and selection scans the block totals scalar (the scaled
 * draw needs the grand total first) so only the one block that
 * brackets u is ever prefix-summed.
 */

#include "mrf/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "core/types.h"

namespace rsu::mrf::detail {

namespace {

/** Inclusive prefix sum of 4 u64 lanes. */
inline __m256i
prefix4(__m256i v)
{
    // In-lane: [a, a+b | c, c+d], then broadcast a+b into the
    // upper 128-bit lane and add.
    v = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
    __m256i t = _mm256_permute4x64_epi64(v, 0x55);
    t = _mm256_blend_epi32(_mm256_setzero_si256(), t, 0xF0);
    return _mm256_add_epi64(v, t);
}

/** Count of the 8 u64 prefix lanes (lo then hi) that are <= u.
 * Signed compares are safe: totals fit 64 x (2^32 - 1) < 2^38. */
inline int
countLanesLe(__m256i lo, __m256i hi, __m256i uv)
{
    const int gt =
        _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(lo, uv))) |
        (_mm256_movemask_pd(
             _mm256_castsi256_pd(_mm256_cmpgt_epi64(hi, uv)))
         << 4);
    return 8 - __builtin_popcount(gt);
}

/** u64 draw scaled to [0, total) by the high 128-bit product —
 * identical to selectCandidateFixed's scaling. */
inline uint64_t
scaleDraw(uint64_t draw, uint64_t total)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(draw) * total) >> 64);
}

} // namespace

int
interiorSampleAvx2(const uint16_t *s, const int32_t *d0,
                   const int32_t *d1, const int32_t *d2,
                   const int32_t *d3, const uint32_t *w_of_e,
                   uint32_t *weights, int padded_m, int m,
                   uint64_t draw)
{
    const __m256i clamp = _mm256_set1_epi32(rsu::core::kEnergyMax);
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

    if (padded_m == 8) {
        // Single-block fast path: the whole site update stays in
        // registers — no energy scratch, no weight spill.
        __m256i ev = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d0)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d1)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d2)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d3)));
        ev = _mm256_min_epi32(ev, clamp);
        // Horizontal min, broadcast back, renormalize, look up.
        __m128i m4 = _mm_min_epi32(_mm256_castsi256_si128(ev),
                                   _mm256_extracti128_si256(ev, 1));
        m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0x4e));
        m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0xb1));
        ev = _mm256_sub_epi32(ev, _mm256_broadcastd_epi32(m4));
        __m256i wv = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(w_of_e), ev, 4);
        // Zero the pad lanes so they cannot be drawn, widen to
        // 64-bit prefix sums, and pick by compare-mask popcount.
        wv = _mm256_and_si256(
            wv, _mm256_cmpgt_epi32(_mm256_set1_epi32(m), lane));
        const __m256i lo =
            prefix4(_mm256_cvtepu32_epi64(_mm256_castsi256_si128(wv)));
        const __m256i hi = _mm256_add_epi64(
            prefix4(_mm256_cvtepu32_epi64(
                _mm256_extracti128_si256(wv, 1))),
            _mm256_permute4x64_epi64(lo, 0xFF));
        const uint64_t total = static_cast<uint64_t>(
            _mm256_extract_epi64(hi, 3));
        const __m256i uv = _mm256_set1_epi64x(
            static_cast<long long>(scaleDraw(draw, total)));
        return countLanesLe(lo, hi, uv);
    }

    if (padded_m == 16) {
        // Two-block fast path (8 < M <= 16): still fully register
        // resident — the 64-bit prefix chain just spans four
        // quad-lane vectors instead of two.
        __m256i ev0 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s)));
        __m256i ev1 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + 8)));
        ev0 = _mm256_add_epi32(
            ev0, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d0)));
        ev1 = _mm256_add_epi32(
            ev1, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d0 + 8)));
        ev0 = _mm256_add_epi32(
            ev0, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d1)));
        ev1 = _mm256_add_epi32(
            ev1, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d1 + 8)));
        ev0 = _mm256_add_epi32(
            ev0, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d2)));
        ev1 = _mm256_add_epi32(
            ev1, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d2 + 8)));
        ev0 = _mm256_add_epi32(
            ev0, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d3)));
        ev1 = _mm256_add_epi32(
            ev1, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(d3 + 8)));
        ev0 = _mm256_min_epi32(ev0, clamp);
        ev1 = _mm256_min_epi32(ev1, clamp);
        const __m256i mn = _mm256_min_epi32(ev0, ev1);
        __m128i m4 = _mm_min_epi32(_mm256_castsi256_si128(mn),
                                   _mm256_extracti128_si256(mn, 1));
        m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0x4e));
        m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0xb1));
        const __m256i shift = _mm256_broadcastd_epi32(m4);
        ev0 = _mm256_sub_epi32(ev0, shift);
        ev1 = _mm256_sub_epi32(ev1, shift);
        __m256i wv0 = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(w_of_e), ev0, 4);
        __m256i wv1 = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(w_of_e), ev1, 4);
        // Block 0 is all real (m > 8 here); mask block 1's pads.
        wv1 = _mm256_and_si256(
            wv1,
            _mm256_cmpgt_epi32(_mm256_set1_epi32(m - 8), lane));
        const __m256i p0 = prefix4(
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(wv0)));
        const __m256i p1 = _mm256_add_epi64(
            prefix4(_mm256_cvtepu32_epi64(
                _mm256_extracti128_si256(wv0, 1))),
            _mm256_permute4x64_epi64(p0, 0xFF));
        const __m256i p2 = _mm256_add_epi64(
            prefix4(_mm256_cvtepu32_epi64(
                _mm256_castsi256_si128(wv1))),
            _mm256_permute4x64_epi64(p1, 0xFF));
        const __m256i p3 = _mm256_add_epi64(
            prefix4(_mm256_cvtepu32_epi64(
                _mm256_extracti128_si256(wv1, 1))),
            _mm256_permute4x64_epi64(p2, 0xFF));
        const uint64_t total = static_cast<uint64_t>(
            _mm256_extract_epi64(p3, 3));
        const __m256i uv = _mm256_set1_epi64x(
            static_cast<long long>(scaleDraw(draw, total)));
        return countLanesLe(p0, p1, uv) + countLanesLe(p2, p3, uv);
    }

    // Pass 1: 8-wide clamped energies into the scratch, with a
    // running 8-lane minimum.
    int32_t *e = reinterpret_cast<int32_t *>(weights);
    __m256i mn = clamp;
    for (int i = 0; i < padded_m; i += 8) {
        // 8 x uint16 singleton entries widened to int32 lanes.
        const __m128i s16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + i));
        __m256i ev = _mm256_cvtepu16_epi32(s16);
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d0 + i)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d1 + i)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d2 + i)));
        ev = _mm256_add_epi32(
            ev, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(d3 + i)));
        ev = _mm256_min_epi32(ev, clamp);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(e + i), ev);
        mn = _mm256_min_epi32(mn, ev);
    }
    // Horizontal min of the 8 lanes.
    __m128i m4 = _mm_min_epi32(_mm256_castsi256_si128(mn),
                               _mm256_extracti128_si256(mn, 1));
    m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0x4e));
    m4 = _mm_min_epi32(m4, _mm_shuffle_epi32(m4, 0xb1));
    const __m256i shift = _mm256_broadcastd_epi32(m4);

    // Pass 2: site-renormalized gathers (shifted energies are in
    // [0, 255]: in-bounds in the 256-entry table), pad lanes masked
    // to zero weight, and a per-block 64-bit weight total spilled
    // alongside the weights themselves.
    alignas(32) uint64_t
        block_total[rsu::core::kMaxLabels / rsu::core::kSimdPadLanes];
    for (int i = 0; i < padded_m; i += 8) {
        const __m256i ev = _mm256_sub_epi32(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(e + i)),
            shift);
        __m256i wv = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(w_of_e), ev, 4);
        wv = _mm256_and_si256(
            wv, _mm256_cmpgt_epi32(_mm256_set1_epi32(m - i), lane));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(weights + i), wv);
        const __m256i b4 = _mm256_add_epi64(
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(wv)),
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(wv, 1)));
        alignas(32) uint64_t a4[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(a4), b4);
        block_total[i / 8] = a4[0] + a4[1] + a4[2] + a4[3];
    }
    uint64_t total = 0;
    for (int b = 0; b < padded_m / 8; ++b)
        total += block_total[b];

    // Pass 3: a scalar scan over the block totals finds the one
    // block whose prefix range brackets u — every earlier block
    // contributes all 8 lanes to the count, every later one none —
    // then a single in-register prefix resolves the lane. The scan
    // terminates because u < total.
    const uint64_t u = scaleDraw(draw, total);
    uint64_t carry = 0;
    int b = 0;
    while (carry + block_total[b] <= u)
        carry += block_total[b++];
    const __m256i wv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(weights + 8 * b));
    const __m256i lo = _mm256_add_epi64(
        prefix4(_mm256_cvtepu32_epi64(_mm256_castsi256_si128(wv))),
        _mm256_set1_epi64x(static_cast<long long>(carry)));
    const __m256i hi = _mm256_add_epi64(
        prefix4(_mm256_cvtepu32_epi64(
            _mm256_extracti128_si256(wv, 1))),
        _mm256_permute4x64_epi64(lo, 0xFF));
    const __m256i uv =
        _mm256_set1_epi64x(static_cast<long long>(u));
    return 8 * b + countLanesLe(lo, hi, uv);
}

} // namespace rsu::mrf::detail

#endif // x86
