#include "mrf/estimator.h"

#include <stdexcept>

namespace rsu::mrf {

MarginalMapEstimator::MarginalMapEstimator(GridMrf &mrf, int burn_in)
    : mrf_(mrf), burn_in_(burn_in)
{
    if (burn_in_ < 0)
        throw std::invalid_argument("MarginalMapEstimator: negative "
                                    "burn-in");
    histogram_.assign(mrf_.size(),
                      std::vector<uint32_t>(mrf_.numLabels(), 0));
}

void
MarginalMapEstimator::run(int iterations,
                          const std::function<void()> &sweep)
{
    for (int it = 0; it < iterations; ++it) {
        sweep();
        energy_.push_back(mrf_.totalEnergy());
        if (static_cast<int>(energy_.size()) <= burn_in_)
            continue;
        const auto &labels = mrf_.labels();
        for (int i = 0; i < mrf_.size(); ++i)
            ++histogram_[i][mrf_.indexOfCode(labels[i])];
        ++retained_;
    }
}

std::vector<Label>
MarginalMapEstimator::estimate() const
{
    std::vector<Label> result(mrf_.size(), 0);
    for (int i = 0; i < mrf_.size(); ++i) {
        const auto &h = histogram_[i];
        int best = 0;
        for (int l = 1; l < mrf_.numLabels(); ++l) {
            if (h[l] > h[best])
                best = l;
        }
        result[i] = mrf_.codeOf(best);
    }
    return result;
}

std::vector<double>
MarginalMapEstimator::empiricalMarginal(int x, int y) const
{
    const auto &h = histogram_[mrf_.index(x, y)];
    std::vector<double> probs(mrf_.numLabels(), 0.0);
    if (retained_ == 0)
        return probs;
    for (int l = 0; l < mrf_.numLabels(); ++l) {
        probs[l] = static_cast<double>(h[l]) /
                   static_cast<double>(retained_);
    }
    return probs;
}

} // namespace rsu::mrf
