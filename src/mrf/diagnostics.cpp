#include "mrf/diagnostics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rsu::mrf {

double
gelmanRubin(const std::vector<std::vector<double>> &chains)
{
    const size_t m = chains.size();
    if (m < 2)
        throw std::invalid_argument("gelmanRubin: need >= 2 chains");
    const size_t n = chains[0].size();
    if (n < 2)
        throw std::invalid_argument("gelmanRubin: need >= 2 samples "
                                    "per chain");
    for (const auto &c : chains) {
        if (c.size() != n)
            throw std::invalid_argument("gelmanRubin: unequal chain "
                                        "lengths");
    }

    // Per-chain means and variances.
    std::vector<double> mean(m, 0.0), var(m, 0.0);
    double grand = 0.0;
    for (size_t j = 0; j < m; ++j) {
        for (double x : chains[j])
            mean[j] += x;
        mean[j] /= static_cast<double>(n);
        grand += mean[j];
        for (double x : chains[j]) {
            const double d = x - mean[j];
            var[j] += d * d;
        }
        var[j] /= static_cast<double>(n - 1);
    }
    grand /= static_cast<double>(m);

    // Between-chain variance B and within-chain variance W.
    double b = 0.0;
    for (size_t j = 0; j < m; ++j) {
        const double d = mean[j] - grand;
        b += d * d;
    }
    b *= static_cast<double>(n) / static_cast<double>(m - 1);
    double w = 0.0;
    for (size_t j = 0; j < m; ++j)
        w += var[j];
    w /= static_cast<double>(m);

    if (w <= 0.0) {
        // Degenerate chains (e.g. frozen at one value): agree iff
        // the means agree.
        return b <= 0.0 ? 1.0
                        : std::numeric_limits<double>::infinity();
    }

    const double nd = static_cast<double>(n);
    const double var_plus = (nd - 1.0) / nd * w + b / nd;
    return std::sqrt(var_plus / w);
}

double
autocorrelationTime(const std::vector<double> &chain)
{
    const size_t n = chain.size();
    if (n < 4)
        throw std::invalid_argument("autocorrelationTime: chain too "
                                    "short");

    double mean = 0.0;
    for (double x : chain)
        mean += x;
    mean /= static_cast<double>(n);

    double c0 = 0.0;
    for (double x : chain) {
        const double d = x - mean;
        c0 += d * d;
    }
    c0 /= static_cast<double>(n);
    if (c0 <= 0.0)
        return 1.0; // constant chain: every sample is "the" sample

    double tau = 1.0;
    for (size_t lag = 1; lag < n / 2; ++lag) {
        double ck = 0.0;
        for (size_t i = 0; i + lag < n; ++i) {
            ck += (chain[i] - mean) * (chain[i + lag] - mean);
        }
        ck /= static_cast<double>(n - lag);
        const double rho = ck / c0;
        if (rho <= 0.0)
            break; // initial positive sequence ends
        tau += 2.0 * rho;
    }
    return tau;
}

double
effectiveSampleSize(const std::vector<double> &chain)
{
    return static_cast<double>(chain.size()) /
           autocorrelationTime(chain);
}

} // namespace rsu::mrf
