/**
 * @file
 * Metropolis sampler baseline.
 *
 * The other commonly used MCMC update the paper names alongside
 * Gibbs (section 4.2): propose a uniformly random label, accept with
 * probability min(1, exp(-(E_new - E_old)/T)). It evaluates only two
 * energies per site instead of M, at the cost of slower mixing —
 * the convergence benchmarks quantify that trade-off against both
 * Gibbs variants.
 */

#ifndef RSU_MRF_METROPOLIS_H
#define RSU_MRF_METROPOLIS_H

#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"
#include "rng/xoshiro256.h"

namespace rsu::mrf {

/** Metropolis sweeps over a GridMrf. */
class MetropolisSampler
{
  public:
    MetropolisSampler(GridMrf &mrf, uint64_t seed,
                      Schedule schedule = Schedule::Checkerboard);

    /** Propose/accept at one site; returns the (possibly old) label. */
    Label updateSite(int x, int y);

    /** One MCMC iteration: every site visited once. */
    void sweep();

    void run(int n);

    /** Fraction of proposals accepted so far. */
    double acceptanceRate() const;

    const SamplerWork &work() const { return work_; }

  private:
    GridMrf &mrf_;
    rsu::rng::Xoshiro256 rng_;
    Schedule schedule_;
    SamplerWork work_;
    uint64_t proposals_ = 0;
    uint64_t accepts_ = 0;
};

} // namespace rsu::mrf

#endif // RSU_MRF_METROPOLIS_H
