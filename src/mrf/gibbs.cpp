#include "mrf/gibbs.h"

#include <cmath>

#include "rng/discrete.h"

namespace rsu::mrf {

GibbsSampler::GibbsSampler(GridMrf &mrf, uint64_t seed,
                           Schedule schedule)
    : mrf_(mrf), rng_(seed), schedule_(schedule),
      weights_(mrf.numLabels())
{
}

Label
GibbsSampler::updateSite(int x, int y)
{
    const int m = mrf_.numLabels();
    const double t = mrf_.temperature();
    EnergyInputs in = mrf_.inputsAt(x, y);
    for (int i = 0; i < m; ++i) {
        const Label code = mrf_.codeOf(i);
        in.data2 = mrf_.singleton().data2(x, y, code);
        const Energy e = mrf_.energyUnit().evaluate(code, in);
        weights_[i] = std::exp(-static_cast<double>(e) / t);
    }
    work_.energy_evals += m;
    work_.exp_calls += m;

    const int choice =
        rsu::rng::sampleDiscreteLinear(rng_, weights_.data(), m);
    ++work_.random_draws;
    ++work_.site_updates;

    const Label l = mrf_.codeOf(choice);
    mrf_.setLabel(x, y, l);
    return l;
}

void
GibbsSampler::sweep()
{
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [this](int x, int y) { updateSite(x, y); });
}

void
GibbsSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        sweep();
}

} // namespace rsu::mrf
