#include "mrf/gibbs.h"

#include <cmath>

#include "rng/discrete.h"

namespace rsu::mrf {

GibbsSampler::GibbsSampler(GridMrf &mrf, uint64_t seed,
                           Schedule schedule)
    : mrf_(mrf), rng_(seed), schedule_(schedule),
      weights_(mrf.numLabels())
{
}

Label
GibbsSampler::updateSiteWith(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                             double *weights, SamplerWork &work,
                             int x, int y)
{
    const int m = mrf.numLabels();
    const double t = mrf.temperature();
    EnergyInputs in = mrf.inputsAt(x, y);
    for (int i = 0; i < m; ++i) {
        const Label code = mrf.codeOf(i);
        in.data2 = mrf.singleton().data2(x, y, code);
        const Energy e = mrf.energyUnit().evaluate(code, in);
        weights[i] = std::exp(-static_cast<double>(e) / t);
    }
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = mrf.codeOf(choice);
    mrf.setLabel(x, y, l);
    return l;
}

Label
GibbsSampler::updateSite(int x, int y)
{
    return updateSiteWith(mrf_, rng_, weights_.data(), work_, x, y);
}

void
GibbsSampler::sweep()
{
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [this](int x, int y) { updateSite(x, y); });
}

void
GibbsSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        sweep();
}

} // namespace rsu::mrf
