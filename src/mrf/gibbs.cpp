#include "mrf/gibbs.h"

#include <cmath>

#include "mrf/fast_sweep.h"
#include "rng/discrete.h"

namespace rsu::mrf {

GibbsSampler::GibbsSampler(GridMrf &mrf, uint64_t seed,
                           Schedule schedule, SweepPath path)
    : mrf_(mrf), rng_(seed), schedule_(schedule), path_(path),
      weights_(mrf.numLabels())
{
    if (path_ != SweepPath::Reference)
        tables_ = std::make_unique<SweepTables>(mrf_);
    if (path_ == SweepPath::Simd)
        fixed_weights_.resize(tables_->paddedLabels());
}

GibbsSampler::~GibbsSampler() = default;
GibbsSampler::GibbsSampler(GibbsSampler &&) noexcept = default;

Label
GibbsSampler::updateSiteWith(GridMrf &mrf, rsu::rng::Xoshiro256 &rng,
                             double *weights, SamplerWork &work,
                             int x, int y)
{
    const int m = mrf.numLabels();
    const double t = mrf.temperature();
    EnergyInputs in = mrf.inputsAt(x, y);
    for (int i = 0; i < m; ++i) {
        const Label code = mrf.codeOf(i);
        in.data2 = mrf.singleton().data2(x, y, code);
        const Energy e = mrf.energyUnit().evaluate(code, in);
        weights[i] = std::exp(-static_cast<double>(e) / t);
    }
    work.energy_evals += m;
    work.exp_calls += m;

    const int choice = rsu::rng::sampleDiscreteLinear(rng, weights, m);
    ++work.random_draws;
    ++work.site_updates;

    const Label l = mrf.codeOf(choice);
    mrf.setLabel(x, y, l);
    return l;
}

Label
GibbsSampler::updateSite(int x, int y)
{
    if (path_ == SweepPath::Simd) {
        tables_->sync();
        return tables_->updateSiteSimd(mrf_, rng_, block_,
                                       fixed_weights_.data(), work_,
                                       x, y);
    }
    if (tables_) {
        tables_->sync();
        return tables_->updateSite(mrf_, rng_, weights_.data(),
                                   work_, x, y);
    }
    return updateSiteWith(mrf_, rng_, weights_.data(), work_, x, y);
}

void
GibbsSampler::sweep()
{
    if (path_ == SweepPath::Simd) {
        tables_->sync();
        forEachSiteSplit(
            mrf_.width(), mrf_.height(), schedule_,
            [this](int x, int y) {
                tables_->updateInteriorSimd(mrf_, rng_, block_,
                                            fixed_weights_.data(),
                                            work_, x, y);
            },
            [this](int x, int y) {
                tables_->updateBorderSimd(mrf_, rng_, block_,
                                          fixed_weights_.data(),
                                          work_, x, y);
            });
        return;
    }
    if (tables_) {
        tables_->sync();
        forEachSiteSplit(
            mrf_.width(), mrf_.height(), schedule_,
            [this](int x, int y) {
                tables_->updateInterior(mrf_, rng_, weights_.data(),
                                        work_, x, y);
            },
            [this](int x, int y) {
                tables_->updateBorder(mrf_, rng_, weights_.data(),
                                      work_, x, y);
            });
        return;
    }
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [this](int x, int y) { updateSite(x, y); });
}

void
GibbsSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        sweep();
}

void
GibbsSampler::setTemperature(double t)
{
    mrf_.setTemperature(t);
}

void
GibbsSampler::setSimdIsa(rsu::core::SimdIsa isa)
{
    if (tables_)
        tables_->setSimdIsa(isa);
}

} // namespace rsu::mrf
