/**
 * @file
 * First-order grid Markov Random Field.
 *
 * The problem class the RSU-G targets (paper section 4.1): discrete
 * random variables on a 2-D lattice, each conditionally independent
 * of everything but its four neighbours, with homogeneous isotropic
 * smoothness potentials. The full conditional of a variable is the
 * normalized exponential of the sum of one singleton and four
 * doubleton clique potentials (Equation 1).
 *
 * Crucially, the model computes those potentials with the *same*
 * limited-precision EnergyUnit the hardware uses, so the software
 * Gibbs reference and the RSU path share identical energies — any
 * divergence between them is attributable to sampling alone.
 */

#ifndef RSU_MRF_GRID_MRF_H
#define RSU_MRF_GRID_MRF_H

#include <cstdint>
#include <vector>

#include "core/energy_unit.h"
#include "core/tables.h"
#include "core/types.h"
#include "rng/xoshiro256.h"

namespace rsu::mrf {

using rsu::core::Energy;
using rsu::core::EnergyConfig;
using rsu::core::EnergyInputs;
using rsu::core::EnergyUnit;
using rsu::core::Label;

/**
 * Application-specific singleton clique potential data source.
 *
 * The RSU-G datapath computes the singleton energy as the (scaled)
 * squared difference of two 6-bit data inputs (paper section 4.3);
 * the application decides what those inputs are. data1 depends only
 * on the pixel (e.g. its observed intensity); data2 may additionally
 * depend on the candidate label (destination intensity in motion
 * estimation, class mean in segmentation).
 */
class SingletonModel
{
  public:
    virtual ~SingletonModel() = default;

    /** First data input for pixel (x, y). */
    virtual uint8_t data1(int x, int y) const = 0;

    /** Second data input for pixel (x, y) and candidate @p label. */
    virtual uint8_t data2(int x, int y, Label label) const = 0;

    /**
     * True when data2 varies with the label; constant-data2
     * applications let implementations skip per-label transfers.
     */
    virtual bool data2PerLabel() const { return true; }
};

/** Static model parameters. */
struct MrfConfig
{
    int width = 0;
    int height = 0;
    int num_labels = 2;
    EnergyConfig energy;
    /** Gibbs temperature T (Equation 1), in 8-bit energy units. */
    double temperature = 16.0;
    /**
     * Candidate index -> 6-bit label code decode table. Labels the
     * datapath sees are *codes*; vector applications pack 2 x 3-bit
     * components with stride 8, so valid codes need not be
     * contiguous (e.g. motion's 7x7 window). Empty means identity
     * (code i for candidate i).
     */
    std::vector<Label> label_codes;
};

/** The lattice, its current labelling, and the energy functions. */
class GridMrf
{
  public:
    /**
     * @param config lattice and potential parameters
     * @param singleton data source; must outlive the MRF
     */
    GridMrf(const MrfConfig &config, const SingletonModel &singleton);

    int width() const { return config_.width; }
    int height() const { return config_.height; }
    int size() const { return config_.width * config_.height; }
    int numLabels() const { return config_.num_labels; }

    /** 6-bit label code of candidate @p index. */
    Label
    codeOf(int index) const
    {
        return codes_[index];
    }

    /** Candidate index of label code @p code (-1 if not a valid
     * code for this model). */
    int
    indexOfCode(Label code) const
    {
        return code_to_index_[code & rsu::core::kLabelMask];
    }

    /** The full index -> code decode table. */
    const std::vector<Label> &labelCodes() const { return codes_; }
    double temperature() const { return config_.temperature; }

    /** Change the Gibbs temperature (simulated annealing). RSU
     * samplers must rebuild their intensity map afterwards; use
     * RsuGibbsSampler::setTemperature, which does both. Bumps
     * temperatureVersion() so table-driven caches (SweepTables'
     * ExpTable) invalidate automatically. */
    void setTemperature(double t);

    /**
     * Counter incremented by every setTemperature() call.
     * Temperature-dependent caches key their contents to this value
     * and rebuild when it moves — how annealing invalidates the
     * fast path's exp table without any explicit notification.
     */
    uint64_t temperatureVersion() const { return temperature_version_; }
    const MrfConfig &config() const { return config_; }
    const EnergyUnit &energyUnit() const { return energy_unit_; }
    const SingletonModel &singleton() const { return singleton_; }

    Label
    label(int x, int y) const
    {
        return labels_[index(x, y)];
    }

    void
    setLabel(int x, int y, Label l)
    {
        labels_[index(x, y)] = l;
    }

    const std::vector<Label> &labels() const { return labels_; }

    /** Set every variable to label code @p l. */
    void fillLabels(Label l);

    /** Independent uniform random initialization (over codes). */
    void randomizeLabels(rsu::rng::Xoshiro256 &rng);

    /**
     * Per-site maximum-likelihood initialization: each site gets
     * the label with the smallest *singleton* energy (ignoring the
     * smoothness prior). The standard MRF-MCMC starting point — and
     * a prerequisite for the RSU path's single-pass current-label
     * energy re-referencing to be well-conditioned from the first
     * sweep (see EnergyInputs::energy_offset).
     */
    void initializeMaximumLikelihood();

    /**
     * initializeMaximumLikelihood() against an already-built
     * singleton-energy table (same result; skips recomputing the
     * model's energies). The table must have been built for this
     * model — SweepTables::singletonTable() qualifies.
     */
    void
    initializeMaximumLikelihood(const rsu::core::SingletonTable &table);

    /**
     * Per-site x per-candidate singleton-energy table for this
     * model: entry (site, i) is
     * energyUnit().singleton(data1(x, y), data2(x, y, codeOf(i))).
     * Built once per call by scanning the static SingletonModel;
     * the table-driven sweep path and ML initialization share it.
     */
    rsu::core::SingletonTable buildSingletonTable() const;

    /**
     * buildSingletonTable() with rows padded to @p padded_labels
     * entries (kEnergyMax-filled pad lanes, for the SIMD kernels)
     * and the per-row fills optionally fanned out over worker
     * threads via @p parallel (see core::RowParallelFor) — rows are
     * independent, so the table is identical to a sequential
     * build's.
     */
    rsu::core::SingletonTable
    buildSingletonTable(int padded_labels,
                        const rsu::core::RowParallelFor &parallel) const;

    /**
     * Per-site x per-candidate staged data2 bytes (what data2At()
     * fills, for every site at once). The RSU samplers hand table
     * rows straight to the device, removing the per-site virtual
     * data2() calls from their sweeps. Assumes the singleton model
     * is static.
     */
    rsu::core::Data2Table buildData2Table() const;

    /** Bulk-load a labelling (size must match). */
    void setLabels(const std::vector<Label> &labels);

    /**
     * Neighbour labels, validity mask, and data1 for pixel (x, y) —
     * exactly the operand set an RSU instruction sequence transfers.
     * data2 is left 0; callers supply it per candidate.
     */
    EnergyInputs inputsAt(int x, int y) const;

    /**
     * inputsAt() with the energy re-reference set to the current
     * label's conditional energy — the operand form the RSU path
     * uses so candidate energies stay inside the LED ladder's
     * dynamic range (see EnergyInputs::energy_offset).
     */
    EnergyInputs referencedInputsAt(int x, int y) const;

    /** Fill @p out (numLabels() entries, candidate-index order)
     * with per-candidate data2. */
    void data2At(int x, int y, uint8_t *out) const;

    /** 8-bit conditional energy of label code @p l at (x, y). */
    Energy conditionalEnergy(int x, int y, Label l) const;

    /**
     * Exact full-conditional distribution at (x, y), indexed by
     * candidate index: softmax of the hardware energies at the
     * configured temperature. This is the software-reference target
     * distribution the RSU approximates.
     */
    std::vector<double> conditionalDistribution(int x, int y) const;

    /**
     * Total configuration energy: every singleton once plus every
     * lattice edge's doubleton once (unsaturated integer sum; used
     * for convergence trajectories, not by the datapath).
     */
    int64_t totalEnergy() const;

    int
    index(int x, int y) const
    {
        return y * config_.width + x;
    }

  private:
    MrfConfig config_;
    const SingletonModel &singleton_;
    EnergyUnit energy_unit_;
    std::vector<Label> labels_;        // current codes per site
    std::vector<Label> codes_;         // index -> code
    std::vector<int> code_to_index_;   // code -> index or -1
    uint64_t temperature_version_ = 0; // ++ per setTemperature()
};

} // namespace rsu::mrf

#endif // RSU_MRF_GRID_MRF_H
