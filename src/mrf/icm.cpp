#include "mrf/icm.h"

namespace rsu::mrf {

IcmSolver::IcmSolver(GridMrf &mrf, Schedule schedule)
    : mrf_(mrf), schedule_(schedule)
{
}

int
IcmSolver::sweep()
{
    int changed = 0;
    forEachSite(mrf_.width(), mrf_.height(), schedule_,
                [&](int x, int y) {
                    const Label current = mrf_.label(x, y);
                    Label best = current;
                    Energy best_e =
                        mrf_.conditionalEnergy(x, y, current);
                    for (int i = 0; i < mrf_.numLabels(); ++i) {
                        const Label cand = mrf_.codeOf(i);
                        if (cand == current)
                            continue;
                        const Energy e =
                            mrf_.conditionalEnergy(x, y, cand);
                        if (e < best_e) {
                            best_e = e;
                            best = cand;
                        }
                    }
                    work_.energy_evals += mrf_.numLabels();
                    ++work_.site_updates;
                    if (best != current) {
                        mrf_.setLabel(x, y, best);
                        ++changed;
                    }
                });
    return changed;
}

int
IcmSolver::solve(int max_sweeps)
{
    for (int i = 1; i <= max_sweeps; ++i) {
        if (sweep() == 0)
            return i;
    }
    return max_sweeps;
}

} // namespace rsu::mrf
