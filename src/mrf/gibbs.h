/**
 * @file
 * Software-reference Gibbs sampler.
 *
 * The conventional-processor baseline the paper measures against:
 * per site, compute the M conditional energies, exponentiate at the
 * model temperature, and draw from the normalized discrete
 * distribution with a linear CDF scan — the straightforward C/CUDA
 * inner loop of a standard MCMC solver (paper section 8.1).
 *
 * Work counters record exactly how many energy evaluations, exp()
 * calls and random draws a sweep performs; the architecture models
 * consume these to cost the baseline implementations.
 */

#ifndef RSU_MRF_GIBBS_H
#define RSU_MRF_GIBBS_H

#include <cstdint>
#include <memory>

#include "core/simd.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"
#include "rng/block.h"
#include "rng/xoshiro256.h"

namespace rsu::mrf {

class SweepTables;

/** Work performed by a sampler (inputs to the timing models).
 * Counts are *logical* baseline operations: the table-driven fast
 * path reports the same energy_evals/exp_calls as the reference
 * path it bit-matches, so the architecture cost models see one
 * workload regardless of which software realization ran. */
struct SamplerWork
{
    uint64_t site_updates = 0;
    uint64_t energy_evals = 0;  //!< per-candidate energy computations
    uint64_t exp_calls = 0;     //!< transcendental evaluations
    uint64_t random_draws = 0;  //!< uniform variates consumed
};

/** Which software realization of the Gibbs inner loop to run. */
enum class SweepPath {
    Reference, //!< virtual data2 + EnergyUnit + std::exp per candidate
    Table,     //!< precomputed tables, bit-identical results (fast)
    Simd,      //!< vectorized Q32 fixed-point tables (fastest);
               //!< identical across ISAs, not bit-identical to Table
};

/** Exact full-conditional Gibbs sweeps over a GridMrf. */
class GibbsSampler
{
  public:
    /**
     * @param mrf model to sample (state is mutated in place)
     * @param seed entropy seed
     * @param schedule site visit order
     * @param path Reference recomputes every conditional from the
     *        model; Table precomputes SweepTables once and sweeps
     *        through lookups — bit-identical results, several times
     *        faster; Simd additionally vectorizes the candidate
     *        dimension over Q32 fixed-point weights — fastest,
     *        identical across ISAs/runs but not bit-identical to
     *        the other two. Table/Simd assume the singleton model
     *        is static.
     */
    GibbsSampler(GridMrf &mrf, uint64_t seed,
                 Schedule schedule = Schedule::Checkerboard,
                 SweepPath path = SweepPath::Reference);
    ~GibbsSampler();

    GibbsSampler(GibbsSampler &&) noexcept;
    GibbsSampler &operator=(GibbsSampler &&) = delete;

    /** Resample one site from its full conditional. */
    Label updateSite(int x, int y);

    /**
     * The site-update kernel with externally supplied state: draw a
     * new label for (x, y) of @p mrf from its full conditional using
     * @p rng, record costs in @p work, and install it. @p weights is
     * caller-owned scratch with at least numLabels() entries. The
     * chromatic runtime (src/runtime/) calls this with one RNG
     * stream and scratch buffer per worker; updateSite() is this
     * with the sampler's own members.
     */
    static Label updateSiteWith(GridMrf &mrf,
                                rsu::rng::Xoshiro256 &rng,
                                double *weights, SamplerWork &work,
                                int x, int y);

    /** One MCMC iteration: every site updated once. */
    void sweep();

    /** Run @p n sweeps. */
    void run(int n);

    /**
     * Install a new Gibbs temperature (simulated annealing).
     * Forwards to GridMrf::setTemperature; the version bump makes
     * the Table path rebuild its exp table at the next update.
     */
    void setTemperature(double t);

    SweepPath path() const { return path_; }

    /**
     * Select the Simd path's kernel ISA (see
     * SweepTables::setSimdIsa; no-op on the other paths). Any
     * choice yields identical labels — the lane-equivalence tests
     * force Scalar here against the widest detected ISA.
     */
    void setSimdIsa(rsu::core::SimdIsa isa);

    /** The fast paths' tables (nullptr on the Reference path). */
    const SweepTables *tables() const { return tables_.get(); }

    const SamplerWork &work() const { return work_; }
    rsu::rng::Xoshiro256 &rng() { return rng_; }

  private:
    GridMrf &mrf_;
    rsu::rng::Xoshiro256 rng_;
    Schedule schedule_;
    SweepPath path_;
    SamplerWork work_;
    std::vector<double> weights_; // scratch, sized num_labels
    std::unique_ptr<SweepTables> tables_;  // Table/Simd paths only
    std::vector<uint32_t> fixed_weights_;  // Simd scratch (padded)
    rsu::rng::BlockRng block_;             // Simd draw buffer
};

} // namespace rsu::mrf

#endif // RSU_MRF_GIBBS_H
