/**
 * @file
 * MCMC convergence diagnostics.
 *
 * The paper runs fixed iteration budgets (5000 for segmentation,
 * 400 for motion); a library consumer needs to know whether such a
 * budget suffices for *their* model. Two standard diagnostics are
 * provided, both operating on scalar chain statistics (typically
 * the energy trajectory the estimator already records):
 *
 *  - Gelman-Rubin potential scale reduction factor (R-hat) across
 *    multiple independent chains: values near 1 indicate the
 *    chains have mixed into the same distribution;
 *  - integrated autocorrelation time of a single chain: the
 *    effective thinning interval between independent samples.
 */

#ifndef RSU_MRF_DIAGNOSTICS_H
#define RSU_MRF_DIAGNOSTICS_H

#include <cstdint>
#include <vector>

namespace rsu::mrf {

/**
 * Gelman-Rubin potential scale reduction factor.
 *
 * @param chains two or more equally long scalar chains (burn-in
 *        already removed); each needs at least two samples
 * @return R-hat; ~1.0 when the chains agree, > 1.1 conventionally
 *         indicates non-convergence
 */
double gelmanRubin(const std::vector<std::vector<double>> &chains);

/**
 * Integrated autocorrelation time of a scalar chain by the
 * initial-positive-sequence estimator (Geyer): tau = 1 + 2 *
 * sum of autocorrelations until they first turn negative.
 *
 * @return tau >= 1; effective sample size is length / tau
 */
double autocorrelationTime(const std::vector<double> &chain);

/** Effective sample size: chain length / autocorrelation time. */
double effectiveSampleSize(const std::vector<double> &chain);

} // namespace rsu::mrf

#endif // RSU_MRF_DIAGNOSTICS_H
