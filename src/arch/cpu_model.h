/**
 * @file
 * Sequential CPU timing model.
 *
 * The paper runs sequential image segmentation and stereo vision on
 * one core of an Intel E5-2640 and reports >100x speedup when the
 * core is augmented with an RSU-G1 (section 8.2). The model mirrors
 * the GPU model's structure without the occupancy term: per pixel,
 * the baseline pays per-label parameterization (>= 100 cycles,
 * section 2.2) plus discrete-sampling cost (Table 1 magnitude),
 * while the RSU variant pays the short instruction sequence plus
 * the M-cycle sampling wait, which a single in-order functional
 * unit cannot hide.
 */

#ifndef RSU_ARCH_CPU_MODEL_H
#define RSU_ARCH_CPU_MODEL_H

#include "arch/workload.h"

namespace rsu::arch {

/** CPU hardware/cost parameters (defaults: E5-2640-class core). */
struct CpuConfig
{
    double frequency_ghz = 2.5;
    /** Cycles to parameterize one label's distribution entry:
     * the five-clique energy computation with its neighbour
     * gathering and cache behaviour (>= 100 per section 2.2; the
     * measured scalar code lands well above the floor). */
    double param_cycles_per_label = 400.0;
    /** Cycles to draw one label's exponential sample in software
     * (Table 1: ~588 cycles for std::exponential_distribution,
     * plus the comparison/selection). */
    double sample_cycles_per_label = 700.0;
    /** Fixed per-pixel loop/memory overhead (baseline kernel). */
    double overhead_cycles = 200.0;
    /** Fixed per-pixel overhead of the RSU-augmented loop (operand
     * loads overlap the RSU wait via software pipelining). */
    double rsu_overhead_cycles = 40.0;
    /** RSU path: operand writes + read per pixel. */
    double rsu_instruction_cycles = 5.0;
};

/** Sequential-core timing model. */
class CpuModel
{
  public:
    explicit CpuModel(const CpuConfig &config = {});

    /** Seconds for the full run on the plain core. */
    double baselineSeconds(const Workload &w) const;

    /** Seconds for the full run with an RSU-G1 functional unit. */
    double rsuSeconds(const Workload &w) const;

    /** Speedup of the RSU-augmented core (paper: >100x). */
    double speedup(const Workload &w) const;

    const CpuConfig &config() const { return config_; }

  private:
    CpuConfig config_;
};

} // namespace rsu::arch

#endif // RSU_ARCH_CPU_MODEL_H
