#include "arch/accelerator_model.h"

#include <cmath>
#include <stdexcept>

#include "arch/power_area.h"

namespace rsu::arch {

AcceleratorModel::AcceleratorModel(const AcceleratorConfig &config)
    : config_(config)
{
    if (config_.mem_bw_gbs <= 0.0 || config_.frequency_ghz <= 0.0 ||
        config_.bytes_per_unit_cycle <= 0.0)
        throw std::invalid_argument("AcceleratorModel: bad "
                                    "configuration");
}

double
AcceleratorModel::totalSeconds(const Workload &w) const
{
    return static_cast<double>(w.pixels()) * w.bytes_per_pixel *
           w.iterations / (config_.mem_bw_gbs * 1e9);
}

int
AcceleratorModel::requiredUnits() const
{
    return static_cast<int>(std::round(
        config_.mem_bw_gbs /
        (config_.frequency_ghz * config_.bytes_per_unit_cycle)));
}

double
AcceleratorModel::rsuPowerW(int feature_nm) const
{
    const RsuBudget unit = RsuPowerAreaModel::project(
        feature_nm, config_.frequency_ghz * 1000.0);
    return RsuPowerAreaModel::systemPowerW(unit, requiredUnits());
}

} // namespace rsu::arch
