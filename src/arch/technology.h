/**
 * @file
 * CMOS technology-node scaling model.
 *
 * The paper synthesizes RSU-G1 at 45 nm (Synopsys, 590 MHz) and
 * projects to a predictive 15 nm library at 1 GHz (Tables 3-4). We
 * reproduce the projection with a per-node parameter table: supply
 * voltage, relative switched capacitance per gate, relative logic
 * area per gate, and separate SRAM energy/area factors (the LUT is
 * an SRAM structure scaled via Cacti in the paper).
 *
 * Dynamic power scales as P2 = P1 * (C2/C1) * (V2/V1)^2 * (f2/f1);
 * area scales by the node's relative area-per-gate. The 15 nm
 * factors are calibrated so the 45 nm -> 15 nm projection of the
 * paper's synthesized components lands on its published Table 3-4
 * values; intermediate nodes interpolate between published
 * foundry-reported scaling trends.
 */

#ifndef RSU_ARCH_TECHNOLOGY_H
#define RSU_ARCH_TECHNOLOGY_H

#include <string>
#include <vector>

namespace rsu::arch {

/** Parameters of one CMOS node, normalized to 45 nm = 1.0. */
struct TechNode
{
    int feature_nm;
    double vdd;          //!< supply voltage (V)
    double logic_cap;    //!< relative switched capacitance per gate
    double logic_area;   //!< relative logic area per gate
    double sram_cap;     //!< relative SRAM access energy
    double sram_area;    //!< relative SRAM area per bit
};

/** The supported node table. */
const std::vector<TechNode> &technologyNodes();

/** Node lookup by feature size; throws on unknown nodes. */
const TechNode &nodeByFeature(int feature_nm);

/**
 * Scale a dynamic power figure between nodes and clock frequencies.
 *
 * @param power_mw power at @p from running at @p from_mhz
 * @param sram true to use the SRAM capacitance track
 */
double scalePower(double power_mw, const TechNode &from,
                  double from_mhz, const TechNode &to, double to_mhz,
                  bool sram = false);

/** Scale an area figure between nodes. */
double scaleArea(double area_um2, const TechNode &from,
                 const TechNode &to, bool sram = false);

} // namespace rsu::arch

#endif // RSU_ARCH_TECHNOLOGY_H
