#include "arch/accel_sim.h"

#include <algorithm>
#include <stdexcept>

namespace rsu::arch {

AcceleratorSim::AcceleratorSim(rsu::mrf::GridMrf &mrf,
                               const AcceleratorSimConfig &config)
    : mrf_(mrf), config_(config), data2_(mrf.numLabels())
{
    if (config_.num_units < 1)
        throw std::invalid_argument("AcceleratorSim: need units");
    if (config_.frequency_ghz <= 0.0 || config_.mem_bw_gbs <= 0.0)
        throw std::invalid_argument("AcceleratorSim: bad "
                                    "configuration");

    rsu::core::RsuGConfig unit_config = config_.unit;
    unit_config.energy = mrf_.config().energy;
    units_.reserve(config_.num_units);
    for (int u = 0; u < config_.num_units; ++u) {
        units_.push_back(std::make_unique<rsu::core::RsuG>(
            unit_config, config_.seed + u));
        units_.back()->initialize(mrf_.numLabels(),
                                  mrf_.temperature());
        units_.back()->setLabelCodes(mrf_.labelCodes());
    }

    // Paper section 8.2 byte accounting: 1 B observed data + 4 B
    // neighbour labels, plus one byte per candidate when data2
    // varies per label (e.g. motion's 49 destination pixels).
    bytes_per_site_ =
        5 + (mrf_.singleton().data2PerLabel() &&
                     mrf_.numLabels() > 1
                 ? mrf_.numLabels()
                 : 0);
}

AcceleratorIterationStats
AcceleratorSim::sweep()
{
    const int n_units = numUnits();
    std::vector<uint64_t> busy_before(n_units);
    for (int u = 0; u < n_units; ++u) {
        busy_before[u] = units_[u]->stats().issue_cycles +
                         units_[u]->stats().stall_cycles;
    }

    // Checkerboard: all even-parity sites (round-robin across
    // units), then all odd-parity sites.
    int counter = 0;
    for (int parity = 0; parity < 2; ++parity) {
        for (int y = 0; y < mrf_.height(); ++y) {
            for (int x = 0; x < mrf_.width(); ++x) {
                if (((x + y) & 1) != parity)
                    continue;
                auto &unit = *units_[counter % n_units];
                ++counter;
                const auto in = mrf_.referencedInputsAt(x, y);
                mrf_.data2At(x, y, data2_.data());
                mrf_.setLabel(x, y,
                              unit.sample(in, data2_.data()));
            }
        }
    }

    AcceleratorIterationStats stats;
    for (int u = 0; u < n_units; ++u) {
        const uint64_t busy = units_[u]->stats().issue_cycles +
                              units_[u]->stats().stall_cycles -
                              busy_before[u];
        stats.total_cycles += busy;
        stats.critical_cycles =
            std::max(stats.critical_cycles, busy);
    }
    stats.bytes =
        static_cast<int64_t>(mrf_.size()) * bytes_per_site_;
    stats.compute_seconds =
        static_cast<double>(stats.critical_cycles) /
        (config_.frequency_ghz * 1e9);
    stats.memory_seconds = static_cast<double>(stats.bytes) /
                           (config_.mem_bw_gbs * 1e9);
    last_utilization_ =
        stats.critical_cycles == 0
            ? 0.0
            : static_cast<double>(stats.total_cycles) /
                  (static_cast<double>(stats.critical_cycles) *
                   n_units);
    return stats;
}

AcceleratorIterationStats
AcceleratorSim::run(int n)
{
    AcceleratorIterationStats acc;
    for (int i = 0; i < n; ++i) {
        const AcceleratorIterationStats s = sweep();
        acc.critical_cycles += s.critical_cycles;
        acc.total_cycles += s.total_cycles;
        acc.bytes += s.bytes;
        acc.compute_seconds += s.compute_seconds;
        acc.memory_seconds += s.memory_seconds;
    }
    return acc;
}

} // namespace rsu::arch
