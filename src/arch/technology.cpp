#include "arch/technology.h"

#include <stdexcept>

namespace rsu::arch {

const std::vector<TechNode> &
technologyNodes()
{
    // 45 nm is the reference (the paper's synthesis node). The
    // 15 nm factors are calibrated against the paper's Table 3-4
    // projections; 32/22 nm interpolate foundry scaling trends.
    static const std::vector<TechNode> nodes = {
        // nm   vdd   l_cap    l_area   s_cap    s_area
        {45, 1.10, 1.00000, 1.00000, 1.00000, 1.00000},
        {32, 1.00, 0.62000, 0.55000, 0.66000, 0.60000},
        {22, 0.92, 0.45000, 0.40000, 0.48000, 0.47000},
        {15, 0.85, 0.31976, 0.28220, 0.35795, 0.36485},
    };
    return nodes;
}

const TechNode &
nodeByFeature(int feature_nm)
{
    for (const auto &node : technologyNodes()) {
        if (node.feature_nm == feature_nm)
            return node;
    }
    throw std::invalid_argument("nodeByFeature: unsupported node " +
                                std::to_string(feature_nm) + " nm");
}

double
scalePower(double power_mw, const TechNode &from, double from_mhz,
           const TechNode &to, double to_mhz, bool sram)
{
    if (from_mhz <= 0.0 || to_mhz <= 0.0)
        throw std::invalid_argument("scalePower: bad frequency");
    const double cap_ratio = sram ? to.sram_cap / from.sram_cap
                                  : to.logic_cap / from.logic_cap;
    const double v_ratio = to.vdd / from.vdd;
    return power_mw * cap_ratio * v_ratio * v_ratio *
           (to_mhz / from_mhz);
}

double
scaleArea(double area_um2, const TechNode &from, const TechNode &to,
          bool sram)
{
    const double ratio = sram ? to.sram_area / from.sram_area
                              : to.logic_area / from.logic_area;
    return area_um2 * ratio;
}

} // namespace rsu::arch
