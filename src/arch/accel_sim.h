/**
 * @file
 * Functional simulator of the RSU-G discrete accelerator.
 *
 * The paper bounds the accelerator analytically (section 8.2); this
 * module *simulates* it: a farm of RSU-G units sweeps an MRF in
 * checkerboard order, same-parity sites distributed round-robin
 * across the units. Every conditional draw runs through a real
 * emulated unit (so results are statistically identical to a
 * single-unit run up to RNG streams), and per-unit cycle counters
 * give the iteration's critical path, which combines with the
 * per-site operand traffic to reproduce — or refute — the analytic
 * bandwidth bound.
 */

#ifndef RSU_ARCH_ACCEL_SIM_H
#define RSU_ARCH_ACCEL_SIM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rsu_g.h"
#include "mrf/grid_mrf.h"

namespace rsu::arch {

/** Accelerator farm parameters. */
struct AcceleratorSimConfig
{
    int num_units = 336;        //!< RSU-G units in the farm
    double frequency_ghz = 1.0; //!< unit clock
    double mem_bw_gbs = 336.0;  //!< DRAM bandwidth
    /** Unit template; its energy configuration is overwritten to
     * match the model's. */
    rsu::core::RsuGConfig unit;
    uint64_t seed = 1;
};

/** One iteration's timing breakdown. */
struct AcceleratorIterationStats
{
    uint64_t critical_cycles = 0; //!< max busy cycles over units
    uint64_t total_cycles = 0;    //!< sum of busy cycles
    int64_t bytes = 0;            //!< operand traffic (DRAM)
    double compute_seconds = 0.0;
    double memory_seconds = 0.0;

    double seconds() const
    {
        return compute_seconds > memory_seconds ? compute_seconds
                                                : memory_seconds;
    }
};

/** The simulated accelerator. */
class AcceleratorSim
{
  public:
    /**
     * @param mrf model to solve (mutated in place; must outlive
     *        the simulator)
     * @param config farm parameters
     */
    AcceleratorSim(rsu::mrf::GridMrf &mrf,
                   const AcceleratorSimConfig &config);

    /** One full MCMC iteration; returns its timing breakdown. */
    AcceleratorIterationStats sweep();

    /** Run @p n iterations; returns the accumulated breakdown. */
    AcceleratorIterationStats run(int n);

    /** Average unit utilization over the last sweep: mean busy
     * cycles / critical cycles. */
    double lastUtilization() const { return last_utilization_; }

    /** Bytes a site update transfers (paper section 8.2
     * accounting: 1 data byte + 4 neighbour labels + the
     * per-candidate data2 stream when the application needs it). */
    int bytesPerSite() const { return bytes_per_site_; }

    int numUnits() const
    {
        return static_cast<int>(units_.size());
    }

    rsu::core::RsuG &unit(int i) { return *units_[i]; }

  private:
    rsu::mrf::GridMrf &mrf_;
    AcceleratorSimConfig config_;
    std::vector<std::unique_ptr<rsu::core::RsuG>> units_;
    std::vector<uint8_t> data2_;
    int bytes_per_site_;
    double last_utilization_ = 0.0;
};

} // namespace rsu::arch

#endif // RSU_ARCH_ACCEL_SIM_H
