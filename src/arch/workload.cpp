#include "arch/workload.h"

namespace rsu::arch {

Workload
segmentationWorkload(int width, int height)
{
    Workload w;
    w.name = "image-segmentation";
    w.width = width;
    w.height = height;
    w.num_labels = 5;
    w.iterations = 5000;
    // 1 B pixel intensity + 4 B neighbour labels (section 8.2).
    w.bytes_per_pixel = 5;
    // Calibration: overhead/label-cycle constants fitted once
    // against the paper's Table 2 baseline GPU column (see
    // EXPERIMENTS.md); RSU constants follow from the instruction
    // sequence (NEIGHBORS + SINGLETON_A + ENERGY_OFFSET + 1 packed
    // SINGLETON_D + read = 5) with class means held in registers
    // (no per-label memory traffic, so the slot cost is the bare
    // issue cycle).
    w.gpu.overhead_cycles = 300.0;
    w.gpu.label_cycles = 120.8;
    w.gpu.label_cycles_opt = 82.6;
    w.gpu.rsu_overhead_cycles = 285.0;
    w.gpu.rsu_slot_cycles = 1.0;
    w.gpu.rsu_instructions = 5.0;
    w.gpu.occupancy_p0 = 101500.0;
    return w;
}

Workload
motionWorkload(int width, int height)
{
    Workload w;
    w.name = "dense-motion-estimation";
    w.width = width;
    w.height = height;
    w.num_labels = 49;
    w.iterations = 400;
    // 49 B destination intensities + 1 B source intensity + 4 B
    // neighbour labels (section 8.2).
    w.bytes_per_pixel = 54;
    // Motion's RSU kernel still performs one uncoalesced frame-2
    // load per candidate label (the SINGLETON_D stream), so the
    // slot cost stays high; the instruction sequence is NEIGHBORS +
    // SINGLETON_A + ENERGY_OFFSET + ceil(49/8) packed SINGLETON_D
    // + read = 11.
    w.gpu.overhead_cycles = 300.0;
    w.gpu.label_cycles = 520.0;
    w.gpu.label_cycles_opt = 246.0;
    w.gpu.rsu_overhead_cycles = 463.0;
    w.gpu.rsu_slot_cycles = 28.6;
    w.gpu.rsu_instructions = 11.0;
    w.gpu.occupancy_p0 = 61400.0;
    return w;
}

Workload
stereoWorkload(int width, int height)
{
    Workload w;
    w.name = "stereo-vision";
    w.width = width;
    w.height = height;
    w.num_labels = 5;
    w.iterations = 5000;
    // Same operand footprint as segmentation plus the shifted
    // right-image pixel per label; 5 candidate loads + 1 + 4.
    w.bytes_per_pixel = 10;
    // Stereo is costed like segmentation with a per-label load.
    w.gpu.overhead_cycles = 300.0;
    w.gpu.label_cycles = 150.0;
    w.gpu.label_cycles_opt = 95.0;
    w.gpu.rsu_overhead_cycles = 300.0;
    w.gpu.rsu_slot_cycles = 10.0;
    w.gpu.rsu_instructions = 5.0;
    w.gpu.occupancy_p0 = 101500.0;
    return w;
}

} // namespace rsu::arch
