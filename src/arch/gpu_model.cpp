#include "arch/gpu_model.h"

#include <cmath>
#include <stdexcept>

#include "arch/power_area.h"

namespace rsu::arch {

std::string
variantName(GpuVariant variant)
{
    switch (variant) {
      case GpuVariant::Baseline:
        return "GPU";
      case GpuVariant::Optimized:
        return "Opt GPU";
      case GpuVariant::RsuG1:
        return "RSU-G1";
      case GpuVariant::RsuG4:
        return "RSU-G4";
    }
    throw std::invalid_argument("variantName: bad variant");
}

GpuModel::GpuModel(const GpuConfig &config) : config_(config)
{
    if (config_.lanes < 1 || config_.frequency_ghz <= 0.0 ||
        config_.mem_bw_gbs <= 0.0)
        throw std::invalid_argument("GpuModel: bad configuration");
}

double
GpuModel::cyclesPerPixel(const Workload &w, GpuVariant variant) const
{
    const GpuKernelCosts &c = w.gpu;
    const double m = static_cast<double>(w.num_labels);
    switch (variant) {
      case GpuVariant::Baseline:
        return c.overhead_cycles + m * c.label_cycles;
      case GpuVariant::Optimized:
        return c.overhead_cycles + m * c.label_cycles_opt;
      case GpuVariant::RsuG1:
        return c.rsu_overhead_cycles + c.rsu_instructions +
               std::ceil(m / 1.0) * c.rsu_slot_cycles;
      case GpuVariant::RsuG4:
        return c.rsu_overhead_cycles + c.rsu_instructions +
               std::ceil(m / 4.0) * c.rsu_slot_cycles;
    }
    throw std::invalid_argument("cyclesPerPixel: bad variant");
}

double
GpuModel::occupancy(const Workload &w) const
{
    const double p = static_cast<double>(w.pixels());
    return p / (p + w.gpu.occupancy_p0);
}

double
GpuModel::iterationSeconds(const Workload &w, GpuVariant variant) const
{
    const double compute_s =
        static_cast<double>(w.pixels()) * cyclesPerPixel(w, variant) /
        (static_cast<double>(config_.lanes) * config_.frequency_ghz *
         1e9 * occupancy(w));
    // Memory floor: no variant can beat streaming the per-iteration
    // working set at DRAM bandwidth.
    const double memory_s =
        static_cast<double>(w.pixels()) * w.bytes_per_pixel /
        (config_.mem_bw_gbs * 1e9);
    return std::max(compute_s, memory_s);
}

double
GpuModel::totalSeconds(const Workload &w, GpuVariant variant) const
{
    return iterationSeconds(w, variant) * w.iterations;
}

double
GpuModel::speedup(const Workload &w, GpuVariant variant,
                  GpuVariant reference) const
{
    return totalSeconds(w, reference) / totalSeconds(w, variant);
}

double
GpuModel::rsuPowerW(int feature_nm) const
{
    const RsuBudget unit = RsuPowerAreaModel::project(
        feature_nm, config_.frequency_ghz * 1000.0);
    return RsuPowerAreaModel::systemPowerW(unit, config_.lanes);
}

} // namespace rsu::arch
