/**
 * @file
 * RSU-G1 power and area component model (paper Tables 3-4).
 *
 * The paper decomposes an RSU-G1 into three components:
 *
 *  - Logic: the synthesized CMOS datapath (energy unit, selection,
 *    counters) — 7.20 mW / 2275 um^2 at 45 nm, 590 MHz;
 *  - RET circuit: 4 replicated circuits of SPAD (~1 um^2) + four
 *    QD-LEDs (~16 x 25 um^2) + the RET network ensemble layered
 *    above the SPAD — 0.16 mW / 1600 um^2, *not* scaled with CMOS;
 *  - LUT: the 256 x 4-bit intensity map SRAM — 3.92 mW / 1798 um^2
 *    at 45 nm (Cacti).
 *
 * The 45 nm values are model inputs (they come from the paper's
 * synthesis); projections to other nodes run through the technology
 * scaling model, and system-level roll-ups (GPU augmentation,
 * discrete accelerator) multiply by unit counts.
 */

#ifndef RSU_ARCH_POWER_AREA_H
#define RSU_ARCH_POWER_AREA_H

#include "arch/technology.h"

namespace rsu::arch {

/** Power/area of one RSU-G1 component set at some node. */
struct RsuBudget
{
    double logic_mw;
    double ret_mw;
    double lut_mw;
    double logic_um2;
    double ret_um2;
    double lut_um2;

    double totalPowerMw() const { return logic_mw + ret_mw + lut_mw; }
    double totalAreaUm2() const
    {
        return logic_um2 + ret_um2 + lut_um2;
    }
};

/** RSU-G1 power/area estimator. */
class RsuPowerAreaModel
{
  public:
    /** 45 nm, 590 MHz synthesis reference values. */
    static RsuBudget reference45nm();

    /**
     * Project the reference to @p feature_nm at @p freq_mhz. The
     * RET circuit is optical and does not scale.
     */
    static RsuBudget project(int feature_nm, double freq_mhz);

    /** Per-RET-circuit optics area (SPAD + 4 QD-LEDs), um^2. */
    static double retCircuitAreaUm2();

    /** Aggregate power (W) for @p units active RSU-G1 units. */
    static double systemPowerW(const RsuBudget &unit, int units);

    /**
     * Project a K-wide RSU-G (the paper's section 9 "width and
     * depth" exploration). Component scaling relative to RSU-G1:
     *
     *  - energy/selection logic replicates per lane, plus a
     *    comparator tree of K-1 nodes (~15 % of a lane's logic
     *    each);
     *  - the intensity LUT needs one read port per lane; SRAM area
     *    and access energy grow ~sqrt-linearly with ports, modeled
     *    as replicated banks (worst case: x K);
     *  - RET circuits: K lanes x @p circuits_per_lane replicas.
     *
     * @param width lane count K (RSU-G1..G64)
     * @param circuits_per_lane replication (4 covers quiescence)
     */
    static RsuBudget projectWidth(int feature_nm, double freq_mhz,
                                  int width,
                                  int circuits_per_lane = 4);
};

} // namespace rsu::arch

#endif // RSU_ARCH_POWER_AREA_H
