#include "arch/cpu_model.h"

#include <algorithm>
#include <stdexcept>

namespace rsu::arch {

CpuModel::CpuModel(const CpuConfig &config) : config_(config)
{
    if (config_.frequency_ghz <= 0.0)
        throw std::invalid_argument("CpuModel: bad frequency");
}

double
CpuModel::baselineSeconds(const Workload &w) const
{
    const double per_pixel =
        config_.overhead_cycles +
        w.num_labels * (config_.param_cycles_per_label +
                        config_.sample_cycles_per_label);
    return static_cast<double>(w.pixels()) * w.iterations *
           per_pixel / (config_.frequency_ghz * 1e9);
}

double
CpuModel::rsuSeconds(const Workload &w) const
{
    // The in-order core stalls for the RSU-G1's 7 + (M-1) cycle
    // evaluation; operand writes overlap the tail of the previous
    // evaluation (software pipelining, section 6.1).
    const double rsu_wait = 7.0 + (w.num_labels - 1);
    const double per_pixel =
        config_.rsu_overhead_cycles +
        std::max(config_.rsu_instruction_cycles, rsu_wait);
    return static_cast<double>(w.pixels()) * w.iterations *
           per_pixel / (config_.frequency_ghz * 1e9);
}

double
CpuModel::speedup(const Workload &w) const
{
    return baselineSeconds(w) / rsuSeconds(w);
}

} // namespace rsu::arch
