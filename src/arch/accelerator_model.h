/**
 * @file
 * Discrete-accelerator performance bound (paper section 8.2).
 *
 * A custom accelerator built from RSU-G units is bounded by DRAM
 * bandwidth: each pixel's update consumes a fixed number of bytes
 * per MCMC iteration (5 for segmentation, 54 for motion), so the
 * best-case execution time is
 *
 *   time = pixels * iterations * bytes_per_pixel / bandwidth
 *
 * and the unit count needed to sustain that rate is
 *
 *   units = bandwidth / frequency / bytes_consumed_per_unit_cycle.
 *
 * The model also reports the aggregate RSU power at a target node
 * (the paper's 336-unit accelerator draws 1.3 W of RSU power).
 */

#ifndef RSU_ARCH_ACCELERATOR_MODEL_H
#define RSU_ARCH_ACCELERATOR_MODEL_H

#include "arch/workload.h"

namespace rsu::arch {

/** Accelerator hardware parameters. */
struct AcceleratorConfig
{
    double mem_bw_gbs = 336.0;      //!< DRAM bandwidth
    double frequency_ghz = 1.0;     //!< RSU clock
    double bytes_per_unit_cycle = 1.0; //!< consumption rate per unit
};

/** Bandwidth-bound accelerator model. */
class AcceleratorModel
{
  public:
    explicit AcceleratorModel(const AcceleratorConfig &config = {});

    /** Best-case seconds for the full workload run. */
    double totalSeconds(const Workload &w) const;

    /** RSU-G units required to consume DRAM bandwidth. */
    int requiredUnits() const;

    /** Aggregate RSU power (W) for the required units at a node. */
    double rsuPowerW(int feature_nm = 15) const;

    const AcceleratorConfig &config() const { return config_; }

  private:
    AcceleratorConfig config_;
};

} // namespace rsu::arch

#endif // RSU_ARCH_ACCELERATOR_MODEL_H
