/**
 * @file
 * Workload descriptions for the architecture models.
 *
 * A Workload captures everything the timing models need to cost one
 * of the paper's applications at a given image size: lattice size,
 * label count, MCMC iteration count, per-pixel memory traffic
 * (paper section 8.2's byte accounting), and the calibrated GPU
 * kernel cost constants (see gpu_model.h for the calibration
 * methodology).
 */

#ifndef RSU_ARCH_WORKLOAD_H
#define RSU_ARCH_WORKLOAD_H

#include <cstdint>
#include <string>

namespace rsu::arch {

/** Calibrated per-application GPU kernel cost constants. */
struct GpuKernelCosts
{
    /** Per-pixel fixed overhead, cycles (loads, addressing, loop). */
    double overhead_cycles;
    /** Per-label energy + sampling cost, cycles (baseline). */
    double label_cycles;
    /** Per-label cost with precomputed singletons (Opt). */
    double label_cycles_opt;
    /** Per-pixel fixed overhead of the RSU-augmented kernel. */
    double rsu_overhead_cycles;
    /** Per-issue-slot RSU-side cost, cycles (multiplies ceil(M/K)):
     * non-overlapped sampling wait plus per-label operand traffic. */
    double rsu_slot_cycles;
    /** RSU instructions issued per pixel (operand writes + read). */
    double rsu_instructions;
    /** GPU occupancy half-saturation point, active pixels. */
    double occupancy_p0;
};

/** One application at one image size. */
struct Workload
{
    std::string name;
    int width;
    int height;
    int num_labels;
    int iterations;
    /** DRAM bytes touched per pixel per MCMC iteration (paper
     * section 8.2: segmentation 5, motion estimation 54). */
    int bytes_per_pixel;
    GpuKernelCosts gpu;

    int64_t
    pixels() const
    {
        return static_cast<int64_t>(width) * height;
    }
};

/** The paper's image segmentation workload (M = 5, 5000 iters). */
Workload segmentationWorkload(int width, int height);

/** The paper's dense motion estimation workload (M = 49, 400
 * iters, 7x7 window). */
Workload motionWorkload(int width, int height);

/** The paper's stereo vision workload (M = 5; evaluated on the CPU
 * in the paper). */
Workload stereoWorkload(int width, int height);

/** 320x320 ("small") and 1080x1920 ("HD") sizes used throughout. */
constexpr int kSmallWidth = 320;
constexpr int kSmallHeight = 320;
constexpr int kHdWidth = 1920;
constexpr int kHdHeight = 1080;

} // namespace rsu::arch

#endif // RSU_ARCH_WORKLOAD_H
