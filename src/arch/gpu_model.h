/**
 * @file
 * Analytic SIMT throughput model of the (RSU-augmented) GPU.
 *
 * The paper evaluates RSU-augmented GPUs by emulation: select code
 * sequences of a best-effort CUDA implementation are replaced by
 * instruction sequences matching the RSU's theoretical timing, and
 * the whole program is timed on a GTX Titan X (section 8.1). We
 * cannot run CUDA, so we model one level up with the same structure:
 *
 *   time/iteration = pixels * cycles_per_pixel
 *                    / (lanes * frequency * occupancy(pixels))
 *
 *   cycles_per_pixel(baseline) = overhead + M * label_cycles
 *   cycles_per_pixel(opt)      = overhead + M * label_cycles_opt
 *   cycles_per_pixel(RSU-Gk)   = rsu_overhead + rsu_instructions
 *                                + ceil(M/K) * rsu_slot_cycles
 *
 *   occupancy(p) = p / (p + P0)   (small images under-fill the GPU;
 *                                  the paper notes 320x320 does not
 *                                  saturate while HD does)
 *
 * Calibration methodology (full derivation in EXPERIMENTS.md): the
 * baseline column of the paper's Table 2 fixes {overhead,
 * label_cycles, P0} per application; every other cell — Opt GPU,
 * RSU-G1, RSU-G4, both image sizes, and all of Figure 8 — is then a
 * model prediction, reported against the paper's value.
 */

#ifndef RSU_ARCH_GPU_MODEL_H
#define RSU_ARCH_GPU_MODEL_H

#include <string>

#include "arch/workload.h"

namespace rsu::arch {

/** GPU hardware parameters (defaults: GTX Titan X). */
struct GpuConfig
{
    int lanes = 3072;           //!< CUDA cores / RSU units
    double frequency_ghz = 1.0; //!< core clock
    double mem_bw_gbs = 336.0;  //!< DRAM bandwidth
};

/** Kernel variants Table 2 compares. */
enum class GpuVariant {
    Baseline, //!< standard MCMC, everything computed in CUDA
    Optimized, //!< singletons precomputed and loaded from memory
    RsuG1,    //!< augmented with 1-wide RSU-G units
    RsuG4,    //!< augmented with 4-wide RSU-G units
};

/** Human-readable variant name. */
std::string variantName(GpuVariant variant);

/** The analytic GPU timing model. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuConfig &config = {});

    /** Modeled cycles per pixel per iteration for a variant. */
    double cyclesPerPixel(const Workload &w, GpuVariant variant) const;

    /** GPU occupancy factor for @p w's image size. */
    double occupancy(const Workload &w) const;

    /** Modeled seconds for one MCMC iteration. */
    double iterationSeconds(const Workload &w,
                            GpuVariant variant) const;

    /** Modeled seconds for the workload's full run — the quantity
     * Table 2 reports. */
    double totalSeconds(const Workload &w, GpuVariant variant) const;

    /** Speedup of @p variant over @p reference (Figure 8). */
    double speedup(const Workload &w, GpuVariant variant,
                   GpuVariant reference) const;

    /** Additional watts when all lanes' RSU units are active. */
    double rsuPowerW(int feature_nm = 15) const;

    const GpuConfig &config() const { return config_; }

  private:
    GpuConfig config_;
};

} // namespace rsu::arch

#endif // RSU_ARCH_GPU_MODEL_H
