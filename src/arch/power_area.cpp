#include "arch/power_area.h"

#include <stdexcept>

namespace rsu::arch {

RsuBudget
RsuPowerAreaModel::reference45nm()
{
    // Paper Tables 3-4, 45 nm column (590 MHz synthesis).
    RsuBudget b;
    b.logic_mw = 7.20;
    b.ret_mw = 0.16;
    b.lut_mw = 3.92;
    b.logic_um2 = 2275.0;
    b.ret_um2 = 1600.0;
    b.lut_um2 = 1798.0;
    return b;
}

RsuBudget
RsuPowerAreaModel::project(int feature_nm, double freq_mhz)
{
    const RsuBudget ref = reference45nm();
    const TechNode &from = nodeByFeature(45);
    const TechNode &to = nodeByFeature(feature_nm);
    constexpr double kRefMhz = 590.0;

    RsuBudget b;
    b.logic_mw =
        scalePower(ref.logic_mw, from, kRefMhz, to, freq_mhz, false);
    b.lut_mw =
        scalePower(ref.lut_mw, from, kRefMhz, to, freq_mhz, true);
    b.ret_mw = ref.ret_mw; // optics do not scale with CMOS
    b.logic_um2 = scaleArea(ref.logic_um2, from, to, false);
    b.lut_um2 = scaleArea(ref.lut_um2, from, to, true);
    b.ret_um2 = ref.ret_um2;
    return b;
}

double
RsuPowerAreaModel::retCircuitAreaUm2()
{
    // SPAD ~1 um^2 plus four 16 x 25 um^2 QD-LEDs; the RET network
    // ensemble (~N * 20 x 20 x 2 nm^3) layers above the SPAD at
    // negligible footprint. The paper rounds to 400 um^2.
    return 400.0;
}

double
RsuPowerAreaModel::systemPowerW(const RsuBudget &unit, int units)
{
    return unit.totalPowerMw() * 1e-3 * static_cast<double>(units);
}

RsuBudget
RsuPowerAreaModel::projectWidth(int feature_nm, double freq_mhz,
                                int width, int circuits_per_lane)
{
    if (width < 1 || circuits_per_lane < 1)
        throw std::invalid_argument("projectWidth: bad shape");
    const RsuBudget g1 = project(feature_nm, freq_mhz);
    const double k = static_cast<double>(width);
    // The RSU-G1 reference integrates 4 RET circuits; rescale to
    // the requested replication before widening.
    const double circuit_scale =
        static_cast<double>(circuits_per_lane) / 4.0;

    RsuBudget b;
    // One lane's datapath per lane plus a (K-1)-node selection
    // comparator tree at ~15% of a lane's logic per node.
    b.logic_mw = g1.logic_mw * (k + 0.15 * (k - 1.0));
    b.logic_um2 = g1.logic_um2 * (k + 0.15 * (k - 1.0));
    // LUT banked per lane (worst-case port scaling).
    b.lut_mw = g1.lut_mw * k;
    b.lut_um2 = g1.lut_um2 * k;
    // Optics replicate exactly.
    b.ret_mw = g1.ret_mw * k * circuit_scale;
    b.ret_um2 = g1.ret_um2 * k * circuit_scale;
    return b;
}

} // namespace rsu::arch
