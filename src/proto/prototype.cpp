#include "proto/prototype.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace rsu::proto {

PrototypeRsuG2::PrototypeRsuG2(const PrototypeConfig &config,
                               uint64_t seed)
    : config_(config), rng_(seed)
{
    if (config_.timer_resolution_ns <= 0.0 ||
        config_.base_rate_per_ns <= 0.0)
        throw std::invalid_argument("PrototypeRsuG2: bad physical "
                                    "parameters");
    configure(1.0, 1.0);
}

void
PrototypeRsuG2::configure(double intensity_a, double intensity_b)
{
    if (intensity_a <= 0.0 || intensity_b <= 0.0)
        throw std::invalid_argument("PrototypeRsuG2: intensities "
                                    "must be positive");
    const double commanded[2] = {intensity_a, intensity_b};
    const double ratio =
        std::max(intensity_a / intensity_b, intensity_b / intensity_a);
    const double sigma = ratio <= config_.calib_linear_limit
                             ? config_.calib_sigma_low
                             : config_.calib_sigma_high;
    for (int c = 0; c < 2; ++c) {
        // One multiplicative calibration draw per configuration.
        const double err = std::exp(
            rsu::rng::sampleNormal(rng_, 0.0, sigma * 0.7071));
        double rate = config_.base_rate_per_ns * commanded[c] * err;
        // SPAD dead-time compression of high rates.
        rate /= 1.0 + config_.saturation * commanded[c];
        rate_[c] = rate;
    }
}

int
PrototypeRsuG2::shoot()
{
    for (;;) {
        ++shots_;
        const double ta =
            rsu::rng::sampleExponential(rng_, rate_[0]);
        const double tb =
            rsu::rng::sampleExponential(rng_, rate_[1]);
        const auto quantize = [this](double t) {
            return static_cast<long>(t / config_.timer_resolution_ns);
        };
        const long qa = quantize(ta);
        const long qb = quantize(tb);
        const bool a_lost = qa >= config_.timer_range_ticks;
        const bool b_lost = qb >= config_.timer_range_ticks;
        if (a_lost && b_lost)
            continue; // no photon in the window: re-arm and re-fire
        if (a_lost)
            return 1;
        if (b_lost)
            return 0;
        if (qa == qb)
            continue; // unresolvable at 250 ps: re-fire
        return qa < qb ? 0 : 1;
    }
}

double
PrototypeRsuG2::measureRatio(int trials)
{
    if (trials < 1)
        throw std::invalid_argument("measureRatio: need trials");
    long wins_a = 0;
    for (int i = 0; i < trials; ++i) {
        if (shoot() == 0)
            ++wins_a;
    }
    const long wins_b = trials - wins_a;
    // Add-one smoothing so a clean sweep yields a finite ratio.
    return (static_cast<double>(wins_a) + 1.0) /
           (static_cast<double>(wins_b) + 1.0);
}

double
PrototypeRsuG2::achievedRate(int channel) const
{
    return rate_[channel == 0 ? 0 : 1];
}

std::vector<RatioMeasurement>
ratioSweep(const PrototypeConfig &config, uint64_t seed,
           const std::vector<double> &ratios, int trials, int repeats)
{
    PrototypeRsuG2 proto(config, seed);
    std::vector<RatioMeasurement> results;
    results.reserve(ratios.size());
    for (double r : ratios) {
        double err_acc = 0.0;
        double measured_acc = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
            proto.configure(r, 1.0);
            const double measured = proto.measureRatio(trials);
            measured_acc += measured;
            err_acc += std::abs(measured - r) / r;
        }
        results.push_back(
            {r, measured_acc / repeats, err_acc / repeats});
    }
    return results;
}

PrototypeGibbsSampler::PrototypeGibbsSampler(rsu::mrf::GridMrf &mrf,
                                             PrototypeRsuG2 &proto)
    : mrf_(mrf), proto_(proto)
{
    if (mrf_.numLabels() != 2)
        throw std::invalid_argument("PrototypeGibbsSampler: the "
                                    "RSU-G2 bench has two channels");
}

void
PrototypeGibbsSampler::sweep()
{
    const double t = mrf_.temperature();
    for (int y = 0; y < mrf_.height(); ++y) {
        for (int x = 0; x < mrf_.width(); ++x) {
            // PC-side energy computation and intensity mapping
            // (continuous laser control, no 4-bit LUT).
            const rsu::mrf::Energy e0 = mrf_.conditionalEnergy(
                x, y, mrf_.codeOf(0));
            const rsu::mrf::Energy e1 = mrf_.conditionalEnergy(
                x, y, mrf_.codeOf(1));
            const double i0 = std::exp(
                -(static_cast<double>(e0) -
                  std::min<double>(e0, e1)) /
                t);
            const double i1 = std::exp(
                -(static_cast<double>(e1) -
                  std::min<double>(e0, e1)) /
                t);
            proto_.configure(i0, i1);
            const int winner = proto_.shoot();
            mrf_.setLabel(x, y, mrf_.codeOf(winner));
            ++pixel_samples_;
        }
    }
    ++iterations_;
}

void
PrototypeGibbsSampler::run(int iterations)
{
    for (int i = 0; i < iterations; ++i)
        sweep();
}

PrototypeTiming
PrototypeGibbsSampler::timing() const
{
    PrototypeTiming t;
    t.sampling_s = static_cast<double>(pixel_samples_) *
                   proto_.config().sample_delay_us * 1e-6;
    t.interface_s = static_cast<double>(iterations_) *
                    proto_.config().interface_delay_s;
    return t;
}

} // namespace rsu::proto
