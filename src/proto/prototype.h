/**
 * @file
 * Macro-scale RSU-G2 prototype emulation (paper section 7).
 *
 * The paper demonstrates the fundamental RSU operation with a
 * bench-top prototype: two laser-driven RET networks, two SPADs, an
 * FPGA time-to-fluorescence circuit with 250 ps resolution, and a
 * PC running the outer MCMC loop. Parameterization happens in
 * software by setting laser intensities, so — unlike the integrated
 * RSU-G — the rate ratio is continuous but imperfectly calibrated.
 *
 * The emulation models the two experimentally observed error
 * sources:
 *
 *  - calibration noise: the achieved intensity of a channel differs
 *    from the commanded one by a multiplicative lognormal error
 *    whose magnitude grows for extreme settings (driver
 *    nonlinearity at the ends of the control range);
 *  - detector saturation: SPAD dead time compresses high rates,
 *    systematically under-reporting large ratios.
 *
 * Both are calibrated to the paper's measurement: commanded
 * pairwise relative probabilities land within ~10 % for ratios
 * below 30 and ~24 % above (ratios swept 1..255).
 *
 * The prototype also carries the bench timing constants the paper
 * reports — ~2 us of electrical delay per pixel sample and ~60 s of
 * proprietary laser-controller interface delay per image iteration
 * — so the Figure 7 bench can report the wall-clock the physical
 * system would take without actually sleeping through it.
 */

#ifndef RSU_PROTO_PROTOTYPE_H
#define RSU_PROTO_PROTOTYPE_H

#include <cstdint>
#include <vector>

#include "mrf/grid_mrf.h"
#include "rng/xoshiro256.h"

namespace rsu::proto {

/** Physical and error-model parameters of the bench setup. */
struct PrototypeConfig
{
    /** FPGA timing resolution (the paper resolves 250 ps). */
    double timer_resolution_ns = 0.25;
    /** Timer range in ticks before a shot is declared lost. */
    int timer_range_ticks = 4096;
    /** Base detection rate of a channel at unit intensity (1/ns).
     * Kept low enough that even a 255x-commanded channel stays well
     * below one photon per 250 ps timer tick — the bench's optical
     * rates were far slower than the integrated RSU-G's. */
    double base_rate_per_ns = 0.002;
    /** Lognormal calibration-noise sigma for benign settings. */
    double calib_sigma_low = 0.10;
    /** Sigma once a channel is commanded past the linear range. */
    double calib_sigma_high = 0.20;
    /** Commanded-ratio threshold between the two regimes. */
    double calib_linear_limit = 30.0;
    /** SPAD dead-time compression constant (dimensionless). */
    double saturation = 0.0003;
    /** Electrical delay per pixel sample (bench timing). */
    double sample_delay_us = 2.0;
    /** Laser-controller interface delay per image iteration (s). */
    double interface_delay_s = 60.0;
};

/** The two-channel bench-top sampling unit. */
class PrototypeRsuG2
{
  public:
    PrototypeRsuG2(const PrototypeConfig &config, uint64_t seed);

    /**
     * Command the two channels' relative intensities. Calibration
     * error is drawn once per configuration, as on the bench where
     * a laser setting stays in place across many shots.
     */
    void configure(double intensity_a, double intensity_b);

    /**
     * Fire both channels once; returns 0 if channel A's photon is
     * detected first, 1 for channel B. FPGA-quantized at 250 ps;
     * ties and double-losses resolve by re-firing, as the bench
     * software did.
     */
    int shoot();

    /**
     * Estimate the achieved probability ratio P(A)/P(B) from
     * @p trials shots at the current configuration.
     */
    double measureRatio(int trials);

    /** Achieved (post-error) rate of a channel, for inspection. */
    double achievedRate(int channel) const;

    /** Total shots fired since construction. */
    uint64_t shots() const { return shots_; }

    const PrototypeConfig &config() const { return config_; }

  private:
    PrototypeConfig config_;
    rsu::rng::Xoshiro256 rng_;
    double rate_[2] = {0.0, 0.0};
    uint64_t shots_ = 0;
};

/** One ratio-sweep measurement point (the section 7 experiment). */
struct RatioMeasurement
{
    double commanded; //!< commanded probability ratio
    double measured;  //!< achieved ratio from the shot counts
    double rel_error; //!< |measured - commanded| / commanded
};

/**
 * Run the paper's parameterization experiment: sweep commanded
 * ratios over @p ratios, @p trials shots each, @p repeats
 * configurations per ratio (averaging over calibration draws).
 */
std::vector<RatioMeasurement>
ratioSweep(const PrototypeConfig &config, uint64_t seed,
           const std::vector<double> &ratios, int trials,
           int repeats);

/** Bench-time accounting for a prototype-driven MCMC run. */
struct PrototypeTiming
{
    double sampling_s;  //!< electrical sampling delay total
    double interface_s; //!< laser-controller interface total
    double totalS() const { return sampling_s + interface_s; }
};

/**
 * Gibbs sampler that draws two-label conditionals through the
 * prototype, with energies and intensity mapping computed in
 * software on the "PC" (paper section 7's image segmentation
 * demonstration).
 */
class PrototypeGibbsSampler
{
  public:
    /**
     * @param mrf a two-label model (num_labels must be 2)
     * @param proto the bench unit
     */
    PrototypeGibbsSampler(rsu::mrf::GridMrf &mrf,
                          PrototypeRsuG2 &proto);

    /** One MCMC iteration over the whole image. */
    void sweep();

    void run(int iterations);

    /** Bench wall-clock the physical system would have taken. */
    PrototypeTiming timing() const;

    uint64_t iterations() const { return iterations_; }

  private:
    rsu::mrf::GridMrf &mrf_;
    PrototypeRsuG2 &proto_;
    uint64_t iterations_ = 0;
    uint64_t pixel_samples_ = 0;
};

} // namespace rsu::proto

#endif // RSU_PROTO_PROTOTYPE_H
