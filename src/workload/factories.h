/**
 * @file
 * Per-workload InferenceProblem factories.
 *
 * Each factory builds a complete, self-owning problem instance for
 * one of the repository's MRF applications: the paper's three
 * evaluation workloads (segmentation, dense motion estimation,
 * stereo), the denoising extension, and a synthetic random-field
 * workload for serving/benchmark traffic. Synthetic instances are
 * generated from vision/synthetic.h with pixel-exact ground truth,
 * so every problem carries a meaningful quality metric; the
 * image-input overload serves real data (no ground truth, k-means
 * class means).
 *
 * Ownership: factories copy or generate the observations into a
 * holder that lives inside the problem's shared model pointer
 * (std::shared_ptr aliasing), so the returned InferenceProblem —
 * and any job made from it — keeps everything it references alive.
 */

#ifndef RSU_WORKLOAD_FACTORIES_H
#define RSU_WORKLOAD_FACTORIES_H

#include <cstdint>

#include "workload/problem.h"

namespace rsu::workload {

/**
 * Common instance-generation knobs. A zero / negative value selects
 * the per-workload default listed on each factory.
 */
struct SceneOptions
{
    int width = 0;  //!< lattice width (0 = workload default)
    int height = 0; //!< lattice height (0 = workload default)

    /** Label count: regions (segmentation), disparities (stereo),
     * intensity levels (denoise), candidates (synthetic). Motion
     * derives M from a search radius instead and accepts either a
     * radius (1..3) or a full window size (9, 25, 49) here. */
    int labels = 0;

    /** Observation noise std-dev in 6-bit intensity units
     * (negative = workload default). */
    double noise_sigma = -1.0;

    /** Scene-generation seed (content, not the sampling chain). */
    uint64_t seed = 2016;

    /** Gibbs temperature override (<= 0 = workload default). */
    double temperature = 0.0;

    /** Doubleton smoothness weight override (<= 0 = default). */
    int doubleton_weight = 0;
};

/**
 * Piecewise-constant multi-region scene, intensity-mean singleton
 * model (paper sections 7-8 flagship workload). Defaults: 160x120,
 * 5 regions, sigma 3.0, T = 6, weight 6. Quality: labelAccuracy
 * against the generated region map.
 */
InferenceProblem makeSegmentation(const SceneOptions &options = {});

/**
 * Segmentation of a caller-supplied image (e.g. a loaded PGM):
 * class means from 1-D k-means, no ground truth, quality metric
 * absent. The image is copied into the problem.
 */
InferenceProblem makeSegmentation(const rsu::vision::Image &image,
                                  const SceneOptions &options = {});

/**
 * Rectified stereo pair over fronto-parallel surfaces. Defaults:
 * 128x96, 5 disparities, sigma 1.0, T = 6, weight 6. Quality:
 * labelAccuracy against the true disparity map.
 */
InferenceProblem makeStereo(const SceneOptions &options = {});

/**
 * Two-frame dense motion estimation with rigidly translating
 * objects (vector labels, M = (2r+1)^2). Defaults: 96x72, radius 3
 * (M = 49), sigma 1.0, T = 4, weight 2. Quality: meanEndpointError
 * (pixels, lower is better) against the true displacement field.
 */
InferenceProblem makeMotion(const SceneOptions &options = {});

/**
 * Quantized-intensity restoration of a noise-corrupted
 * piecewise-constant image (Geman & Geman). Defaults: 128x96, 6
 * levels, sigma 6.0, T = 4, weight 2. Quality: PSNR (dB) of the
 * reconstruction against the clean image.
 */
InferenceProblem makeDenoise(const SceneOptions &options = {});

/**
 * Synthetic random-field workload: deterministic pseudo-random
 * data1/data2 streams hashed from the scene seed — arbitrary
 * content at any size, for serving and scaling benchmarks where
 * pixel meaning is irrelevant. Defaults: 96x96, 8 labels (scalar
 * codes, so 2..8), T = 8, weight 4. No ground truth or quality
 * metric.
 */
InferenceProblem makeSynthetic(const SceneOptions &options = {});

} // namespace rsu::workload

#endif // RSU_WORKLOAD_FACTORIES_H
