#include "workload/registry.h"

#include <stdexcept>
#include <utility>

namespace rsu::workload {

void
WorkloadRegistry::add(std::string name, std::string description,
                      Factory factory)
{
    if (!factory)
        throw std::invalid_argument(
            "WorkloadRegistry: empty factory for '" + name + "'");
    if (find(name))
        throw std::invalid_argument(
            "WorkloadRegistry: duplicate workload '" + name + "'");
    entries_.push_back({std::move(name), std::move(description),
                        std::move(factory)});
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

InferenceProblem
WorkloadRegistry::make(const std::string &name,
                       const SceneOptions &options) const
{
    const Entry *entry = find(name);
    if (!entry)
        throwUnknown(name);
    return entry->factory(options);
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.name);
    return out;
}

const std::string &
WorkloadRegistry::description(const std::string &name) const
{
    const Entry *entry = find(name);
    if (!entry)
        throwUnknown(name);
    return entry->description;
}

const WorkloadRegistry &
WorkloadRegistry::builtin()
{
    static const WorkloadRegistry registry = [] {
        WorkloadRegistry r;
        r.add("segmentation",
              "piecewise-constant region labelling (paper flagship)",
              [](const SceneOptions &o) {
                  return makeSegmentation(o);
              });
        r.add("motion",
              "dense motion estimation, vector labels (7x7 window)",
              [](const SceneOptions &o) { return makeMotion(o); });
        r.add("stereo",
              "rectified-pair disparity estimation",
              [](const SceneOptions &o) { return makeStereo(o); });
        r.add("denoise",
              "quantized-intensity image restoration",
              [](const SceneOptions &o) { return makeDenoise(o); });
        r.add("synthetic",
              "seeded random-field serving/benchmark workload",
              [](const SceneOptions &o) {
                  return makeSynthetic(o);
              });
        return r;
    }();
    return registry;
}

const WorkloadRegistry::Entry *
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

void
WorkloadRegistry::throwUnknown(const std::string &name) const
{
    std::string known;
    for (const auto &entry : entries_) {
        if (!known.empty())
            known += ", ";
        known += entry.name;
    }
    throw std::out_of_range("WorkloadRegistry: unknown workload '" +
                            name + "' (known: " + known + ")");
}

} // namespace rsu::workload
