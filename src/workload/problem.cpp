#include "workload/problem.h"

#include <stdexcept>

#include "mrf/schedule.h"

namespace rsu::workload {

rsu::runtime::InferenceJob
makeJob(const InferenceProblem &problem, const SubmitOptions &options)
{
    if (!problem.singleton)
        throw std::invalid_argument(
            "workload::makeJob: problem has no singleton model");

    rsu::runtime::InferenceJob job;
    job.config = problem.config;
    job.singleton = problem.singleton;
    job.sweeps = options.sweeps;
    if (options.schedule)
        job.annealing = *options.schedule;
    else if (options.anneal)
        job.annealing = problem.default_annealing;
    job.sweep_path = options.sweep_path;
    job.seed = options.seed;
    job.shards = options.shards;
    job.energy_trace_stride = options.energy_trace_stride;
    job.deadline_seconds = options.deadline_seconds;
    job.cancel = options.cancel;
    job.faults = options.faults;
    job.initial_labels = problem.initial_labels;
    if (problem.quality) {
        job.quality = problem.quality.evaluate;
        job.quality_metric = problem.quality.name;
        job.quality_higher_is_better =
            problem.quality.higher_is_better;
    }
    return job;
}

std::vector<rsu::mrf::Label>
solveDirect(const InferenceProblem &problem,
            const SubmitOptions &options)
{
    if (!problem.singleton)
        throw std::invalid_argument(
            "workload::solveDirect: problem has no singleton model");

    rsu::mrf::GridMrf mrf(problem.config, *problem.singleton);
    if (!problem.initial_labels.empty())
        mrf.setLabels(problem.initial_labels);
    else
        mrf.initializeMaximumLikelihood();

    rsu::mrf::GibbsSampler sampler(mrf, options.seed,
                                   rsu::mrf::Schedule::Checkerboard,
                                   options.sweep_path);
    if (options.schedule || options.anneal) {
        const rsu::mrf::AnnealingSchedule schedule =
            options.schedule ? *options.schedule
                             : problem.default_annealing;
        rsu::mrf::anneal(
            mrf, schedule,
            [&](double t) { sampler.setTemperature(t); },
            [&] { sampler.sweep(); });
    } else {
        sampler.run(options.sweeps);
    }
    return mrf.labels();
}

} // namespace rsu::workload
