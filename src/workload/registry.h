/**
 * @file
 * String-keyed workload registry.
 *
 * Serving callers (examples/runtime_server, the benches, tests)
 * instantiate problems by name — "segmentation", "motion", ... —
 * without compiling against any per-workload factory: the registry
 * is the indirection that lets one server binary run every scenario
 * the repo knows about, and lets downstream code add its own.
 *
 * builtin() returns a process-wide registry pre-populated with the
 * five standard workloads (factories.h). Instances are cheap; a
 * custom registry can be built from scratch with add().
 */

#ifndef RSU_WORKLOAD_REGISTRY_H
#define RSU_WORKLOAD_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "workload/factories.h"
#include "workload/problem.h"

namespace rsu::workload {

/** Name -> problem-factory map with stable registration order. */
class WorkloadRegistry
{
  public:
    using Factory =
        std::function<InferenceProblem(const SceneOptions &)>;

    /**
     * Register @p factory under @p name.
     * @throws std::invalid_argument on a duplicate name or an
     *         empty factory.
     */
    void add(std::string name, std::string description,
             Factory factory);

    bool contains(const std::string &name) const;

    /**
     * Instantiate workload @p name with @p options.
     * @throws std::out_of_range naming the known workloads when
     *         @p name is not registered.
     */
    InferenceProblem make(const std::string &name,
                          const SceneOptions &options = {}) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of workload @p name.
     * @throws std::out_of_range when unknown. */
    const std::string &description(const std::string &name) const;

    /**
     * The shared registry holding the built-in workloads:
     * segmentation, motion, stereo, denoise, synthetic.
     */
    static const WorkloadRegistry &builtin();

  private:
    struct Entry
    {
        std::string name;
        std::string description;
        Factory factory;
    };

    const Entry *find(const std::string &name) const;
    [[noreturn]] void throwUnknown(const std::string &name) const;

    std::vector<Entry> entries_;
};

} // namespace rsu::workload

#endif // RSU_WORKLOAD_REGISTRY_H
