/**
 * @file
 * Ownership-safe inference problems — one front door for every
 * workload.
 *
 * The paper's evaluation (sections 7-8) runs one common RSU-G
 * datapath across all of its vision workloads; this layer gives the
 * software stack the same shape. An InferenceProblem is a
 * self-contained bundle of everything the serving runtime needs to
 * run one MRF application instance: the lattice/potential
 * configuration, an *owned* singleton model (no "must outlive"
 * contracts — ownership travels with the problem and with every job
 * made from it), an optional starting labelling, a sensible default
 * annealing schedule, optional ground truth, and a quality-metric
 * hook (vision/metrics.h) that judges a labelling without the
 * caller knowing which application it came from.
 *
 * Problems come from the per-workload factories (factories.h) or by
 * name through the WorkloadRegistry (registry.h); makeJob() turns
 * one into an InferenceEngine job, and solveDirect() runs the same
 * problem on a directly constructed sequential sampler — the
 * cross-check the examples' --reference flag and
 * tests/workload_test.cpp use to pin engine-vs-direct bit-identity.
 */

#ifndef RSU_WORKLOAD_PROBLEM_H
#define RSU_WORKLOAD_PROBLEM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mrf/annealing.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "runtime/inference_engine.h"
#include "vision/image.h"

namespace rsu::workload {

/**
 * How a labelling's solution quality is judged. The closure owns
 * (shares) whatever it needs — ground truth, clean images, the
 * application model — so it stays valid for as long as anyone holds
 * it, including inside a queued InferenceJob.
 */
struct QualityMetric
{
    /** Metric name for reporting: "accuracy", "epe_px", "psnr_db". */
    std::string name;

    /** False for error metrics (e.g. mean endpoint error). */
    bool higher_is_better = true;

    /** Score a labelling (candidate codes, site-major). */
    std::function<double(const std::vector<rsu::mrf::Label> &)>
        evaluate;

    explicit operator bool() const
    {
        return static_cast<bool>(evaluate);
    }
};

/** One self-contained MRF application instance. */
struct InferenceProblem
{
    /** Registry key of the workload that produced it (e.g.
     * "segmentation"); purely informational. */
    std::string workload;

    /** Human-readable instance description. */
    std::string description;

    /** Lattice and potential parameters. */
    rsu::mrf::MrfConfig config;

    /** Owned singleton data source. Never null for a
     * factory-produced problem; shared into every job made from
     * this problem, so the problem itself may be destroyed while
     * jobs are in flight. */
    std::shared_ptr<const rsu::mrf::SingletonModel> singleton;

    /** Starting labelling; empty = per-site maximum likelihood. */
    std::vector<rsu::mrf::Label> initial_labels;

    /** Workload-tuned annealing schedule (start temperature matches
     * config.temperature); used when a submission opts into
     * annealing without supplying its own schedule. */
    rsu::mrf::AnnealingSchedule default_annealing;

    /** Ground-truth labelling when the instance is synthetic with a
     * known answer; empty otherwise. */
    std::vector<rsu::mrf::Label> ground_truth;

    /** Solution-quality hook (empty evaluate = no metric). */
    QualityMetric quality;

    /** Optional visualization: render a labelling as an image
     * (segmentation paints class means, denoise reconstructs
     * intensities, stereo scales disparities). */
    std::function<rsu::vision::Image(
        const std::vector<rsu::mrf::Label> &)>
        render;

    /** Primary observation image (the noisy input, left view, or
     * first frame); empty for non-image workloads. */
    rsu::vision::Image observation;
};

/** How to run a problem (makeJob / solveDirect parameters). */
struct SubmitOptions
{
    /** Fixed-temperature sweep count (ignored when annealing). */
    int sweeps = 100;

    /** Anneal under the problem's default schedule (or `schedule`
     * below) instead of running at the fixed temperature. */
    bool anneal = false;

    /** Explicit schedule override; implies annealing when set. */
    std::optional<rsu::mrf::AnnealingSchedule> schedule;

    /** Software sweep realization (see mrf/gibbs.h). */
    rsu::mrf::SweepPath sweep_path = rsu::mrf::SweepPath::Table;

    /** Entropy seed. */
    uint64_t seed = 1;

    /** Shard count for engine submission (0 = engine default);
     * solveDirect() is sequential and ignores it. */
    int shards = 0;

    /** InferenceJob::energy_trace_stride passthrough. */
    int energy_trace_stride = 0;

    /** InferenceJob::deadline_seconds passthrough (wall-clock
     * budget from submit; solveDirect() ignores it). */
    std::optional<double> deadline_seconds;

    /** InferenceJob::cancel passthrough (cooperative cancellation;
     * solveDirect() ignores it). */
    rsu::runtime::CancellationToken cancel;

    /** InferenceJob::faults passthrough: device-fault campaign for
     * RsuGibbs submissions (solveDirect() ignores it). */
    std::optional<rsu::ret::FaultPlan> faults;
};

/**
 * Build an engine job from @p problem: configuration, shared model
 * ownership, initial labels, schedule, and the quality hook all
 * travel with the job. Submit the result to any InferenceEngine.
 */
rsu::runtime::InferenceJob makeJob(const InferenceProblem &problem,
                                   const SubmitOptions &options = {});

/**
 * Run @p problem on a directly constructed sequential GibbsSampler,
 * mirroring the engine's execution order (same initialization, same
 * schedule handling). For SweepPath::Reference and SweepPath::Table
 * the result is bit-identical to an engine submission of
 * makeJob(problem, options) with shards = 1 and the same seed —
 * the cross-check contract tests/workload_test.cpp enforces.
 */
std::vector<rsu::mrf::Label>
solveDirect(const InferenceProblem &problem,
            const SubmitOptions &options = {});

} // namespace rsu::workload

#endif // RSU_WORKLOAD_PROBLEM_H
