#include "workload/factories.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "rng/distributions.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"
#include "vision/denoise.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/segmentation.h"
#include "vision/stereo.h"
#include "vision/synthetic.h"

namespace rsu::workload {

namespace {

using rsu::mrf::Label;
using rsu::vision::Image;

int
pick(int value, int fallback)
{
    return value > 0 ? value : fallback;
}

double
pickSigma(double value, double fallback)
{
    return value >= 0.0 ? value : fallback;
}

/** Workload-tuned geometric schedule starting at the problem's
 * configured temperature. */
rsu::mrf::AnnealingSchedule
defaultSchedule(double start_temperature)
{
    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = start_temperature;
    schedule.stop_temperature = 1.0;
    schedule.cooling_factor = 0.7;
    schedule.sweeps_per_stage = 5;
    return schedule;
}

std::string
describe(const char *what, const rsu::mrf::MrfConfig &config,
         double sigma)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s %dx%d, M=%d, sigma %.1f",
                  what, config.width, config.height,
                  config.num_labels, sigma);
    return buf;
}

/** Scene + model bundles: the model references images owned by the
 * same object, and the problem's shared model pointer aliases into
 * the bundle — one allocation keeps the whole instance alive. */
struct SegmentationHolder
{
    rsu::vision::SegmentationScene scene;
    rsu::vision::SegmentationModel model;

    SegmentationHolder(rsu::vision::SegmentationScene s,
                       std::vector<uint8_t> means)
        : scene(std::move(s)), model(scene.image, std::move(means))
    {
    }
};

struct ImageSegmentationHolder
{
    Image image;
    rsu::vision::SegmentationModel model;

    ImageSegmentationHolder(Image img, std::vector<uint8_t> means)
        : image(std::move(img)), model(image, std::move(means))
    {
    }
};

struct StereoHolder
{
    rsu::vision::StereoScene scene;
    rsu::vision::StereoModel model;

    explicit StereoHolder(rsu::vision::StereoScene s)
        : scene(std::move(s)),
          model(scene.left, scene.right, scene.num_disparities)
    {
    }
};

struct MotionHolder
{
    rsu::vision::MotionScene scene;
    rsu::vision::MotionModel model;

    explicit MotionHolder(rsu::vision::MotionScene s)
        : scene(std::move(s)),
          model(scene.frame1, scene.frame2, scene.radius)
    {
    }
};

struct DenoiseHolder
{
    Image clean;
    Image noisy;
    rsu::vision::DenoiseModel model;

    DenoiseHolder(Image c, Image n, int levels)
        : clean(std::move(c)), noisy(std::move(n)),
          model(noisy, levels)
    {
    }
};

/** Deterministic pseudo-random data streams hashed from a seed —
 * arbitrary-size content for serving/scaling benchmarks. */
class SyntheticModel final : public rsu::mrf::SingletonModel
{
  public:
    explicit SyntheticModel(uint64_t seed) : seed_(seed) {}

    uint8_t
    data1(int x, int y) const override
    {
        return hash(x, y, 64);
    }

    uint8_t
    data2(int x, int y, Label label) const override
    {
        return hash(x, y, label & rsu::core::kLabelMask);
    }

  private:
    uint8_t
    hash(int x, int y, int tag) const
    {
        rsu::rng::SplitMix64 mix(
            seed_ ^ (static_cast<uint64_t>(x) * 0x100000001b3ULL) ^
            (static_cast<uint64_t>(y) * 0xc6a4a7935bd1e995ULL) ^
            (static_cast<uint64_t>(tag) << 48));
        return static_cast<uint8_t>(mix.next() & 0x3f);
    }

    uint64_t seed_;
};

struct SyntheticHolder
{
    SyntheticModel model;

    explicit SyntheticHolder(uint64_t seed) : model(seed) {}
};

} // namespace

InferenceProblem
makeSegmentation(const SceneOptions &options)
{
    const int width = pick(options.width, 160);
    const int height = pick(options.height, 120);
    const int labels = std::clamp(pick(options.labels, 5), 2, 8);
    const double sigma = pickSigma(options.noise_sigma, 3.0);

    rsu::rng::Xoshiro256 rng(options.seed);
    auto scene = rsu::vision::makeSegmentationScene(
        width, height, labels, sigma, rng);
    // True region means, so model label i corresponds to region i
    // and ground-truth accuracy is a straight label comparison.
    auto means = scene.region_means;
    auto holder = std::make_shared<SegmentationHolder>(
        std::move(scene), std::move(means));

    InferenceProblem problem;
    problem.workload = "segmentation";
    problem.config = rsu::vision::segmentationConfig(
        holder->scene.image, labels,
        options.temperature > 0.0 ? options.temperature : 6.0,
        pick(options.doubleton_weight, 6));
    problem.description =
        describe("segmentation", problem.config, sigma);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    problem.ground_truth = holder->scene.truth;
    problem.quality = {
        "accuracy", true,
        [holder](const std::vector<Label> &result) {
            return rsu::vision::labelAccuracy(result,
                                              holder->scene.truth);
        }};
    problem.render = [holder](const std::vector<Label> &result) {
        Image out(holder->scene.image.width(),
                  holder->scene.image.height(), 63);
        for (int i = 0; i < out.size(); ++i)
            out.pixels()[i] =
                holder->model.means()[result[i] & 0x7];
        return out;
    };
    problem.observation = holder->scene.image;
    return problem;
}

InferenceProblem
makeSegmentation(const rsu::vision::Image &image,
                 const SceneOptions &options)
{
    const int labels = std::clamp(pick(options.labels, 5), 2, 8);
    auto holder = std::make_shared<ImageSegmentationHolder>(
        image, rsu::vision::SegmentationModel::kmeansMeans(image,
                                                           labels));

    InferenceProblem problem;
    problem.workload = "segmentation";
    problem.config = rsu::vision::segmentationConfig(
        holder->image, labels,
        options.temperature > 0.0 ? options.temperature : 6.0,
        pick(options.doubleton_weight, 6));
    problem.description =
        describe("segmentation (input image)", problem.config, 0.0);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    problem.render = [holder](const std::vector<Label> &result) {
        Image out(holder->image.width(), holder->image.height(), 63);
        for (int i = 0; i < out.size(); ++i)
            out.pixels()[i] =
                holder->model.means()[result[i] & 0x7];
        return out;
    };
    problem.observation = holder->image;
    return problem;
}

InferenceProblem
makeStereo(const SceneOptions &options)
{
    const int width = pick(options.width, 128);
    const int height = pick(options.height, 96);
    const int disparities =
        std::clamp(pick(options.labels, 5), 2, 8);
    const double sigma = pickSigma(options.noise_sigma, 1.0);

    rsu::rng::Xoshiro256 rng(options.seed);
    auto holder = std::make_shared<StereoHolder>(
        rsu::vision::makeStereoScene(width, height, disparities,
                                     sigma, rng));

    InferenceProblem problem;
    problem.workload = "stereo";
    problem.config = rsu::vision::stereoConfig(
        holder->scene.left, disparities,
        options.temperature > 0.0 ? options.temperature : 6.0,
        pick(options.doubleton_weight, 6));
    problem.description = describe("stereo", problem.config, sigma);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    problem.ground_truth = holder->scene.truth;
    problem.quality = {
        "accuracy", true,
        [holder](const std::vector<Label> &result) {
            return rsu::vision::labelAccuracy(result,
                                              holder->scene.truth);
        }};
    const int span = std::max(1, disparities - 1);
    problem.render = [holder,
                      span](const std::vector<Label> &result) {
        Image out(holder->scene.left.width(),
                  holder->scene.left.height(), 63);
        for (int i = 0; i < out.size(); ++i)
            out.pixels()[i] = static_cast<uint8_t>(
                (result[i] & 0x7) * 63 / span);
        return out;
    };
    problem.observation = holder->scene.left;
    return problem;
}

InferenceProblem
makeMotion(const SceneOptions &options)
{
    const int width = pick(options.width, 96);
    const int height = pick(options.height, 72);
    // Accept a radius (1..3) or a window size (9/25/49) in
    // options.labels; anything else means the paper's 7x7 window.
    int radius = 3;
    if (options.labels >= 1 && options.labels <= 3)
        radius = options.labels;
    else if (options.labels == 9)
        radius = 1;
    else if (options.labels == 25)
        radius = 2;
    const double sigma = pickSigma(options.noise_sigma, 1.0);

    rsu::rng::Xoshiro256 rng(options.seed);
    auto holder = std::make_shared<MotionHolder>(
        rsu::vision::makeMotionScene(width, height, 3, radius,
                                     sigma, rng));

    InferenceProblem problem;
    problem.workload = "motion";
    problem.config = rsu::vision::motionConfig(
        holder->scene.frame1, radius,
        options.temperature > 0.0 ? options.temperature : 4.0,
        pick(options.doubleton_weight, 2));
    problem.description = describe("motion", problem.config, sigma);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    problem.ground_truth = holder->scene.truth;
    problem.quality = {
        "epe_px", false,
        [holder](const std::vector<Label> &result) {
            return rsu::vision::meanEndpointError(
                result, holder->scene.truth);
        }};
    problem.observation = holder->scene.frame1;
    return problem;
}

InferenceProblem
makeDenoise(const SceneOptions &options)
{
    const int width = pick(options.width, 128);
    const int height = pick(options.height, 96);
    const int levels = std::clamp(pick(options.labels, 6), 2, 8);
    const double sigma = pickSigma(options.noise_sigma, 6.0);

    // Clean scene: piecewise-constant regions whose means coincide
    // with the restoration levels, so a perfect restoration exists.
    rsu::rng::Xoshiro256 rng(options.seed);
    auto scene = rsu::vision::makeSegmentationScene(
        width, height, levels, 0.0, rng);
    Image clean = std::move(scene.image);
    Image noisy = clean;
    for (auto &p : noisy.pixels())
        p = rsu::vision::clampPixel(
            p + rsu::rng::sampleNormal(rng, 0.0, sigma), 63);

    auto holder = std::make_shared<DenoiseHolder>(
        std::move(clean), std::move(noisy), levels);

    InferenceProblem problem;
    problem.workload = "denoise";
    problem.config = rsu::vision::denoiseConfig(
        holder->noisy, levels,
        options.temperature > 0.0 ? options.temperature : 4.0,
        pick(options.doubleton_weight, 2));
    problem.description =
        describe("denoise", problem.config, sigma);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    // Ground truth: the level whose intensity is nearest each clean
    // pixel (the scene's region means are exactly the level values,
    // so this is the generating labelling).
    problem.ground_truth.resize(
        static_cast<size_t>(holder->clean.size()));
    for (int i = 0; i < holder->clean.size(); ++i) {
        const int p = holder->clean.pixels()[i];
        int best = 0, best_d = 1 << 20;
        for (int l = 0; l < levels; ++l) {
            const int d =
                std::abs(p - holder->model.levelValue(
                                 static_cast<Label>(l)));
            if (d < best_d) {
                best_d = d;
                best = l;
            }
        }
        problem.ground_truth[i] = static_cast<Label>(best);
    }
    problem.quality = {
        "psnr_db", true,
        [holder](const std::vector<Label> &result) {
            return rsu::vision::psnr(holder->model.reconstruct(result),
                                     holder->clean);
        }};
    problem.render = [holder](const std::vector<Label> &result) {
        return holder->model.reconstruct(result);
    };
    problem.observation = holder->noisy;
    return problem;
}

InferenceProblem
makeSynthetic(const SceneOptions &options)
{
    const int width = pick(options.width, 96);
    const int height = pick(options.height, 96);
    const int labels = std::clamp(pick(options.labels, 8), 2, 8);

    auto holder = std::make_shared<SyntheticHolder>(options.seed);

    InferenceProblem problem;
    problem.workload = "synthetic";
    problem.config.width = width;
    problem.config.height = height;
    problem.config.num_labels = labels;
    problem.config.temperature =
        options.temperature > 0.0 ? options.temperature : 8.0;
    problem.config.energy.mode = rsu::core::LabelMode::Scalar;
    problem.config.energy.doubleton_weight =
        pick(options.doubleton_weight, 4);
    problem.config.energy.singleton_shift = 4;
    problem.description =
        describe("synthetic", problem.config, 0.0);
    problem.singleton =
        std::shared_ptr<const rsu::mrf::SingletonModel>(
            holder, &holder->model);
    problem.default_annealing =
        defaultSchedule(problem.config.temperature);
    return problem;
}

} // namespace rsu::workload
