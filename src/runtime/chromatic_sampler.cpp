#include "runtime/chromatic_sampler.h"

#include "mrf/rsu_gibbs.h"
#include "rng/streams.h"

namespace rsu::runtime {

ChromaticGibbsSampler::ChromaticGibbsSampler(
    rsu::mrf::GridMrf &mrf, ParallelSweepExecutor &executor,
    uint64_t seed, SamplerKind kind,
    const rsu::core::RsuGConfig &rsu_base, rsu::mrf::SweepPath path,
    std::shared_ptr<const rsu::mrf::SweepTableSet> table_set)
    : mrf_(mrf), executor_(executor), kind_(kind), path_(path),
      shards_(executor.shards())
{
    const int n = executor.shards();
    if (kind_ == SamplerKind::SoftwareGibbs) {
        if (path_ != rsu::mrf::SweepPath::Reference)
            tables_ = table_set
                          ? std::make_unique<rsu::mrf::SweepTables>(
                                mrf, std::move(table_set))
                          : std::make_unique<rsu::mrf::SweepTables>(
                                mrf);
        auto streams = rsu::rng::splitStreams(seed, n);
        for (int s = 0; s < n; ++s) {
            shards_[s].rng = streams[s];
            shards_[s].weights.resize(mrf.numLabels());
            if (path_ == rsu::mrf::SweepPath::Simd)
                shards_[s].fixed_weights.resize(
                    tables_->paddedLabels());
        }
    } else {
        auto config =
            rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf, rsu_base);
        const auto seeds = rsu::rng::splitSeeds(seed, n);
        for (int s = 0; s < n; ++s) {
            auto &shard = shards_[s];
            shard.unit = std::make_unique<rsu::core::RsuG>(
                config, seeds[s]);
            shard.unit->initialize(mrf.numLabels(),
                                   mrf.temperature());
            shard.unit->setLabelCodes(mrf.labelCodes());
        }
        data2_ = std::make_unique<rsu::core::Data2Table>(
            mrf.buildData2Table());
    }
}

bool
ChromaticGibbsSampler::sweep()
{
    if (kind_ == SamplerKind::SoftwareGibbs) {
        if (tables_) {
            // Single-threaded before the shards fan out: rebuild
            // the exp tables if annealing moved the temperature.
            tables_->sync();
            const rsu::mrf::SweepTables &tables = *tables_;
            if (path_ == rsu::mrf::SweepPath::Simd) {
                return executor_.sweepSplit(
                    mrf_.width(), mrf_.height(),
                    [this, &tables](int s, int x, int y) {
                        auto &shard = shards_[s];
                        tables.updateInteriorSimd(
                            mrf_, shard.rng, shard.block,
                            shard.fixed_weights.data(), shard.work,
                            x, y);
                    },
                    [this, &tables](int s, int x, int y) {
                        auto &shard = shards_[s];
                        tables.updateBorderSimd(
                            mrf_, shard.rng, shard.block,
                            shard.fixed_weights.data(), shard.work,
                            x, y);
                    });
            }
            return executor_.sweepSplit(
                mrf_.width(), mrf_.height(),
                [this, &tables](int s, int x, int y) {
                    auto &shard = shards_[s];
                    tables.updateInterior(mrf_, shard.rng,
                                          shard.weights.data(),
                                          shard.work, x, y);
                },
                [this, &tables](int s, int x, int y) {
                    auto &shard = shards_[s];
                    tables.updateBorder(mrf_, shard.rng,
                                        shard.weights.data(),
                                        shard.work, x, y);
                });
        }
        return executor_.sweep(
            mrf_.width(), mrf_.height(), [this](int s, int x, int y) {
                auto &shard = shards_[s];
                rsu::mrf::GibbsSampler::updateSiteWith(
                    mrf_, shard.rng, shard.weights.data(),
                    shard.work, x, y);
            });
    }
    const rsu::core::Data2Table &staged = *data2_;
    return executor_.sweep(
        mrf_.width(), mrf_.height(),
        [this, &staged](int s, int x, int y) {
            auto &shard = shards_[s];
            rsu::mrf::RsuGibbsSampler::updateSiteWith(
                mrf_, *shard.unit, staged, shard.work, x, y);
        });
}

void
ChromaticGibbsSampler::run(int n)
{
    for (int i = 0; i < n; ++i)
        if (!sweep())
            return;
}

void
ChromaticGibbsSampler::setTemperature(double t)
{
    mrf_.setTemperature(t);
    if (kind_ != SamplerKind::RsuGibbs)
        return;
    for (auto &shard : shards_) {
        shard.unit->initialize(mrf_.numLabels(), t);
        shard.unit->setLabelCodes(mrf_.labelCodes());
    }
}

void
ChromaticGibbsSampler::setSimdIsa(rsu::core::SimdIsa isa)
{
    if (tables_)
        tables_->setSimdIsa(isa);
}

void
ChromaticGibbsSampler::injectFaults(const rsu::ret::FaultPlan &plan)
{
    if (kind_ != SamplerKind::RsuGibbs)
        return;
    for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
        auto &unit = *shards_[s].unit;
        unit.injectFaults(plan.faultsFor(s, unit.config().width));
    }
}

bool
ChromaticGibbsSampler::deviceFailed() const
{
    for (const auto &shard : shards_)
        if (shard.unit && shard.unit->failed())
            return true;
    return false;
}

rsu::core::RsuGStats
ChromaticGibbsSampler::deviceStats() const
{
    rsu::core::RsuGStats total;
    for (const auto &shard : shards_)
        if (shard.unit)
            total += shard.unit->stats();
    return total;
}

rsu::mrf::SamplerWork
ChromaticGibbsSampler::work() const
{
    rsu::mrf::SamplerWork total;
    for (const auto &shard : shards_) {
        total.site_updates += shard.work.site_updates;
        total.energy_evals += shard.work.energy_evals;
        total.exp_calls += shard.work.exp_calls;
        total.random_draws += shard.work.random_draws;
    }
    return total;
}

} // namespace rsu::runtime
