#include "runtime/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace rsu::runtime {

Latch::Latch(int count) : count_(count)
{
    if (count < 0)
        throw std::invalid_argument("Latch: need count >= 0");
}

void
Latch::countDown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0)
        cv_.notify_all();
}

void
Latch::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads < 0)
        throw std::invalid_argument("ThreadPool: need threads >= 0");
    if (num_threads == 0)
        num_threads = hardwareThreads();
    threads_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "ThreadPool: submit after shutdown");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace rsu::runtime
