#include "runtime/inference_engine.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rsu::runtime {

InferenceEngine::InferenceEngine(Options options)
    : options_(options), pool_(options.threads)
{
    if (options_.max_concurrent_jobs < 1)
        throw std::invalid_argument(
            "InferenceEngine: need max_concurrent_jobs >= 1");
    dispatchers_.reserve(options_.max_concurrent_jobs);
    for (int i = 0; i < options_.max_concurrent_jobs; ++i)
        dispatchers_.emplace_back([this] { dispatcherLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &dispatcher : dispatchers_)
        dispatcher.join();
}

std::future<InferenceResult>
InferenceEngine::submit(InferenceJob job)
{
    if (!job.singleton)
        throw std::invalid_argument(
            "InferenceEngine: job needs a singleton model");
    QueuedJob queued;
    queued.job = std::move(job);
    auto future = queued.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");
        queued.id = next_id_++;
        ++unfinished_;
        queue_.push_back(std::move(queued));
    }
    cv_.notify_one();
    return future;
}

int
InferenceEngine::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return unfinished_;
}

void
InferenceEngine::dispatcherLoop()
{
    for (;;) {
        QueuedJob queued;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            queued = std::move(queue_.front());
            queue_.pop_front();
        }
        // The job must count as finished before its future resolves,
        // or a caller waking from future.get() could still observe
        // it as pending.
        try {
            auto result = execute(queued.job, queued.id);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --unfinished_;
            }
            queued.promise.set_value(std::move(result));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --unfinished_;
            }
            queued.promise.set_exception(std::current_exception());
        }
    }
}

InferenceResult
InferenceEngine::execute(InferenceJob &job, uint64_t id)
{
    const auto start = std::chrono::steady_clock::now();

    rsu::mrf::GridMrf mrf(job.config, *job.singleton);
    if (job.initial_labels.empty())
        mrf.initializeMaximumLikelihood();
    else
        mrf.setLabels(job.initial_labels);

    int shards = job.shards;
    if (shards == 0)
        shards = options_.default_shards;
    ParallelSweepExecutor executor(pool_, shards);
    ChromaticGibbsSampler sampler(mrf, executor, job.seed,
                                  job.sampler, job.rsu_base,
                                  job.sweep_path);

    InferenceResult result;
    result.job_id = id;
    result.shards = executor.shards();
    result.initial_energy = mrf.totalEnergy();
    result.energy_trace.push_back(result.initial_energy);

    int sweeps_run = 0;
    const auto traced_sweep = [&] {
        sampler.sweep();
        ++sweeps_run;
        if (job.energy_trace_stride > 0 &&
            sweeps_run % job.energy_trace_stride == 0)
            result.energy_trace.push_back(mrf.totalEnergy());
    };

    if (job.annealing) {
        result.final_energy = rsu::mrf::anneal(
            mrf, *job.annealing,
            [&](double t) { sampler.setTemperature(t); },
            traced_sweep);
    } else {
        for (int i = 0; i < job.sweeps; ++i)
            traced_sweep();
        result.final_energy = mrf.totalEnergy();
    }

    if (result.energy_trace.back() != result.final_energy)
        result.energy_trace.push_back(result.final_energy);

    result.labels = mrf.labels();
    result.work = sampler.work();
    result.phase_timing = executor.timing();
    result.sweeps_run = sweeps_run;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.elapsed_seconds = elapsed.count();
    return result;
}

} // namespace rsu::runtime
