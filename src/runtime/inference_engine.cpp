#include "runtime/inference_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace rsu::runtime {

namespace {

/**
 * Thrown by the traced sweep loop to unwind out of a run (possibly
 * through mrf::anneal) when the job's token or deadline trips; the
 * executor caught it knows the label field is whole-sweeps
 * consistent. Internal — callers only ever see InferenceResult or
 * EngineError.
 */
struct Interrupt
{
    JobOutcome outcome;
};

} // namespace

InferenceEngine::InferenceEngine(Options options)
    : options_(options), pool_(options.threads)
{
    if (options_.max_concurrent_jobs < 1)
        throw std::invalid_argument(
            "InferenceEngine: need max_concurrent_jobs >= 1");
    if (options_.max_queued_jobs < 0)
        throw std::invalid_argument(
            "InferenceEngine: need max_queued_jobs >= 0");
    dispatchers_.reserve(options_.max_concurrent_jobs);
    for (int i = 0; i < options_.max_concurrent_jobs; ++i)
        dispatchers_.emplace_back([this] { dispatcherLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    shutdown(options_.shutdown_mode);
}

void
InferenceEngine::shutdown(ShutdownMode mode)
{
    std::deque<QueuedJob> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!joined_) {
            stop_ = true;
            if (mode == ShutdownMode::CancelAll) {
                orphans.swap(queue_);
                for (const auto &control : running_)
                    control->token.cancel();
            }
        }
    }
    cv_.notify_all();
    space_cv_.notify_all(); // wake Block-ed submitters to fail fast

    // Promises are never broken: jobs the dispatchers will never
    // see resolve here, with a typed error.
    for (auto &orphan : orphans)
        resolveUnrun(orphan, EngineError(EngineErrorCode::Cancelled,
                                         "engine shut down before "
                                         "the job started"));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (joined_)
            return; // an earlier shutdown() already joined
        joined_ = true;
    }
    for (auto &dispatcher : dispatchers_)
        dispatcher.join();
}

JobHandle
InferenceEngine::submit(InferenceJob job)
{
    if (!job.singleton)
        throw std::invalid_argument(
            "InferenceEngine: job needs a singleton model");
    if (job.deadline_seconds && *job.deadline_seconds < 0.0)
        throw std::invalid_argument(
            "InferenceEngine: need deadline_seconds >= 0");

    QueuedJob queued;
    queued.control = std::make_shared<JobHandle::Control>();
    queued.control->token = job.cancel.cancellable()
                                ? job.cancel
                                : CancellationToken::make();
    if (job.deadline_seconds)
        queued.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(*job.deadline_seconds));
    queued.job = std::move(job);

    JobHandle handle;
    handle.control_ = queued.control;
    handle.future = queued.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            throw EngineError(EngineErrorCode::Cancelled,
                              "submit after shutdown");
        if (options_.max_queued_jobs > 0 &&
            static_cast<int>(queue_.size()) >=
                options_.max_queued_jobs) {
            if (options_.backpressure ==
                BackpressurePolicy::RejectNewest)
                throw EngineError(EngineErrorCode::QueueFull,
                                  "admission queue is full");
            space_cv_.wait(lock, [this] {
                return stop_ ||
                       static_cast<int>(queue_.size()) <
                           options_.max_queued_jobs;
            });
            if (stop_)
                throw EngineError(EngineErrorCode::Cancelled,
                                  "engine shut down while submit "
                                  "was blocked on backpressure");
        }
        queued.id = next_id_++;
        queued.control->id = queued.id;
        ++unfinished_;
        queue_.push_back(std::move(queued));
    }
    cv_.notify_one();
    return handle;
}

int
InferenceEngine::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return unfinished_;
}

TableCacheStats
InferenceEngine::tableCacheStats() const
{
    std::lock_guard<std::mutex> lock(table_mutex_);
    TableCacheStats stats;
    stats.hits = table_hits_;
    stats.misses = table_misses_;
    stats.entries = static_cast<int>(table_cache_.size());
    return stats;
}

std::shared_ptr<const rsu::mrf::SweepTableSet>
InferenceEngine::acquireTableSet(const rsu::mrf::GridMrf &mrf,
                                 const InferenceJob &job,
                                 InferenceResult &result)
{
    TableCacheKey key;
    key.singleton = job.singleton.get();
    key.width = mrf.width();
    key.height = mrf.height();
    key.num_labels = mrf.numLabels();
    key.energy = mrf.config().energy;
    key.codes = mrf.labelCodes();

    if (options_.table_cache_capacity > 0) {
        std::lock_guard<std::mutex> lock(table_mutex_);
        for (std::size_t i = 0; i < table_cache_.size(); ++i) {
            if (table_cache_[i].key == key) {
                // Touch: move to the back (most recently used).
                auto entry = std::move(table_cache_[i]);
                table_cache_.erase(table_cache_.begin() +
                                   static_cast<long>(i));
                table_cache_.push_back(std::move(entry));
                ++table_hits_;
                result.table_cache_hit = true;
                return table_cache_.back().set;
            }
        }
        ++table_misses_;
    }

    // Build outside the lock (the expensive part — a full singleton
    // model scan, rows fanned out over the pool).
    const auto start = std::chrono::steady_clock::now();
    auto set = std::make_shared<const rsu::mrf::SweepTableSet>(
        mrf, parallelRowRunner(pool_));
    const std::chrono::duration<double> built =
        std::chrono::steady_clock::now() - start;
    result.table_build_seconds = built.count();

    if (options_.table_cache_capacity > 0) {
        std::lock_guard<std::mutex> lock(table_mutex_);
        // A racing job may have inserted this model while we built;
        // don't cache a duplicate (our identical set still serves
        // this job, then dies with it).
        bool present = false;
        for (const auto &entry : table_cache_)
            if (entry.key == key) {
                present = true;
                break;
            }
        if (!present) {
            table_cache_.push_back(
                {std::move(key), job.singleton, set});
            while (static_cast<int>(table_cache_.size()) >
                   options_.table_cache_capacity)
                table_cache_.erase(table_cache_.begin());
        }
    }
    return set;
}

void
InferenceEngine::resolveUnrun(QueuedJob &queued,
                              const EngineError &error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --unfinished_;
    }
    queued.control->status.store(JobStatus::Cancelled,
                                 std::memory_order_release);
    queued.promise.set_exception(std::make_exception_ptr(error));
}

void
InferenceEngine::dispatcherLoop()
{
    for (;;) {
        QueuedJob queued;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            queued = std::move(queue_.front());
            queue_.pop_front();
        }
        space_cv_.notify_one();

        // Pre-flight: a job whose token tripped or whose deadline
        // passed while it waited never runs; its future gets the
        // typed error instead of a partial result.
        if (queued.control->token.cancelled()) {
            resolveUnrun(queued,
                         EngineError(EngineErrorCode::Cancelled,
                                     "job cancelled while queued"));
            continue;
        }
        if (queued.deadline &&
            std::chrono::steady_clock::now() >= *queued.deadline) {
            resolveUnrun(queued,
                         EngineError(
                             EngineErrorCode::DeadlineExceeded,
                             "deadline expired while the job was "
                             "queued"));
            continue;
        }

        queued.control->status.store(JobStatus::Running,
                                     std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            running_.push_back(queued.control);
        }
        // The job must count as finished before its future resolves,
        // or a caller waking from future.get() could still observe
        // it as pending.
        const auto finish = [&](JobStatus status) {
            std::lock_guard<std::mutex> lock(mutex_);
            --unfinished_;
            running_.erase(std::remove(running_.begin(),
                                       running_.end(),
                                       queued.control),
                           running_.end());
            queued.control->status.store(status,
                                         std::memory_order_release);
        };
        try {
            auto result = execute(queued);
            finish(JobStatus::Done);
            queued.promise.set_value(std::move(result));
        } catch (...) {
            finish(JobStatus::Done);
            queued.promise.set_exception(std::current_exception());
        }
    }
}

InferenceResult
InferenceEngine::execute(QueuedJob &queued)
{
    InferenceJob &job = queued.job;
    const auto start = std::chrono::steady_clock::now();

    InferenceResult result;
    result.job_id = queued.id;

    rsu::mrf::GridMrf mrf(job.config, *job.singleton);

    // Table-backed paths: fetch or build the model's static tables
    // first, so the ML initialization below can reuse the singleton
    // scan instead of re-evaluating the model.
    std::shared_ptr<const rsu::mrf::SweepTableSet> table_set;
    if (job.sampler == SamplerKind::SoftwareGibbs &&
        job.sweep_path != rsu::mrf::SweepPath::Reference)
        table_set = acquireTableSet(mrf, job, result);

    if (!job.initial_labels.empty())
        mrf.setLabels(job.initial_labels);
    else if (table_set)
        mrf.initializeMaximumLikelihood(table_set->singleton());
    else
        mrf.initializeMaximumLikelihood();

    int shards = job.shards;
    if (shards == 0)
        shards = options_.default_shards;
    ParallelSweepExecutor executor(pool_, shards);
    executor.setCancellationToken(queued.control->token);
    auto sampler = std::make_unique<ChromaticGibbsSampler>(
        mrf, executor, job.seed, job.sampler, job.rsu_base,
        job.sweep_path, table_set);
    if (job.faults)
        sampler->injectFaults(*job.faults);

    result.shards = executor.shards();
    result.initial_energy = mrf.totalEnergy();
    result.energy_trace.push_back(result.initial_energy);

    // Device-failure reaction: swap the failed RSU sampler for a
    // software Table sampler over the same model/executor, keeping
    // the label field (the chain continues where the device left
    // off). The old sampler's work and health counters are folded
    // into the result before it is dropped.
    const auto maybe_degrade = [&]() {
        if (job.sampler != SamplerKind::RsuGibbs ||
            result.degraded || !sampler->deviceFailed())
            return;
        result.device_stats = sampler->deviceStats();
        if (options_.degradation == DegradationPolicy::FailJob)
            throw EngineError(EngineErrorCode::DeviceFailed,
                              "RSU device failed and fallback is "
                              "disabled");
        result.work = sampler->work();
        if (!table_set)
            table_set = acquireTableSet(mrf, job, result);
        sampler = std::make_unique<ChromaticGibbsSampler>(
            mrf, executor, job.seed, SamplerKind::SoftwareGibbs,
            job.rsu_base, rsu::mrf::SweepPath::Table, table_set);
        result.degraded = true;
        result.degraded_at_sweep = result.sweeps_run;
    };

    // One guarded MCMC iteration. Cancellation and deadline are
    // observed here, between sweeps, so a stopped job always holds
    // a whole number of sweeps (Interrupt unwinds to the handler
    // below, through mrf::anneal if need be — in that case the
    // best-labelling restoration is skipped and the partial result
    // carries the current field).
    const auto traced_sweep = [&] {
        if (queued.control->token.cancelled())
            throw Interrupt{JobOutcome::Cancelled};
        if (queued.deadline &&
            std::chrono::steady_clock::now() >= *queued.deadline)
            throw Interrupt{JobOutcome::DeadlineExceeded};
        if (!sampler->sweep())
            throw Interrupt{JobOutcome::Cancelled};
        ++result.sweeps_run;
        queued.control->sweeps_done.store(
            result.sweeps_run, std::memory_order_relaxed);
        if (job.energy_trace_stride > 0 &&
            result.sweeps_run % job.energy_trace_stride == 0)
            result.energy_trace.push_back(mrf.totalEnergy());
        if (job.on_sweep)
            job.on_sweep(result.sweeps_run);
        maybe_degrade();
    };

    try {
        if (job.annealing) {
            result.final_energy = rsu::mrf::anneal(
                mrf, *job.annealing,
                [&](double t) { sampler->setTemperature(t); },
                traced_sweep);
        } else {
            for (int i = 0; i < job.sweeps; ++i)
                traced_sweep();
            result.final_energy = mrf.totalEnergy();
        }
    } catch (const Interrupt &interrupt) {
        result.outcome = interrupt.outcome;
        result.final_energy = mrf.totalEnergy();
    }

    if (result.energy_trace.back() != result.final_energy)
        result.energy_trace.push_back(result.final_energy);

    result.labels = mrf.labels();
    if (job.quality) {
        // Advisory: a throwing hook never discards the labelling.
        try {
            result.quality = job.quality(result.labels);
        } catch (const std::exception &e) {
            result.quality_error = e.what();
        } catch (...) {
            result.quality_error = "unknown quality-hook error";
        }
        result.quality_metric = job.quality_metric;
        result.quality_higher_is_better =
            job.quality_higher_is_better;
    }
    // Fold in the current sampler's counters (for degraded jobs,
    // result.work already holds the device-phase counters).
    {
        const auto tail = sampler->work();
        result.work.site_updates += tail.site_updates;
        result.work.energy_evals += tail.energy_evals;
        result.work.exp_calls += tail.exp_calls;
        result.work.random_draws += tail.random_draws;
    }
    if (job.sampler == SamplerKind::RsuGibbs && !result.degraded)
        result.device_stats = sampler->deviceStats();
    result.phase_timing = executor.timing();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.elapsed_seconds = elapsed.count();
    return result;
}

} // namespace rsu::runtime
