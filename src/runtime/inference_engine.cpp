#include "runtime/inference_engine.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rsu::runtime {

InferenceEngine::InferenceEngine(Options options)
    : options_(options), pool_(options.threads)
{
    if (options_.max_concurrent_jobs < 1)
        throw std::invalid_argument(
            "InferenceEngine: need max_concurrent_jobs >= 1");
    dispatchers_.reserve(options_.max_concurrent_jobs);
    for (int i = 0; i < options_.max_concurrent_jobs; ++i)
        dispatchers_.emplace_back([this] { dispatcherLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &dispatcher : dispatchers_)
        dispatcher.join();
}

std::future<InferenceResult>
InferenceEngine::submit(InferenceJob job)
{
    if (!job.singleton)
        throw std::invalid_argument(
            "InferenceEngine: job needs a singleton model");
    QueuedJob queued;
    queued.job = std::move(job);
    auto future = queued.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");
        queued.id = next_id_++;
        ++unfinished_;
        queue_.push_back(std::move(queued));
    }
    cv_.notify_one();
    return future;
}

int
InferenceEngine::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return unfinished_;
}

TableCacheStats
InferenceEngine::tableCacheStats() const
{
    std::lock_guard<std::mutex> lock(table_mutex_);
    TableCacheStats stats;
    stats.hits = table_hits_;
    stats.misses = table_misses_;
    stats.entries = static_cast<int>(table_cache_.size());
    return stats;
}

std::shared_ptr<const rsu::mrf::SweepTableSet>
InferenceEngine::acquireTableSet(const rsu::mrf::GridMrf &mrf,
                                 const InferenceJob &job,
                                 InferenceResult &result)
{
    TableCacheKey key;
    key.singleton = job.singleton.get();
    key.width = mrf.width();
    key.height = mrf.height();
    key.num_labels = mrf.numLabels();
    key.energy = mrf.config().energy;
    key.codes = mrf.labelCodes();

    if (options_.table_cache_capacity > 0) {
        std::lock_guard<std::mutex> lock(table_mutex_);
        for (std::size_t i = 0; i < table_cache_.size(); ++i) {
            if (table_cache_[i].key == key) {
                // Touch: move to the back (most recently used).
                auto entry = std::move(table_cache_[i]);
                table_cache_.erase(table_cache_.begin() +
                                   static_cast<long>(i));
                table_cache_.push_back(std::move(entry));
                ++table_hits_;
                result.table_cache_hit = true;
                return table_cache_.back().set;
            }
        }
        ++table_misses_;
    }

    // Build outside the lock (the expensive part — a full singleton
    // model scan, rows fanned out over the pool).
    const auto start = std::chrono::steady_clock::now();
    auto set = std::make_shared<const rsu::mrf::SweepTableSet>(
        mrf, parallelRowRunner(pool_));
    const std::chrono::duration<double> built =
        std::chrono::steady_clock::now() - start;
    result.table_build_seconds = built.count();

    if (options_.table_cache_capacity > 0) {
        std::lock_guard<std::mutex> lock(table_mutex_);
        // A racing job may have inserted this model while we built;
        // don't cache a duplicate (our identical set still serves
        // this job, then dies with it).
        bool present = false;
        for (const auto &entry : table_cache_)
            if (entry.key == key) {
                present = true;
                break;
            }
        if (!present) {
            table_cache_.push_back(
                {std::move(key), job.singleton, set});
            while (static_cast<int>(table_cache_.size()) >
                   options_.table_cache_capacity)
                table_cache_.erase(table_cache_.begin());
        }
    }
    return set;
}

void
InferenceEngine::dispatcherLoop()
{
    for (;;) {
        QueuedJob queued;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            queued = std::move(queue_.front());
            queue_.pop_front();
        }
        // The job must count as finished before its future resolves,
        // or a caller waking from future.get() could still observe
        // it as pending.
        try {
            auto result = execute(queued.job, queued.id);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --unfinished_;
            }
            queued.promise.set_value(std::move(result));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --unfinished_;
            }
            queued.promise.set_exception(std::current_exception());
        }
    }
}

InferenceResult
InferenceEngine::execute(InferenceJob &job, uint64_t id)
{
    const auto start = std::chrono::steady_clock::now();

    InferenceResult result;
    result.job_id = id;

    rsu::mrf::GridMrf mrf(job.config, *job.singleton);

    // Table-backed paths: fetch or build the model's static tables
    // first, so the ML initialization below can reuse the singleton
    // scan instead of re-evaluating the model.
    std::shared_ptr<const rsu::mrf::SweepTableSet> table_set;
    if (job.sampler == SamplerKind::SoftwareGibbs &&
        job.sweep_path != rsu::mrf::SweepPath::Reference)
        table_set = acquireTableSet(mrf, job, result);

    if (!job.initial_labels.empty())
        mrf.setLabels(job.initial_labels);
    else if (table_set)
        mrf.initializeMaximumLikelihood(table_set->singleton());
    else
        mrf.initializeMaximumLikelihood();

    int shards = job.shards;
    if (shards == 0)
        shards = options_.default_shards;
    ParallelSweepExecutor executor(pool_, shards);
    ChromaticGibbsSampler sampler(mrf, executor, job.seed,
                                  job.sampler, job.rsu_base,
                                  job.sweep_path, table_set);

    result.shards = executor.shards();
    result.initial_energy = mrf.totalEnergy();
    result.energy_trace.push_back(result.initial_energy);

    int sweeps_run = 0;
    const auto traced_sweep = [&] {
        sampler.sweep();
        ++sweeps_run;
        if (job.energy_trace_stride > 0 &&
            sweeps_run % job.energy_trace_stride == 0)
            result.energy_trace.push_back(mrf.totalEnergy());
    };

    if (job.annealing) {
        result.final_energy = rsu::mrf::anneal(
            mrf, *job.annealing,
            [&](double t) { sampler.setTemperature(t); },
            traced_sweep);
    } else {
        for (int i = 0; i < job.sweeps; ++i)
            traced_sweep();
        result.final_energy = mrf.totalEnergy();
    }

    if (result.energy_trace.back() != result.final_energy)
        result.energy_trace.push_back(result.final_energy);

    result.labels = mrf.labels();
    if (job.quality) {
        result.quality = job.quality(result.labels);
        result.quality_metric = job.quality_metric;
        result.quality_higher_is_better =
            job.quality_higher_is_better;
    }
    result.work = sampler.work();
    result.phase_timing = executor.timing();
    result.sweeps_run = sweeps_run;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.elapsed_seconds = elapsed.count();
    return result;
}

} // namespace rsu::runtime
