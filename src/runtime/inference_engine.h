/**
 * @file
 * Batched inference job engine.
 *
 * The serving layer the ROADMAP's production north star needs: many
 * callers submit independent MRF inference jobs; the engine queues
 * them, runs up to a configured number concurrently, and executes
 * each job's sweeps chromatically across one shared thread pool.
 * Because shard tasks from concurrent jobs interleave on the same
 * FIFO queue, the pool's workers stay busy even when a single small
 * lattice cannot fill the machine — the software analogue of packing
 * several MRF applications onto one array of RSUs.
 *
 * Each job is reproducible in isolation: results depend only on
 * (job seed, shard count, model), never on what else was queued or
 * on thread scheduling.
 *
 * Jobs on the Table/Simd sweep paths need a SweepTableSet — one
 * full scan of the singleton model. The engine keeps a small keyed
 * LRU cache of those sets: repeat jobs against the same model
 * (identity + static shape, temperature excluded — the set is
 * temperature-independent) share one immutable set instead of each
 * rescanning, so a serving mix of many short jobs on few models
 * amortizes table construction to ~zero (see
 * InferenceResult::table_build_seconds). Cache misses build the set
 * with the per-row scan fanned out over the engine's own pool.
 */

#ifndef RSU_RUNTIME_INFERENCE_ENGINE_H
#define RSU_RUNTIME_INFERENCE_ENGINE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rsu_g.h"
#include "mrf/annealing.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"

namespace rsu::runtime {

/** One unit of inference work. */
struct InferenceJob
{
    /** Lattice and potential parameters. */
    rsu::mrf::MrfConfig config;

    /** Singleton data source. The job *owns* a share of the model:
     * submitters may drop every other reference immediately after
     * submit() — the engine keeps the model alive until the future
     * resolves (and, for Table/Simd jobs, while its static tables
     * stay cached). Workload factories (src/workload/) produce
     * problems whose models are bundled this way. */
    std::shared_ptr<const rsu::mrf::SingletonModel> singleton;

    /** Sweeps to run (ignored when annealing is set — the schedule
     * determines the count). */
    int sweeps = 100;

    /** When set, anneal under this schedule instead of running at
     * the fixed configured temperature; the result carries the best
     * labelling seen. */
    std::optional<rsu::mrf::AnnealingSchedule> annealing;

    /** Site-update backend. */
    SamplerKind sampler = SamplerKind::SoftwareGibbs;

    /** SoftwareGibbs realization: Table sweeps through precomputed
     * lookup tables — bit-identical to Reference per (seed, shards),
     * several times faster. Simd is faster still (vectorized Q32
     * fixed-point weights; identical across ISAs/runs/shard counts,
     * not bit-identical to the other two). Table/Simd jobs share
     * static tables through the engine's cache. Table by default:
     * serving traffic should take a fast path unless a job
     * explicitly asks to exercise the reference loop. */
    rsu::mrf::SweepPath sweep_path = rsu::mrf::SweepPath::Table;

    /** Per-shard RSU-G template (RsuGibbs only); energy datapath is
     * overridden from the model. */
    rsu::core::RsuGConfig rsu_base;

    /** Entropy seed (streams split per shard, see rng/streams.h). */
    uint64_t seed = 1;

    /** Row-band shard / RNG stream count; 0 = engine default. The
     * result is bit-reproducible per (seed, shards). */
    int shards = 0;

    /** Record totalEnergy() every k sweeps into the energy trace
     * (0 = endpoints only). Each probe is a full lattice scan. */
    int energy_trace_stride = 0;

    /** Starting labelling; empty = per-site maximum likelihood. */
    std::vector<rsu::mrf::Label> initial_labels;

    /**
     * Optional solution-quality hook, evaluated once on the final
     * labelling and recorded in InferenceResult::quality. The
     * closure carries whatever it needs (ground truth, clean
     * images, ...) so the runtime stays application-agnostic; the
     * workload layer wires in labelAccuracy / meanEndpointError /
     * psnr (vision/metrics.h).
     */
    std::function<double(const std::vector<rsu::mrf::Label> &)>
        quality;

    /** Metric name for reporting (e.g. "accuracy", "epe_px",
     * "psnr_db"); copied into the result alongside the value. */
    std::string quality_metric;

    /** Whether larger quality values are better (false for error
     * metrics such as mean endpoint error). */
    bool quality_higher_is_better = true;
};

/** What a finished job returns. */
struct InferenceResult
{
    std::vector<rsu::mrf::Label> labels; //!< final (or best) field
    std::vector<int64_t> energy_trace;   //!< per-stride energies
    int64_t initial_energy = 0;
    int64_t final_energy = 0;   //!< energy of `labels`
    rsu::mrf::SamplerWork work; //!< summed over shards
    PhaseTiming phase_timing;   //!< per-colour-phase wall clock
    double elapsed_seconds = 0.0;

    /** Wall clock spent building this job's SweepTableSet; ~0 when
     * the engine's table cache already held the model's set
     * (table_cache_hit) or the path needs no tables (Reference /
     * RsuGibbs). */
    double table_build_seconds = 0.0;
    bool table_cache_hit = false;

    /** Result of the job's quality hook on `labels` (empty when the
     * job supplied none); metric name and direction ride along. */
    std::optional<double> quality;
    std::string quality_metric;
    bool quality_higher_is_better = true;

    int sweeps_run = 0;
    int shards = 0;
    uint64_t job_id = 0;
};

/** InferenceEngine construction parameters. */
struct EngineOptions
{
    /** Pool worker threads; 0 = hardware concurrency. */
    int threads = 0;

    /** Jobs executed concurrently (their shard tasks interleave
     * on the pool); the rest wait queued. */
    int max_concurrent_jobs = 2;

    /** Default shard count for jobs that leave shards = 0;
     * 0 = the pool's thread count. */
    int default_shards = 0;

    /** SweepTableSet cache entries kept (LRU eviction); 0 disables
     * caching — every Table/Simd job builds a private set. */
    int table_cache_capacity = 16;
};

/** Table-cache effectiveness counters (see tableCacheStats()). */
struct TableCacheStats
{
    uint64_t hits = 0;   //!< jobs served an already-built set
    uint64_t misses = 0; //!< jobs that had to build (then insert)
    int entries = 0;     //!< sets currently cached
};

/** Queues, batches, and executes inference jobs on a shared pool. */
class InferenceEngine
{
  public:
    using Options = EngineOptions;

    explicit InferenceEngine(Options options = {});

    /** Drains queued jobs, then joins all engine threads. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue @p job; the future resolves when it completes (or
     * carries the exception that aborted it). The job shares
     * ownership of its singleton model, so the caller has no
     * lifetime obligations after this returns.
     */
    std::future<InferenceResult> submit(InferenceJob job);

    /** Jobs accepted but not yet finished. */
    int pendingJobs() const;

    int threads() const { return pool_.size(); }

    /** Snapshot of the SweepTableSet cache counters. */
    TableCacheStats tableCacheStats() const;

  private:
    struct QueuedJob
    {
        InferenceJob job;
        std::promise<InferenceResult> promise;
        uint64_t id = 0;
    };

    /**
     * What makes two jobs' static tables interchangeable: the same
     * singleton data source (by identity — the model interface is
     * opaque, so value equality is unknowable) and the same static
     * shape. Temperature is deliberately absent: SweepTableSet holds
     * no temperature-dependent state, so annealing jobs and
     * fixed-temperature jobs on one model share one set.
     */
    struct TableCacheKey
    {
        const rsu::mrf::SingletonModel *singleton = nullptr;
        int width = 0;
        int height = 0;
        int num_labels = 0;
        rsu::core::EnergyConfig energy;
        std::vector<rsu::mrf::Label> codes;

        bool operator==(const TableCacheKey &) const = default;
    };

    struct TableCacheEntry
    {
        TableCacheKey key;
        /** Pins the model while its tables are cached: the key
         * compares model *addresses*, so without this share a dead
         * model's address could be recycled by a new allocation and
         * alias a stale entry. Ownership makes the identity key
         * sound. */
        std::shared_ptr<const rsu::mrf::SingletonModel> model;
        std::shared_ptr<const rsu::mrf::SweepTableSet> set;
    };

    void dispatcherLoop();
    InferenceResult execute(InferenceJob &job, uint64_t id);

    /**
     * The cached set for @p mrf's model, building (parallel row
     * scan) and inserting on a miss. Sets @p result's
     * table_build_seconds / table_cache_hit. Concurrent jobs on one
     * new model may race to build — both sets are identical, the
     * loser's is dropped; the build itself runs outside the cache
     * lock so jobs on other models are never stalled behind it.
     */
    std::shared_ptr<const rsu::mrf::SweepTableSet>
    acquireTableSet(const rsu::mrf::GridMrf &mrf,
                    const InferenceJob &job, InferenceResult &result);

    Options options_;
    ThreadPool pool_;
    std::vector<std::thread> dispatchers_;
    std::deque<QueuedJob> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    int unfinished_ = 0;
    uint64_t next_id_ = 1;

    // Table cache (own lock: held only for lookup/insert, never
    // while building, so it cannot serialize job execution).
    mutable std::mutex table_mutex_;
    std::vector<TableCacheEntry> table_cache_; // front = LRU victim
    uint64_t table_hits_ = 0;
    uint64_t table_misses_ = 0;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_INFERENCE_ENGINE_H
