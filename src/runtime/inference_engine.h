/**
 * @file
 * Batched inference job engine.
 *
 * The serving layer the ROADMAP's production north star needs: many
 * callers submit independent MRF inference jobs; the engine queues
 * them, runs up to a configured number concurrently, and executes
 * each job's sweeps chromatically across one shared thread pool.
 * Because shard tasks from concurrent jobs interleave on the same
 * FIFO queue, the pool's workers stay busy even when a single small
 * lattice cannot fill the machine — the software analogue of packing
 * several MRF applications onto one array of RSUs.
 *
 * Each job is reproducible in isolation: results depend only on
 * (job seed, shard count, model), never on what else was queued or
 * on thread scheduling.
 */

#ifndef RSU_RUNTIME_INFERENCE_ENGINE_H
#define RSU_RUNTIME_INFERENCE_ENGINE_H

#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <vector>

#include "core/rsu_g.h"
#include "mrf/annealing.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"

namespace rsu::runtime {

/** One unit of inference work. */
struct InferenceJob
{
    /** Lattice and potential parameters. */
    rsu::mrf::MrfConfig config;

    /** Singleton data source; must outlive the job's future. */
    const rsu::mrf::SingletonModel *singleton = nullptr;

    /** Sweeps to run (ignored when annealing is set — the schedule
     * determines the count). */
    int sweeps = 100;

    /** When set, anneal under this schedule instead of running at
     * the fixed configured temperature; the result carries the best
     * labelling seen. */
    std::optional<rsu::mrf::AnnealingSchedule> annealing;

    /** Site-update backend. */
    SamplerKind sampler = SamplerKind::SoftwareGibbs;

    /** SoftwareGibbs realization: Table sweeps through precomputed
     * lookup tables — bit-identical to Reference per (seed, shards),
     * several times faster. Table by default: serving traffic should
     * take the fast path unless a job explicitly asks to exercise
     * the reference loop. */
    rsu::mrf::SweepPath sweep_path = rsu::mrf::SweepPath::Table;

    /** Per-shard RSU-G template (RsuGibbs only); energy datapath is
     * overridden from the model. */
    rsu::core::RsuGConfig rsu_base;

    /** Entropy seed (streams split per shard, see rng/streams.h). */
    uint64_t seed = 1;

    /** Row-band shard / RNG stream count; 0 = engine default. The
     * result is bit-reproducible per (seed, shards). */
    int shards = 0;

    /** Record totalEnergy() every k sweeps into the energy trace
     * (0 = endpoints only). Each probe is a full lattice scan. */
    int energy_trace_stride = 0;

    /** Starting labelling; empty = per-site maximum likelihood. */
    std::vector<rsu::mrf::Label> initial_labels;
};

/** What a finished job returns. */
struct InferenceResult
{
    std::vector<rsu::mrf::Label> labels; //!< final (or best) field
    std::vector<int64_t> energy_trace;   //!< per-stride energies
    int64_t initial_energy = 0;
    int64_t final_energy = 0;   //!< energy of `labels`
    rsu::mrf::SamplerWork work; //!< summed over shards
    PhaseTiming phase_timing;   //!< per-colour-phase wall clock
    double elapsed_seconds = 0.0;
    int sweeps_run = 0;
    int shards = 0;
    uint64_t job_id = 0;
};

/** InferenceEngine construction parameters. */
struct EngineOptions
{
    /** Pool worker threads; 0 = hardware concurrency. */
    int threads = 0;

    /** Jobs executed concurrently (their shard tasks interleave
     * on the pool); the rest wait queued. */
    int max_concurrent_jobs = 2;

    /** Default shard count for jobs that leave shards = 0;
     * 0 = the pool's thread count. */
    int default_shards = 0;
};

/** Queues, batches, and executes inference jobs on a shared pool. */
class InferenceEngine
{
  public:
    using Options = EngineOptions;

    explicit InferenceEngine(Options options = {});

    /** Drains queued jobs, then joins all engine threads. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue @p job; the future resolves when it completes (or
     * carries the exception that aborted it). The job's singleton
     * model must stay alive until then.
     */
    std::future<InferenceResult> submit(InferenceJob job);

    /** Jobs accepted but not yet finished. */
    int pendingJobs() const;

    int threads() const { return pool_.size(); }

  private:
    struct QueuedJob
    {
        InferenceJob job;
        std::promise<InferenceResult> promise;
        uint64_t id = 0;
    };

    void dispatcherLoop();
    InferenceResult execute(InferenceJob &job, uint64_t id);

    Options options_;
    ThreadPool pool_;
    std::vector<std::thread> dispatchers_;
    std::deque<QueuedJob> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    int unfinished_ = 0;
    uint64_t next_id_ = 1;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_INFERENCE_ENGINE_H
