/**
 * @file
 * Batched inference job engine.
 *
 * The serving layer the ROADMAP's production north star needs: many
 * callers submit independent MRF inference jobs; the engine queues
 * them, runs up to a configured number concurrently, and executes
 * each job's sweeps chromatically across one shared thread pool.
 * Because shard tasks from concurrent jobs interleave on the same
 * FIFO queue, the pool's workers stay busy even when a single small
 * lattice cannot fill the machine — the software analogue of packing
 * several MRF applications onto one array of RSUs.
 *
 * Each job is reproducible in isolation: results depend only on
 * (job seed, shard count, model), never on what else was queued or
 * on thread scheduling.
 *
 * Jobs on the Table/Simd sweep paths need a SweepTableSet — one
 * full scan of the singleton model. The engine keeps a small keyed
 * LRU cache of those sets: repeat jobs against the same model
 * (identity + static shape, temperature excluded — the set is
 * temperature-independent) share one immutable set instead of each
 * rescanning, so a serving mix of many short jobs on few models
 * amortizes table construction to ~zero (see
 * InferenceResult::table_build_seconds). Cache misses build the set
 * with the per-row scan fanned out over the engine's own pool.
 */

#ifndef RSU_RUNTIME_INFERENCE_ENGINE_H
#define RSU_RUNTIME_INFERENCE_ENGINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rsu_g.h"
#include "mrf/annealing.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "ret/fault_injection.h"
#include "runtime/cancellation.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"

namespace rsu::runtime {

/** One unit of inference work. */
struct InferenceJob
{
    /** Lattice and potential parameters. */
    rsu::mrf::MrfConfig config;

    /** Singleton data source. The job *owns* a share of the model:
     * submitters may drop every other reference immediately after
     * submit() — the engine keeps the model alive until the future
     * resolves (and, for Table/Simd jobs, while its static tables
     * stay cached). Workload factories (src/workload/) produce
     * problems whose models are bundled this way. */
    std::shared_ptr<const rsu::mrf::SingletonModel> singleton;

    /** Sweeps to run (ignored when annealing is set — the schedule
     * determines the count). */
    int sweeps = 100;

    /** When set, anneal under this schedule instead of running at
     * the fixed configured temperature; the result carries the best
     * labelling seen. */
    std::optional<rsu::mrf::AnnealingSchedule> annealing;

    /** Site-update backend. */
    SamplerKind sampler = SamplerKind::SoftwareGibbs;

    /** SoftwareGibbs realization: Table sweeps through precomputed
     * lookup tables — bit-identical to Reference per (seed, shards),
     * several times faster. Simd is faster still (vectorized Q32
     * fixed-point weights; identical across ISAs/runs/shard counts,
     * not bit-identical to the other two). Table/Simd jobs share
     * static tables through the engine's cache. Table by default:
     * serving traffic should take a fast path unless a job
     * explicitly asks to exercise the reference loop. */
    rsu::mrf::SweepPath sweep_path = rsu::mrf::SweepPath::Table;

    /** Per-shard RSU-G template (RsuGibbs only); energy datapath is
     * overridden from the model. */
    rsu::core::RsuGConfig rsu_base;

    /** Entropy seed (streams split per shard, see rng/streams.h). */
    uint64_t seed = 1;

    /** Row-band shard / RNG stream count; 0 = engine default. The
     * result is bit-reproducible per (seed, shards). */
    int shards = 0;

    /** Record totalEnergy() every k sweeps into the energy trace
     * (0 = endpoints only). Each probe is a full lattice scan. */
    int energy_trace_stride = 0;

    /** Starting labelling; empty = per-site maximum likelihood. */
    std::vector<rsu::mrf::Label> initial_labels;

    /**
     * Optional solution-quality hook, evaluated once on the final
     * labelling and recorded in InferenceResult::quality. The
     * closure carries whatever it needs (ground truth, clean
     * images, ...) so the runtime stays application-agnostic; the
     * workload layer wires in labelAccuracy / meanEndpointError /
     * psnr (vision/metrics.h).
     */
    std::function<double(const std::vector<rsu::mrf::Label> &)>
        quality;

    /** Metric name for reporting (e.g. "accuracy", "epe_px",
     * "psnr_db"); copied into the result alongside the value. */
    std::string quality_metric;

    /** Whether larger quality values are better (false for error
     * metrics such as mean endpoint error). */
    bool quality_higher_is_better = true;

    /**
     * Wall-clock budget measured from submit(). A job past its
     * deadline resolves with an EngineError(DeadlineExceeded) if it
     * never started, or with a partial result
     * (outcome = DeadlineExceeded, labels as of the last completed
     * sweep) if the deadline passed mid-run. Checked at sweep
     * boundaries, so a long sweep overruns by at most one sweep.
     */
    std::optional<double> deadline_seconds;

    /**
     * Caller-supplied cancellation token. Leave inert to have
     * submit() mint one (reachable through the JobHandle); supply
     * CancellationToken::make() to share one flag across jobs.
     * Cancellation is observed at sweep boundaries: a job cancelled
     * after sweep k resolves with exactly k sweeps' labels
     * (outcome = Cancelled), or with an EngineError(Cancelled) if it
     * never left the queue.
     */
    CancellationToken cancel;

    /**
     * Diagnostic hook run on the job's dispatcher thread after each
     * completed sweep (argument: sweeps completed so far). Runs
     * before the next sweep's cancellation/deadline check, so a
     * hook that trips the job's token after sweep k stops it with
     * exactly k sweeps run. Exceptions abort the job.
     */
    std::function<void(int)> on_sweep;

    /**
     * Device-fault campaign injected into the per-shard RSU-G units
     * before the first sweep (RsuGibbs jobs only; ignored
     * otherwise). Shard s receives plan.faultsFor(s, width). When a
     * shard's unit subsequently declares itself failed, the
     * engine's degradation policy decides between transparent
     * software fallback and failing the job (see
     * EngineOptions::degradation).
     */
    std::optional<rsu::ret::FaultPlan> faults;
};

/** How a job's run ended (partial results carry non-Completed). */
enum class JobOutcome
{
    Completed,        //!< ran every requested sweep
    Cancelled,        //!< stopped early by its cancellation token
    DeadlineExceeded, //!< stopped early by its deadline
};

/** What a finished job returns. */
struct InferenceResult
{
    std::vector<rsu::mrf::Label> labels; //!< final (or best) field
    std::vector<int64_t> energy_trace;   //!< per-stride energies
    int64_t initial_energy = 0;
    int64_t final_energy = 0;   //!< energy of `labels`
    rsu::mrf::SamplerWork work; //!< summed over shards
    PhaseTiming phase_timing;   //!< per-colour-phase wall clock
    double elapsed_seconds = 0.0;

    /** Wall clock spent building this job's SweepTableSet; ~0 when
     * the engine's table cache already held the model's set
     * (table_cache_hit) or the path needs no tables (Reference /
     * RsuGibbs). */
    double table_build_seconds = 0.0;
    bool table_cache_hit = false;

    /** Result of the job's quality hook on `labels` (empty when the
     * job supplied none); metric name and direction ride along. */
    std::optional<double> quality;
    std::string quality_metric;
    bool quality_higher_is_better = true;

    /** What() of an exception thrown by the quality hook. The hook
     * is advisory: its failure never discards the labelling, it
     * just leaves `quality` empty and the reason here. */
    std::string quality_error;

    /** Completed, or the reason the run stopped early. Partial
     * results are still whole numbers of sweeps (`sweeps_run` of
     * them) — cancellation never tears a sweep. */
    JobOutcome outcome = JobOutcome::Completed;

    /** True when a device fault forced this job off its RSU path
     * onto the software Table path mid-run (see
     * EngineOptions::degradation). */
    bool degraded = false;

    /** Sweeps completed on the device path before degradation
     * (-1 when not degraded). */
    int degraded_at_sweep = -1;

    /** Device health/occupancy counters summed over the job's
     * RSU-G shards (zeros for software jobs); for degraded jobs,
     * the counters as of the moment of fallback. */
    rsu::core::RsuGStats device_stats;

    int sweeps_run = 0;
    int shards = 0;
    uint64_t job_id = 0;
};

/** What submit() does when the admission queue is full. */
enum class BackpressurePolicy
{
    Block,        //!< submit() blocks until a slot frees up
    RejectNewest, //!< submit() throws EngineError(QueueFull)
};

/** What shutdown (and the destructor) does with outstanding work. */
enum class ShutdownMode
{
    Drain,     //!< run every queued job to completion, then join
    CancelAll, //!< cancel running jobs, fail queued ones, join
};

/** What the engine does when a job's RSU device declares failure. */
enum class DegradationPolicy
{
    /** Finish the job on the software Table path, flagging the
     * result degraded. The sweeps already taken on the device are
     * kept — the chain continues from the current label field. */
    FallbackToSoftware,

    /** Resolve the job's future with EngineError(DeviceFailed). */
    FailJob,
};

/** InferenceEngine construction parameters. */
struct EngineOptions
{
    /** Pool worker threads; 0 = hardware concurrency. */
    int threads = 0;

    /** Jobs executed concurrently (their shard tasks interleave
     * on the pool); the rest wait queued. */
    int max_concurrent_jobs = 2;

    /** Default shard count for jobs that leave shards = 0;
     * 0 = the pool's thread count. */
    int default_shards = 0;

    /** SweepTableSet cache entries kept (LRU eviction); 0 disables
     * caching — every Table/Simd job builds a private set. */
    int table_cache_capacity = 16;

    /** Admission-queue bound: jobs *waiting* (not yet dispatched);
     * 0 = unbounded. Crossing it applies `backpressure`. */
    int max_queued_jobs = 0;

    /** Reaction to a full admission queue. */
    BackpressurePolicy backpressure = BackpressurePolicy::Block;

    /** Destructor behaviour for outstanding jobs; shutdown() can
     * override explicitly. */
    ShutdownMode shutdown_mode = ShutdownMode::Drain;

    /** Reaction to an RSU device declaring failure mid-job. */
    DegradationPolicy degradation =
        DegradationPolicy::FallbackToSoftware;
};

/** Table-cache effectiveness counters (see tableCacheStats()). */
struct TableCacheStats
{
    uint64_t hits = 0;   //!< jobs served an already-built set
    uint64_t misses = 0; //!< jobs that had to build (then insert)
    int entries = 0;     //!< sets currently cached
};

/** Where a submitted job currently is in its lifecycle. */
enum class JobStatus
{
    Queued,    //!< accepted, waiting for a dispatcher
    Running,   //!< a dispatcher is executing it
    Done,      //!< future resolved after the job ran (any outcome)
    Cancelled, //!< future resolved without the job ever running
};

/**
 * Handle returned by InferenceEngine::submit(). The future is the
 * result channel (public — move it out freely, e.g. into a
 * vector<future>); cancel()/status() keep working afterwards. The
 * engine guarantees the future ALWAYS resolves — with a value
 * (possibly partial, see InferenceResult::outcome) or an
 * EngineError — even when the engine is destroyed first; it never
 * surfaces std::future_error from a broken promise.
 */
class JobHandle
{
  public:
    std::future<InferenceResult> future;

    /** Convenience forward of future.get(). */
    InferenceResult get() { return future.get(); }

    /** Request cooperative cancellation (safe from any thread). */
    void cancel() { control_->token.cancel(); }

    /** Lifecycle snapshot (racy by nature; exact once resolved). */
    JobStatus
    status() const
    {
        return control_->status.load(std::memory_order_acquire);
    }

    /** Sweeps the job has completed so far. */
    int
    sweepsDone() const
    {
        return control_->sweeps_done.load(std::memory_order_relaxed);
    }

    uint64_t id() const { return control_->id; }

  private:
    friend class InferenceEngine;

    /** Lifecycle state shared between the engine and the handle. */
    struct Control
    {
        CancellationToken token;
        std::atomic<JobStatus> status{JobStatus::Queued};
        std::atomic<int> sweeps_done{0};
        uint64_t id = 0;
    };

    std::shared_ptr<Control> control_;
};

/** Queues, batches, and executes inference jobs on a shared pool. */
class InferenceEngine
{
  public:
    using Options = EngineOptions;

    explicit InferenceEngine(Options options = {});

    /** Runs shutdown() in the configured shutdown_mode. Every
     * outstanding future still resolves (Drain: with its result;
     * CancelAll: queued jobs with EngineError(Cancelled), running
     * jobs with a partial Cancelled result). */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue @p job; the handle's future resolves when it
     * completes (or carries the EngineError that refused/aborted
     * it). The job shares ownership of its singleton model, so the
     * caller has no lifetime obligations after this returns.
     *
     * Admission control: with max_queued_jobs set and the queue
     * full, Block waits for space (throwing EngineError(Cancelled)
     * if the engine shuts down first) and RejectNewest throws
     * EngineError(QueueFull).
     */
    JobHandle submit(InferenceJob job);

    /**
     * Stop accepting jobs and join the dispatchers. Drain finishes
     * all outstanding work first; CancelAll trips every running
     * job's token (they resolve with partial Cancelled results) and
     * resolves still-queued jobs with EngineError(Cancelled).
     * Idempotent; later calls (and the destructor) are no-ops.
     */
    void shutdown(ShutdownMode mode);

    /** shutdown() in the configured default mode. */
    void shutdown() { shutdown(options_.shutdown_mode); }

    /** Jobs accepted but not yet finished. */
    int pendingJobs() const;

    int threads() const { return pool_.size(); }

    /** Snapshot of the SweepTableSet cache counters. */
    TableCacheStats tableCacheStats() const;

  private:
    struct QueuedJob
    {
        InferenceJob job;
        std::promise<InferenceResult> promise;
        std::shared_ptr<JobHandle::Control> control;
        /** Absolute deadline, fixed at submit() so queue time
         * counts against the budget. */
        std::optional<std::chrono::steady_clock::time_point>
            deadline;
        uint64_t id = 0;
    };

    /**
     * What makes two jobs' static tables interchangeable: the same
     * singleton data source (by identity — the model interface is
     * opaque, so value equality is unknowable) and the same static
     * shape. Temperature is deliberately absent: SweepTableSet holds
     * no temperature-dependent state, so annealing jobs and
     * fixed-temperature jobs on one model share one set.
     */
    struct TableCacheKey
    {
        const rsu::mrf::SingletonModel *singleton = nullptr;
        int width = 0;
        int height = 0;
        int num_labels = 0;
        rsu::core::EnergyConfig energy;
        std::vector<rsu::mrf::Label> codes;

        bool operator==(const TableCacheKey &) const = default;
    };

    struct TableCacheEntry
    {
        TableCacheKey key;
        /** Pins the model while its tables are cached: the key
         * compares model *addresses*, so without this share a dead
         * model's address could be recycled by a new allocation and
         * alias a stale entry. Ownership makes the identity key
         * sound. */
        std::shared_ptr<const rsu::mrf::SingletonModel> model;
        std::shared_ptr<const rsu::mrf::SweepTableSet> set;
    };

    void dispatcherLoop();
    InferenceResult execute(QueuedJob &queued);

    /** Resolve a job that will never run with @p error (status
     * Cancelled, unfinished count decremented first). */
    void resolveUnrun(QueuedJob &queued, const EngineError &error);

    /**
     * The cached set for @p mrf's model, building (parallel row
     * scan) and inserting on a miss. Sets @p result's
     * table_build_seconds / table_cache_hit. Concurrent jobs on one
     * new model may race to build — both sets are identical, the
     * loser's is dropped; the build itself runs outside the cache
     * lock so jobs on other models are never stalled behind it.
     */
    std::shared_ptr<const rsu::mrf::SweepTableSet>
    acquireTableSet(const rsu::mrf::GridMrf &mrf,
                    const InferenceJob &job, InferenceResult &result);

    Options options_;
    ThreadPool pool_;
    std::vector<std::thread> dispatchers_;
    std::deque<QueuedJob> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;       //!< queue has work / stopping
    std::condition_variable space_cv_; //!< queue has room (Block)
    bool stop_ = false;
    bool joined_ = false;
    int unfinished_ = 0;
    uint64_t next_id_ = 1;
    /** Controls of currently-running jobs (CancelAll targets). */
    std::vector<std::shared_ptr<JobHandle::Control>> running_;

    // Table cache (own lock: held only for lookup/insert, never
    // while building, so it cannot serialize job execution).
    mutable std::mutex table_mutex_;
    std::vector<TableCacheEntry> table_cache_; // front = LRU victim
    uint64_t table_hits_ = 0;
    uint64_t table_misses_ = 0;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_INFERENCE_ENGINE_H
