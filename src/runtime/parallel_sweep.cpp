#include "runtime/parallel_sweep.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>

namespace rsu::runtime {

rsu::core::RowParallelFor
parallelRowRunner(ThreadPool &pool)
{
    return [&pool](int n, const std::function<void(int)> &fn) {
        if (n <= 1 || pool.size() <= 1) {
            for (int i = 0; i < n; ++i)
                fn(i);
            return;
        }
        const int chunks = std::min(n, pool.size() * 4);
        const auto bands = shardRows(n, chunks);
        std::exception_ptr first_error;
        std::mutex error_mutex;
        Latch latch(chunks);
        for (int c = 0; c < chunks; ++c) {
            pool.submit([&bands, &fn, &latch, &first_error,
                         &error_mutex, c] {
                try {
                    for (int i = bands[c].y0; i < bands[c].y1; ++i)
                        fn(i);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(
                        error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                latch.countDown();
            });
        }
        latch.wait();
        if (first_error)
            std::rethrow_exception(first_error);
    };
}

std::vector<RowBand>
shardRows(int height, int shards)
{
    if (height < 0)
        throw std::invalid_argument("shardRows: need height >= 0");
    if (shards < 1)
        throw std::invalid_argument("shardRows: need shards >= 1");
    std::vector<RowBand> bands(shards);
    const int base = height / shards;
    const int extra = height % shards;
    int y = 0;
    for (int s = 0; s < shards; ++s) {
        const int rows = base + (s < extra ? 1 : 0);
        bands[s] = RowBand{y, y + rows};
        y += rows;
    }
    return bands;
}

ParallelSweepExecutor::ParallelSweepExecutor(ThreadPool &pool,
                                             int shards)
    : pool_(pool), shards_(shards == 0 ? pool.size() : shards)
{
    if (shards_ < 1)
        throw std::invalid_argument(
            "ParallelSweepExecutor: need shards >= 1");
}

} // namespace rsu::runtime
