#include "runtime/parallel_sweep.h"

#include <stdexcept>

namespace rsu::runtime {

std::vector<RowBand>
shardRows(int height, int shards)
{
    if (height < 0)
        throw std::invalid_argument("shardRows: need height >= 0");
    if (shards < 1)
        throw std::invalid_argument("shardRows: need shards >= 1");
    std::vector<RowBand> bands(shards);
    const int base = height / shards;
    const int extra = height % shards;
    int y = 0;
    for (int s = 0; s < shards; ++s) {
        const int rows = base + (s < extra ? 1 : 0);
        bands[s] = RowBand{y, y + rows};
        y += rows;
    }
    return bands;
}

ParallelSweepExecutor::ParallelSweepExecutor(ThreadPool &pool,
                                             int shards)
    : pool_(pool), shards_(shards == 0 ? pool.size() : shards)
{
    if (shards_ < 1)
        throw std::invalid_argument(
            "ParallelSweepExecutor: need shards >= 1");
}

} // namespace rsu::runtime
