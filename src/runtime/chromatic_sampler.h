/**
 * @file
 * Multi-threaded chromatic Gibbs sampling over a GridMrf.
 *
 * Binds the ParallelSweepExecutor to the two sampler backends: the
 * software-reference Gibbs kernel and the emulated RSU-G device. Each
 * shard owns the full per-worker state a correct parallel chain
 * needs — an RNG stream (jump()-separated, see rng/streams.h) or a
 * whole emulated RSU-G device, candidate-weight scratch, and its own
 * work counters — so a sweep performs zero cross-shard writes except
 * the chromatically safe label-field updates themselves.
 *
 * With one shard the chain consumes entropy in exactly the sequential
 * samplers' order, so results are bit-identical to GibbsSampler /
 * RsuGibbsSampler (Direct mode) with the same seed; with S shards
 * results are bit-identical across runs and across pool sizes for
 * the same (seed, S).
 */

#ifndef RSU_RUNTIME_CHROMATIC_SAMPLER_H
#define RSU_RUNTIME_CHROMATIC_SAMPLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rsu_g.h"
#include "core/tables.h"
#include "mrf/fast_sweep.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "rng/xoshiro256.h"
#include "runtime/parallel_sweep.h"

namespace rsu::runtime {

/** Which site-update kernel the runtime drives. */
enum class SamplerKind {
    SoftwareGibbs, //!< full-conditional softmax + CDF scan per site
    RsuGibbs,      //!< emulated RSU-G device race, one unit per shard
};

/** Parallel checkerboard Gibbs chain over a thread pool. */
class ChromaticGibbsSampler
{
  public:
    /**
     * @param mrf model to sample (labels mutated in place; must
     *        outlive the sampler)
     * @param executor phase/shard driver (must outlive the sampler);
     *        its shard count fixes this chain's stream count
     * @param seed entropy seed; shard 0's stream is seeded exactly
     *        like the sequential samplers so 1-shard runs reproduce
     *        them bit-for-bit
     * @param kind site-update backend
     * @param rsu_base RSU-G configuration template for the per-shard
     *        units (RsuGibbs only); the energy datapath is overridden
     *        to match the model's, as RsuGibbsSampler requires
     * @param path SoftwareGibbs realization: Reference recomputes
     *        conditionals from the model; Table precomputes one
     *        SweepTables shared read-only by every shard and sweeps
     *        through lookups — bit-identical results (see
     *        mrf/fast_sweep.h), several times faster; Simd
     *        vectorizes the candidate dimension over Q32
     *        fixed-point weights — fastest, identical across
     *        ISAs/runs/shard counts but not bit-identical to the
     *        other two. Ignored by RsuGibbs, whose device path is
     *        already table-driven (and whose data2 operands are
     *        always staged).
     * @param table_set pre-built static tables for this exact model
     *        (Table/Simd paths; e.g. the InferenceEngine's cache) —
     *        skips the singleton scan. nullptr builds a private set.
     */
    ChromaticGibbsSampler(rsu::mrf::GridMrf &mrf,
                          ParallelSweepExecutor &executor,
                          uint64_t seed,
                          SamplerKind kind = SamplerKind::SoftwareGibbs,
                          const rsu::core::RsuGConfig &rsu_base = {},
                          rsu::mrf::SweepPath path =
                              rsu::mrf::SweepPath::Reference,
                          std::shared_ptr<const rsu::mrf::SweepTableSet>
                              table_set = nullptr);

    /**
     * One MCMC iteration: every site updated once, chromatically.
     * Returns false (leaving the label field untouched) when the
     * executor's cancellation token was tripped before the sweep
     * began; true otherwise.
     */
    bool sweep();

    /** Run up to @p n sweeps; stops early if a sweep reports
     * cancellation. */
    void run(int n);

    /**
     * Install a new Gibbs temperature (annealing). For the RSU
     * backend this re-initializes every shard's unit intensity map,
     * mirroring RsuGibbsSampler::setTemperature.
     */
    void setTemperature(double t);

    /** Work counters summed over all shards. */
    rsu::mrf::SamplerWork work() const;

    SamplerKind kind() const { return kind_; }
    rsu::mrf::SweepPath path() const { return path_; }
    int shards() const { return static_cast<int>(shards_.size()); }

    /**
     * Select the Simd path's kernel ISA (no-op on other paths).
     * Any choice yields identical labels; call between sweeps.
     */
    void setSimdIsa(rsu::core::SimdIsa isa);

    /** Shard @p s's emulated device (RsuGibbs only; tests/wear). */
    rsu::core::RsuG &unit(int s) { return *shards_[s].unit; }

    /**
     * Inject the per-shard slice of a device fault campaign
     * (RsuGibbs only; no-op otherwise). Shard s receives
     * plan.faultsFor(s, width), so the afflicted lanes depend only
     * on (plan.seed, shard index) — stable across pool sizes.
     */
    void injectFaults(const rsu::ret::FaultPlan &plan);

    /** True once any shard's device declared itself failed
     * (always false for SoftwareGibbs). */
    bool deviceFailed() const;

    /** Device health/occupancy counters summed over all shards
     * (zeros for SoftwareGibbs). */
    rsu::core::RsuGStats deviceStats() const;

  private:
    /** Everything one worker touches during a phase. */
    struct Shard
    {
        rsu::rng::Xoshiro256 rng{0};
        std::vector<double> weights;      // SoftwareGibbs scratch
        std::vector<uint32_t> fixed_weights; // Simd scratch (padded)
        rsu::rng::BlockRng block;         // Simd draw buffer
        std::unique_ptr<rsu::core::RsuG> unit; // RsuGibbs device
        rsu::mrf::SamplerWork work;
    };

    rsu::mrf::GridMrf &mrf_;
    ParallelSweepExecutor &executor_;
    SamplerKind kind_;
    rsu::mrf::SweepPath path_;
    std::vector<Shard> shards_;
    // Shared read-only during sweeps; tables_ is re-synced (exp
    // rebuild on temperature change) single-threaded at sweep start.
    std::unique_ptr<rsu::mrf::SweepTables> tables_; // Table/Simd
    std::unique_ptr<rsu::core::Data2Table> data2_;    // RsuGibbs
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_CHROMATIC_SAMPLER_H
