/**
 * @file
 * Fixed-size thread pool and countdown latch.
 *
 * The execution substrate of the chromatic inference runtime. The
 * paper's parallelism argument (section 4.2, Figure 4) is phase
 * structured: all same-colour checkerboard sites may update at once,
 * but a colour phase must fully retire before the opposite colour
 * starts. That maps onto a deliberately simple pool — a fixed set of
 * workers draining one FIFO queue, no work stealing — plus a Latch
 * the submitter blocks on to close each phase. Shard tasks within a
 * phase are uniform row bands of one lattice, so stealing would buy
 * nothing and cost determinism-debugging pain.
 */

#ifndef RSU_RUNTIME_THREAD_POOL_H
#define RSU_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rsu::runtime {

/**
 * Single-use countdown latch (a C++20 std::latch equivalent kept
 * in-tree so the runtime has one obvious place to instrument or
 * swap the phase-closing primitive).
 */
class Latch
{
  public:
    explicit Latch(int count);

    /** Decrement the counter; at zero, releases all waiters. */
    void countDown();

    /** Block until the counter reaches zero. */
    void wait();

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int count_;
};

/** Fixed-size FIFO thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 selects the hardware
     *        concurrency (at least 1)
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins the workers after draining queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker thread count. */
    int size() const { return static_cast<int>(threads_.size()); }

    /** Enqueue a task; runs on some worker in FIFO order. */
    void submit(std::function<void()> task);

    /** std::thread::hardware_concurrency(), at least 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_THREAD_POOL_H
