/**
 * @file
 * Cooperative cancellation and the engine's error taxonomy.
 *
 * A CancellationToken is a shared flag checked at sweep and phase
 * boundaries — never mid-kernel — so a cancelled job always stops at
 * a well-defined point: a job observed to cancel after sweep k holds
 * exactly k sweeps' worth of labels. A default-constructed token is
 * *inert* (no allocation, never cancellable); the fast paths pay a
 * single null-pointer test for it, so jobs that never cancel cost
 * nothing measurable (pinned by the robustness bench).
 *
 * EngineError is the typed failure vocabulary of the serving layer:
 * every way the engine refuses, abandons, or loses a job maps to one
 * EngineErrorCode, so callers can switch on code() instead of
 * parsing what() strings.
 */

#ifndef RSU_RUNTIME_CANCELLATION_H
#define RSU_RUNTIME_CANCELLATION_H

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace rsu::runtime {

/** Shared cooperative-cancellation flag. Copies alias one flag. */
class CancellationToken
{
  public:
    /** Inert token: cancelled() is always false, cancel() a no-op. */
    CancellationToken() = default;

    /** A live token that cancel() can trip. */
    static CancellationToken
    make()
    {
        CancellationToken t;
        t.flag_ = std::make_shared<std::atomic<bool>>(false);
        return t;
    }

    /** True when this token can ever report cancellation. */
    bool cancellable() const { return flag_ != nullptr; }

    /** Has cancel() been called on this token (or a copy)? */
    bool
    cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    /** Request cancellation. Safe from any thread; no-op if inert. */
    void
    cancel()
    {
        if (flag_)
            flag_->store(true, std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/** Every way the engine refuses, abandons, or loses a job. */
enum class EngineErrorCode
{
    QueueFull,        //!< admission rejected under backpressure
    DeadlineExceeded, //!< deadline passed before the job finished
    Cancelled,        //!< cancelled by the caller or by shutdown
    DeviceFailed,     //!< RSU device failed and fallback was off
};

/** Short stable name for an error code (logs, tests). */
inline const char *
engineErrorCodeName(EngineErrorCode code)
{
    switch (code) {
    case EngineErrorCode::QueueFull:
        return "QueueFull";
    case EngineErrorCode::DeadlineExceeded:
        return "DeadlineExceeded";
    case EngineErrorCode::Cancelled:
        return "Cancelled";
    case EngineErrorCode::DeviceFailed:
        return "DeviceFailed";
    }
    return "Unknown";
}

/** Typed engine failure; code() selects, what() explains. */
class EngineError : public std::runtime_error
{
  public:
    EngineError(EngineErrorCode code, const std::string &message)
        : std::runtime_error(std::string(engineErrorCodeName(code)) +
                             ": " + message),
          code_(code)
    {
    }

    EngineErrorCode code() const { return code_; }

  private:
    EngineErrorCode code_;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_CANCELLATION_H
