/**
 * @file
 * Chromatic (checkerboard) parallel sweep executor.
 *
 * Realizes the paper's Figure 4 argument in software: a first-order
 * grid MRF is 2-colourable, every neighbour of an even-parity site is
 * odd-parity, so all sites of one colour have mutually independent
 * full conditionals and may be resampled concurrently. A sweep is two
 * phases — parity 0, barrier, parity 1 — and within a phase the
 * lattice rows are cut into contiguous row-band shards, one task per
 * shard.
 *
 * Determinism: the executor is deterministic in (shard count, what
 * the per-shard update callable does), NOT in thread scheduling. A
 * shard index is a stable identity: shard s always covers the same
 * rows and is always driven with the same shard-local state (RNG
 * stream, scratch, emulated device) no matter which pool thread
 * happens to execute it. Since same-phase updates never read each
 * other's sites, the label field after a sweep depends only on
 * (initial labels, per-shard streams) — bit-identical across runs
 * and across pool sizes for a fixed shard count.
 */

#ifndef RSU_RUNTIME_PARALLEL_SWEEP_H
#define RSU_RUNTIME_PARALLEL_SWEEP_H

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "core/tables.h"
#include "mrf/schedule.h"
#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"

namespace rsu::runtime {

/**
 * A core::RowParallelFor that fans row fills out over @p pool
 * (used to parallelize SweepTableSet's singleton scan). Rows are
 * cut into contiguous chunks, ~4 per worker for load balance; the
 * caller's thread blocks until every row ran. Falls back to a
 * sequential loop for tiny row counts or a single-worker pool.
 * The produced table is identical either way — each row's fill is
 * independent, so only wall clock changes. @p pool must outlive
 * the returned callable.
 */
rsu::core::RowParallelFor parallelRowRunner(ThreadPool &pool);

/** Half-open row range [y0, y1) owned by one shard. */
struct RowBand
{
    int y0 = 0;
    int y1 = 0;

    int rows() const { return y1 - y0; }
};

/**
 * Cut @p height rows into @p shards contiguous bands whose sizes
 * differ by at most one row (leading bands take the remainder).
 * Shards beyond the row count get empty bands.
 */
std::vector<RowBand> shardRows(int height, int shards);

/** Wall-clock spent inside each colour phase, summed over sweeps. */
struct PhaseTiming
{
    double even_seconds = 0.0; //!< parity-0 phases, including barrier
    double odd_seconds = 0.0;  //!< parity-1 phases, including barrier
    uint64_t sweeps = 0;

    double total() const { return even_seconds + odd_seconds; }
};

/** Runs checkerboard sweeps over a thread pool in row-band shards. */
class ParallelSweepExecutor
{
  public:
    /**
     * @param pool execution substrate (must outlive the executor);
     *        tasks from several executors may interleave on one pool
     * @param shards shard (and RNG-stream) count; fixes the
     *        deterministic partition independently of pool size.
     *        0 selects the pool size.
     */
    ParallelSweepExecutor(ThreadPool &pool, int shards = 0);

    int shards() const { return shards_; }

    /**
     * Install a cancellation token checked once per sweep, before
     * the parity-0 phase. A sweep that has begun always completes
     * both phases — cancellation never tears a sweep, so the label
     * field is always a whole number of sweeps old. An inert
     * (default) token restores the unchecked behaviour.
     */
    void
    setCancellationToken(CancellationToken token)
    {
        cancel_ = std::move(token);
    }

    const CancellationToken &cancellationToken() const
    {
        return cancel_;
    }

    /**
     * One checkerboard sweep of a width x height lattice:
     * fn(shard, x, y) is invoked for every parity-0 site (each shard
     * concurrently, row-major within a shard), then — after a
     * barrier — for every parity-1 site. The caller's thread blocks
     * on each phase's latch; fn must touch only shard-local state
     * plus sites the chromatic argument makes safe (the site itself
     * and its opposite-parity neighbours).
     *
     * Returns false — without visiting any site — when the installed
     * cancellation token was already tripped; true when the sweep
     * ran. An exception thrown by @p fn on any shard is rethrown
     * here (first one wins; the remaining phase is skipped but every
     * in-flight task still finishes before the rethrow, so the pool
     * is never wedged).
     */
    template <typename Fn>
    bool
    sweep(int width, int height, Fn &&fn)
    {
        // The split visit with one callable on both classes is the
        // plain checkerboard sweep (identical site order).
        return sweepSplit(width, height, fn, fn);
    }

    /**
     * sweep() with the lattice-interior/border split: for sites
     * whose four neighbours all exist, interior(shard, x, y) runs
     * instead of border(shard, x, y). Visit order is identical to
     * sweep() — the split selects a kernel, never reorders — so a
     * per-shard entropy stream is consumed the same way on either
     * form. This is how the table-driven fast path drives its
     * branch-free interior kernel per shard
     * (mrf::forEachSiteInRowsSplit classifies by lattice
     * coordinates, so band-edge rows of an interior shard still run
     * the interior kernel).
     */
    template <typename FnInterior, typename FnBorder>
    bool
    sweepSplit(int width, int height, FnInterior &&interior,
               FnBorder &&border)
    {
        // Cancellation is observed only here, between sweeps: once
        // a sweep starts, both phases run to completion so shard
        // entropy streams and the label field stay sweep-aligned.
        if (cancel_.cancelled())
            return false;

        const auto bands = shardRows(height, shards_);
        std::exception_ptr first_error;
        std::mutex error_mutex;
        for (int parity = 0; parity < 2; ++parity) {
            const auto start = std::chrono::steady_clock::now();
            Latch latch(static_cast<int>(bands.size()));
            for (int s = 0; s < static_cast<int>(bands.size());
                 ++s) {
                pool_.submit([&, s, parity] {
                    // The latch must count down on every exit path
                    // or the caller (and the pool) wedge forever.
                    try {
                        rsu::mrf::forEachSiteInRowsSplit(
                            width, height, bands[s].y0, bands[s].y1,
                            parity,
                            [&](int x, int y) { interior(s, x, y); },
                            [&](int x, int y) { border(s, x, y); });
                    } catch (...) {
                        const std::lock_guard<std::mutex> lock(
                            error_mutex);
                        if (!first_error)
                            first_error = std::current_exception();
                    }
                    latch.countDown();
                });
            }
            latch.wait();
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            (parity == 0 ? timing_.even_seconds
                         : timing_.odd_seconds) += elapsed.count();
            if (first_error)
                break; // skip the second phase; state is torn anyway
        }
        if (first_error)
            std::rethrow_exception(first_error);
        ++timing_.sweeps;
        return true;
    }

    const PhaseTiming &timing() const { return timing_; }
    void resetTiming() { timing_ = PhaseTiming{}; }

  private:
    ThreadPool &pool_;
    int shards_;
    PhaseTiming timing_;
    CancellationToken cancel_;
};

} // namespace rsu::runtime

#endif // RSU_RUNTIME_PARALLEL_SWEEP_H
