/**
 * @file
 * Energy-to-intensity lookup table.
 *
 * The "Intensity Mapping" pipeline stage (paper section 5.2): a
 * 256-entry x 4-bit LUT translating an 8-bit clique-potential energy
 * into the LED on/off code whose optical intensity best approximates
 * the Gibbs weight exp(-E/T). The table is application state,
 * initialized once per application through the RSU instruction
 * (section 6.1) and saved/restored on context switches.
 *
 * Building the table requires the LED bank's achievable intensity
 * ladder; the builder picks, for each energy, the code nearest to
 * maxIntensity * exp(-E/T) on a log scale. Energies whose target
 * falls below half the dimmest achievable intensity map to code 0
 * (all LEDs off, channel never fires) — the hardware's way of
 * flushing negligible-probability labels to zero.
 */

#ifndef RSU_CORE_INTENSITY_MAP_H
#define RSU_CORE_INTENSITY_MAP_H

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "ret/qdled.h"

namespace rsu::core {

/** The 4-bit-wide LUT, with a configurable entry count for the
 * precision-ablation studies (default 256 = 8-bit energies). */
class IntensityMap
{
  public:
    /** Uninitialized table (all entries 0) with @p entries entries. */
    explicit IntensityMap(int entries = kEnergyMax + 1);

    /**
     * Build the table for Gibbs temperature @p temperature against
     * LED bank @p bank.
     *
     * @param bank achievable-intensity ladder
     * @param temperature the MRF's T constant (energy units)
     */
    void build(const rsu::ret::QdLedBank &bank, double temperature);

    /** LED code for energy @p e (energies past the end clamp). */
    uint8_t lookup(int e) const;

    /** Raw entry write (ISA map-table initialization path). */
    void setEntry(int e, uint8_t code);

    /**
     * Write 16 consecutive 4-bit entries packed into a 64-bit word
     * (entry e in bits [4e+3 : 4e] of the word). Used by the RSU
     * instruction's MAP_TABLE_LO/HI transfers.
     */
    void writeWord(int word_index, uint64_t word);

    /** Read back a packed 64-bit word (context save). */
    uint64_t readWord(int word_index) const;

    int entries() const { return static_cast<int>(table_.size()); }

    /** Number of 64-bit words that cover the table. */
    int words() const { return (entries() + 15) / 16; }

    /** Table size in bytes (4 bits per entry). */
    int sizeBytes() const { return (entries() + 1) / 2; }

    bool operator==(const IntensityMap &other) const
    {
        return table_ == other.table_;
    }

  private:
    std::vector<uint8_t> table_;
};

} // namespace rsu::core

#endif // RSU_CORE_INTENSITY_MAP_H
