/**
 * @file
 * Precomputed lookup tables for the table-driven fast sweep path.
 *
 * The software Gibbs reference pays, per candidate evaluation, a
 * virtual SingletonModel::data2() call, a branchy
 * EnergyUnit::evaluate(), and a std::exp(). All three are pure
 * functions of tiny static domains — the singleton data of a fixed
 * model, the 64 x 64 label-code pairs, and the 256 possible 8-bit
 * energies at one temperature — so each can be precomputed once and
 * turned into a load. Because every energy in the system is an exact
 * integer, the lookups reproduce the reference computation
 * *bit-identically*: same integer energy in, same double weight out
 * (the exp table stores the very doubles std::exp would have
 * returned), same discrete draw from the same RNG state.
 *
 * These classes are model-agnostic: they depend only on the energy
 * datapath and plain fill callables, so the core layer stays free of
 * MRF types. mrf::SweepTables bundles them for a GridMrf.
 */

#ifndef RSU_CORE_TABLES_H
#define RSU_CORE_TABLES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/energy_unit.h"
#include "core/types.h"

namespace rsu::core {

/**
 * Per-site x per-candidate singleton clique energies.
 *
 * Row layout is site-major: row(site) is numLabels() consecutive
 * entries, one per candidate index. Entries are the *exact* integer
 * EnergyUnit::singleton() values (6-bit data squared differences
 * reach 3969 before the configured shift, so entries are 16-bit,
 * not 8). Memory: 2 * width * height * num_labels bytes.
 */
class SingletonTable
{
  public:
    /**
     * Precompute every entry by calling @p energy(x, y, candidate)
     * once per (site, candidate). The callable must return the
     * non-negative integer singleton energy (fits in 16 bits).
     */
    template <typename Fn>
    SingletonTable(int width, int height, int num_labels, Fn &&energy)
        : width_(width), height_(height), num_labels_(num_labels),
          entries_(static_cast<size_t>(width) * height * num_labels)
    {
        size_t at = 0;
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                for (int i = 0; i < num_labels; ++i) {
                    const int e = energy(x, y, i);
                    assert(e >= 0 && e <= 0xffff);
                    entries_[at++] = static_cast<uint16_t>(e);
                }
            }
        }
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int numLabels() const { return num_labels_; }

    /** Candidate energies of @p site (numLabels() entries). */
    const uint16_t *
    row(int site) const
    {
        return entries_.data() +
               static_cast<size_t>(site) * num_labels_;
    }

    uint16_t at(int site, int candidate) const
    {
        return row(site)[candidate];
    }

    /**
     * Candidate index with the smallest singleton energy at
     * @p site; ties resolve to the lowest index, matching a
     * strict-less scan.
     */
    int argminRow(int site) const;

  private:
    int width_;
    int height_;
    int num_labels_;
    std::vector<uint16_t> entries_;
};

/**
 * Candidate-index x neighbour-code doubleton distances.
 *
 * Row i holds EnergyUnit::doubleton(codes[i], c) for every 6-bit
 * neighbour code c — mode, weight, and cap are baked in. At most
 * 64 x 64 ints (16 KiB), so the whole table lives in L1.
 */
class DoubletonTable
{
  public:
    DoubletonTable(const EnergyUnit &unit,
                   const std::vector<Label> &codes);

    int numCandidates() const { return num_candidates_; }

    /** Distances from candidate @p i to every neighbour code. */
    const int32_t *
    row(int candidate) const
    {
        return rows_.data() +
               static_cast<size_t>(candidate) * kMaxLabels;
    }

    int32_t at(int candidate, Label neighbor_code) const
    {
        return row(candidate)[neighbor_code & kLabelMask];
    }

  private:
    int num_candidates_;
    std::vector<int32_t> rows_; // numCandidates x kMaxLabels
};

/**
 * exp(-e / T) for every 8-bit energy e at one temperature.
 *
 * Entries are computed with the exact expression the reference
 * sampler uses — std::exp(-double(e) / T) — so a lookup returns a
 * bit-identical double. The owner keys the table to a temperature
 * *version* (GridMrf bumps its version in setTemperature()) so
 * annealing invalidates cached tables automatically; rebuild() is
 * cheap (256 exp calls) and must be called from a single thread
 * between sweeps.
 */
class ExpTable
{
  public:
    /** Recompute all entries for @p temperature, stamping
     * @p version. */
    void rebuild(double temperature, uint64_t version);

    bool built() const { return !values_.empty(); }
    uint64_t version() const { return version_; }
    double temperature() const { return temperature_; }

    /** The 256-entry weight table (index = 8-bit energy). */
    const double *data() const { return values_.data(); }

    double
    at(int energy) const
    {
        assert(energy >= 0 && energy <= kEnergyMax);
        return values_[energy];
    }

  private:
    std::vector<double> values_;
    double temperature_ = 0.0;
    uint64_t version_ = 0;
};

/**
 * Per-site x per-candidate staged singleton data2 bytes.
 *
 * The RSU path transfers raw data2 operands (not energies) to the
 * device, so its staging table stores the model's data2 bytes; a
 * row can be handed to RsuG::sample() directly, eliminating the
 * per-site virtual data2() calls without copying.
 */
class Data2Table
{
  public:
    /** Precompute via @p data2(x, y, candidate) -> uint8_t. */
    template <typename Fn>
    Data2Table(int width, int height, int num_labels, Fn &&data2)
        : num_labels_(num_labels),
          entries_(static_cast<size_t>(width) * height * num_labels)
    {
        size_t at = 0;
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                for (int i = 0; i < num_labels; ++i)
                    entries_[at++] =
                        static_cast<uint8_t>(data2(x, y, i));
    }

    int numLabels() const { return num_labels_; }

    /** Candidate data2 bytes of @p site (numLabels() entries). */
    const uint8_t *
    row(int site) const
    {
        return entries_.data() +
               static_cast<size_t>(site) * num_labels_;
    }

  private:
    int num_labels_;
    std::vector<uint8_t> entries_;
};

} // namespace rsu::core

#endif // RSU_CORE_TABLES_H
