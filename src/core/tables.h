/**
 * @file
 * Precomputed lookup tables for the table-driven fast sweep path.
 *
 * The software Gibbs reference pays, per candidate evaluation, a
 * virtual SingletonModel::data2() call, a branchy
 * EnergyUnit::evaluate(), and a std::exp(). All three are pure
 * functions of tiny static domains — the singleton data of a fixed
 * model, the 64 x 64 label-code pairs, and the 256 possible 8-bit
 * energies at one temperature — so each can be precomputed once and
 * turned into a load. Because every energy in the system is an exact
 * integer, the lookups reproduce the reference computation
 * *bit-identically*: same integer energy in, same double weight out
 * (the exp table stores the very doubles std::exp would have
 * returned), same discrete draw from the same RNG state.
 *
 * These classes are model-agnostic: they depend only on the energy
 * datapath and plain fill callables, so the core layer stays free of
 * MRF types. mrf::SweepTables bundles them for a GridMrf.
 */

#ifndef RSU_CORE_TABLES_H
#define RSU_CORE_TABLES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/energy_unit.h"
#include "core/types.h"

namespace rsu::core {

/**
 * Pluggable parallel-for over n independent units of work: invoke
 * the callable exactly once per index in [0, n), in any order, from
 * any threads, and return only when all invocations finished. Table
 * builders accept one so the runtime can fan row fills out over its
 * ThreadPool (runtime::parallelRowRunner) without the core layer
 * depending on it; an empty function means sequential. Results are
 * order-independent — every index writes a disjoint slice — so the
 * built table is identical either way.
 */
using RowParallelFor =
    std::function<void(int n, const std::function<void(int)> &)>;

/**
 * Per-site x per-candidate singleton clique energies.
 *
 * Row layout is site-major: row(site) is paddedLabels() consecutive
 * entries, the first numLabels() of which are real candidates.
 * Entries are the *exact* integer EnergyUnit::singleton() values
 * (6-bit data squared differences reach 3969 before the configured
 * shift, so entries are 16-bit, not 8). Rows may be padded past
 * numLabels() up to a SIMD lane multiple; padding entries hold
 * kEnergyMax so a vector kernel that sums them anyway lands on the
 * shared min(e, kEnergyMax) clamp and the lane is harmless (the
 * candidate select never scans past numLabels()). Memory:
 * 2 * width * height * padded_labels bytes.
 */
class SingletonTable
{
  public:
    /**
     * Precompute every entry by calling @p energy(x, y, candidate)
     * once per (site, candidate). The callable must return the
     * non-negative integer singleton energy (fits in 16 bits).
     *
     * @param padded_labels row stride in entries (0 means
     *        num_labels, i.e. no padding); must be >= num_labels
     * @param parallel optional RowParallelFor that fans the
     *        per-lattice-row fills out over worker threads; rows are
     *        independent, so the result is identical to a
     *        sequential build
     */
    template <typename Fn>
    SingletonTable(int width, int height, int num_labels,
                   int padded_labels, Fn &&energy,
                   const RowParallelFor &parallel = {})
        : width_(width), height_(height), num_labels_(num_labels),
          padded_labels_(padded_labels == 0 ? num_labels
                                            : padded_labels),
          entries_(static_cast<size_t>(width) * height *
                   padded_labels_)
    {
        assert(padded_labels_ >= num_labels_);
        const auto fill_row = [&](int y) {
            size_t at = static_cast<size_t>(y) * width_ *
                        padded_labels_;
            for (int x = 0; x < width_; ++x) {
                for (int i = 0; i < num_labels_; ++i) {
                    const int e = energy(x, y, i);
                    assert(e >= 0 && e <= 0xffff);
                    entries_[at + i] = static_cast<uint16_t>(e);
                }
                for (int i = num_labels_; i < padded_labels_; ++i)
                    entries_[at + i] =
                        static_cast<uint16_t>(kEnergyMax);
                at += padded_labels_;
            }
        };
        if (parallel)
            parallel(height_, fill_row);
        else
            for (int y = 0; y < height_; ++y)
                fill_row(y);
    }

    /** Unpadded sequential build (row stride = num_labels). */
    template <typename Fn>
    SingletonTable(int width, int height, int num_labels, Fn &&energy)
        : SingletonTable(width, height, num_labels, 0,
                         std::forward<Fn>(energy))
    {
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int numLabels() const { return num_labels_; }

    /** Row stride in entries (>= numLabels()). */
    int paddedLabels() const { return padded_labels_; }

    /** Candidate energies of @p site (paddedLabels() entries, the
     * first numLabels() real). */
    const uint16_t *
    row(int site) const
    {
        return entries_.data() +
               static_cast<size_t>(site) * padded_labels_;
    }

    uint16_t at(int site, int candidate) const
    {
        return row(site)[candidate];
    }

    /**
     * Candidate index with the smallest singleton energy at
     * @p site; ties resolve to the lowest index, matching a
     * strict-less scan.
     */
    int argminRow(int site) const;

  private:
    int width_;
    int height_;
    int num_labels_;
    int padded_labels_;
    std::vector<uint16_t> entries_;
};

/**
 * Candidate-index x neighbour-code doubleton distances.
 *
 * Row i holds EnergyUnit::doubleton(codes[i], c) for every 6-bit
 * neighbour code c — mode, weight, and cap are baked in. At most
 * 64 x 64 ints (16 KiB), so the whole table lives in L1.
 */
class DoubletonTable
{
  public:
    DoubletonTable(const EnergyUnit &unit,
                   const std::vector<Label> &codes);

    int numCandidates() const { return num_candidates_; }

    /** Distances from candidate @p i to every neighbour code. */
    const int32_t *
    row(int candidate) const
    {
        return rows_.data() +
               static_cast<size_t>(candidate) * kMaxLabels;
    }

    int32_t at(int candidate, Label neighbor_code) const
    {
        return row(candidate)[neighbor_code & kLabelMask];
    }

  private:
    int num_candidates_;
    std::vector<int32_t> rows_; // numCandidates x kMaxLabels
};

/**
 * Neighbour-code x candidate-index doubleton distances — the
 * DoubletonTable transposed, for kernels that vectorize the
 * *candidate* dimension. Row c holds
 * EnergyUnit::doubleton(codes[i], c) for every candidate i, padded
 * with zeros to a SIMD lane multiple (a zero pad keeps the padded
 * singleton entry at kEnergyMax, so the shared clamp still
 * saturates the lane). At most 64 x 64 ints (16 KiB), so like its
 * transpose the whole table lives in L1.
 */
class TransposedDoubletonTable
{
  public:
    /**
     * @param padded_candidates row stride (0 means codes.size());
     *        must be >= codes.size()
     */
    TransposedDoubletonTable(const EnergyUnit &unit,
                             const std::vector<Label> &codes,
                             int padded_candidates = 0);

    int numCandidates() const { return num_candidates_; }

    /** Row stride in entries (>= numCandidates()). */
    int paddedCandidates() const { return padded_candidates_; }

    /** Distances from every candidate to neighbour code @p code
     * (paddedCandidates() entries, the first numCandidates() real,
     * the rest zero). */
    const int32_t *
    row(Label code) const
    {
        return rows_.data() +
               static_cast<size_t>(code & kLabelMask) *
                   padded_candidates_;
    }

    int32_t at(Label neighbor_code, int candidate) const
    {
        return row(neighbor_code)[candidate];
    }

  private:
    int num_candidates_;
    int padded_candidates_;
    std::vector<int32_t> rows_; // kMaxLabels x paddedCandidates
};

/**
 * exp(-e / T) for every 8-bit energy e at one temperature.
 *
 * Entries are computed with the exact expression the reference
 * sampler uses — std::exp(-double(e) / T) — so a lookup returns a
 * bit-identical double. The owner keys the table to a temperature
 * *version* (GridMrf bumps its version in setTemperature()) so
 * annealing invalidates cached tables automatically; rebuild() is
 * cheap (256 exp calls) and must be called from a single thread
 * between sweeps.
 */
class ExpTable
{
  public:
    /** Recompute all entries for @p temperature, stamping
     * @p version. */
    void rebuild(double temperature, uint64_t version);

    bool built() const { return !values_.empty(); }
    uint64_t version() const { return version_; }
    double temperature() const { return temperature_; }

    /** The 256-entry weight table (index = 8-bit energy). */
    const double *data() const { return values_.data(); }

    double
    at(int energy) const
    {
        assert(energy >= 0 && energy <= kEnergyMax);
        return values_[energy];
    }

  private:
    std::vector<double> values_;
    double temperature_ = 0.0;
    uint64_t version_ = 0;
};

/**
 * Q32 fixed-point exp(-e / T) for every 8-bit energy e at one
 * temperature — the Simd sweep path's weight table.
 *
 * Entries are the double weights max-normalized (the maximum,
 * exp(0) = 1, maps to 2^32 - 1) and rounded to uint32_t, with a
 * floor of 1 so every real candidate keeps nonzero probability and
 * a site's weight total can never be zero. Integer weights make
 * candidate accumulation and prefix-sum selection associative and
 * lane-order independent, which is what lets AVX2, SSE2, and the
 * scalar fallback produce identical draws. The sweep kernels index
 * this table with *site-renormalized* energies (each candidate's
 * energy minus the site minimum — softmax-invariant), so the
 * site's best candidate always lands at entry 0 and quantization
 * error stays ~2^-32 relative to the site's own scale; the sampled
 * distribution is then statistically indistinguishable from the
 * exact one (chi-square tested) — but the Simd path is *not*
 * bit-identical to the Table/Reference paths, which use the exact
 * doubles.
 *
 * Version-keyed like ExpTable: the owner rebuilds on
 * GridMrf::temperatureVersion() bumps, single-threaded between
 * sweeps.
 */
class FixedExpTable
{
  public:
    /** What exp(0) = 1 maps to: the largest uint32_t. */
    static constexpr double kScale = 4294967295.0;

    /** Recompute all entries for @p temperature, stamping
     * @p version. */
    void rebuild(double temperature, uint64_t version);

    bool built() const { return !values_.empty(); }
    uint64_t version() const { return version_; }
    double temperature() const { return temperature_; }

    /** The 256-entry weight table (index = 8-bit energy). */
    const uint32_t *data() const { return values_.data(); }

    uint32_t
    at(int energy) const
    {
        assert(energy >= 0 && energy <= kEnergyMax);
        return values_[energy];
    }

  private:
    std::vector<uint32_t> values_;
    double temperature_ = 0.0;
    uint64_t version_ = 0;
};

/**
 * Per-site x per-candidate staged singleton data2 bytes.
 *
 * The RSU path transfers raw data2 operands (not energies) to the
 * device, so its staging table stores the model's data2 bytes; a
 * row can be handed to RsuG::sample() directly, eliminating the
 * per-site virtual data2() calls without copying.
 */
class Data2Table
{
  public:
    /** Precompute via @p data2(x, y, candidate) -> uint8_t. */
    template <typename Fn>
    Data2Table(int width, int height, int num_labels, Fn &&data2)
        : num_labels_(num_labels),
          entries_(static_cast<size_t>(width) * height * num_labels)
    {
        size_t at = 0;
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                for (int i = 0; i < num_labels; ++i)
                    entries_[at++] =
                        static_cast<uint8_t>(data2(x, y, i));
    }

    int numLabels() const { return num_labels_; }

    /** Candidate data2 bytes of @p site (numLabels() entries). */
    const uint8_t *
    row(int site) const
    {
        return entries_.data() +
               static_cast<size_t>(site) * num_labels_;
    }

  private:
    int num_labels_;
    std::vector<uint8_t> entries_;
};

} // namespace rsu::core

#endif // RSU_CORE_TABLES_H
