/**
 * @file
 * RSU-G: the RET-based Gibbs sampling unit.
 *
 * The paper's primary contribution (sections 4-5): a functional unit
 * that draws one new label for a first-order-MRF random variable by
 * racing M exponential samplers, one per candidate label, each
 * parameterized by the candidate's clique-potential energy. With
 * rates lambda_i proportional to exp(-E_i / T), the winner of the
 * race is distributed exactly as the Gibbs conditional.
 *
 * The unit is K-wide (RSU-G1 ... RSU-G64): K candidate labels are
 * evaluated per cycle, each on its own lane of replicated RET
 * circuits. Replication covers the circuits' quiescence window
 * (section 5.3); with fewer circuits than quiescence cycles the lane
 * stalls, which the embedded timing model charges explicitly.
 *
 * This class is simultaneously:
 *  - a *functional* model — sample() returns a label drawn through
 *    the full quantized device pipeline; and
 *  - a *timing* model — every sample advances a cycle counter using
 *    the paper's pipeline structure (7+(M-1) cycles for RSU-G1,
 *    12 cycles for RSU-G64, section 5).
 */

#ifndef RSU_CORE_RSU_G_H
#define RSU_CORE_RSU_G_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/energy_unit.h"
#include "core/intensity_map.h"
#include "core/selection_unit.h"
#include "core/types.h"
#include "ret/fault_injection.h"
#include "ret/ret_circuit.h"
#include "rng/xoshiro256.h"

namespace rsu::core {

/** Static configuration of an RSU-G instance. */
struct RsuGConfig
{
    /** Lane width K: candidate labels evaluated per cycle. */
    int width = 1;

    /** Replicated RET circuits per lane (section 5.3; default 4
     * covers the 4-cycle quiescence window). */
    int circuits_per_lane = 4;

    /** Energy datapath configuration. */
    EnergyConfig energy;

    /** Intensity LUT entry count (256 = 8-bit energies). */
    int lut_entries = kEnergyMax + 1;

    /** RET circuit device parameters. */
    rsu::ret::RetCircuitConfig circuit;

    /**
     * Two-pass minimum re-referencing: a first pass over the
     * candidates computes all M energies and their minimum, and the
     * firing pass references every energy against that minimum —
     * the optimal placement of the LED ladder's finite dynamic
     * range. Costs an extra ceil(M/K) issue cycles per sample
     * (charged by the timing model). When false (the paper's
     * single-pass pipeline), the caller-provided
     * EnergyInputs::energy_offset is the only re-reference.
     */
    bool two_pass_offset = false;
};

/** Occupancy, quality, and health counters. */
struct RsuGStats
{
    uint64_t samples = 0;        //!< random variables sampled
    uint64_t label_evals = 0;    //!< candidate labels raced
    uint64_t issue_cycles = 0;   //!< cycles spent issuing evaluations
    uint64_t stall_cycles = 0;   //!< structural-hazard stalls
    uint64_t saturated_ttfs = 0; //!< TTF register saturations

    // Health counters (see RsuG::injectFaults and the re-race
    // protocol in RsuG::sample). On a healthy unit only
    // all_saturated_races can move, and only for races whose every
    // candidate mapped to LED code 0.
    uint64_t all_saturated_races = 0; //!< race attempts with no winner
    uint64_t reraces = 0;             //!< bounded re-race attempts
    uint64_t unrecovered_races = 0;   //!< still saturated after them

    /** Fraction of candidate evaluations whose lane failed to
     * report an arrival (saturated reading) — the "misfire"
     * health signal. */
    double
    misfireFraction() const
    {
        return label_evals == 0
                   ? 0.0
                   : static_cast<double>(saturated_ttfs) /
                         static_cast<double>(label_evals);
    }

    /** Accumulate another unit's counters (array aggregation). */
    RsuGStats &operator+=(const RsuGStats &other);
};

/** The Gibbs sampling unit. */
class RsuG
{
  public:
    /**
     * @param config static configuration
     * @param seed entropy seed for the device's RET circuits
     */
    explicit RsuG(const RsuGConfig &config = {}, uint64_t seed = 1);

    /**
     * Per-application initialization: build the energy-to-intensity
     * LUT for Gibbs temperature @p temperature and set the down
     * counter for @p num_labels labels (paper section 6.1,
     * "Initialization" — 3 cycles).
     */
    void initialize(int num_labels, double temperature);

    /** Down-counter label count currently configured. */
    int numLabels() const { return num_labels_; }

    /** Set only the down counter (labels must be <= kMaxLabels);
     * resets the decode table to identity. */
    void setNumLabels(int num_labels);

    /**
     * Candidate-index -> 6-bit label-code decode table (a small ROM
     * in hardware). Vector applications pack 2 x 3-bit components
     * with stride 8, so their valid codes are not contiguous; the
     * down counter iterates candidate indices and this table
     * supplies the code fed to the energy unit and returned as the
     * sample. Size must equal numLabels().
     */
    void setLabelCodes(const std::vector<Label> &codes);

    const std::vector<Label> &labelCodes() const { return codes_; }

    /** Mutable LUT access (ISA map-table writes, context restore). */
    IntensityMap &intensityMap() { return lut_; }
    const IntensityMap &intensityMap() const { return lut_; }

    /**
     * Draw a new label for one random variable.
     *
     * @param in neighbour labels and singleton data; in.data2 is
     *        used for every candidate unless @p data2_per_label is
     *        given
     * @param data2_per_label optional per-candidate second data
     *        input (numLabels() entries, candidate-index order),
     *        e.g. destination pixel intensities in motion estimation
     * @return the winning 6-bit label code
     */
    Label sample(const EnergyInputs &in,
                 const uint8_t *data2_per_label = nullptr);

    /**
     * Energy the datapath assigns to @p candidate under @p in with
     * second data input @p data2 — exposed so software references
     * can share the exact hardware energies.
     */
    Energy labelEnergy(Label candidate, const EnergyInputs &in,
                       uint8_t data2) const;

    /**
     * Exact conditional distribution the quantized device induces
     * for the given inputs: per-candidate-index win probabilities
     * of the geometric TTF race with the keep-incumbent tie rule.
     * This is the analytic oracle the statistical tests compare
     * against.
     */
    std::vector<double>
    raceDistribution(const EnergyInputs &in,
                     const uint8_t *data2_per_label = nullptr) const;

    /**
     * Sample latency in cycles for the current label count: the
     * paper's 7 + (M-1) for K = 1 and 12 cycles for RSU-G64, from
     * the shared pipeline model 6 + ceil(M/K) + selection-tree
     * depth.
     */
    int latencyCycles() const;

    /**
     * Steady-state issue interval in cycles between consecutive
     * random-variable samples, including structural stalls when the
     * lane replication cannot cover quiescence.
     */
    double steadyStateIntervalCycles() const;

    /**
     * Install device faults and the accompanying health policy
     * (see ret/fault_injection.h). Dark-count elevation is merged
     * into every circuit's SPAD model immediately; stuck LED bits,
     * dead SPAD lanes, and forced TTF saturation are applied at
     * each firing. Faults survive re-initialization (annealing
     * re-builds the intensity LUT, not the broken optics). Lane
     * vectors must match the unit's width.
     *
     * With faults installed, sample() runs the bounded
     * re-race-then-report protocol: a race in which every lane
     * saturated (no winner — the selection falls back to the
     * first-evaluated candidate) is re-raced up to
     * faults.max_reraces times; a race still saturated after that
     * counts as unrecovered, and once unrecovered races reach
     * faults.failure_threshold (> 0) the unit declares itself
     * failed. Never installed by default, so fault-free sampling
     * consumes entropy exactly as before — bit-identical to seed.
     */
    void injectFaults(const rsu::ret::UnitFaults &faults);

    /** True once the health policy declared the unit failed. */
    bool failed() const { return failed_; }

    /** True when injectFaults() installed any affliction. */
    bool faultsInjected() const { return faults_active_; }

    const RsuGStats &stats() const { return stats_; }
    void resetStats() { stats_ = RsuGStats{}; }

    const RsuGConfig &config() const { return config_; }
    double temperature() const { return temperature_; }

    /** Per-lane circuit bank access (wear studies, tests). */
    rsu::ret::RetCircuit &circuit(int lane, int replica);

  private:
    /**
     * Candidate energies in candidate-index order, after the
     * caller's offset and (in two-pass mode) min re-referencing.
     */
    std::vector<Energy>
    referencedEnergies(const EnergyInputs &in,
                       const uint8_t *data2_per_label) const;

    /** One full down-counter race over @p energies into
     * @p selection (the pipeline loop of sample()). */
    void raceOnce(SelectionUnit &selection,
                  const std::vector<Energy> &energies);

    RsuGConfig config_;
    rsu::rng::Xoshiro256 rng_;
    EnergyUnit energy_unit_;
    IntensityMap lut_;
    // circuits_[lane * circuits_per_lane + replica]
    std::vector<rsu::ret::RetCircuit> circuits_;
    std::vector<int> lane_next_replica_;
    std::vector<Label> codes_; // candidate index -> label code
    int num_labels_ = 2;
    double temperature_ = 0.0;
    uint64_t cycle_ = 0;
    RsuGStats stats_;

    // Fault-injection state (inert unless injectFaults() ran).
    rsu::ret::UnitFaults faults_;
    bool faults_active_ = false;
    bool failed_ = false;
};

} // namespace rsu::core

#endif // RSU_CORE_RSU_G_H
