#include "core/rsu_g.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rsu::core {

namespace {

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

int
ceilLog2(int x)
{
    int bits = 0;
    int v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

RsuGStats &
RsuGStats::operator+=(const RsuGStats &other)
{
    samples += other.samples;
    label_evals += other.label_evals;
    issue_cycles += other.issue_cycles;
    stall_cycles += other.stall_cycles;
    saturated_ttfs += other.saturated_ttfs;
    all_saturated_races += other.all_saturated_races;
    reraces += other.reraces;
    unrecovered_races += other.unrecovered_races;
    return *this;
}

RsuG::RsuG(const RsuGConfig &config, uint64_t seed)
    : config_(config),
      rng_(seed),
      energy_unit_(config.energy),
      lut_(config.lut_entries)
{
    if (config_.width < 1 || config_.width > kMaxLabels)
        throw std::invalid_argument("RsuG: width out of range");
    if (config_.circuits_per_lane < 1)
        throw std::invalid_argument("RsuG: need at least one RET "
                                    "circuit per lane");
    const int total = config_.width * config_.circuits_per_lane;
    circuits_.reserve(total);
    for (int i = 0; i < total; ++i)
        circuits_.emplace_back(config_.circuit);
    lane_next_replica_.assign(config_.width, 0);
    setNumLabels(num_labels_);
}

void
RsuG::initialize(int num_labels, double temperature)
{
    setNumLabels(num_labels);
    lut_.build(rsu::ret::QdLedBank(config_.circuit.led_weights),
               temperature);
    temperature_ = temperature;
}

void
RsuG::setNumLabels(int num_labels)
{
    if (num_labels < 1 || num_labels > kMaxLabels)
        throw std::invalid_argument("RsuG: label count out of range");
    num_labels_ = num_labels;
    codes_.resize(num_labels_);
    for (int i = 0; i < num_labels_; ++i)
        codes_[i] = static_cast<Label>(i);
}

void
RsuG::setLabelCodes(const std::vector<Label> &codes)
{
    if (static_cast<int>(codes.size()) != num_labels_)
        throw std::invalid_argument("RsuG: decode table size must "
                                    "equal the label count");
    codes_ = codes;
}

std::vector<Energy>
RsuG::referencedEnergies(const EnergyInputs &in,
                         const uint8_t *data2_per_label) const
{
    const int m = num_labels_;
    // In two-pass mode the min pass supersedes any caller-provided
    // re-reference: energies are computed raw so the zero floor
    // cannot discard differences before the minimum is known.
    EnergyInputs local = in;
    if (config_.two_pass_offset)
        local.energy_offset = 0;

    std::vector<Energy> energies(m);
    for (int i = 0; i < m; ++i) {
        const uint8_t data2 =
            data2_per_label ? data2_per_label[i] : in.data2;
        energies[i] = labelEnergy(codes_[i], local, data2);
    }
    if (config_.two_pass_offset) {
        Energy lo = energies[0];
        for (const Energy e : energies)
            lo = std::min(lo, e);
        for (Energy &e : energies)
            e = static_cast<Energy>(e - lo);
    }
    return energies;
}

void
RsuG::raceOnce(SelectionUnit &selection,
               const std::vector<Energy> &energies)
{
    const int m = num_labels_;
    const int k = config_.width;
    const int r = config_.circuits_per_lane;

    // Down-counter order: candidate index M-1 is evaluated first.
    // K labels issue per cycle in lockstep across the lanes; a
    // group waits until every lane it needs has a quiescent
    // circuit.
    int remaining = m;
    int label = m - 1;
    while (remaining > 0) {
        const int group = std::min(remaining, k);

        // Lockstep issue: the group goes when the least-ready lane
        // has a free circuit. Round-robin replica choice per lane.
        uint64_t ready_cycle = cycle_;
        for (int lane = 0; lane < group; ++lane) {
            const int replica = lane_next_replica_[lane];
            const auto &circ = circuits_[lane * r + replica];
            ready_cycle = std::max(ready_cycle, circ.busyUntil());
        }
        stats_.stall_cycles += ready_cycle - cycle_;
        cycle_ = ready_cycle;

        for (int lane = 0; lane < group; ++lane) {
            const int cand_index = label - lane;
            const Label candidate = codes_[cand_index];
            uint8_t code = lut_.lookup(energies[cand_index]);
            if (faults_active_)
                code = static_cast<uint8_t>(
                    (code | faults_.led_stuck_high[lane]) &
                    ~faults_.led_stuck_low[lane] & 0xF);

            const int replica = lane_next_replica_[lane];
            lane_next_replica_[lane] = (replica + 1) % r;
            auto &circ = circuits_[lane * r + replica];
            uint8_t ttf = circ.sampleAt(rng_, code, cycle_);
            if (faults_active_ && (faults_.force_ttf_saturation ||
                                   faults_.dead_spad[lane]))
                ttf = rsu::ret::kTtfSaturated;
            if (ttf == rsu::ret::kTtfSaturated)
                ++stats_.saturated_ttfs;
            selection.observe(candidate, ttf);
            ++stats_.label_evals;
        }
        ++cycle_;
        ++stats_.issue_cycles;
        label -= group;
        remaining -= group;
    }
}

Label
RsuG::sample(const EnergyInputs &in, const uint8_t *data2_per_label)
{
    SelectionUnit selection;
    const int m = num_labels_;
    const int k = config_.width;

    const std::vector<Energy> energies =
        referencedEnergies(in, data2_per_label);
    if (config_.two_pass_offset) {
        // The min-reference pass occupies the energy stage for an
        // extra ceil(M/K) cycles before firing can start.
        const uint64_t pass = (m + k - 1) / k;
        cycle_ += pass;
        stats_.issue_cycles += pass;
    }

    raceOnce(selection, energies);

    // Bounded re-race-then-report protocol: an all-saturated race
    // has no winner (the selection keeps the first-evaluated
    // candidate), so a faulted unit retries a bounded number of
    // times and, failing that, reports it. max_reraces is 0 unless
    // injectFaults() raised it, so fault-free sampling consumes
    // entropy exactly as before.
    const int max_reraces = faults_active_ ? faults_.max_reraces : 0;
    int attempts = 0;
    while (selection.bestTtf() == rsu::ret::kTtfSaturated &&
           attempts < max_reraces) {
        ++stats_.all_saturated_races;
        ++stats_.reraces;
        ++attempts;
        selection.reset();
        raceOnce(selection, energies);
    }
    if (selection.bestTtf() == rsu::ret::kTtfSaturated) {
        ++stats_.all_saturated_races;
        if (faults_active_) {
            ++stats_.unrecovered_races;
            if (faults_.failure_threshold > 0 &&
                stats_.unrecovered_races >= faults_.failure_threshold)
                failed_ = true;
        }
    }

    ++stats_.samples;
    return selection.bestLabel();
}

void
RsuG::injectFaults(const rsu::ret::UnitFaults &faults)
{
    const auto lanes = static_cast<std::size_t>(config_.width);
    if (faults.led_stuck_high.size() != lanes ||
        faults.led_stuck_low.size() != lanes ||
        faults.dead_spad.size() != lanes)
        throw std::invalid_argument(
            "RsuG: fault lane vectors must match the unit width");
    if (faults.max_reraces < 0)
        throw std::invalid_argument(
            "RsuG: need max_reraces >= 0");
    faults_ = faults;
    // A plan slice that afflicted nothing leaves the unit healthy:
    // the health policy only arms alongside an actual affliction, so
    // unafflicted units keep consuming entropy exactly as before.
    faults_active_ = faults_.any();
    if (faults_.dark_rate_per_ns > 0.0) {
        for (auto &circ : circuits_) {
            rsu::ret::SpadModel model = circ.spadModel();
            model.dark_rate_per_ns += faults_.dark_rate_per_ns;
            circ.setSpadModel(model);
        }
    }
}

Energy
RsuG::labelEnergy(Label candidate, const EnergyInputs &in,
                  uint8_t data2) const
{
    EnergyInputs local = in;
    local.data2 = data2;
    return energy_unit_.evaluate(candidate, local);
}

std::vector<double>
RsuG::raceDistribution(const EnergyInputs &in,
                       const uint8_t *data2_per_label) const
{
    // Oracle assumes homogeneous circuits (valid whenever wear and
    // per-circuit noise are disabled or identical): use lane 0,
    // replica 0 for the energy-to-rate conversion.
    const auto &circ = circuits_.front();
    const auto &timer = circ.timer();
    const int m = num_labels_;
    constexpr int kSat = rsu::ret::kTtfSaturated;

    // Rates in *evaluation order* (down counter: index M-1 first).
    const std::vector<Energy> energies =
        referencedEnergies(in, data2_per_label);
    std::vector<double> rates(m);
    for (int pos = 0; pos < m; ++pos) {
        const int cand_index = m - 1 - pos;
        rates[pos] =
            circ.detectionRate(lut_.lookup(energies[cand_index]));
    }

    // Tick pmf and survival per evaluation position.
    // survival[pos][q] = P(ttf_pos > q); survival at q = kSat is 0.
    auto survival = [&](int pos, int q) -> double {
        if (q < 0)
            return 1.0;
        if (q >= kSat)
            return 0.0;
        if (rates[pos] <= 0.0)
            return 1.0; // never fires before saturation
        const double a = rates[pos] * timer.tickNs();
        return std::exp(-a * static_cast<double>(q + 1));
    };

    std::vector<double> win(m, 0.0);
    for (int pos = 0; pos < m; ++pos) {
        double total = 0.0;
        for (int q = 0; q <= kSat; ++q) {
            const double pq = timer.tickProbability(
                rates[pos], static_cast<uint8_t>(q));
            if (pq <= 0.0)
                continue;
            // Earlier-evaluated labels are incumbents: they must be
            // strictly later (ttf > q). Later-evaluated labels lose
            // ties: they must be >= q.
            double factor = 1.0;
            for (int j = 0; j < m && factor > 0.0; ++j) {
                if (j == pos)
                    continue;
                factor *= (j < pos) ? survival(j, q)
                                    : survival(j, q - 1);
            }
            total += pq * factor;
        }
        win[pos] = total;
    }

    // Re-index from evaluation order to label order.
    std::vector<double> by_label(m, 0.0);
    for (int pos = 0; pos < m; ++pos)
        by_label[m - 1 - pos] = win[pos];
    return by_label;
}

int
RsuG::latencyCycles() const
{
    // Shared pipeline model: label/energy/map/sample stages plus the
    // issue iterations plus the selection tree for wide units.
    // K = 1: 6 + M            == the paper's 7 + (M - 1).
    // K = 64, M = 64: 6 + 1 + 5 == the paper's 12 cycles.
    // Two-pass min-referencing adds one more pass over the labels.
    const int groups = ceilDiv(num_labels_, config_.width);
    const int tree =
        config_.width > 1 ? ceilLog2(config_.width) - 1 : 0;
    const int passes = config_.two_pass_offset ? 2 : 1;
    return 6 + passes * groups + tree;
}

double
RsuG::steadyStateIntervalCycles() const
{
    const int groups = ceilDiv(num_labels_, config_.width);
    const double quiescence =
        static_cast<double>(config_.circuit.quiescence_cycles);
    const double per_group = std::max(
        1.0, quiescence / config_.circuits_per_lane);
    const double extra = config_.two_pass_offset ? groups : 0.0;
    return groups * per_group + extra;
}

rsu::ret::RetCircuit &
RsuG::circuit(int lane, int replica)
{
    assert(lane >= 0 && lane < config_.width);
    assert(replica >= 0 && replica < config_.circuits_per_lane);
    return circuits_[lane * config_.circuits_per_lane + replica];
}

} // namespace rsu::core
