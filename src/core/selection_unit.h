/**
 * @file
 * Compare-and-update selection block.
 *
 * The final RSU-G pipeline stage (paper section 5.2, "Selection"):
 * keeps the shortest quantized time-to-fluorescence seen so far,
 * together with the label that produced it. The hardware comparison
 * is *strictly less than*, so on a tie the earlier-observed label is
 * kept — and because the down counter iterates labels from M-1 to 0,
 * ties favour higher label indices. This ordering quirk is part of
 * the architectural contract and is pinned by tests.
 */

#ifndef RSU_CORE_SELECTION_UNIT_H
#define RSU_CORE_SELECTION_UNIT_H

#include <cstdint>

#include "core/types.h"
#include "ret/ttf_timer.h"

namespace rsu::core {

/** Running-minimum register pair (TTF, label). */
class SelectionUnit
{
  public:
    SelectionUnit() { reset(); }

    /** Prepare for a new random-variable evaluation. */
    void
    reset()
    {
        best_ttf_ = rsu::ret::kTtfSaturated;
        best_label_ = 0;
        observed_ = false;
    }

    /** Present one (label, quantized TTF) observation. */
    void
    observe(Label label, uint8_t ttf)
    {
        // Strict comparison: ties keep the incumbent. The first
        // observation always lands, even if saturated, so that a
        // fully-saturated evaluation still returns a valid label.
        if (!observed_ || ttf < best_ttf_) {
            best_ttf_ = ttf;
            best_label_ = label;
            observed_ = true;
        }
    }

    /** Winning label so far. */
    Label bestLabel() const { return best_label_; }

    /** Winning quantized TTF so far. */
    uint8_t bestTtf() const { return best_ttf_; }

    /** True once at least one observation has been made. */
    bool hasObservation() const { return observed_; }

  private:
    uint8_t best_ttf_;
    Label best_label_;
    bool observed_;
};

} // namespace rsu::core

#endif // RSU_CORE_SELECTION_UNIT_H
