#include "core/energy_unit.h"

#include <algorithm>
#include <stdexcept>

namespace rsu::core {

EnergyUnit::EnergyUnit(const EnergyConfig &config) : config_(config)
{
    if (config_.doubleton_weight < 0)
        throw std::invalid_argument("EnergyUnit: negative doubleton "
                                    "weight");
    if (config_.doubleton_cap < 0)
        throw std::invalid_argument("EnergyUnit: negative doubleton "
                                    "cap");
    if (config_.singleton_shift < 0 || config_.singleton_shift > 12)
        throw std::invalid_argument("EnergyUnit: singleton shift out "
                                    "of range");
}

int
EnergyUnit::doubleton(Label a, Label b) const
{
    a &= kLabelMask;
    b &= kLabelMask;
    int dist;
    if (config_.mode == LabelMode::Vector) {
        const int d1 = labelX1(a) - labelX1(b);
        const int d2 = labelX2(a) - labelX2(b);
        dist = d1 * d1 + d2 * d2;
    } else {
        const int d = labelX1(a) - labelX1(b);
        dist = d * d;
    }
    if (config_.doubleton_cap > 0)
        dist = std::min(dist, config_.doubleton_cap);
    return config_.doubleton_weight * dist;
}

int
EnergyUnit::singleton(uint8_t data1, uint8_t data2) const
{
    const int d = static_cast<int>(data1 & kLabelMask) -
                  static_cast<int>(data2 & kLabelMask);
    return (d * d) >> config_.singleton_shift;
}

Energy
EnergyUnit::evaluate(Label candidate, const EnergyInputs &in) const
{
    int total = singleton(in.data1, in.data2);
    for (int i = 0; i < 4; ++i) {
        if (in.neighbor_valid[i])
            total += doubleton(candidate, in.neighbors[i]);
    }
    // The datapath saturates the clique sum at 8 bits, then
    // re-references it against the offset with a floor at zero.
    total = std::min(total, kEnergyMax) -
            static_cast<int>(in.energy_offset);
    return static_cast<Energy>(std::max(total, 0));
}

} // namespace rsu::core
