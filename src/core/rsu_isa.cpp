#include "core/rsu_isa.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rsu::core {

uint64_t
packNeighbors(const std::array<Label, 4> &labels,
              const std::array<bool, 4> &valid)
{
    uint64_t word = 0;
    for (int i = 0; i < 4; ++i) {
        word |= static_cast<uint64_t>(labels[i] & kLabelMask)
                << (6 * i);
        if (!valid[i])
            word |= 1ULL << (24 + i);
    }
    return word;
}

uint64_t
packSingletonD(const uint8_t *values, int count)
{
    if (count < 1 || count > 8)
        throw std::invalid_argument("packSingletonD: count must be "
                                    "1..8");
    uint64_t word = 0;
    for (int i = 0; i < count; ++i)
        word |= static_cast<uint64_t>(values[i] & kLabelMask)
                << (8 * i);
    // Unused byte lanes replicate the last value so that a short
    // write is indistinguishable from a padded one.
    for (int i = count; i < 8; ++i)
        word |= static_cast<uint64_t>(values[count - 1] & kLabelMask)
                << (8 * i);
    return word;
}

RsuDevice::RsuDevice(RsuG &unit) : unit_(unit)
{
    staged_.neighbors = {0, 0, 0, 0};
}

void
RsuDevice::write(RsuReg reg, uint64_t value)
{
    ++instructions_;
    auto &lut = unit_.intensityMap();
    switch (reg) {
      case RsuReg::MapLo: {
        const int half = lut.words() / 2;
        lut.writeWord(map_lo_ptr_, value);
        map_lo_ptr_ = (map_lo_ptr_ + 1) % std::max(half, 1);
        break;
      }
      case RsuReg::MapHi: {
        const int half = lut.words() / 2;
        lut.writeWord(half + map_hi_ptr_, value);
        map_hi_ptr_ = (map_hi_ptr_ + 1) % std::max(half, 1);
        break;
      }
      case RsuReg::DownCounter:
        unit_.setNumLabels(static_cast<int>(value & kLabelMask) + 1);
        data2_fifo_.clear();
        map_lo_ptr_ = 0;
        map_hi_ptr_ = 0;
        break;
      case RsuReg::Neighbors:
        for (int i = 0; i < 4; ++i) {
            staged_.neighbors[i] =
                static_cast<Label>((value >> (6 * i)) & kLabelMask);
            staged_.neighbor_valid[i] =
                ((value >> (24 + i)) & 1) == 0;
        }
        break;
      case RsuReg::SingletonA:
        staged_.data1 = static_cast<uint8_t>(value & kLabelMask);
        break;
      case RsuReg::SingletonD:
        for (int i = 0; i < 8; ++i) {
            if (static_cast<int>(data2_fifo_.size()) >= kMaxLabels)
                break;
            data2_fifo_.push_back(
                static_cast<uint8_t>((value >> (8 * i)) & kLabelMask));
        }
        break;
      case RsuReg::EnergyOffset:
        staged_.energy_offset = static_cast<uint8_t>(value & 0xff);
        break;
      default:
        throw std::invalid_argument("RsuDevice: bad register");
    }
}

RsuDevice::ReadResult
RsuDevice::readResult()
{
    ++instructions_;
    const int m = unit_.numLabels();

    // Expand the staged data2 stream to one value per candidate:
    // missing entries reuse the last written value; an empty stream
    // falls back to SINGLETON_A's counterpart semantics (data2 = 0).
    std::vector<uint8_t> data2(m, 0);
    if (!data2_fifo_.empty()) {
        for (int i = 0; i < m; ++i) {
            const size_t idx = std::min(
                static_cast<size_t>(i), data2_fifo_.size() - 1);
            data2[i] = data2_fifo_[idx];
        }
    }

    const Label label = unit_.sample(staged_, data2.data());
    // The read is the idempotent restart boundary: evaluation state
    // drains completely; only per-application state persists.
    data2_fifo_.clear();

    return {label, unit_.latencyCycles()};
}

RsuContext
RsuDevice::saveContext() const
{
    RsuContext ctx;
    const auto &lut = unit_.intensityMap();
    ctx.map_words.resize(lut.words());
    for (int w = 0; w < lut.words(); ++w)
        ctx.map_words[w] = lut.readWord(w);
    ctx.down_counter = static_cast<uint8_t>(unit_.numLabels() - 1);
    ctx.temperature = unit_.temperature();
    return ctx;
}

void
RsuDevice::restoreContext(const RsuContext &ctx)
{
    auto &lut = unit_.intensityMap();
    if (static_cast<int>(ctx.map_words.size()) != lut.words())
        throw std::invalid_argument("RsuDevice: context map size "
                                    "mismatch");
    for (int w = 0; w < lut.words(); ++w)
        lut.writeWord(w, ctx.map_words[w]);
    unit_.setNumLabels(static_cast<int>(ctx.down_counter) + 1);
    data2_fifo_.clear();
    map_lo_ptr_ = 0;
    map_hi_ptr_ = 0;
}

} // namespace rsu::core
