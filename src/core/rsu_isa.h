/**
 * @file
 * The RSU instruction-set interface.
 *
 * Paper section 6.1 exposes the RSU-G through one instruction,
 * `RSU op, regsrc, regdest`: the op field names one of six control
 * registers plus a read-result bit. This module models the device
 * side of that contract — the control-register file, the write
 * semantics, the blocking read-result, and the context-switch
 * save/restore path with the idempotent random-variable-boundary
 * restart optimization.
 *
 * Register map (3-bit op encoding):
 *   0 MAP_LO      auto-incrementing 64-bit stream into the lower
 *                 half of the intensity map (16 packed entries/write)
 *   1 MAP_HI      same, upper half
 *   2 DOWN_COUNTER  6-bit M-1 value; also resets the staging state
 *   3 NEIGHBORS   four 6-bit labels packed in bits [23:0], invalid
 *                 mask in bits [27:24] (set bit = neighbour absent,
 *                 used at image borders)
 *   4 SINGLETON_A 6-bit first data input
 *   5 SINGLETON_D per-candidate second data input stream: each write
 *                 carries up to eight 6-bit values in byte lanes;
 *                 candidates beyond the written count reuse the last
 *                 value (scalar applications write once)
 *   6 ENERGY_OFFSET  8-bit energy re-reference subtracted from every
 *                 candidate energy before the intensity lookup (our
 *                 extension over the paper's six registers — the
 *                 3-bit op field has room; see
 *                 EnergyInputs::energy_offset for why it is needed)
 *
 * A read-result executes the full evaluation (the emulation's atomic
 * equivalent of the hardware's M-cycle iteration), returns the new
 * label, and resets the unit for the next random variable — exactly
 * the restart boundary the paper uses to shrink context-switch state
 * to per-application values only.
 */

#ifndef RSU_CORE_RSU_ISA_H
#define RSU_CORE_RSU_ISA_H

#include <array>
#include <cstdint>
#include <vector>

#include "core/rsu_g.h"

namespace rsu::core {

/** Control-register selectors (the instruction's 3-bit op field). */
enum class RsuReg : uint8_t {
    MapLo = 0,
    MapHi = 1,
    DownCounter = 2,
    Neighbors = 3,
    SingletonA = 4,
    SingletonD = 5,
    EnergyOffset = 6,
};

/** Pack four neighbour labels and an invalid mask for NEIGHBORS. */
uint64_t packNeighbors(const std::array<Label, 4> &labels,
                       const std::array<bool, 4> &valid = {true, true,
                                                           true, true});

/** Pack up to eight 6-bit data values for a SINGLETON_D write. */
uint64_t packSingletonD(const uint8_t *values, int count);

/** Architected per-application state (context-switch payload). */
struct RsuContext
{
    std::vector<uint64_t> map_words;
    uint8_t down_counter = 1; // M - 1
    double temperature = 0.0; // bookkeeping only (not hardware state)
};

/** Device-side model of an RSU-G behind the RSU instruction. */
class RsuDevice
{
  public:
    /** Wrap (and not own) an RSU-G unit. */
    explicit RsuDevice(RsuG &unit);

    /** Execute a control-register write. */
    void write(RsuReg reg, uint64_t value);

    /** Result of a read-result instruction. */
    struct ReadResult
    {
        Label label;        //!< the new random-variable label
        int latency_cycles; //!< cycles the reading thread stalls
    };

    /**
     * Execute the read-result form: runs the evaluation over all
     * configured labels, resets the staging state, and returns the
     * sampled label with the stall latency the software would see.
     */
    ReadResult readResult();

    /**
     * Save the architected per-application state. Because reads are
     * the idempotent restart boundary, no mid-evaluation state is
     * ever architecturally visible (paper section 6.1, "Context
     * Switches").
     */
    RsuContext saveContext() const;

    /** Restore previously saved state into the wrapped unit. */
    void restoreContext(const RsuContext &ctx);

    /** Dynamic instruction count executed so far (writes + reads). */
    uint64_t instructionCount() const { return instructions_; }

    RsuG &unit() { return unit_; }

  private:
    RsuG &unit_;
    EnergyInputs staged_;
    std::vector<uint8_t> data2_fifo_;
    int map_lo_ptr_ = 0;
    int map_hi_ptr_ = 0;
    uint64_t instructions_ = 0;
};

} // namespace rsu::core

#endif // RSU_CORE_RSU_ISA_H
