#include "core/simd.h"

#include <cstdlib>
#include <cstring>

namespace rsu::core {

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Avx2:
        return "avx2";
    case SimdIsa::Sse2:
        return "sse2";
    default:
        return "scalar";
    }
}

SimdIsa
detectedSimdIsa()
{
#if (defined(__x86_64__) || defined(__i386__)) &&                   \
    (defined(__GNUC__) || defined(__clang__))
    static const SimdIsa detected = [] {
        if (__builtin_cpu_supports("avx2"))
            return SimdIsa::Avx2;
        if (__builtin_cpu_supports("sse2"))
            return SimdIsa::Sse2;
        return SimdIsa::Scalar;
    }();
    return detected;
#else
    return SimdIsa::Scalar;
#endif
}

SimdIsa
resolveSimdIsa(const char *request, SimdIsa detected)
{
    if (!request || !*request)
        return detected;
    SimdIsa requested = detected;
    if (std::strcmp(request, "scalar") == 0)
        requested = SimdIsa::Scalar;
    else if (std::strcmp(request, "sse2") == 0)
        requested = SimdIsa::Sse2;
    else if (std::strcmp(request, "avx2") == 0)
        requested = SimdIsa::Avx2;
    return requested < detected ? requested : detected;
}

SimdIsa
activeSimdIsa()
{
    return resolveSimdIsa(std::getenv("RSU_SIMD"),
                          detectedSimdIsa());
}

} // namespace rsu::core
