#include "core/intensity_map.h"

#include <cmath>
#include <stdexcept>

namespace rsu::core {

IntensityMap::IntensityMap(int entries)
{
    if (entries < 2 || entries > 4096)
        throw std::invalid_argument("IntensityMap: entry count out of "
                                    "range");
    table_.assign(entries, 0);
}

void
IntensityMap::build(const rsu::ret::QdLedBank &bank, double temperature)
{
    if (temperature <= 0.0)
        throw std::invalid_argument("IntensityMap: temperature must "
                                    "be positive");
    const double max_intensity = bank.maxIntensity();
    const double min_intensity = bank.minIntensity();
    for (int e = 0; e < entries(); ++e) {
        const double target =
            max_intensity * std::exp(-static_cast<double>(e) /
                                     temperature);
        if (target < 0.5 * min_intensity) {
            table_[e] = 0; // negligible probability: never fires
        } else {
            table_[e] = bank.nearestCode(target);
        }
    }
}

uint8_t
IntensityMap::lookup(int e) const
{
    if (e < 0)
        e = 0;
    if (e >= entries())
        e = entries() - 1;
    return table_[e];
}

void
IntensityMap::setEntry(int e, uint8_t code)
{
    if (e < 0 || e >= entries())
        throw std::out_of_range("IntensityMap::setEntry");
    table_[e] = code & 0x0f;
}

void
IntensityMap::writeWord(int word_index, uint64_t word)
{
    if (word_index < 0 || word_index >= words())
        throw std::out_of_range("IntensityMap::writeWord");
    for (int k = 0; k < 16; ++k) {
        const int e = word_index * 16 + k;
        if (e >= entries())
            break;
        table_[e] = static_cast<uint8_t>((word >> (4 * k)) & 0x0f);
    }
}

uint64_t
IntensityMap::readWord(int word_index) const
{
    if (word_index < 0 || word_index >= words())
        throw std::out_of_range("IntensityMap::readWord");
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
        const int e = word_index * 16 + k;
        if (e >= entries())
            break;
        word |= static_cast<uint64_t>(table_[e] & 0x0f) << (4 * k);
    }
    return word;
}

} // namespace rsu::core
