/**
 * @file
 * The generic RSU family beyond Gibbs sampling.
 *
 * The paper's section 3 defines an RSU as *any* hybrid CMOS/RET
 * functional unit of the shape map-parameters -> fire RET circuit
 * -> map sample back, and names exponential and Bernoulli samplers
 * as composable building blocks (after Wang, Lebeck & Dwyer [42]).
 * RSU-G is the instance the paper evaluates; this header provides
 * the two other members the text describes, built from the same
 * device substrate:
 *
 *  - RsuExponential (RSU-E): parameterize a decay rate with the
 *    8-bit rate word -> 4-bit LED code path, fire, and return the
 *    quantized time-to-fluorescence *as the sample*. The output is
 *    an 8-bit fixed-point exponential variate whose scale is the
 *    TTF tick.
 *
 *  - RsuBernoulli (RSU-B): two racing channels parameterized by an
 *    8-bit probability word; the output bit says which channel
 *    fired first. The integrated equivalent of the macro-scale
 *    RSU-G2 prototype.
 *
 * Both expose analytic oracles for their quantized output
 * distributions so property tests can verify them exactly.
 */

#ifndef RSU_CORE_RSU_UNITS_H
#define RSU_CORE_RSU_UNITS_H

#include <cstdint>
#include <vector>

#include "ret/ret_circuit.h"
#include "rng/xoshiro256.h"

namespace rsu::core {

/** Exponential sampling unit (RSU-E). */
class RsuExponential
{
  public:
    /**
     * @param circuit device parameters (LED ladder, clock, SPAD)
     * @param seed entropy seed
     */
    explicit RsuExponential(
        const rsu::ret::RetCircuitConfig &circuit = {},
        uint64_t seed = 1);

    /**
     * Program the rate: @p rate_per_ns is clamped to the LED
     * ladder's achievable range and quantized to the nearest code.
     * Returns the achieved (post-quantization) rate.
     */
    double setRate(double rate_per_ns);

    /** Achievable rate bounds of the device. */
    double minRate() const;
    double maxRate() const;

    /**
     * Draw one sample: the quantized TTF in ticks (0..254), or 255
     * when the register saturates. Multiply by tickNs() for time
     * units.
     */
    uint8_t sample();

    /** Tick width in nanoseconds. */
    double tickNs() const { return circuit_.timer().tickNs(); }

    /** Achieved rate after quantization (per ns). */
    double achievedRate() const;

    /** Exact pmf of the quantized output (257 entries would alias;
     * 256: index = tick value, last bin = saturation). */
    std::vector<double> outputDistribution() const;

    /** Samples drawn so far. */
    uint64_t samples() const { return samples_; }

  private:
    rsu::rng::Xoshiro256 rng_;
    rsu::ret::RetCircuit circuit_;
    uint8_t code_ = 0x0f;
    uint64_t samples_ = 0;
};

/** Bernoulli sampling unit (RSU-B). */
class RsuBernoulli
{
  public:
    explicit RsuBernoulli(
        const rsu::ret::RetCircuitConfig &circuit = {},
        uint64_t seed = 1);

    /**
     * Program P(output = 1) ~ @p p by splitting the LED ladder
     * between the two channels: channel 1 gets the code nearest to
     * p * maxIntensity, channel 0 the code nearest to
     * (1-p) * maxIntensity. Returns the achieved probability
     * (including tie/saturation effects).
     */
    double setProbability(double p);

    /** Draw one bit. */
    int sample();

    /** Exact achieved P(1) under quantization and the re-fire-on-
     * tie rule (the analytic oracle). */
    double achievedProbability() const;

    uint64_t samples() const { return samples_; }

  private:
    rsu::rng::Xoshiro256 rng_;
    rsu::ret::RetCircuit channel0_;
    rsu::ret::RetCircuit channel1_;
    uint8_t code0_ = 0x0f;
    uint8_t code1_ = 0x0f;
    uint64_t samples_ = 0;
};

} // namespace rsu::core

#endif // RSU_CORE_RSU_UNITS_H
