#include "core/tables.h"

#include <cmath>
#include <stdexcept>

namespace rsu::core {

int
SingletonTable::argminRow(int site) const
{
    const uint16_t *r = row(site);
    int best = 0;
    uint16_t best_e = r[0];
    for (int i = 1; i < num_labels_; ++i) {
        if (r[i] < best_e) {
            best_e = r[i];
            best = i;
        }
    }
    return best;
}

DoubletonTable::DoubletonTable(const EnergyUnit &unit,
                               const std::vector<Label> &codes)
    : num_candidates_(static_cast<int>(codes.size())),
      rows_(codes.size() * kMaxLabels)
{
    if (codes.empty())
        throw std::invalid_argument("DoubletonTable: no candidates");
    for (int i = 0; i < num_candidates_; ++i) {
        int32_t *r = rows_.data() +
                     static_cast<size_t>(i) * kMaxLabels;
        for (int c = 0; c < kMaxLabels; ++c)
            r[c] = unit.doubleton(codes[i], static_cast<Label>(c));
    }
}

TransposedDoubletonTable::TransposedDoubletonTable(
    const EnergyUnit &unit, const std::vector<Label> &codes,
    int padded_candidates)
    : num_candidates_(static_cast<int>(codes.size())),
      padded_candidates_(padded_candidates == 0
                             ? num_candidates_
                             : padded_candidates),
      rows_(static_cast<size_t>(kMaxLabels) * padded_candidates_)
{
    if (codes.empty())
        throw std::invalid_argument(
            "TransposedDoubletonTable: no candidates");
    if (padded_candidates_ < num_candidates_)
        throw std::invalid_argument(
            "TransposedDoubletonTable: padding below candidate "
            "count");
    for (int c = 0; c < kMaxLabels; ++c) {
        int32_t *r = rows_.data() +
                     static_cast<size_t>(c) * padded_candidates_;
        for (int i = 0; i < num_candidates_; ++i)
            r[i] = unit.doubleton(codes[i], static_cast<Label>(c));
        // rows_ value-initializes, but be explicit: pad lanes are 0
        // so the padded singleton's kEnergyMax stays the row sum.
        for (int i = num_candidates_; i < padded_candidates_; ++i)
            r[i] = 0;
    }
}

void
ExpTable::rebuild(double temperature, uint64_t version)
{
    if (temperature <= 0.0)
        throw std::invalid_argument("ExpTable: temperature must be "
                                    "positive");
    values_.resize(kEnergyMax + 1);
    // The exact expression GibbsSampler::updateSiteWith evaluates
    // per candidate: identical input double -> identical output
    // bits, which is what makes the fast path bit-exact.
    for (int e = 0; e <= kEnergyMax; ++e)
        values_[e] = std::exp(-static_cast<double>(e) / temperature);
    temperature_ = temperature;
    version_ = version;
}

void
FixedExpTable::rebuild(double temperature, uint64_t version)
{
    if (temperature <= 0.0)
        throw std::invalid_argument("FixedExpTable: temperature "
                                    "must be positive");
    values_.resize(kEnergyMax + 1);
    for (int e = 0; e <= kEnergyMax; ++e) {
        // Round the max-normalized weight to Q32 and floor at 1:
        // exp(-e/T) can underflow the 32-bit grid for cold
        // temperatures, and a zero lane would make a site's weight
        // total zero when every candidate is that unlikely.
        const long long q = std::llround(
            std::exp(-static_cast<double>(e) / temperature) *
            kScale);
        values_[e] = static_cast<uint32_t>(q < 1 ? 1 : q);
    }
    temperature_ = temperature;
    version_ = version;
}

} // namespace rsu::core
