#include "core/rsu_units.h"

#include <cmath>
#include <stdexcept>

#include "ret/ttf_timer.h"

namespace rsu::core {

RsuExponential::RsuExponential(
    const rsu::ret::RetCircuitConfig &circuit, uint64_t seed)
    : rng_(seed), circuit_(circuit)
{
}

double
RsuExponential::setRate(double rate_per_ns)
{
    if (rate_per_ns <= 0.0)
        throw std::invalid_argument("RsuExponential: rate must be "
                                    "positive");
    const double unit_rate = circuit_.network().effectiveRate();
    const double target_intensity = rate_per_ns / unit_rate;
    code_ = circuit_.leds().nearestCode(target_intensity);
    if (code_ == 0)
        code_ = 0x01; // dimmest achievable, never "off"
    return achievedRate();
}

double
RsuExponential::minRate() const
{
    return circuit_.network().effectiveRate() *
           circuit_.leds().minIntensity();
}

double
RsuExponential::maxRate() const
{
    return circuit_.network().effectiveRate() *
           circuit_.leds().maxIntensity();
}

uint8_t
RsuExponential::sample()
{
    ++samples_;
    return circuit_.sample(rng_, code_);
}

double
RsuExponential::achievedRate() const
{
    return circuit_.detectionRate(code_);
}

std::vector<double>
RsuExponential::outputDistribution() const
{
    std::vector<double> pmf(256, 0.0);
    const double rate = achievedRate();
    for (int q = 0; q < 256; ++q) {
        pmf[q] = circuit_.timer().tickProbability(
            rate, static_cast<uint8_t>(q));
    }
    return pmf;
}

RsuBernoulli::RsuBernoulli(const rsu::ret::RetCircuitConfig &circuit,
                           uint64_t seed)
    : rng_(seed), channel0_(circuit), channel1_(circuit)
{
    rng_.jump(); // decorrelate from sibling units with equal seeds
}

double
RsuBernoulli::setProbability(double p)
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("RsuBernoulli: p must be in "
                                    "(0, 1)");
    const double max_i = channel1_.leds().maxIntensity();
    code1_ = channel1_.leds().nearestCode(p * max_i);
    code0_ = channel0_.leds().nearestCode((1.0 - p) * max_i);
    if (code1_ == 0)
        code1_ = 0x01;
    if (code0_ == 0)
        code0_ = 0x01;
    return achievedProbability();
}

int
RsuBernoulli::sample()
{
    for (;;) {
        ++samples_;
        const uint8_t t1 = channel1_.sample(rng_, code1_);
        const uint8_t t0 = channel0_.sample(rng_, code0_);
        const bool sat1 = t1 == rsu::ret::kTtfSaturated;
        const bool sat0 = t0 == rsu::ret::kTtfSaturated;
        if ((sat1 && sat0) || t1 == t0)
            continue; // unresolved: re-arm and re-fire
        return t1 < t0 ? 1 : 0;
    }
}

double
RsuBernoulli::achievedProbability() const
{
    // A sample resolves when the quantized times differ and at
    // least one channel fired; ties and double-saturations re-fire.
    // Channel 1 wins at tick q (< 255) when channel 0 lands
    // strictly later — including in the saturated bin, so the
    // opponent term is the plain survival P(T > (q+1) * tick).
    const double r1 = channel1_.detectionRate(code1_);
    const double r0 = channel0_.detectionRate(code0_);
    const auto &timer = channel1_.timer();

    double win1 = 0.0, win0 = 0.0;
    for (int q = 0; q < rsu::ret::kTtfSaturated; ++q) {
        const double s0 =
            std::exp(-r0 * timer.tickNs() * (q + 1));
        const double s1 =
            std::exp(-r1 * timer.tickNs() * (q + 1));
        win1 += timer.tickProbability(r1, static_cast<uint8_t>(q)) *
                s0;
        win0 += timer.tickProbability(r0, static_cast<uint8_t>(q)) *
                s1;
    }
    return win1 / (win1 + win0);
}

} // namespace rsu::core
