/**
 * @file
 * Runtime SIMD instruction-set detection and selection.
 *
 * The Simd sweep path (mrf/fast_sweep.h) vectorizes the candidate
 * dimension of the Gibbs inner loop with kernels compiled for
 * several x86 ISAs and picks one at runtime. Because those kernels
 * operate on Q32 fixed-point weights with associative integer
 * arithmetic, every ISA — and the scalar fallback — produces
 * *identical* label fields; the selection here is purely a speed
 * choice, never a results choice (tests/simd_sweep_test.cpp
 * enforces the equivalence).
 *
 * Selection order: the RSU_SIMD environment variable
 * ("scalar" | "sse2" | "avx2") names a *ceiling*, clamped to what
 * cpuid says the machine can actually run; unset or unrecognized
 * values select the widest detected ISA. The clamp means
 * RSU_SIMD=avx2 on an SSE2-only machine degrades safely instead of
 * faulting.
 */

#ifndef RSU_CORE_SIMD_H
#define RSU_CORE_SIMD_H

namespace rsu::core {

/**
 * Vector ISAs the sweep kernels are built for, ordered by width so
 * clamping a request to the detected capability is a min().
 */
enum class SimdIsa {
    Scalar = 0, //!< portable integer loop (always available)
    Sse2 = 1,   //!< 4 x int32 lanes (x86-64 baseline)
    Avx2 = 2,   //!< 8 x int32 lanes + hardware gather
};

/** Lane width (int32 candidates per vector) of @p isa. */
constexpr int
simdLanes(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Avx2:
        return 8;
    case SimdIsa::Sse2:
        return 4;
    default:
        return 1;
    }
}

/** Candidate-lane padding the kernels assume (the widest ISA's). */
constexpr int kSimdPadLanes = 8;

/** Lowercase name ("scalar" | "sse2" | "avx2"). */
const char *simdIsaName(SimdIsa isa);

/** Widest ISA this CPU supports (cpuid-backed, cached). */
SimdIsa detectedSimdIsa();

/**
 * Combine an RSU_SIMD-style request with the detected capability:
 * null/empty/unrecognized @p request selects @p detected; a
 * recognized name is clamped to @p detected. Pure function — the
 * unit tests drive it directly.
 */
SimdIsa resolveSimdIsa(const char *request, SimdIsa detected);

/**
 * The ISA the Simd sweep path should use now:
 * resolveSimdIsa(getenv("RSU_SIMD"), detectedSimdIsa()). Reads the
 * environment on every call so tests can re-point it between
 * sampler constructions.
 */
SimdIsa activeSimdIsa();

} // namespace rsu::core

#endif // RSU_CORE_SIMD_H
