/**
 * @file
 * Shared value types of the RSU-G datapath.
 *
 * The RSU-G exchanges *6-bit unsigned labels* with software (paper
 * section 5.1): up to 64 labels, where a label is either a scalar
 * (low 3 bits significant) or a packed 2-D vector (2 x 3 bits, used
 * by motion estimation). Energies are 8-bit unsigned (section 4.4).
 */

#ifndef RSU_CORE_TYPES_H
#define RSU_CORE_TYPES_H

#include <cstdint>

namespace rsu::core {

/** A 6-bit random-variable label, carried in a byte. */
using Label = uint8_t;

/** Maximum number of labels an RSU-G supports. */
constexpr int kMaxLabels = 64;

/** Mask for valid label bits. */
constexpr Label kLabelMask = 0x3f;

/** An 8-bit clique-potential energy. */
using Energy = uint8_t;

/** Saturation value of the energy datapath. */
constexpr int kEnergyMax = 255;

/** Pack a 2-D vector label from two 3-bit components. */
constexpr Label
packVectorLabel(int x1, int x2)
{
    return static_cast<Label>(((x2 & 0x7) << 3) | (x1 & 0x7));
}

/** First (low) 3-bit component of a label. */
constexpr int
labelX1(Label label)
{
    return label & 0x7;
}

/** Second (high) 3-bit component of a label. */
constexpr int
labelX2(Label label)
{
    return (label >> 3) & 0x7;
}

} // namespace rsu::core

#endif // RSU_CORE_TYPES_H
