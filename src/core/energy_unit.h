/**
 * @file
 * Limited-precision clique-potential energy datapath.
 *
 * Implements the "Energy Calculation" pipeline stage (paper section
 * 5.2): the 8-bit energy of a candidate label is the saturating sum
 * of four doubleton clique potentials (squared-difference distance to
 * each neighbour's current label, Equation 2) and one singleton
 * potential (squared difference between two data inputs, with any
 * application weights pre-factored into the data).
 *
 * Labels are 6-bit; in vector mode a label is two 3-bit components
 * whose squared differences are summed, in scalar mode only the low
 * 3 bits participate (section 5.2). All arithmetic is exact integer
 * arithmetic with a single saturation point at the 8-bit output —
 * this mirrors the synthesized datapath, and the library's software
 * reference samplers reuse the same energies so that hardware and
 * reference disagree only through sampling, never through energy
 * rounding.
 */

#ifndef RSU_CORE_ENERGY_UNIT_H
#define RSU_CORE_ENERGY_UNIT_H

#include <array>
#include <cstdint>

#include "core/types.h"

namespace rsu::core {

/** Label interpretation for the doubleton distance. */
enum class LabelMode : uint8_t {
    Scalar, //!< low 3 bits significant
    Vector, //!< 2 x 3-bit components
};

/** Static datapath configuration. */
struct EnergyConfig
{
    bool operator==(const EnergyConfig &) const = default;

    LabelMode mode = LabelMode::Scalar;

    /**
     * Integer weight applied to each doubleton squared difference
     * (smoothness strength). Applied before saturation.
     */
    int doubleton_weight = 1;

    /**
     * Truncation of the doubleton distance (applied before the
     * weight): d = min(squared difference, cap). 0 disables. The
     * truncated-quadratic prior of the smoothness family the paper
     * targets (Szeliski et al., reference [36]) — it stops large
     * label discontinuities from being over-penalized, preserving
     * region edges. A single comparator in hardware.
     */
    int doubleton_cap = 0;

    /**
     * Right-shift applied to the singleton squared difference.
     * 6-bit data spans squared differences up to 3969, so the
     * default shift of 4 brings the worst case (248) into the 8-bit
     * energy range. Zero disables scaling.
     */
    int singleton_shift = 4;
};

/** Inputs for one candidate-label energy evaluation. */
struct EnergyInputs
{
    /** Current labels of the four neighbours (N/S/E/W). */
    std::array<Label, 4> neighbors;
    /** Validity of each neighbour (border pixels have fewer). */
    std::array<bool, 4> neighbor_valid = {true, true, true, true};
    /** First singleton data input (e.g. observed pixel intensity). */
    uint8_t data1 = 0;
    /** Second singleton data input (may change per candidate). */
    uint8_t data2 = 0;
    /**
     * Energy re-reference subtracted (saturating at 0) from every
     * candidate's energy before the intensity lookup. The Gibbs
     * conditional depends only on energy *differences*, but the
     * 4-bit LED ladder covers a finite dynamic range of absolute
     * rates; re-referencing to the current label's energy keeps
     * the interesting candidates inside that range even far from
     * equilibrium. Software softmax is exactly invariant to the
     * offset, so setting it never changes the reference sampler.
     */
    uint8_t energy_offset = 0;
};

/** Combinational energy unit. */
class EnergyUnit
{
  public:
    explicit EnergyUnit(const EnergyConfig &config = {});

    /**
     * Doubleton distance d(a, b) between two labels under the
     * configured mode and weight (unsaturated integer result).
     */
    int doubleton(Label a, Label b) const;

    /**
     * Singleton distance between the two 6-bit data inputs
     * (unsaturated integer result, after the configured shift).
     */
    int singleton(uint8_t data1, uint8_t data2) const;

    /**
     * Total 8-bit energy of evaluating @p candidate with the given
     * inputs: saturating sum of the singleton and the valid
     * doubletons.
     */
    Energy evaluate(Label candidate, const EnergyInputs &in) const;

    const EnergyConfig &config() const { return config_; }

  private:
    EnergyConfig config_;
};

} // namespace rsu::core

#endif // RSU_CORE_ENERGY_UNIT_H
