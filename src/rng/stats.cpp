#include "rng/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rsu::rng {

void
RunningMoments::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningMoments::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningMoments::stddev() const
{
    return std::sqrt(variance());
}

double
chiSquareStatistic(const std::vector<uint64_t> &observed,
                   const std::vector<double> &expected_probs)
{
    if (observed.size() != expected_probs.size())
        throw std::invalid_argument("chiSquare: size mismatch");

    uint64_t total = 0;
    for (uint64_t c : observed)
        total += c;
    if (total == 0)
        throw std::invalid_argument("chiSquare: no observations");

    double stat = 0.0;
    for (size_t i = 0; i < observed.size(); ++i) {
        const double expected =
            expected_probs[i] * static_cast<double>(total);
        if (expected <= 0.0) {
            assert(observed[i] == 0 &&
                   "observed mass in a zero-probability bin");
            continue;
        }
        const double diff = static_cast<double>(observed[i]) - expected;
        stat += diff * diff / expected;
    }
    return stat;
}

double
chiSquareCritical(int dof, double alpha)
{
    assert(dof >= 1);
    // Standard normal upper quantiles for the supported alphas.
    double z;
    if (alpha == 0.01) {
        z = 2.3263;
    } else if (alpha == 0.001) {
        z = 3.0902;
    } else {
        throw std::invalid_argument("chiSquareCritical: alpha must be "
                                    "0.01 or 0.001");
    }
    // Wilson-Hilferty: X ~ dof * (1 - 2/(9 dof) + z sqrt(2/(9 dof)))^3.
    const double k = static_cast<double>(dof);
    const double h = 2.0 / (9.0 * k);
    const double body = 1.0 - h + z * std::sqrt(h);
    return k * body * body * body;
}

double
ksStatisticExponential(std::vector<double> &samples, double rate)
{
    if (samples.empty())
        throw std::invalid_argument("ks: no samples");
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double d = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
        const double cdf = 1.0 - std::exp(-rate * samples[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max(d, std::max(cdf - lo, hi - cdf));
    }
    return d;
}

double
ksCritical01(uint64_t n)
{
    return 1.628 / std::sqrt(static_cast<double>(n));
}

} // namespace rsu::rng
