/**
 * @file
 * SplitMix64 pseudo-random generator.
 *
 * Used to seed the main xoshiro256++ generator from a single 64-bit
 * value, following the recommendation of the xoshiro authors. The
 * generator is a simple Weyl-sequence hash and passes BigCrush when
 * used as a standalone generator, but in this library it is only used
 * for state expansion.
 */

#ifndef RSU_RNG_SPLITMIX64_H
#define RSU_RNG_SPLITMIX64_H

#include <cstdint>

namespace rsu::rng {

/** Stateful SplitMix64 stream. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Return the next 64-bit value in the stream. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_;
};

} // namespace rsu::rng

#endif // RSU_RNG_SPLITMIX64_H
