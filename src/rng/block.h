/**
 * @file
 * Buffered block generation over a Xoshiro256 engine.
 *
 * The Simd sweep path consumes exactly one raw 64-bit variate per
 * site (scaled to the integer weight total instead of converted to
 * a double), so per-call generator overhead is a measurable slice
 * of its inner loop. BlockRng refills a small buffer in one tight
 * loop and hands variates out of it; the sequence of values is
 * *identical* to calling the engine directly — the buffer only
 * batches the calls — so buffered and unbuffered consumers of the
 * same stream stay interchangeable. Each runtime shard owns one
 * BlockRng next to its RNG stream; nothing here is thread-safe.
 */

#ifndef RSU_RNG_BLOCK_H
#define RSU_RNG_BLOCK_H

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.h"

namespace rsu::rng {

/** Fixed-capacity refill buffer over an external engine. */
class BlockRng
{
  public:
    explicit BlockRng(int capacity = 256)
        : buffer_(capacity > 0 ? capacity : 1),
          pos_(static_cast<int>(buffer_.size()))
    {
    }

    /** Next raw 64-bit value of @p rng's stream (refilling the
     * buffer from @p rng when drained). */
    uint64_t
    next(Xoshiro256 &rng)
    {
        if (pos_ == static_cast<int>(buffer_.size())) {
            for (auto &v : buffer_)
                v = rng();
            pos_ = 0;
        }
        return buffer_[pos_++];
    }

  private:
    std::vector<uint64_t> buffer_;
    int pos_;
};

} // namespace rsu::rng

#endif // RSU_RNG_BLOCK_H
