#include "rng/streams.h"

#include <stdexcept>

#include "rng/splitmix64.h"

namespace rsu::rng {

std::vector<Xoshiro256>
splitStreams(uint64_t seed, int count)
{
    if (count < 1)
        throw std::invalid_argument("splitStreams: need count >= 1");
    std::vector<Xoshiro256> streams;
    streams.reserve(count);
    Xoshiro256 stream(seed);
    for (int i = 0; i < count; ++i) {
        streams.push_back(stream);
        stream.jump();
    }
    return streams;
}

std::vector<uint64_t>
splitSeeds(uint64_t seed, int count)
{
    if (count < 1)
        throw std::invalid_argument("splitSeeds: need count >= 1");
    std::vector<uint64_t> seeds;
    seeds.reserve(count);
    seeds.push_back(seed);
    SplitMix64 sm(seed);
    for (int i = 1; i < count; ++i)
        seeds.push_back(sm.next());
    return seeds;
}

} // namespace rsu::rng
