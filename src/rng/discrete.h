/**
 * @file
 * Software discrete samplers.
 *
 * These implement the conventional-CPU alternatives to the RSU-G's
 * first-to-fire race: given M unnormalized weights, draw an index with
 * probability proportional to its weight. Three strategies with
 * different setup/draw cost trade-offs are provided; the Gibbs
 * baseline (mrf::GibbsSampler) uses the linear CDF scan, which is what
 * a straightforward CUDA/C++ implementation does per pixel, and the
 * alias method is included as the asymptotically optimal comparator.
 */

#ifndef RSU_RNG_DISCRETE_H
#define RSU_RNG_DISCRETE_H

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.h"

namespace rsu::rng {

/**
 * Draw an index in [0, n) with probability weight[i] / sum(weights)
 * via a single uniform draw and a linear CDF scan. O(n) per draw,
 * no setup. Weights must be non-negative with a positive sum.
 */
int sampleDiscreteLinear(Xoshiro256 &rng, const double *weights, int n);

/**
 * Inverse-transform sampler with a precomputed cumulative table.
 * O(n) setup, O(log n) per draw (binary search).
 */
class CdfSampler
{
  public:
    /** Build the cumulative table from unnormalized weights. */
    explicit CdfSampler(const std::vector<double> &weights);

    /** Draw an index according to the stored distribution. */
    int sample(Xoshiro256 &rng) const;

    /** Probability of drawing @p i. */
    double probability(int i) const;

    int size() const { return static_cast<int>(cdf_.size()); }

  private:
    std::vector<double> cdf_; // inclusive cumulative sums
    double total_;
};

/**
 * Walker/Vose alias method. O(n) setup, O(1) per draw.
 */
class AliasSampler
{
  public:
    explicit AliasSampler(const std::vector<double> &weights);

    int sample(Xoshiro256 &rng) const;

    double probability(int i) const;

    int size() const { return static_cast<int>(prob_.size()); }

  private:
    std::vector<double> prob_;  // acceptance probability per bucket
    std::vector<int> alias_;    // fallback index per bucket
    std::vector<double> norm_;  // normalized input weights
};

} // namespace rsu::rng

#endif // RSU_RNG_DISCRETE_H
