/**
 * @file
 * Statistical test helpers used by property tests and calibration.
 *
 * The paper's central claim is statistical: the first-to-fire race
 * draws from the Gibbs conditional. Verifying an emulated device
 * against a target distribution needs goodness-of-fit machinery, so
 * the library ships chi-square and Kolmogorov-Smirnov tests along
 * with streaming moment accumulators.
 */

#ifndef RSU_RNG_STATS_H
#define RSU_RNG_STATS_H

#include <cstdint>
#include <vector>

namespace rsu::rng {

/** Streaming mean/variance accumulator (Welford). */
class RunningMoments
{
  public:
    /** Add one observation. */
    void add(double x);

    uint64_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance; 0 for fewer than 2 observations. */
    double variance() const;

    double stddev() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Pearson chi-square statistic for observed counts against expected
 * probabilities. Bins with expected probability 0 must have observed
 * count 0 (asserted) and contribute nothing.
 */
double chiSquareStatistic(const std::vector<uint64_t> &observed,
                          const std::vector<double> &expected_probs);

/**
 * Upper-tail critical value of the chi-square distribution with
 * @p dof degrees of freedom at significance level @p alpha (supported:
 * 0.01, 0.001). Uses the Wilson-Hilferty cube-root approximation,
 * accurate to a few percent for dof >= 3 — adequate for pass/fail
 * property tests with comfortable margins.
 */
double chiSquareCritical(int dof, double alpha);

/**
 * One-sample Kolmogorov-Smirnov statistic of @p samples (sorted
 * in place) against the exponential CDF with rate @p rate.
 */
double ksStatisticExponential(std::vector<double> &samples, double rate);

/**
 * Critical KS value at alpha = 0.01 for @p n samples (asymptotic
 * formula 1.628 / sqrt(n)).
 */
double ksCritical01(uint64_t n);

} // namespace rsu::rng

#endif // RSU_RNG_STATS_H
