#include "rng/distributions.h"

#include <cassert>
#include <cmath>

namespace rsu::rng {

double
sampleExponential(Xoshiro256 &rng, double rate)
{
    assert(rate > 0.0);
    return -std::log(rng.uniformPositive()) / rate;
}

double
sampleNormal(Xoshiro256 &rng, double mean, double stddev)
{
    // Polar method: rejection-sample a point in the unit disc, then
    // transform. The second deviate is intentionally discarded (see
    // header).
    double u, v, s;
    do {
        u = 2.0 * rng.uniform() - 1.0;
        v = 2.0 * rng.uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    return mean + stddev * (u * m);
}

double
sampleGamma(Xoshiro256 &rng, double shape, double scale)
{
    assert(shape > 0.0 && scale > 0.0);
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        const double u = rng.uniformPositive();
        return sampleGamma(rng, shape + 1.0, scale) *
               std::pow(u, 1.0 / shape);
    }

    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = sampleNormal(rng, 0.0, 1.0);
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniformPositive();
        const double x2 = x * x;
        if (u < 1.0 - 0.0331 * x2 * x2)
            return d * v * scale;
        if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v)))
            return d * v * scale;
    }
}

double
sampleExponentialRace(Xoshiro256 &rng, const double *rates, int n,
                      int *winner)
{
    assert(n > 0);
    double best_t = 0.0;
    int best_i = -1;
    for (int i = 0; i < n; ++i) {
        if (rates[i] <= 0.0)
            continue; // a zero-rate clock never fires
        const double t = sampleExponential(rng, rates[i]);
        if (best_i < 0 || t < best_t) {
            best_t = t;
            best_i = i;
        }
    }
    assert(best_i >= 0 && "at least one rate must be positive");
    if (winner)
        *winner = best_i;
    return best_t;
}

} // namespace rsu::rng
