/**
 * @file
 * Software samplers for continuous distributions.
 *
 * These are the software baseline the paper's Table 1 measures
 * (exponential, normal, gamma) plus the exponential sampler the
 * emulated RET devices use internally. Each sampler is written as a
 * free function over a UniformRandomBitGenerator-like engine so the
 * same code path serves both the statistical substrate and the
 * benchmarks.
 */

#ifndef RSU_RNG_DISTRIBUTIONS_H
#define RSU_RNG_DISTRIBUTIONS_H

#include "rng/xoshiro256.h"

namespace rsu::rng {

/**
 * Sample Exp(rate) by inverse-transform.
 *
 * @param rng entropy source
 * @param rate decay rate lambda (> 0)
 * @return a sample with mean 1/rate
 */
double sampleExponential(Xoshiro256 &rng, double rate);

/**
 * Sample N(mean, stddev^2) via the polar (Marsaglia) method.
 *
 * Stateless: the second deviate of each pair is discarded so that
 * samples never depend on hidden sampler state. This keeps replayed
 * device traces reproducible regardless of interleaving.
 */
double sampleNormal(Xoshiro256 &rng, double mean, double stddev);

/**
 * Sample Gamma(shape, scale) via Marsaglia-Tsang.
 *
 * Uses the squeeze method for shape >= 1 and boosting for shape < 1.
 */
double sampleGamma(Xoshiro256 &rng, double shape, double scale);

/**
 * Time of the winner of a race among @p n independent exponential
 * clocks with rates @p rates. Returns the winning index via
 * @p winner. Equivalent to sampling a discrete distribution with
 * probabilities proportional to the rates — the mathematical core of
 * the first-to-fire Gibbs unit (paper section 4.3).
 */
double sampleExponentialRace(Xoshiro256 &rng, const double *rates,
                             int n, int *winner);

} // namespace rsu::rng

#endif // RSU_RNG_DISTRIBUTIONS_H
