/**
 * @file
 * xoshiro256++ pseudo-random number generator.
 *
 * The library's default source of entropy for all software samplers
 * and for the emulated RET devices. xoshiro256++ (Blackman & Vigna)
 * is fast, has a 2^256-1 period, and passes all known statistical
 * test batteries. It satisfies the C++ UniformRandomBitGenerator
 * concept so it can also drive the standard-library distributions
 * used by the Table 1 baseline measurements.
 */

#ifndef RSU_RNG_XOSHIRO256_H
#define RSU_RNG_XOSHIRO256_H

#include <array>
#include <cstdint>
#include <limits>

namespace rsu::rng {

/** xoshiro256++ engine. Satisfies UniformRandomBitGenerator. */
class Xoshiro256
{
  public:
    using result_type = uint64_t;

    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Xoshiro256(uint64_t seed = 0x9c2ae15f0971cf1bULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit output. */
    result_type operator()();

    /**
     * Uniform double in [0, 1) with 53 bits of precision.
     *
     * Uses the upper 53 bits of the raw output, the standard
     * conversion recommended by the generator's authors.
     */
    double uniform();

    /** Uniform double in (0, 1] — never zero, safe for log(). */
    double uniformPositive();

    /** Uniform integer in [0, bound) without modulo bias. */
    uint64_t below(uint64_t bound);

    /**
     * Advance the state by 2^128 steps.
     *
     * Generates non-overlapping subsequences for parallel chains
     * (e.g., one stream per replicated RET circuit).
     */
    void jump();

  private:
    std::array<uint64_t, 4> s_;
};

} // namespace rsu::rng

#endif // RSU_RNG_XOSHIRO256_H
