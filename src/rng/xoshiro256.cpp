#include "rng/xoshiro256.h"

#include "rng/splitmix64.h"

namespace rsu::rng {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s_)
        word = sm.next();
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Xoshiro256::uniform()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Xoshiro256::uniformPositive()
{
    // (raw >> 11) is in [0, 2^53); adding one shifts to (0, 2^53].
    return static_cast<double>(((*this)() >> 11) + 1) * 0x1.0p-53;
}

uint64_t
Xoshiro256::below(uint64_t bound)
{
    // Lemire's nearly-divisionless rejection method.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
        const uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

void
Xoshiro256::jump()
{
    static constexpr uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL,
    };

    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_ = {s0, s1, s2, s3};
}

} // namespace rsu::rng
