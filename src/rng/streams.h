/**
 * @file
 * Deterministic stream splitting for parallel samplers.
 *
 * The chromatic runtime (src/runtime/) runs same-colour checkerboard
 * sites on many workers at once; each worker must consume entropy
 * from its own non-overlapping subsequence so a run is reproducible
 * for a fixed (seed, worker count) pair regardless of how the OS
 * schedules the threads. xoshiro256++'s jump() advances the state by
 * 2^128 steps, so consecutive jumps carve the generator's period into
 * disjoint streams far longer than any run can exhaust.
 */

#ifndef RSU_RNG_STREAMS_H
#define RSU_RNG_STREAMS_H

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.h"

namespace rsu::rng {

/**
 * @p count non-overlapping Xoshiro256 streams derived from one seed.
 *
 * Stream 0 is exactly Xoshiro256(seed) — so a single-stream consumer
 * is bit-identical to a sequential sampler seeded the same way — and
 * stream i is stream i-1 advanced by jump() (2^128 steps).
 */
std::vector<Xoshiro256> splitStreams(uint64_t seed, int count);

/**
 * @p count decorrelated 64-bit seeds derived from one seed, for
 * components that take a scalar seed rather than an engine (e.g. one
 * emulated RSU-G device per worker). Seed 0 is the input seed itself
 * so a single-worker run matches a sequential device; the rest come
 * from a SplitMix64 stream over the input.
 */
std::vector<uint64_t> splitSeeds(uint64_t seed, int count);

} // namespace rsu::rng

#endif // RSU_RNG_STREAMS_H
