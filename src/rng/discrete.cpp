#include "rng/discrete.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace rsu::rng {

int
sampleDiscreteLinear(Xoshiro256 &rng, const double *weights, int n)
{
    assert(n > 0);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        assert(weights[i] >= 0.0);
        total += weights[i];
    }
    assert(total > 0.0);

    double u = rng.uniform() * total;
    for (int i = 0; i < n; ++i) {
        u -= weights[i];
        if (u < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (int i = n - 1; i >= 0; --i) {
        if (weights[i] > 0.0)
            return i;
    }
    return n - 1;
}

CdfSampler::CdfSampler(const std::vector<double> &weights)
{
    if (weights.empty())
        throw std::invalid_argument("CdfSampler: empty weights");
    cdf_.resize(weights.size());
    double run = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] < 0.0)
            throw std::invalid_argument("CdfSampler: negative weight");
        run += weights[i];
        cdf_[i] = run;
    }
    total_ = run;
    if (total_ <= 0.0)
        throw std::invalid_argument("CdfSampler: zero total weight");
}

int
CdfSampler::sample(Xoshiro256 &rng) const
{
    const double u = rng.uniform() * total_;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = std::distance(cdf_.begin(), it);
    return static_cast<int>(std::min<ptrdiff_t>(
        idx, static_cast<ptrdiff_t>(cdf_.size()) - 1));
}

double
CdfSampler::probability(int i) const
{
    const double lo = (i == 0) ? 0.0 : cdf_[i - 1];
    return (cdf_[i] - lo) / total_;
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
{
    const int n = static_cast<int>(weights.size());
    if (n == 0)
        throw std::invalid_argument("AliasSampler: empty weights");
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0)
        throw std::invalid_argument("AliasSampler: zero total weight");

    norm_.resize(n);
    for (int i = 0; i < n; ++i) {
        if (weights[i] < 0.0)
            throw std::invalid_argument("AliasSampler: negative weight");
        norm_[i] = weights[i] / total;
    }

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    std::vector<double> scaled(n);
    std::vector<int> small, large;
    for (int i = 0; i < n; ++i) {
        scaled[i] = norm_[i] * n;
        (scaled[i] < 1.0 ? small : large).push_back(i);
    }

    while (!small.empty() && !large.empty()) {
        const int s = small.back();
        small.pop_back();
        const int l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (int i : large)
        prob_[i] = 1.0;
    for (int i : small)
        prob_[i] = 1.0; // numerical leftovers
}

int
AliasSampler::sample(Xoshiro256 &rng) const
{
    const int n = static_cast<int>(prob_.size());
    const int bucket = static_cast<int>(rng.below(n));
    return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double
AliasSampler::probability(int i) const
{
    return norm_[i];
}

} // namespace rsu::rng
