/**
 * @file
 * M/M/1 queue simulation driven by RSU-E exponential units — the
 * paper's "rare event simulation" motif (section 1) on the generic
 * RSU substrate.
 *
 * Two RSU-E units supply inter-arrival and service times; the
 * simulation measures mean waiting time and the rare-event tail
 * probability P(wait > t), both of which have closed forms for
 * M/M/1, so the device-driven simulation validates end to end:
 *
 *   W_q = rho / (mu - lambda),  P(W > t) = rho * exp(-(mu-lambda) t)
 *
 * Usage:
 *   queue_simulation [utilization] [customers]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/rsu_units.h"

int
main(int argc, char **argv)
{
    using namespace rsu::core;

    const double rho = argc > 1 ? std::atof(argv[1]) : 0.8;
    const long customers =
        argc > 2 ? std::atol(argv[2]) : 2000000;
    if (rho <= 0.0 || rho >= 1.0) {
        std::fprintf(stderr, "utilization must be in (0,1)\n");
        return 1;
    }

    // Service rate fixed near the top of the RSU-E ladder so both
    // rates land on accurate ladder points; arrivals at rho * mu.
    RsuExponential service(rsu::ret::RetCircuitConfig{}, 1);
    RsuExponential arrivals(rsu::ret::RetCircuitConfig{}, 2);
    const double mu = service.setRate(0.9);
    const double lambda = arrivals.setRate(rho * mu);
    const double achieved_rho = lambda / mu;

    std::printf("M/M/1 via RSU-E: lambda = %.4f/ns, mu = %.4f/ns "
                "(achieved rho = %.3f; requested %.3f)\n",
                lambda, mu, achieved_rho, rho);

    // Lindley recursion over quantized device samples.
    double wait = 0.0;
    double wait_sum = 0.0;
    const double tail_t = 3.0 / (mu - lambda); // a deep-ish tail
    long tail_hits = 0;
    for (long i = 0; i < customers; ++i) {
        const double a = arrivals.sample() * arrivals.tickNs();
        const double s = service.sample() * service.tickNs();
        wait = std::max(0.0, wait + s - a);
        wait_sum += wait;
        if (wait > tail_t)
            ++tail_hits;
    }

    const double measured_wq = wait_sum / customers;
    const double analytic_wq = achieved_rho / (mu - lambda);
    const double measured_tail =
        static_cast<double>(tail_hits) / customers;
    const double analytic_tail =
        achieved_rho * std::exp(-(mu - lambda) * tail_t);

    std::printf("\nmean wait:      measured %8.3f ns, analytic "
                "%8.3f ns (%.1f%% off)\n",
                measured_wq, analytic_wq,
                100.0 * std::abs(measured_wq - analytic_wq) /
                    analytic_wq);
    std::printf("P(wait > %.1f): measured %.5f, analytic %.5f\n",
                tail_t, measured_tail, analytic_tail);
    std::printf("\nResidual error comes from the 8-bit TTF "
                "quantization (floor bias ~ half a tick per draw) "
                "and register saturation on the deep exponential "
                "tail — the device effects the RSU-E tests pin "
                "down.\n");
    std::printf("device draws: %llu arrivals + %llu services\n",
                static_cast<unsigned long long>(arrivals.samples()),
                static_cast<unsigned long long>(service.samples()));
    return 0;
}
