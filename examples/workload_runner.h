/**
 * @file
 * Shared driver for the workload examples.
 *
 * Every vision example (segmentation, stereo, motion_estimation,
 * denoise) builds an InferenceProblem from its factory and hands it
 * here: the runner submits the problem to an InferenceEngine (the
 * one front door for all workloads), prints a standard report, and
 * honours the flags the examples share:
 *
 *   --reference         cross-check the engine result against a
 *                       directly constructed sequential sampler
 *                       (forces 1 shard + Table path, where the two
 *                       are bit-identical); non-zero exit on any
 *                       mismatch
 *   --check-quality=X   non-zero exit when the job's quality metric
 *                       is worse than X (direction-aware)
 *   --anneal            run the problem's default annealing schedule
 *                       instead of fixed-temperature sweeps
 *   --path=P            sweep realization: table (default),
 *                       reference, or simd
 *   --shards=N          engine shard count (0 = engine default)
 *   --seed=N            sampling-chain seed
 */

#ifndef RSU_EXAMPLES_WORKLOAD_RUNNER_H
#define RSU_EXAMPLES_WORKLOAD_RUNNER_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/inference_engine.h"
#include "workload/problem.h"

namespace rsu::examples {

/** Shared command-line state: flags plus leftover positionals. */
struct RunnerArgs
{
    std::vector<std::string> positionals;
    bool reference = false;
    bool anneal = false;
    std::optional<double> check_quality;
    rsu::mrf::SweepPath sweep_path = rsu::mrf::SweepPath::Table;
    int shards = 0;
    uint64_t seed = 7;

    /** Positional @p index as int, or @p fallback when absent. */
    int positionalInt(std::size_t index, int fallback) const
    {
        return index < positionals.size()
                   ? std::atoi(positionals[index].c_str())
                   : fallback;
    }

    /** Positional @p index as double, or @p fallback when absent. */
    double positionalDouble(std::size_t index,
                            double fallback) const
    {
        return index < positionals.size()
                   ? std::atof(positionals[index].c_str())
                   : fallback;
    }
};

/** Parse flags (listed above) from anywhere in @p argv; anything
 * else is kept as a positional. Exits with code 2 on an unknown or
 * malformed flag. */
inline RunnerArgs
parseRunnerArgs(int argc, char **argv)
{
    RunnerArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            args.positionals.push_back(arg);
            continue;
        }
        if (arg == "--reference") {
            args.reference = true;
        } else if (arg == "--anneal") {
            args.anneal = true;
        } else if (arg.rfind("--check-quality=", 0) == 0) {
            args.check_quality = std::atof(arg.c_str() + 16);
        } else if (arg.rfind("--path=", 0) == 0) {
            const std::string path = arg.substr(7);
            if (path == "table")
                args.sweep_path = rsu::mrf::SweepPath::Table;
            else if (path == "reference")
                args.sweep_path = rsu::mrf::SweepPath::Reference;
            else if (path == "simd")
                args.sweep_path = rsu::mrf::SweepPath::Simd;
            else {
                std::fprintf(stderr,
                             "unknown sweep path '%s' (want "
                             "table|reference|simd)\n",
                             path.c_str());
                std::exit(2);
            }
        } else if (arg.rfind("--shards=", 0) == 0) {
            args.shards = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--seed=", 0) == 0) {
            args.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            std::exit(2);
        }
    }
    return args;
}

/**
 * Submit @p problem to a fresh engine under @p args, report the
 * result, and run the optional cross-check and quality gate.
 * Returns the process exit code (0 = all checks passed) and leaves
 * the final labelling in @p labels_out for rendering.
 */
inline int
runWorkload(const rsu::workload::InferenceProblem &problem,
            int sweeps, const RunnerArgs &args,
            std::vector<rsu::mrf::Label> *labels_out = nullptr)
{
    rsu::workload::SubmitOptions submit;
    submit.sweeps = sweeps;
    submit.anneal = args.anneal;
    submit.sweep_path = args.sweep_path;
    submit.seed = args.seed;
    submit.shards = args.shards;
    if (args.reference) {
        // Bit-identity with the sequential sampler holds at one
        // shard on the Reference/Table paths; pin both.
        submit.shards = 1;
        if (submit.sweep_path == rsu::mrf::SweepPath::Simd)
            submit.sweep_path = rsu::mrf::SweepPath::Table;
    }

    rsu::runtime::InferenceEngine engine;
    std::printf("%s: %s\n", problem.workload.c_str(),
                problem.description.c_str());
    std::printf("engine: %d pool thread(s); %s path, %s, shards=%d, "
                "seed=%llu\n",
                engine.threads(),
                submit.sweep_path == rsu::mrf::SweepPath::Simd
                    ? "simd"
                    : (submit.sweep_path ==
                               rsu::mrf::SweepPath::Table
                           ? "table"
                           : "reference"),
                submit.anneal ? "annealed" : "fixed-temperature",
                submit.shards,
                static_cast<unsigned long long>(submit.seed));

    const auto result =
        engine.submit(makeJob(problem, submit)).get();
    std::printf("energy %lld -> %lld after %d sweep(s) on %d "
                "shard(s), %.3fs\n",
                static_cast<long long>(result.initial_energy),
                static_cast<long long>(result.final_energy),
                result.sweeps_run, result.shards,
                result.elapsed_seconds);
    if (result.quality)
        std::printf("quality: %s = %.3f (%s is better)\n",
                    result.quality_metric.c_str(), *result.quality,
                    result.quality_higher_is_better ? "higher"
                                                    : "lower");
    if (labels_out)
        *labels_out = result.labels;

    int exit_code = 0;
    if (args.reference) {
        const auto direct = solveDirect(problem, submit);
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < direct.size(); ++i)
            mismatches += direct[i] != result.labels[i];
        if (mismatches == 0) {
            std::printf("reference cross-check: engine result is "
                        "bit-identical to the direct sampler\n");
        } else {
            std::printf("reference cross-check FAILED: %zu of %zu "
                        "sites differ\n",
                        mismatches, direct.size());
            exit_code = 1;
        }
    }
    if (args.check_quality) {
        if (!result.quality) {
            std::printf("quality gate FAILED: problem has no "
                        "quality metric\n");
            exit_code = 1;
        } else {
            const bool pass =
                result.quality_higher_is_better
                    ? *result.quality >= *args.check_quality
                    : *result.quality <= *args.check_quality;
            std::printf("quality gate (%s %s %.3f): %s\n",
                        result.quality_metric.c_str(),
                        result.quality_higher_is_better ? ">="
                                                        : "<=",
                        *args.check_quality,
                        pass ? "pass" : "FAILED");
            if (!pass)
                exit_code = 1;
        }
    }
    return exit_code;
}

} // namespace rsu::examples

#endif // RSU_EXAMPLES_WORKLOAD_RUNNER_H
