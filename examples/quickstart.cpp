/**
 * @file
 * Quickstart: build a tiny MRF, draw Gibbs samples through an
 * emulated RSU-G, and compare the device's conditional with the
 * ideal softmax.
 *
 * This is the smallest end-to-end tour of the library:
 *
 *   1. describe the application's singleton potential
 *      (SingletonModel),
 *   2. configure the lattice (MrfConfig / GridMrf),
 *   3. attach an RSU-G sampling unit (RsuG + RsuGibbsSampler),
 *   4. run MCMC and estimate marginal-MAP labels.
 */

#include <cstdio>

#include "core/rsu_g.h"
#include "mrf/estimator.h"
#include "mrf/exact.h"
#include "mrf/rsu_gibbs.h"

namespace {

/**
 * A toy observation model: each site prefers the label whose
 * "template value" (8 * label) is closest to the observed data
 * value at that site.
 */
class ToyObservation : public rsu::mrf::SingletonModel
{
  public:
    uint8_t
    data1(int x, int y) const override
    {
        // A diagonal gradient as "observed data".
        return static_cast<uint8_t>((4 * x + 3 * y) % 30);
    }

    uint8_t
    data2(int, int, rsu::mrf::Label label) const override
    {
        return static_cast<uint8_t>(label * 8);
    }
};

} // namespace

int
main()
{
    // 1. The observation model.
    ToyObservation observation;

    // 2. A 4x3 lattice of 4-label variables with a smoothness
    //    prior at temperature 12 (kept tiny so the brute-force
    //    oracle below can enumerate the joint distribution).
    rsu::mrf::MrfConfig config;
    config.width = 4;
    config.height = 3;
    config.num_labels = 4;
    config.temperature = 12.0;
    rsu::mrf::GridMrf mrf(config, observation);
    mrf.initializeMaximumLikelihood();

    // 3. An RSU-G1 whose energy datapath matches the model.
    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf),
        /*seed=*/42);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
    std::printf("RSU-G1 latency: %d cycles per variable "
                "(7 + (M-1) with M = %d)\n",
                unit.latencyCycles(), mrf.numLabels());

    // 4. Run the chain and take marginal-MAP estimates.
    rsu::mrf::MarginalMapEstimator estimator(mrf, /*burn_in=*/50);
    estimator.run(1050, [&] { sampler.sweep(); });
    const auto map = estimator.estimate();

    std::printf("\nMarginal-MAP labelling:\n");
    for (int y = 0; y < mrf.height(); ++y) {
        for (int x = 0; x < mrf.width(); ++x)
            std::printf(" %d", map[mrf.index(x, y)]);
        std::printf("\n");
    }

    // Sanity: compare the device conditional against the ideal
    // softmax at one site, and the empirical marginal against the
    // exact (brute-force) marginal.
    const auto softmax = mrf.conditionalDistribution(2, 2);
    const auto inputs = mrf.referencedInputsAt(2, 2);
    std::vector<uint8_t> data2(mrf.numLabels());
    mrf.data2At(2, 2, data2.data());
    const auto race = unit.raceDistribution(inputs, data2.data());

    std::printf("\nSite (2,2) conditional   softmax  |  device "
                "race\n");
    for (int l = 0; l < mrf.numLabels(); ++l) {
        std::printf("  label %d:            %8.4f  |  %8.4f\n", l,
                    softmax[l], race[l]);
    }

    const rsu::mrf::ExactInference exact(mrf);
    const auto exact_marginal = exact.marginal(2, 2);
    const auto empirical = estimator.empiricalMarginal(2, 2);
    std::printf("\nSite (2,2) marginal      exact    |  RSU-MCMC "
                "empirical\n");
    for (int l = 0; l < mrf.numLabels(); ++l) {
        std::printf("  label %d:            %8.4f  |  %8.4f\n", l,
                    exact_marginal[l], empirical[l]);
    }

    std::printf("\nDevice stats: %llu samples, %llu label "
                "evaluations, %llu stall cycles\n",
                static_cast<unsigned long long>(
                    unit.stats().samples),
                static_cast<unsigned long long>(
                    unit.stats().label_evals),
                static_cast<unsigned long long>(
                    unit.stats().stall_cycles));
    return 0;
}
