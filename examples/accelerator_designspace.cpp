/**
 * @file
 * Architecture design-space exploration with the analytic models.
 *
 * Walks the axes the paper discusses: RSU width (G1..G64), unit
 * replication, DRAM bandwidth for the discrete accelerator, and
 * technology node — printing execution time, power, and area so a
 * designer can see the trade-offs in one place.
 */

#include <cstdio>

#include "arch/accelerator_model.h"
#include "arch/cpu_model.h"
#include "arch/gpu_model.h"
#include "arch/power_area.h"
#include "arch/workload.h"
#include "core/rsu_g.h"

int
main()
{
    using namespace rsu::arch;

    std::printf("=== RSU width: latency & throughput per sampled "
                "variable ===\n");
    std::printf("%8s %12s %12s %16s\n", "width", "M=5 lat", "M=49 "
                                                            "lat",
                "M=49 interval");
    for (int k : {1, 2, 4, 8, 16, 64}) {
        rsu::core::RsuGConfig config;
        config.width = k;
        rsu::core::RsuG unit(config);
        unit.setNumLabels(5);
        const int lat5 = unit.latencyCycles();
        unit.setNumLabels(49);
        std::printf("%8d %12d %12d %16.1f\n", k, lat5,
                    unit.latencyCycles(),
                    unit.steadyStateIntervalCycles());
    }

    std::printf("\n=== GPU augmentation vs discrete accelerator "
                "(motion, HD) ===\n");
    const auto w = motionWorkload(kHdWidth, kHdHeight);
    const GpuModel gpu;
    std::printf("%-22s %12s\n", "configuration", "time (s)");
    for (auto v : {GpuVariant::Baseline, GpuVariant::Optimized,
                   GpuVariant::RsuG1, GpuVariant::RsuG4}) {
        std::printf("%-22s %12.3f\n", variantName(v).c_str(),
                    gpu.totalSeconds(w, v));
    }
    const AcceleratorModel accel;
    std::printf("%-22s %12.3f  (%d units, %.2f W RSU power)\n",
                "accelerator @336GB/s", accel.totalSeconds(w),
                accel.requiredUnits(), accel.rsuPowerW());

    std::printf("\n=== Technology node: one RSU-G1 ===\n");
    std::printf("%6s %14s %14s\n", "node", "power (mW)",
                "area (um^2)");
    for (int node : {45, 32, 22, 15}) {
        const auto b = RsuPowerAreaModel::project(node, 1000.0);
        std::printf("%4dnm %14.2f %14.0f\n", node, b.totalPowerMw(),
                    b.totalAreaUm2());
    }

    std::printf("\n=== Sequential CPU core + RSU-G1 ===\n");
    const CpuModel cpu;
    for (const auto &wl :
         {segmentationWorkload(kSmallWidth, kSmallHeight),
          stereoWorkload(kSmallWidth, kSmallHeight)}) {
        std::printf("%-26s baseline %8.1f s, with RSU %6.2f s "
                    "(%.0fx)\n",
                    wl.name.c_str(), cpu.baselineSeconds(wl),
                    cpu.rsuSeconds(wl), cpu.speedup(wl));
    }

    std::printf("\n=== Accelerator bandwidth scaling (motion HD) "
                "===\n");
    std::printf("%12s %8s %12s %14s\n", "BW (GB/s)", "units",
                "time (s)", "RSU power (W)");
    for (double bw : {84.0, 168.0, 336.0, 672.0, 1344.0}) {
        AcceleratorConfig config;
        config.mem_bw_gbs = bw;
        const AcceleratorModel a(config);
        std::printf("%12.0f %8d %12.4f %14.2f\n", bw,
                    a.requiredUnits(), a.totalSeconds(w),
                    a.rsuPowerW());
    }
    return 0;
}
