/**
 * @file
 * Image restoration (denoising) with an RSU-G — the classic
 * Geman-Geman MRF application, included as an extension workload
 * beyond the paper's three.
 *
 * Quantizes a clean synthetic image into discrete intensity
 * levels, corrupts it with Gaussian noise, and recovers it by
 * marginal-MAP inference. Reports PSNR of noisy vs restored.
 *
 * Usage:
 *   denoise [noise_sigma] [levels] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "core/rsu_g.h"
#include "mrf/estimator.h"
#include "mrf/rsu_gibbs.h"
#include "rng/distributions.h"
#include "vision/denoise.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/synthetic.h"

int
main(int argc, char **argv)
{
    using namespace rsu::vision;

    const double sigma = argc > 1 ? std::atof(argv[1]) : 6.0;
    const int levels = argc > 2 ? std::atoi(argv[2]) : 6;
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 80;

    // Clean scene: piecewise-constant regions quantized to the
    // restoration levels, so a perfect restoration is achievable.
    rsu::rng::Xoshiro256 rng(31);
    const auto scene =
        makeSegmentationScene(128, 96, levels, 0.0, rng);
    Image clean = scene.image;

    Image noisy = clean;
    for (auto &p : noisy.pixels()) {
        p = clampPixel(
            p + rsu::rng::sampleNormal(rng, 0.0, sigma), 63);
    }

    DenoiseModel model(noisy, levels);
    const auto config = denoiseConfig(noisy, levels);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    std::printf("Denoising: 128x96, %d levels, noise sigma %.1f\n",
                levels, sigma);
    std::printf("PSNR noisy vs clean:    %6.2f dB\n",
                psnr(noisy, clean));

    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 17);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
    rsu::mrf::MarginalMapEstimator est(mrf, iterations / 5);
    est.run(iterations, [&] { sampler.sweep(); });

    const Image restored = model.reconstruct(est.estimate());
    std::printf("PSNR restored vs clean: %6.2f dB\n",
                psnr(restored, clean));

    clean.writePgm("denoise_clean.pgm");
    noisy.writePgm("denoise_noisy.pgm");
    restored.writePgm("denoise_restored.pgm");
    std::printf("wrote denoise_clean.pgm denoise_noisy.pgm "
                "denoise_restored.pgm\n");
    return 0;
}
