/**
 * @file
 * Image restoration (denoising) — the classic Geman-Geman MRF
 * application, served through the InferenceEngine.
 *
 * Builds a denoise InferenceProblem (a clean piecewise-constant
 * scene corrupted with Gaussian noise), submits it as an engine
 * job, and reports the reconstruction's PSNR against the clean
 * image through the problem's quality hook.
 *
 * Usage:
 *   denoise [noise_sigma] [levels] [iterations]
 *           [--reference] [--check-quality=X] [--anneal]
 *           [--path=table|reference|simd] [--shards=N] [--seed=N]
 */

#include <cstdio>
#include <vector>

#include "workload/factories.h"
#include "workload_runner.h"

int
main(int argc, char **argv)
{
    using namespace rsu;

    const auto args = examples::parseRunnerArgs(argc, argv);

    workload::SceneOptions scene;
    scene.noise_sigma = args.positionalDouble(0, 6.0);
    scene.labels = args.positionalInt(1, 6);
    const int iterations = args.positionalInt(2, 80);

    const auto problem = workload::makeDenoise(scene);

    std::vector<mrf::Label> restored;
    const int exit_code =
        examples::runWorkload(problem, iterations, args,
                              &restored);

    problem.observation.writePgm("denoise_noisy.pgm");
    problem.render(restored).writePgm("denoise_restored.pgm");
    std::printf("wrote denoise_noisy.pgm denoise_restored.pgm\n");
    return exit_code;
}
