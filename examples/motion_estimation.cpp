/**
 * @file
 * Dense motion estimation — the paper's second evaluation workload
 * (Konrad-Dubois Bayesian motion fields, 7x7 search window, M = 49
 * vector labels), served through the InferenceEngine.
 *
 * Builds a motion InferenceProblem over a two-frame synthetic scene
 * with rigidly moving objects, submits it as an engine job, and
 * reports mean endpoint error against the true displacement field
 * through the problem's quality hook (lower is better).
 *
 * Usage:
 *   motion_estimation [width] [height] [iterations]
 *                     [--reference] [--check-quality=X] [--anneal]
 *                     [--path=table|reference|simd] [--shards=N]
 *                     [--seed=N]
 */

#include <cstdio>
#include <vector>

#include "core/types.h"
#include "vision/image.h"
#include "workload/factories.h"
#include "workload_runner.h"

int
main(int argc, char **argv)
{
    using namespace rsu;

    const auto args = examples::parseRunnerArgs(argc, argv);

    workload::SceneOptions scene;
    scene.width = args.positionalInt(0, 96);
    scene.height = args.positionalInt(1, 72);
    const int iterations = args.positionalInt(2, 60);

    const auto problem = workload::makeMotion(scene);

    std::vector<mrf::Label> flow;
    const int exit_code =
        examples::runWorkload(problem, iterations, args, &flow);

    // Visualize: encode dx and dy as two grayscale maps.
    const int width = problem.config.width;
    const int height = problem.config.height;
    vision::Image dx_img(width, height, 63),
        dy_img(width, height, 63);
    for (int i = 0; i < width * height; ++i) {
        dx_img.pixels()[i] =
            static_cast<uint8_t>(core::labelX1(flow[i]) * 9);
        dy_img.pixels()[i] =
            static_cast<uint8_t>(core::labelX2(flow[i]) * 9);
    }
    dx_img.writePgm("motion_dx.pgm");
    dy_img.writePgm("motion_dy.pgm");
    std::printf("wrote motion_dx.pgm motion_dy.pgm\n");
    return exit_code;
}
