/**
 * @file
 * Dense motion estimation with an RSU-G — the paper's second
 * evaluation workload (Konrad-Dubois Bayesian motion fields,
 * 7x7 search window, M = 49 vector labels).
 *
 * Generates a two-frame synthetic scene with rigidly moving
 * objects, estimates the per-pixel motion field by MRF-MCMC with
 * an RSU-G4 (the wide unit the paper recommends for label-rich
 * problems), and reports endpoint error against ground truth.
 *
 * Usage:
 *   motion_estimation [width] [height] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "core/rsu_g.h"
#include "mrf/estimator.h"
#include "mrf/rsu_gibbs.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/synthetic.h"

int
main(int argc, char **argv)
{
    using namespace rsu::vision;

    const int width = argc > 1 ? std::atoi(argv[1]) : 96;
    const int height = argc > 2 ? std::atoi(argv[2]) : 72;
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 60;
    constexpr int kRadius = 3; // 7x7 window, M = 49

    rsu::rng::Xoshiro256 rng(99);
    const auto scene =
        makeMotionScene(width, height, 3, kRadius, 1.0, rng);
    scene.frame1.writePgm("motion_frame1.pgm");
    scene.frame2.writePgm("motion_frame2.pgm");

    MotionModel model(scene.frame1, scene.frame2, kRadius);
    const auto config = motionConfig(scene.frame1, kRadius);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    std::printf("Motion estimation: %dx%d, M = %d labels, "
                "RSU-G4\n",
                width, height, model.numLabels());
    const double init_epe =
        meanEndpointError(mrf.labels(), scene.truth);
    std::printf("ML initialization endpoint error: %.3f px\n",
                init_epe);

    auto unit_config = rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf);
    unit_config.width = 4; // RSU-G4
    rsu::core::RsuG unit(unit_config, 11);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
    std::printf("RSU-G4 latency per variable: %d cycles "
                "(vs %d for RSU-G1)\n",
                unit.latencyCycles(), 7 + (model.numLabels() - 1));

    rsu::mrf::MarginalMapEstimator est(mrf, iterations / 5);
    est.run(iterations, [&] { sampler.sweep(); });
    const auto flow = est.estimate();

    const double epe = meanEndpointError(flow, scene.truth);
    const double acc = labelAccuracy(flow, scene.truth);
    std::printf("\nAfter %d iterations: endpoint error %.3f px, "
                "exact-label accuracy %.1f%%\n",
                iterations, epe, acc * 100.0);

    // Visualize: encode dx and dy as two grayscale maps.
    Image dx_img(width, height, 63), dy_img(width, height, 63);
    for (int i = 0; i < width * height; ++i) {
        dx_img.pixels()[i] = static_cast<uint8_t>(
            rsu::core::labelX1(flow[i]) * 9);
        dy_img.pixels()[i] = static_cast<uint8_t>(
            rsu::core::labelX2(flow[i]) * 9);
    }
    dx_img.writePgm("motion_dx.pgm");
    dy_img.writePgm("motion_dy.pgm");
    std::printf("wrote motion_frame1.pgm motion_frame2.pgm "
                "motion_dx.pgm motion_dy.pgm\n");
    return 0;
}
