/**
 * @file
 * Concurrent inference serving demo, registry-driven.
 *
 * Simulates the production scenario from the ROADMAP: many callers
 * push independent jobs at one InferenceEngine, which batches them
 * across a shared chromatic thread pool. Jobs round-robin over the
 * named workloads (WorkloadRegistry — any of segmentation, motion,
 * stereo, denoise, synthetic) with per-job seeds; every third job
 * anneals under its workload's default schedule. Because each
 * workload contributes ONE problem instance, repeat jobs against it
 * hit the engine's cross-job SweepTableSet cache — the cache
 * counters are printed at the end. Per-job energy, timing, outcome,
 * and the workload's own quality metric are reported as futures
 * resolve.
 *
 * Robustness drills (see DESIGN.md section 12):
 *   --deadline-ms=N   give every job an N-millisecond deadline;
 *                     jobs that overrun resolve with partial
 *                     results (outcome=deadline)
 *   --cancel-after=K  every job cancels itself after K sweeps
 *                     (outcome=cancelled, exactly K sweeps run)
 *   --inject-faults   run jobs on the emulated RSU-G device path
 *                     under an aggressive device-fault campaign;
 *                     the engine must degrade at least one job to
 *                     the software path (exit 1 otherwise)
 *
 * Usage:
 *   runtime_server [jobs] [size] [workloads-csv|all] [sweeps]
 *                  [--deadline-ms=N] [--cancel-after=K]
 *                  [--inject-faults]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/inference_engine.h"
#include "workload/problem.h"
#include "workload/registry.h"

namespace {

/** Split "a,b,c" (or expand "all") into registry names. */
std::vector<std::string>
selectWorkloads(const std::string &csv)
{
    const auto &registry = rsu::workload::WorkloadRegistry::builtin();
    if (csv == "all" || csv.empty())
        return registry.names();
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            names.push_back(csv.substr(start, end - start));
        start = end + 1;
    }
    for (const auto &name : names)
        if (!registry.contains(name)) {
            std::fprintf(stderr,
                         "unknown workload '%s' (known:", name.c_str());
            for (const auto &known : registry.names())
                std::fprintf(stderr, " %s", known.c_str());
            std::fprintf(stderr, ")\n");
            std::exit(2);
        }
    return names;
}

const char *
outcomeName(rsu::runtime::JobOutcome outcome)
{
    switch (outcome) {
    case rsu::runtime::JobOutcome::Completed:
        return "ok";
    case rsu::runtime::JobOutcome::Cancelled:
        return "cancelled";
    case rsu::runtime::JobOutcome::DeadlineExceeded:
        return "deadline";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsu;

    // Flags may appear anywhere; positionals keep their order.
    double deadline_ms = 0.0;
    int cancel_after = 0;
    bool inject_faults = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--deadline-ms=", 0) == 0)
            deadline_ms = std::atof(arg.c_str() + 14);
        else if (arg.rfind("--cancel-after=", 0) == 0)
            cancel_after = std::atoi(arg.c_str() + 15);
        else if (arg == "--inject-faults")
            inject_faults = true;
        else
            positional.push_back(arg);
    }
    const int jobs =
        positional.size() > 0 ? std::atoi(positional[0].c_str()) : 8;
    const int size =
        positional.size() > 1 ? std::atoi(positional[1].c_str()) : 96;
    const std::string csv =
        positional.size() > 2 ? positional[2] : "all";
    const int sweeps =
        positional.size() > 3 ? std::atoi(positional[3].c_str()) : 30;

    const auto names = selectWorkloads(csv);
    const auto &registry = workload::WorkloadRegistry::builtin();

    // One problem instance per workload; jobs round-robin over them
    // so repeat submissions share cached sweep tables.
    std::vector<workload::InferenceProblem> problems;
    for (const auto &name : names) {
        workload::SceneOptions scene;
        scene.width = size;
        scene.height = size;
        problems.push_back(registry.make(name, scene));
    }

    // The drill campaign: every SPAD lane dead and a low failure
    // threshold, so afflicted units declare failure within a few
    // sweeps and the engine's FallbackToSoftware policy has to act.
    ret::FaultPlan plan;
    plan.seed = 7;
    plan.stuck_led_fraction = 0.25;
    plan.dead_spad_fraction = 1.0;
    plan.max_reraces = 1;
    plan.failure_threshold = 4;

    runtime::InferenceEngine::Options options;
    options.threads = runtime::ThreadPool::hardwareThreads();
    options.max_concurrent_jobs = 2;
    runtime::InferenceEngine engine(options);
    std::printf("engine: %d pool thread(s), %d concurrent job(s)\n",
                engine.threads(), options.max_concurrent_jobs);
    std::printf("submitting %d jobs over %zu workload(s) at %dx%d, "
                "%d sweeps\n",
                jobs, names.size(), size, size, sweeps);
    if (deadline_ms > 0.0)
        std::printf("deadline: %.1f ms per job\n", deadline_ms);
    if (cancel_after > 0)
        std::printf("cancelling every job after %d sweep(s)\n",
                    cancel_after);
    if (inject_faults)
        std::printf("fault drill: RSU path, dead SPAD lanes + stuck "
                    "LED bits (plan seed %llu)\n",
                    static_cast<unsigned long long>(plan.seed));
    std::printf("\n");

    std::vector<runtime::JobHandle> handles;
    std::vector<const workload::InferenceProblem *> submitted;
    std::vector<bool> annealed;
    for (int j = 0; j < jobs; ++j) {
        const auto &problem = problems[j % problems.size()];
        workload::SubmitOptions submit;
        submit.sweeps = sweeps;
        submit.seed = 42 + j;
        submit.anneal = j % 3 == 2;
        submit.energy_trace_stride = sweeps; // endpoints only
        if (deadline_ms > 0.0)
            submit.deadline_seconds = deadline_ms / 1000.0;
        auto job = makeJob(problem, submit);
        if (cancel_after > 0) {
            // Each job trips its own token after K sweeps; the
            // engine stops it before sweep K+1, so exactly K sweeps
            // run.
            auto token = runtime::CancellationToken::make();
            job.cancel = token;
            job.on_sweep = [token, cancel_after](int done) mutable {
                if (done >= cancel_after)
                    token.cancel();
            };
        }
        if (inject_faults) {
            job.sampler = runtime::SamplerKind::RsuGibbs;
            job.faults = plan;
        }
        handles.push_back(engine.submit(std::move(job)));
        submitted.push_back(&problem);
        annealed.push_back(submit.anneal);
    }

    std::printf("%4s %-13s %6s %6s %12s %12s %7s %8s %9s %5s %14s\n",
                "job", "workload", "mode", "shrd", "E_initial",
                "E_final", "sweeps", "time(s)", "outcome", "degr",
                "quality");
    double total_seconds = 0.0;
    uint64_t total_updates = 0;
    int degraded_jobs = 0;
    int refused_jobs = 0;
    for (int j = 0; j < jobs; ++j) {
        runtime::InferenceResult result;
        try {
            result = handles[j].get();
        } catch (const runtime::EngineError &e) {
            // Typed refusal: the job never ran (e.g. its deadline
            // expired while it sat in the queue).
            ++refused_jobs;
            std::printf("%4llu %-13s %6s %6s %12s %12s %7s %8s %9s "
                        "%5s %14s\n",
                        static_cast<unsigned long long>(
                            handles[j].id()),
                        submitted[j]->workload.c_str(),
                        annealed[j] ? "anneal" : "gibbs", "-", "-",
                        "-", "-", "-",
                        runtime::engineErrorCodeName(e.code()), "-",
                        "-");
            continue;
        }
        total_seconds += result.elapsed_seconds;
        total_updates += result.work.site_updates;
        if (result.degraded)
            ++degraded_jobs;
        char quality[32] = "-";
        if (result.quality)
            std::snprintf(quality, sizeof quality, "%s=%.3f",
                          result.quality_metric.c_str(),
                          *result.quality);
        std::printf("%4llu %-13s %6s %6d %12lld %12lld %7d %8.3f "
                    "%9s %5s %14s\n",
                    static_cast<unsigned long long>(result.job_id),
                    submitted[j]->workload.c_str(),
                    annealed[j] ? "anneal" : "gibbs", result.shards,
                    static_cast<long long>(result.initial_energy),
                    static_cast<long long>(result.final_energy),
                    result.sweeps_run, result.elapsed_seconds,
                    outcomeName(result.outcome),
                    result.degraded ? "yes" : "no", quality);
    }

    const auto cache = engine.tableCacheStats();
    std::printf("\n%d jobs (%d refused), %llu site updates, %.3f "
                "job-seconds total\n",
                jobs, refused_jobs,
                static_cast<unsigned long long>(total_updates),
                total_seconds);
    std::printf("table cache: %llu hit(s), %llu miss(es), %d "
                "entrie(s) resident\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.entries);
    if (inject_faults) {
        if (degraded_jobs == 0) {
            std::fprintf(stderr, "fault drill FAILED: no job fell "
                                 "back to the software path\n");
            return 1;
        }
        std::printf("fault drill: %d/%d job(s) degraded=true\n",
                    degraded_jobs, jobs);
    }
    return 0;
}
