/**
 * @file
 * Concurrent inference serving demo, registry-driven.
 *
 * Simulates the production scenario from the ROADMAP: many callers
 * push independent jobs at one InferenceEngine, which batches them
 * across a shared chromatic thread pool. Jobs round-robin over the
 * named workloads (WorkloadRegistry — any of segmentation, motion,
 * stereo, denoise, synthetic) with per-job seeds; every third job
 * anneals under its workload's default schedule. Because each
 * workload contributes ONE problem instance, repeat jobs against it
 * hit the engine's cross-job SweepTableSet cache — the cache
 * counters are printed at the end. Per-job energy, timing, and the
 * workload's own quality metric are reported as futures resolve.
 *
 * Usage:
 *   runtime_server [jobs] [size] [workloads-csv|all] [sweeps]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/inference_engine.h"
#include "workload/problem.h"
#include "workload/registry.h"

namespace {

/** Split "a,b,c" (or expand "all") into registry names. */
std::vector<std::string>
selectWorkloads(const std::string &csv)
{
    const auto &registry = rsu::workload::WorkloadRegistry::builtin();
    if (csv == "all" || csv.empty())
        return registry.names();
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            names.push_back(csv.substr(start, end - start));
        start = end + 1;
    }
    for (const auto &name : names)
        if (!registry.contains(name)) {
            std::fprintf(stderr,
                         "unknown workload '%s' (known:", name.c_str());
            for (const auto &known : registry.names())
                std::fprintf(stderr, " %s", known.c_str());
            std::fprintf(stderr, ")\n");
            std::exit(2);
        }
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsu;

    const int jobs = argc > 1 ? std::atoi(argv[1]) : 8;
    const int size = argc > 2 ? std::atoi(argv[2]) : 96;
    const std::string csv = argc > 3 ? argv[3] : "all";
    const int sweeps = argc > 4 ? std::atoi(argv[4]) : 30;

    const auto names = selectWorkloads(csv);
    const auto &registry = workload::WorkloadRegistry::builtin();

    // One problem instance per workload; jobs round-robin over them
    // so repeat submissions share cached sweep tables.
    std::vector<workload::InferenceProblem> problems;
    for (const auto &name : names) {
        workload::SceneOptions scene;
        scene.width = size;
        scene.height = size;
        problems.push_back(registry.make(name, scene));
    }

    runtime::InferenceEngine::Options options;
    options.threads = runtime::ThreadPool::hardwareThreads();
    options.max_concurrent_jobs = 2;
    runtime::InferenceEngine engine(options);
    std::printf("engine: %d pool thread(s), %d concurrent job(s)\n",
                engine.threads(), options.max_concurrent_jobs);
    std::printf("submitting %d jobs over %zu workload(s) at %dx%d, "
                "%d sweeps\n\n",
                jobs, names.size(), size, size, sweeps);

    std::vector<std::future<runtime::InferenceResult>> futures;
    std::vector<const workload::InferenceProblem *> submitted;
    std::vector<bool> annealed;
    for (int j = 0; j < jobs; ++j) {
        const auto &problem = problems[j % problems.size()];
        workload::SubmitOptions submit;
        submit.sweeps = sweeps;
        submit.seed = 42 + j;
        submit.anneal = j % 3 == 2;
        submit.energy_trace_stride = sweeps; // endpoints only
        futures.push_back(
            engine.submit(makeJob(problem, submit)));
        submitted.push_back(&problem);
        annealed.push_back(submit.anneal);
    }

    std::printf("%4s %-13s %6s %6s %12s %12s %7s %8s %18s\n",
                "job", "workload", "mode", "shrd", "E_initial",
                "E_final", "sweeps", "time(s)", "quality");
    double total_seconds = 0.0;
    uint64_t total_updates = 0;
    for (int j = 0; j < jobs; ++j) {
        const auto result = futures[j].get();
        total_seconds += result.elapsed_seconds;
        total_updates += result.work.site_updates;
        char quality[32] = "-";
        if (result.quality)
            std::snprintf(quality, sizeof quality, "%s=%.3f",
                          result.quality_metric.c_str(),
                          *result.quality);
        std::printf("%4llu %-13s %6s %6d %12lld %12lld %7d %8.3f "
                    "%18s\n",
                    static_cast<unsigned long long>(result.job_id),
                    submitted[j]->workload.c_str(),
                    annealed[j] ? "anneal" : "gibbs", result.shards,
                    static_cast<long long>(result.initial_energy),
                    static_cast<long long>(result.final_energy),
                    result.sweeps_run, result.elapsed_seconds,
                    quality);
    }

    const auto cache = engine.tableCacheStats();
    std::printf("\n%d jobs, %llu site updates, %.3f job-seconds "
                "total\n",
                jobs, static_cast<unsigned long long>(total_updates),
                total_seconds);
    std::printf("table cache: %llu hit(s), %llu miss(es), %d "
                "entrie(s) resident\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.entries);
    return 0;
}
