/**
 * @file
 * Concurrent inference serving demo.
 *
 * Simulates the production scenario from the ROADMAP: many callers
 * push independent segmentation jobs at one InferenceEngine, which
 * batches them across a shared chromatic thread pool. Each job gets
 * its own synthetic scene; a mix of fixed-temperature software-Gibbs
 * jobs, annealed jobs, and RSU-emulated jobs exercises all three
 * serving paths. Per-job energy, timing, work, and ground-truth
 * accuracy are reported as the futures resolve.
 *
 * Usage:
 *   runtime_server [jobs] [size] [labels] [sweeps]
 */

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <vector>

#include "mrf/annealing.h"
#include "runtime/inference_engine.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

int
main(int argc, char **argv)
{
    using namespace rsu;

    const int jobs = argc > 1 ? std::atoi(argv[1]) : 8;
    const int size = argc > 2 ? std::atoi(argv[2]) : 96;
    const int labels = argc > 3 ? std::atoi(argv[3]) : 5;
    const int sweeps = argc > 4 ? std::atoi(argv[4]) : 30;

    runtime::InferenceEngine::Options options;
    options.threads = runtime::ThreadPool::hardwareThreads();
    options.max_concurrent_jobs = 2;
    runtime::InferenceEngine engine(options);
    std::printf("engine: %d pool thread(s), %d concurrent job(s)\n",
                engine.threads(), options.max_concurrent_jobs);
    std::printf("submitting %d segmentation jobs (%dx%d, %d labels, "
                "%d sweeps)\n\n",
                jobs, size, size, labels, sweeps);

    // Scenes and models live in deques so references stay valid as
    // jobs are appended — each job's singleton model must outlive
    // its future.
    std::deque<vision::SegmentationScene> scenes;
    std::deque<vision::SegmentationModel> models;
    std::vector<std::future<runtime::InferenceResult>> futures;
    std::vector<const char *> kinds;

    for (int j = 0; j < jobs; ++j) {
        rng::Xoshiro256 scene_rng(1000 + j);
        scenes.push_back(vision::makeSegmentationScene(
            size, size, labels, 3.0, scene_rng));
        const auto &scene = scenes.back();
        models.emplace_back(scene.image, scene.region_means);

        runtime::InferenceJob job;
        job.config = vision::segmentationConfig(scene.image, labels);
        job.singleton = &models.back();
        job.sweeps = sweeps;
        job.seed = 42 + j;
        job.energy_trace_stride = sweeps; // endpoints only

        // Round-robin over the three serving paths.
        switch (j % 3) {
        case 0:
            kinds.push_back("gibbs");
            break;
        case 1: {
            kinds.push_back("anneal");
            mrf::AnnealingSchedule schedule;
            schedule.start_temperature = job.config.temperature;
            schedule.stop_temperature = 1.0;
            schedule.cooling_factor = 0.7;
            schedule.sweeps_per_stage =
                std::max(1, sweeps / 6);
            job.annealing = schedule;
            break;
        }
        default:
            kinds.push_back("rsu");
            job.sampler = runtime::SamplerKind::RsuGibbs;
            break;
        }
        futures.push_back(engine.submit(std::move(job)));
    }

    std::printf("%4s %7s %6s %12s %12s %9s %9s %10s\n", "job",
                "kind", "shrd", "E_initial", "E_final", "sweeps",
                "time(s)", "accuracy");
    double total_seconds = 0.0;
    uint64_t total_updates = 0;
    for (int j = 0; j < jobs; ++j) {
        const auto result = futures[j].get();
        const double accuracy = vision::labelAccuracy(
            result.labels, scenes[j].truth);
        total_seconds += result.elapsed_seconds;
        total_updates += result.work.site_updates;
        std::printf("%4llu %7s %6d %12lld %12lld %9d %9.3f %9.1f%%\n",
                    static_cast<unsigned long long>(result.job_id),
                    kinds[j], result.shards,
                    static_cast<long long>(result.initial_energy),
                    static_cast<long long>(result.final_energy),
                    result.sweeps_run, result.elapsed_seconds,
                    100.0 * accuracy);
    }

    std::printf("\n%d jobs, %llu site updates, %.3f job-seconds "
                "total\n",
                jobs, static_cast<unsigned long long>(total_updates),
                total_seconds);
    return 0;
}
