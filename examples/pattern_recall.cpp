/**
 * @file
 * Associative pattern recall — the paper's "associative memory"
 * MRF application, run through the RSU-G sampler with simulated
 * annealing.
 *
 * A stored binary pattern is observed through a channel that
 * erases 40% of the pixels and flips 5% of the rest; recall
 * reconstructs the pattern from the corrupted observation. Writes
 * recall_{pattern,observed,recalled}.pgm.
 *
 * Usage:
 *   pattern_recall [erase_fraction] [flip_fraction]
 */

#include <cstdio>
#include <cstdlib>

#include "core/rsu_g.h"
#include "mrf/annealing.h"
#include "mrf/estimator.h"
#include "mrf/rsu_gibbs.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/recall.h"

int
main(int argc, char **argv)
{
    using namespace rsu::vision;

    const double erase = argc > 1 ? std::atof(argv[1]) : 0.4;
    const double flip = argc > 2 ? std::atof(argv[2]) : 0.05;
    constexpr int kWidth = 96, kHeight = 72;

    rsu::rng::Xoshiro256 rng(8);
    const auto pattern = makeBinaryPattern(kWidth, kHeight, rng);
    const auto problem =
        corruptPattern(pattern, kWidth, kHeight, erase, flip, rng);

    auto to_image = [&](auto value_of) {
        Image img(kWidth, kHeight, 63);
        for (int i = 0; i < img.size(); ++i)
            img.pixels()[i] = value_of(i);
        return img;
    };
    to_image([&](int i) { return pattern[i] ? 63 : 0; })
        .writePgm("recall_pattern.pgm");
    to_image([&](int i) {
        if (!problem.known[i])
            return 32; // grey = erased
        return problem.observed[i] ? 63 : 0;
    }).writePgm("recall_observed.pgm");

    const RecallModel model(problem);
    const auto config = recallConfig(problem);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    std::printf("Recall: %dx%d pattern, %.0f%% erased, %.0f%% "
                "flipped\n",
                kWidth, kHeight, 100.0 * erase, 100.0 * flip);
    std::printf("Observation accuracy (erased pixels guessed 0): "
                "%.1f%%\n",
                100.0 * labelAccuracy(mrf.labels(), pattern));

    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 21);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);

    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = 6.0;
    schedule.stop_temperature = 1.0;
    schedule.cooling_factor = 0.7;
    schedule.sweeps_per_stage = 8;
    rsu::mrf::anneal(
        mrf, schedule,
        [&](double t) { sampler.setTemperature(t); },
        [&] { sampler.sweep(); });

    const double acc = labelAccuracy(mrf.labels(), pattern);
    std::printf("Recalled accuracy after annealing: %.1f%%\n",
                100.0 * acc);

    to_image([&](int i) { return mrf.labels()[i] ? 63 : 0; })
        .writePgm("recall_recalled.pgm");
    std::printf("wrote recall_pattern.pgm recall_observed.pgm "
                "recall_recalled.pgm\n");
    return 0;
}
