/**
 * @file
 * Image segmentation with an RSU-G — the paper's flagship workload.
 *
 * Generates a synthetic multi-region scene (or loads a PGM given on
 * the command line), derives class means with 1-D k-means, runs
 * marginal-MAP inference with both the software Gibbs reference and
 * the RSU-G device sampler, and writes the results as PGM files.
 *
 * Usage:
 *   segmentation [input.pgm] [labels] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rsu_g.h"
#include "mrf/estimator.h"
#include "mrf/gibbs.h"
#include "mrf/rsu_gibbs.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

int
main(int argc, char **argv)
{
    using namespace rsu::vision;

    const int labels = argc > 2 ? std::atoi(argv[2]) : 5;
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 100;

    Image input;
    std::vector<rsu::core::Label> truth;
    bool have_truth = false;
    if (argc > 1) {
        input = Image::readPgm(argv[1]).requantized(63);
        std::printf("Loaded %s (%dx%d)\n", argv[1], input.width(),
                    input.height());
    } else {
        rsu::rng::Xoshiro256 rng(2016);
        const auto scene =
            makeSegmentationScene(160, 120, labels, 3.0, rng);
        input = scene.image;
        truth = scene.truth;
        have_truth = true;
        std::printf("Synthetic scene: 160x120, %d regions, noise "
                    "sigma 3.0\n",
                    labels);
    }

    const auto means = SegmentationModel::kmeansMeans(input, labels);
    std::printf("k-means class means:");
    for (uint8_t m : means)
        std::printf(" %d", m);
    std::printf("\n");

    SegmentationModel model(input, means);
    const auto config = segmentationConfig(input, labels, 6.0, 6);

    auto solve = [&](bool use_rsu) {
        rsu::mrf::GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        rsu::mrf::MarginalMapEstimator est(mrf, iterations / 5);

        if (use_rsu) {
            rsu::core::RsuG unit(
                rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 7);
            rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
            est.run(iterations, [&] { sampler.sweep(); });
        } else {
            rsu::mrf::GibbsSampler sampler(mrf, 7);
            est.run(iterations, [&] { sampler.sweep(); });
        }
        return est.estimate();
    };

    const auto sw = solve(false);
    const auto rsu_labels = solve(true);

    auto write_result = [&](const std::vector<rsu::core::Label> &ls,
                            const std::string &path) {
        Image out(input.width(), input.height(), 63);
        for (int i = 0; i < out.size(); ++i)
            out.pixels()[i] = means[ls[i] & 0x7];
        out.writePgm(path);
        std::printf("wrote %s\n", path.c_str());
    };

    input.writePgm("segmentation_input.pgm");
    write_result(sw, "segmentation_gibbs.pgm");
    write_result(rsu_labels, "segmentation_rsu.pgm");

    const double agreement = labelAccuracy(sw, rsu_labels);
    std::printf("\nGibbs vs RSU-G label agreement: %.1f%%\n",
                100.0 * agreement);
    if (have_truth) {
        std::printf("Ground-truth accuracy: Gibbs %.1f%%, RSU-G "
                    "%.1f%%\n",
                    100.0 * labelAccuracy(sw, truth),
                    100.0 * labelAccuracy(rsu_labels, truth));
    }
    return 0;
}
