/**
 * @file
 * Image segmentation — the paper's flagship workload, served
 * through the InferenceEngine.
 *
 * Builds a segmentation InferenceProblem (a synthetic multi-region
 * scene, or a PGM given on the command line with k-means class
 * means), submits it as an engine job on the fast Table path, and
 * writes the input and the recovered labelling as PGM files. The
 * problem's quality hook reports ground-truth accuracy for
 * synthetic scenes.
 *
 * Usage:
 *   segmentation [input.pgm|-] [labels] [iterations]
 *                [--reference] [--check-quality=X] [--anneal]
 *                [--path=table|reference|simd] [--shards=N]
 *                [--seed=N]
 */

#include <cstdio>
#include <vector>

#include "vision/image.h"
#include "workload/factories.h"
#include "workload_runner.h"

int
main(int argc, char **argv)
{
    using namespace rsu;

    const auto args = examples::parseRunnerArgs(argc, argv);
    const int labels = args.positionalInt(1, 5);
    const int iterations = args.positionalInt(2, 100);

    workload::SceneOptions scene;
    scene.labels = labels;

    workload::InferenceProblem problem;
    if (!args.positionals.empty() && args.positionals[0] != "-") {
        const auto image =
            vision::Image::readPgm(args.positionals[0])
                .requantized(63);
        std::printf("Loaded %s (%dx%d)\n",
                    args.positionals[0].c_str(), image.width(),
                    image.height());
        problem = workload::makeSegmentation(image, scene);
    } else {
        problem = workload::makeSegmentation(scene);
    }

    std::vector<mrf::Label> result;
    const int exit_code =
        examples::runWorkload(problem, iterations, args, &result);

    problem.observation.writePgm("segmentation_input.pgm");
    problem.render(result).writePgm("segmentation_labels.pgm");
    std::printf("wrote segmentation_input.pgm "
                "segmentation_labels.pgm\n");
    return exit_code;
}
