/**
 * @file
 * RET network designer: from chromophore photophysics to RSU
 * device parameters.
 *
 * The emulation layers above (RetCircuit, RsuG) take an abstract
 * "base rate per unit intensity"; a real RSU designer starts from
 * dyes and DNA-scaffold geometry. This example walks that path with
 * the Förster module:
 *
 *   1. pick a donor/acceptor pair and inspect R0;
 *   2. sweep scaffold spacing -> transfer rate and efficiency;
 *   3. build a 3-stage cascade, check its detection efficiency and
 *      emission-time distribution against the CTMC solver;
 *   4. derive the RetCircuit base rate the cascade implements and
 *      instantiate an RSU-G on it, verifying the Gibbs race still
 *      tracks the softmax.
 */

#include <cmath>
#include <cstdio>

#include "core/rsu_g.h"
#include "ret/forster.h"
#include "rng/stats.h"
#include "rng/xoshiro256.h"

int
main()
{
    using namespace rsu::ret;

    Chromophore donor;
    donor.emission_peak_nm = 570;
    donor.excitation_peak_nm = 550;
    donor.lifetime_ns = 3.0;
    Chromophore relay = donor;
    relay.excitation_peak_nm = 565;
    relay.emission_peak_nm = 610;
    Chromophore acceptor;
    acceptor.excitation_peak_nm = 605;
    acceptor.emission_peak_nm = 670;
    acceptor.lifetime_ns = 2.0;
    acceptor.quantum_yield = 0.9;

    std::printf("=== 1. Pair characterization ===\n");
    std::printf("donor->relay    R0 = %.2f nm\n",
                forsterRadius(donor, relay));
    std::printf("relay->acceptor R0 = %.2f nm\n",
                forsterRadius(relay, acceptor));

    std::printf("\n=== 2. Scaffold spacing sweep (donor->relay) "
                "===\n");
    std::printf("%12s %14s %14s\n", "r (nm)", "rate (1/ns)",
                "efficiency");
    for (double r : {3.0, 4.0, 5.0, 6.0, 8.0}) {
        std::printf("%12.1f %14.4f %14.3f\n", r,
                    transferRate(donor, relay, r),
                    transferEfficiency(donor, relay, r));
    }

    std::printf("\n=== 3. Three-stage cascade at 4.5 nm spacing "
                "===\n");
    const std::vector<Chromophore> chain = {donor, relay, acceptor};
    const std::vector<double> spacings = {4.5, 4.5};
    const double eff = cascadeEfficiency(chain, spacings);
    const auto network = buildCascadeNetwork(chain, spacings);
    std::printf("analytic detection efficiency: %.3f\n", eff);
    // The *unconditional* mean absorption time is infinite (dark
    // decay paths never emit); the designer cares about the mean
    // conditional on emission, estimated from the CTMC samples.
    rsu::rng::Xoshiro256 rng(3);
    rsu::rng::RunningMoments bright;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double t = network.sampleTtf(rng);
        if (std::isfinite(t))
            bright.add(t);
    }
    std::printf("sampled: bright fraction %.3f (matches analytic), "
                "mean emission time %.3f ns\n",
                bright.count() / double(kDraws), bright.mean());

    std::printf("\n=== 4. Device parameters for the RSU emulation "
                "===\n");
    // An ensemble of N cascades under unit excitation intensity
    // produces detectable photons at roughly
    // N * efficiency / mean-emission-time. The RSU-G's default
    // tuning wants a 1 ns mean TTF at max LED intensity, i.e. a
    // base rate of 1/maxIntensity per unit intensity; meet it by
    // sizing the ensemble (too slow) or attenuating the excitation
    // coupling (too fast). Overshooting instead would coarsen the
    // TTF quantization (see bench_ablation_precision's clock
    // sweep).
    const double per_network_rate = eff / bright.mean();
    const rsu::ret::QdLedBank bank;
    const double target_rate = 1.0 / bank.maxIntensity();
    std::printf("per-cascade bright rate: %.4f /ns; target base "
                "rate %.4f /ns -> ",
                per_network_rate, target_rate);
    if (per_network_rate >= target_rate) {
        std::printf("one cascade suffices; attenuate excitation "
                    "coupling by %.1fx.\n",
                    per_network_rate / target_rate);
    } else {
        std::printf("ensemble of %.0f cascades.\n",
                    std::ceil(target_rate / per_network_rate));
    }

    rsu::core::RsuGConfig config;
    config.circuit.base_rate_per_ns = target_rate;
    rsu::core::RsuG unit(config, 7);
    unit.initialize(4, 12.0);

    rsu::core::EnergyInputs in;
    in.neighbors = {0, 1, 1, 2};
    in.data1 = 20;
    uint8_t data2[4] = {20, 26, 14, 38};
    const auto race = unit.raceDistribution(in, data2);
    std::printf("\nGibbs race on the physically derived device "
                "(4 labels):\n");
    double z = 0.0;
    double soft[4];
    for (int i = 0; i < 4; ++i) {
        soft[i] = std::exp(
            -static_cast<double>(unit.labelEnergy(
                static_cast<rsu::core::Label>(i), in, data2[i])) /
            12.0);
        z += soft[i];
    }
    for (int i = 0; i < 4; ++i) {
        std::printf("  label %d: race %.3f vs softmax %.3f\n", i,
                    race[i], soft[i] / z);
    }
    std::printf("\nThe physics layer changes only the absolute "
                "time scale; the race probabilities — and hence "
                "inference — depend on LED-programmed rate ratios, "
                "which is why the emulation is faithful without "
                "molecular detail.\n");
    return 0;
}
