/**
 * @file
 * Stereo vision matching — the paper's third workload
 * (Tappen-Freeman MRF stereo, M = 5 disparities), served through
 * the InferenceEngine.
 *
 * Builds a stereo InferenceProblem over a synthetic rectified pair
 * with fronto-parallel surfaces, submits it as an engine job, and
 * reports disparity accuracy against ground truth through the
 * problem's quality hook.
 *
 * Usage:
 *   stereo [width] [height] [iterations]
 *          [--reference] [--check-quality=X] [--anneal]
 *          [--path=table|reference|simd] [--shards=N] [--seed=N]
 */

#include <cstdio>
#include <vector>

#include "workload/factories.h"
#include "workload_runner.h"

int
main(int argc, char **argv)
{
    using namespace rsu;

    const auto args = examples::parseRunnerArgs(argc, argv);

    workload::SceneOptions scene;
    scene.width = args.positionalInt(0, 128);
    scene.height = args.positionalInt(1, 96);
    const int iterations = args.positionalInt(2, 80);

    const auto problem = workload::makeStereo(scene);

    std::vector<mrf::Label> disparity;
    const int exit_code =
        examples::runWorkload(problem, iterations, args,
                              &disparity);

    problem.observation.writePgm("stereo_left.pgm");
    problem.render(disparity).writePgm("stereo_disparity.pgm");
    std::printf("wrote stereo_left.pgm stereo_disparity.pgm\n");
    return exit_code;
}
