/**
 * @file
 * Stereo vision matching with an RSU-G — the paper's third
 * workload (Tappen-Freeman MRF stereo, M = 5 disparities).
 *
 * Generates a rectified synthetic pair with fronto-parallel
 * surfaces, estimates the disparity map by MRF-MCMC through the
 * RSU instruction interface (exercising the ISA path end to end),
 * and reports accuracy against ground truth.
 *
 * Usage:
 *   stereo [width] [height] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "core/rsu_g.h"
#include "mrf/estimator.h"
#include "mrf/rsu_gibbs.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/stereo.h"
#include "vision/synthetic.h"

int
main(int argc, char **argv)
{
    using namespace rsu::vision;

    const int width = argc > 1 ? std::atoi(argv[1]) : 128;
    const int height = argc > 2 ? std::atoi(argv[2]) : 96;
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 80;
    constexpr int kDisparities = 5;

    rsu::rng::Xoshiro256 rng(123);
    const auto scene =
        makeStereoScene(width, height, kDisparities, 1.0, rng);
    scene.left.writePgm("stereo_left.pgm");
    scene.right.writePgm("stereo_right.pgm");

    StereoModel model(scene.left, scene.right, kDisparities);
    const auto config =
        stereoConfig(scene.left, kDisparities, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    std::printf("Stereo matching: %dx%d, %d disparities, RSU-G1 "
                "driven through the RSU instruction interface\n",
                width, height, kDisparities);

    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 13);
    rsu::mrf::RsuGibbsSampler sampler(
        mrf, unit, rsu::mrf::Schedule::Checkerboard,
        rsu::mrf::RsuGibbsSampler::Mode::Isa);

    rsu::mrf::MarginalMapEstimator est(mrf, iterations / 5);
    est.run(iterations, [&] { sampler.sweep(); });
    const auto disparity = est.estimate();

    std::printf("Accuracy vs ground truth: %.1f%%\n",
                100.0 * labelAccuracy(disparity, scene.truth));
    std::printf("Dynamic RSU instructions issued: %llu "
                "(%.1f per pixel-update)\n",
                static_cast<unsigned long long>(
                    sampler.rsuInstructions()),
                static_cast<double>(sampler.rsuInstructions()) /
                    (static_cast<double>(width) * height *
                     iterations));

    Image disp_img(width, height, 63);
    for (int i = 0; i < width * height; ++i)
        disp_img.pixels()[i] =
            static_cast<uint8_t>((disparity[i] & 0x7) * 12);
    disp_img.writePgm("stereo_disparity.pgm");
    std::printf("wrote stereo_left.pgm stereo_right.pgm "
                "stereo_disparity.pgm\n");
    return 0;
}
