/**
 * @file
 * Edge-case and error-path coverage across modules: degenerate
 * sizes, boundary parameters, and defensive-programming contracts
 * not exercised by the main suites.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rsu.h"

namespace {

TEST(EdgeRng, BelowOneIsAlwaysZero)
{
    rsu::rng::Xoshiro256 rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(EdgeRng, SingleOutcomeSamplersAreDeterministic)
{
    rsu::rng::Xoshiro256 rng(2);
    const rsu::rng::CdfSampler cdf({3.0});
    const rsu::rng::AliasSampler alias({3.0});
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(cdf.sample(rng), 0);
        EXPECT_EQ(alias.sample(rng), 0);
    }
    EXPECT_DOUBLE_EQ(cdf.probability(0), 1.0);
    EXPECT_DOUBLE_EQ(alias.probability(0), 1.0);
}

TEST(EdgeRng, RaceWithOneClockAlwaysPicksIt)
{
    rsu::rng::Xoshiro256 rng(3);
    const double rate = 2.0;
    int winner = -1;
    const double t =
        rsu::rng::sampleExponentialRace(rng, &rate, 1, &winner);
    EXPECT_EQ(winner, 0);
    EXPECT_GT(t, 0.0);
}

TEST(EdgeRet, ExplicitBaseRateOverridesDerivation)
{
    rsu::ret::RetCircuitConfig config;
    config.base_rate_per_ns = 0.25;
    rsu::ret::RetCircuit circ(config);
    EXPECT_DOUBLE_EQ(circ.network().effectiveRate(), 0.25);
    // Default derivation: 1 / max intensity.
    rsu::ret::RetCircuit def;
    EXPECT_NEAR(def.network().effectiveRate() *
                    def.leds().maxIntensity(),
                1.0, 1e-9);
}

TEST(EdgeRet, InvalidConfigsThrow)
{
    rsu::ret::RetCircuitConfig bad;
    bad.quiescence_cycles = -1;
    EXPECT_THROW(rsu::ret::RetCircuit{bad}, std::invalid_argument);
    EXPECT_THROW(rsu::ret::TtfTimer{0.0}, std::invalid_argument);
    EXPECT_THROW(rsu::ret::ExponentialNetwork{0.0},
                 std::invalid_argument);
}

TEST(EdgeMrf, SingleSiteModelWorks)
{
    class Flat : public rsu::mrf::SingletonModel
    {
      public:
        uint8_t data1(int, int) const override { return 10; }
        uint8_t
        data2(int, int, rsu::mrf::Label l) const override
        {
            return l ? 30 : 10;
        }
    };
    Flat flat;
    rsu::mrf::MrfConfig config;
    config.width = 1;
    config.height = 1;
    config.num_labels = 2;
    config.temperature = 8.0;
    rsu::mrf::GridMrf mrf(config, flat);
    // No neighbours at all: the conditional is pure singleton.
    const auto in = mrf.inputsAt(0, 0);
    for (bool v : in.neighbor_valid)
        EXPECT_FALSE(v);
    const auto dist = mrf.conditionalDistribution(0, 0);
    EXPECT_GT(dist[0], dist[1]);

    rsu::mrf::GibbsSampler sampler(mrf, 7);
    sampler.run(10); // must not crash
    const rsu::mrf::ExactInference exact(mrf);
    EXPECT_NEAR(exact.marginal(0, 0)[0], dist[0], 1e-9);
}

TEST(EdgeMrf, EstimatorBeforeRunIsEmpty)
{
    class Flat : public rsu::mrf::SingletonModel
    {
      public:
        uint8_t data1(int, int) const override { return 0; }
        uint8_t
        data2(int, int, rsu::mrf::Label) const override
        {
            return 0;
        }
    };
    Flat flat;
    rsu::mrf::MrfConfig config;
    config.width = 2;
    config.height = 2;
    config.num_labels = 2;
    rsu::mrf::GridMrf mrf(config, flat);
    rsu::mrf::MarginalMapEstimator est(mrf, 0);
    EXPECT_EQ(est.retained(), 0);
    const auto marginal = est.empiricalMarginal(0, 0);
    EXPECT_DOUBLE_EQ(marginal[0], 0.0);
    EXPECT_THROW(rsu::mrf::MarginalMapEstimator(mrf, -1),
                 std::invalid_argument);
}

TEST(EdgeMrf, AnnealRestoresTheBestLabelling)
{
    // A schedule that ends hot would leave a worse state; anneal()
    // must restore the best-seen labelling regardless.
    rsu::rng::Xoshiro256 rng(9);
    const auto scene =
        rsu::vision::makeSegmentationScene(16, 12, 3, 2.0, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 3, 4.0, 4);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    rsu::mrf::GibbsSampler sampler(mrf, 3);

    // "Anti-annealing": heat up; the best state is the early one.
    rsu::mrf::AnnealingSchedule heat;
    heat.start_temperature = 40.0;
    heat.stop_temperature = 30.0;
    heat.cooling_factor = 0.9;
    heat.sweeps_per_stage = 5;
    const int64_t best = rsu::mrf::anneal(
        mrf, heat, [&](double t) { mrf.setTemperature(t); },
        [&] { sampler.sweep(); });
    EXPECT_EQ(best, mrf.totalEnergy());
}

TEST(EdgeVision, RequantizeUpscalesToo)
{
    rsu::vision::Image img(2, 1, 63);
    img.set(0, 0, 0);
    img.set(1, 0, 63);
    const auto up = img.requantized(255);
    EXPECT_EQ(up.at(0, 0), 0);
    EXPECT_EQ(up.at(1, 0), 255);
}

TEST(EdgeVision, RecallModelValidatesStrength)
{
    rsu::rng::Xoshiro256 rng(4);
    const auto pattern = rsu::vision::makeBinaryPattern(8, 8, rng);
    const auto problem =
        rsu::vision::corruptPattern(pattern, 8, 8, 0.2, 0.1, rng);
    EXPECT_THROW(rsu::vision::RecallModel(problem, 0),
                 std::invalid_argument);
    EXPECT_THROW(rsu::vision::RecallModel(problem, 64),
                 std::invalid_argument);
    EXPECT_THROW(rsu::vision::corruptPattern(pattern, 8, 8, 1.5,
                                             0.0, rng),
                 std::invalid_argument);
    EXPECT_THROW(rsu::vision::corruptPattern(pattern, 4, 4, 0.1,
                                             0.0, rng),
                 std::invalid_argument);
}

TEST(EdgeVision, DenoiseLevelsAreMonotone)
{
    rsu::vision::Image img(2, 2, 63, 30);
    const rsu::vision::DenoiseModel model(img, 8);
    for (int l = 1; l < 8; ++l) {
        EXPECT_GT(model.levelValue(static_cast<rsu::core::Label>(l)),
                  model.levelValue(
                      static_cast<rsu::core::Label>(l - 1)));
    }
}

TEST(EdgeArch, SpeedupOfAVariantOverItselfIsOne)
{
    const rsu::arch::GpuModel model;
    const auto w = rsu::arch::segmentationWorkload(64, 64);
    for (auto v :
         {rsu::arch::GpuVariant::Baseline,
          rsu::arch::GpuVariant::RsuG4}) {
        EXPECT_DOUBLE_EQ(model.speedup(w, v, v), 1.0);
    }
}

TEST(EdgeArch, WorkloadNamesAreStable)
{
    EXPECT_EQ(rsu::arch::segmentationWorkload(1, 1).name,
              "image-segmentation");
    EXPECT_EQ(rsu::arch::motionWorkload(1, 1).name,
              "dense-motion-estimation");
    EXPECT_EQ(rsu::arch::stereoWorkload(1, 1).name,
              "stereo-vision");
}

TEST(EdgeProto, AchievedRateChannelSelector)
{
    rsu::proto::PrototypeConfig config;
    config.calib_sigma_low = 0.0;
    config.calib_sigma_high = 0.0;
    config.saturation = 0.0;
    rsu::proto::PrototypeRsuG2 proto(config, 1);
    proto.configure(4.0, 1.0);
    EXPECT_GT(proto.achievedRate(0), proto.achievedRate(1));
    // Any non-zero channel index means channel 1.
    EXPECT_DOUBLE_EQ(proto.achievedRate(5), proto.achievedRate(1));
}

TEST(EdgeCore, RsuGHandlesSingleLabelModels)
{
    // M = 1 is degenerate but legal: the only candidate always
    // wins (its TTF may even saturate).
    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 5);
    unit.initialize(1, 16.0);
    rsu::core::EnergyInputs in;
    in.neighbors = {0, 0, 0, 0};
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(unit.sample(in), 0);
    const auto dist = unit.raceDistribution(in);
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_NEAR(dist[0], 1.0, 1e-9);
}

TEST(EdgeCore, IntensityMapCustomSizes)
{
    rsu::core::IntensityMap tiny(32);
    EXPECT_EQ(tiny.entries(), 32);
    EXPECT_EQ(tiny.words(), 2);
    EXPECT_EQ(tiny.sizeBytes(), 16);
    tiny.build(rsu::ret::QdLedBank(), 8.0);
    EXPECT_EQ(tiny.lookup(31), tiny.lookup(1000)); // clamps
}

} // namespace
