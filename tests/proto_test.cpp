/**
 * @file
 * Unit tests for the macro-scale RSU-G2 prototype emulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mrf/grid_mrf.h"
#include "proto/prototype.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::proto;

PrototypeConfig
noiselessConfig()
{
    PrototypeConfig config;
    config.calib_sigma_low = 0.0;
    config.calib_sigma_high = 0.0;
    config.saturation = 0.0;
    return config;
}

TEST(Prototype, RejectsBadParameters)
{
    PrototypeConfig bad;
    bad.timer_resolution_ns = 0.0;
    EXPECT_THROW(PrototypeRsuG2(bad, 1), std::invalid_argument);
    PrototypeRsuG2 proto(noiselessConfig(), 1);
    EXPECT_THROW(proto.configure(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(proto.measureRatio(0), std::invalid_argument);
}

TEST(Prototype, NoiselessChannelsAchieveCommandedRates)
{
    PrototypeRsuG2 proto(noiselessConfig(), 2);
    proto.configure(8.0, 2.0);
    EXPECT_NEAR(proto.achievedRate(0) / proto.achievedRate(1), 4.0,
                1e-9);
}

TEST(Prototype, ShotsFollowTheCommandedRatio)
{
    PrototypeRsuG2 proto(noiselessConfig(), 3);
    proto.configure(3.0, 1.0);
    const double measured = proto.measureRatio(120000);
    EXPECT_NEAR(measured, 3.0, 0.15);
    EXPECT_GE(proto.shots(), 120000u);
}

TEST(Prototype, SaturationCompressesHighRatios)
{
    PrototypeConfig config = noiselessConfig();
    config.saturation = 0.002;
    PrototypeRsuG2 proto(config, 4);
    proto.configure(200.0, 1.0);
    const double r =
        proto.achievedRate(0) / proto.achievedRate(1);
    EXPECT_LT(r, 200.0);
    EXPECT_GT(r, 100.0);
}

TEST(Prototype, RatioSweepErrorBandsMatchPaper)
{
    // Paper section 7: within 10 % below ratio 30, ~24 % above.
    const PrototypeConfig config; // defaults carry the calibration
    const std::vector<double> low = {1, 2, 5, 10, 20, 28};
    const std::vector<double> high = {40, 80, 160, 255};

    const auto low_res = ratioSweep(config, 42, low, 20000, 24);
    double low_err = 0.0;
    for (const auto &m : low_res)
        low_err += m.rel_error;
    low_err /= low_res.size();
    EXPECT_LT(low_err, 0.12);
    EXPECT_GT(low_err, 0.03); // the bench is NOT perfect

    const auto high_res = ratioSweep(config, 43, high, 20000, 24);
    double high_err = 0.0;
    for (const auto &m : high_res)
        high_err += m.rel_error;
    high_err /= high_res.size();
    EXPECT_GT(high_err, low_err);
    EXPECT_LT(high_err, 0.35);
    EXPECT_GT(high_err, 0.12);
}

TEST(Prototype, TimerRangeGovernsLostShots)
{
    // Shrinking the FPGA timer window forces re-fires on slow
    // channels; the measured ratio must still come out right, at
    // the cost of more shots.
    PrototypeConfig tight = noiselessConfig();
    tight.timer_range_ticks = 64; // 16 ns window at 250 ps
    PrototypeRsuG2 proto(tight, 11);
    proto.configure(2.0, 1.0);
    const int trials = 40000;
    const double measured = proto.measureRatio(trials);
    EXPECT_NEAR(measured, 2.0, 0.12);
    EXPECT_GT(proto.shots(),
              static_cast<uint64_t>(trials) * 11 / 10);
}

TEST(Prototype, GibbsRequiresTwoLabels)
{
    rsu::rng::Xoshiro256 rng(5);
    const auto scene =
        rsu::vision::makeSegmentationScene(10, 8, 3, 2.0, rng);
    rsu::vision::SegmentationModel model(
        scene.image, {scene.region_means[0], scene.region_means[1],
                      scene.region_means[2]});
    auto config = rsu::vision::segmentationConfig(scene.image, 3);
    rsu::mrf::GridMrf mrf(config, model);
    PrototypeRsuG2 proto(noiselessConfig(), 6);
    EXPECT_THROW(PrototypeGibbsSampler(mrf, proto),
                 std::invalid_argument);
}

TEST(Prototype, SegmentsATwoRegionImage)
{
    rsu::rng::Xoshiro256 rng(7);
    const auto scene =
        rsu::vision::makeSegmentationScene(24, 20, 2, 2.5, rng);
    rsu::vision::SegmentationModel model(
        scene.image,
        {scene.region_means[0], scene.region_means[1]});
    auto config =
        rsu::vision::segmentationConfig(scene.image, 2, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);

    PrototypeRsuG2 proto(PrototypeConfig{}, 8);
    PrototypeGibbsSampler sampler(mrf, proto);
    sampler.run(10); // the paper's Figure 7 uses 10 iterations

    const double acc =
        rsu::vision::labelAccuracy(mrf.labels(), scene.truth);
    EXPECT_GT(acc, 0.9);
}

TEST(Prototype, TimingAccountsBenchDelays)
{
    rsu::rng::Xoshiro256 rng(9);
    const auto scene =
        rsu::vision::makeSegmentationScene(10, 10, 2, 2.0, rng);
    rsu::vision::SegmentationModel model(
        scene.image,
        {scene.region_means[0], scene.region_means[1]});
    auto config = rsu::vision::segmentationConfig(scene.image, 2);
    rsu::mrf::GridMrf mrf(config, model);

    PrototypeRsuG2 proto(PrototypeConfig{}, 10);
    PrototypeGibbsSampler sampler(mrf, proto);
    sampler.run(3);

    const PrototypeTiming t = sampler.timing();
    // 3 iterations x 100 pixels x 2 us plus 3 x 60 s.
    EXPECT_NEAR(t.sampling_s, 300 * 2e-6, 1e-9);
    EXPECT_NEAR(t.interface_s, 180.0, 1e-9);
    EXPECT_NEAR(t.totalS(), 180.0006, 1e-6);
    EXPECT_EQ(sampler.iterations(), 3u);
}

} // namespace
