/**
 * @file
 * Tests for the extension layer: the generic RSU family (RSU-E,
 * RSU-B), simulated annealing, associative pattern recall, and the
 * functional accelerator simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "arch/accel_sim.h"
#include "core/rsu_units.h"
#include "mrf/annealing.h"
#include "mrf/estimator.h"
#include "mrf/gibbs.h"
#include "mrf/rsu_gibbs.h"
#include "rng/stats.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/recall.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::core;

TEST(RsuExponential, AchievedRateIsNearestLadderPoint)
{
    RsuExponential rsu;
    EXPECT_GT(rsu.maxRate(), rsu.minRate());
    const double achieved = rsu.setRate(0.5);
    EXPECT_NEAR(achieved, 0.5, 0.5 * 0.35); // within a ladder step
    EXPECT_DOUBLE_EQ(achieved, rsu.achievedRate());
    EXPECT_THROW(rsu.setRate(0.0), std::invalid_argument);
}

TEST(RsuExponential, RateClampsAtLadderEdges)
{
    RsuExponential rsu;
    EXPECT_DOUBLE_EQ(rsu.setRate(1e-6), rsu.minRate());
    EXPECT_DOUBLE_EQ(rsu.setRate(1e6), rsu.maxRate());
}

TEST(RsuExponential, SamplesMatchTheOutputDistribution)
{
    RsuExponential rsu(rsu::ret::RetCircuitConfig{}, 77);
    rsu.setRate(0.4);
    const auto pmf = rsu.outputDistribution();
    ASSERT_EQ(pmf.size(), 256u);
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0,
                1e-9);

    // Chi-square the low ticks, pool the tail.
    constexpr int kBins = 20;
    std::vector<uint64_t> counts(kBins + 1, 0);
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        counts[std::min<int>(rsu.sample(), kBins)] += 1;
    std::vector<double> expected(kBins + 1, 0.0);
    double tail = 1.0;
    for (int q = 0; q < kBins; ++q) {
        expected[q] = pmf[q];
        tail -= pmf[q];
    }
    expected[kBins] = tail;
    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(kBins, 0.001));
    EXPECT_EQ(rsu.samples(), static_cast<uint64_t>(kDraws));
}

TEST(RsuExponential, MeanScalesInverselyWithRate)
{
    RsuExponential rsu(rsu::ret::RetCircuitConfig{}, 3);
    rsu::rng::RunningMoments slow, fast;
    rsu.setRate(0.25);
    for (int i = 0; i < 40000; ++i)
        slow.add(rsu.sample() * rsu.tickNs());
    const double slow_rate = rsu.achievedRate();
    rsu.setRate(1.0);
    for (int i = 0; i < 40000; ++i)
        fast.add(rsu.sample() * rsu.tickNs());
    const double fast_rate = rsu.achievedRate();
    // Quantized means approximate 1/rate - tick/2 bias corrected
    // loosely; check the ratio instead of absolutes.
    EXPECT_NEAR(slow.mean() / fast.mean(),
                fast_rate / slow_rate, 0.2);
}

TEST(RsuBernoulli, AchievedProbabilityTracksRequest)
{
    RsuBernoulli rsu;
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        const double achieved = rsu.setProbability(p);
        EXPECT_NEAR(achieved, p, 0.06) << "p = " << p;
    }
    EXPECT_THROW(rsu.setProbability(0.0), std::invalid_argument);
    EXPECT_THROW(rsu.setProbability(1.0), std::invalid_argument);
}

TEST(RsuBernoulli, EmpiricalBiasMatchesTheOracle)
{
    RsuBernoulli rsu(rsu::ret::RetCircuitConfig{}, 99);
    rsu.setProbability(0.3);
    const double oracle = rsu.achievedProbability();
    int ones = 0;
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i)
        ones += rsu.sample();
    EXPECT_NEAR(ones / double(kDraws), oracle, 0.01);
}

TEST(Wear, UniformAgingPreservesRaceRatios)
{
    // Photobleaching scales every channel's rate equally, so the
    // race distribution drifts only through the TTF register's
    // absolute-time effects — mild for moderate aging.
    RsuGConfig config;
    config.circuit.wear.bleach_per_cycle = 1e-6;
    RsuG aged(config, 1);
    aged.initialize(4, 16.0);
    for (int lane = 0; lane < 1; ++lane) {
        for (int rep = 0; rep < 4; ++rep)
            aged.circuit(lane, rep).network().age(200000);
    }
    RsuG fresh(RsuGConfig{}, 1);
    fresh.initialize(4, 16.0);

    EnergyInputs in;
    in.neighbors = {0, 1, 2, 3};
    in.data1 = 30;
    uint8_t data2[4] = {28, 33, 20, 45};
    const auto a = aged.raceDistribution(in, data2);
    const auto f = fresh.raceDistribution(in, data2);
    double tv = 0.0;
    for (int i = 0; i < 4; ++i)
        tv += std::abs(a[i] - f[i]);
    EXPECT_LT(0.5 * tv, 0.02);
    EXPECT_LT(aged.circuit(0, 0).network().survivingFraction(),
              1.0);
    // refresh() restores the fresh distribution exactly.
    for (int rep = 0; rep < 4; ++rep)
        aged.circuit(0, rep).network().refresh();
    const auto r = aged.raceDistribution(in, data2);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(r[i], f[i], 1e-12);
}

TEST(Annealing, ScheduleGeneratesDecreasingStages)
{
    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = 16.0;
    schedule.stop_temperature = 2.0;
    schedule.cooling_factor = 0.5;
    const auto stages = schedule.temperatures();
    ASSERT_GE(stages.size(), 4u);
    for (size_t i = 1; i < stages.size(); ++i)
        EXPECT_LT(stages[i], stages[i - 1]);
    EXPECT_DOUBLE_EQ(stages.front(), 16.0);
    EXPECT_DOUBLE_EQ(stages.back(), 2.0);

    rsu::mrf::AnnealingSchedule bad = schedule;
    bad.cooling_factor = 1.5;
    EXPECT_THROW(bad.temperatures(), std::invalid_argument);
    bad = schedule;
    bad.stop_temperature = 32.0;
    EXPECT_THROW(bad.temperatures(), std::invalid_argument);

    // Non-finite parameters must be rejected too: an infinite start
    // would cool forever, and NaN passes every range comparison.
    bad = schedule;
    bad.start_temperature =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(bad.temperatures(), std::invalid_argument);
    bad = schedule;
    bad.stop_temperature =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(bad.temperatures(), std::invalid_argument);
    bad = schedule;
    bad.cooling_factor =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(bad.temperatures(), std::invalid_argument);
}

TEST(Annealing, ReachesLowerEnergyThanFixedTemperature)
{
    rsu::rng::Xoshiro256 rng(41);
    const auto scene =
        rsu::vision::makeSegmentationScene(32, 28, 4, 3.0, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 12.0, 6);

    // Fixed high temperature.
    rsu::mrf::GridMrf fixed(config, model);
    fixed.initializeMaximumLikelihood();
    rsu::mrf::GibbsSampler fixed_sampler(fixed, 5);
    fixed_sampler.run(40);

    // Annealed from the same start.
    rsu::mrf::GridMrf cooled(config, model);
    cooled.initializeMaximumLikelihood();
    rsu::mrf::GibbsSampler sampler(cooled, 5);
    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = 12.0;
    schedule.stop_temperature = 1.5;
    schedule.cooling_factor = 0.7;
    schedule.sweeps_per_stage = 6;
    const int64_t best = rsu::mrf::anneal(
        cooled, schedule,
        [&](double t) { cooled.setTemperature(t); },
        [&] { sampler.sweep(); });

    EXPECT_LT(best, fixed.totalEnergy());
    EXPECT_EQ(best, cooled.totalEnergy());
}

TEST(Annealing, RsuSamplerRebuildsTheLutPerStage)
{
    rsu::rng::Xoshiro256 rng(43);
    const auto scene =
        rsu::vision::makeSegmentationScene(24, 20, 3, 3.0, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 3, 12.0, 6);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 11);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);

    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = 12.0;
    schedule.stop_temperature = 2.0;
    schedule.cooling_factor = 0.6;
    schedule.sweeps_per_stage = 4;
    rsu::mrf::anneal(
        mrf, schedule,
        [&](double t) { sampler.setTemperature(t); },
        [&] { sampler.sweep(); });

    EXPECT_DOUBLE_EQ(unit.temperature(), 2.0);
    EXPECT_GT(rsu::vision::labelAccuracy(mrf.labels(), scene.truth),
              0.85);
}

TEST(Recall, CorruptionRespectsFractions)
{
    rsu::rng::Xoshiro256 rng(3);
    const auto pattern = rsu::vision::makeBinaryPattern(40, 30, rng);
    const auto problem = rsu::vision::corruptPattern(
        pattern, 40, 30, 0.3, 0.1, rng);

    int erased = 0, flipped = 0, kept = 0;
    for (size_t i = 0; i < pattern.size(); ++i) {
        if (!problem.known[i]) {
            ++erased;
        } else if (problem.observed[i] != (pattern[i] & 1)) {
            ++flipped;
        } else {
            ++kept;
        }
    }
    EXPECT_NEAR(erased / 1200.0, 0.3, 0.05);
    EXPECT_NEAR(flipped / (1200.0 * 0.7), 0.1, 0.04);
    EXPECT_GT(kept, 700);
}

TEST(Recall, ErasedPixelsCarryNoEvidence)
{
    rsu::rng::Xoshiro256 rng(5);
    const auto pattern = rsu::vision::makeBinaryPattern(10, 10, rng);
    auto problem =
        rsu::vision::corruptPattern(pattern, 10, 10, 1.0, 0.0, rng);
    const rsu::vision::RecallModel model(problem);
    for (int l = 0; l < 2; ++l)
        EXPECT_EQ(model.data1(3, 3),
                  model.data2(3, 3, static_cast<Label>(l)));
}

TEST(Recall, CompletesACorruptedPattern)
{
    rsu::rng::Xoshiro256 rng(7);
    const auto pattern = rsu::vision::makeBinaryPattern(48, 40, rng);
    const auto problem = rsu::vision::corruptPattern(
        pattern, 48, 40, 0.4, 0.05, rng);

    const rsu::vision::RecallModel model(problem);
    const auto config = rsu::vision::recallConfig(problem);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    const double before =
        rsu::vision::labelAccuracy(mrf.labels(), pattern);

    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf), 13);
    rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
    rsu::mrf::MarginalMapEstimator est(mrf, 10);
    est.run(50, [&] { sampler.sweep(); });

    const double after =
        rsu::vision::labelAccuracy(est.estimate(), pattern);
    EXPECT_GT(after, 0.93);
    EXPECT_GT(after, before);
}

TEST(AcceleratorSim, MatchesSingleUnitStatistics)
{
    rsu::rng::Xoshiro256 rng(11);
    const auto scene =
        rsu::vision::makeSegmentationScene(32, 24, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    rsu::arch::AcceleratorSimConfig sim_config;
    sim_config.num_units = 16;
    rsu::arch::AcceleratorSim sim(mrf, sim_config);
    sim.run(40);

    EXPECT_GT(rsu::vision::labelAccuracy(mrf.labels(), scene.truth),
              0.9);
}

TEST(AcceleratorSim, CriticalPathShrinksWithUnits)
{
    rsu::rng::Xoshiro256 rng(13);
    const auto scene =
        rsu::vision::makeSegmentationScene(32, 24, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 6.0, 6);

    uint64_t prev_cycles = 0;
    for (int units : {1, 4, 16}) {
        rsu::mrf::GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        rsu::arch::AcceleratorSimConfig sim_config;
        sim_config.num_units = units;
        rsu::arch::AcceleratorSim sim(mrf, sim_config);
        const auto stats = sim.sweep();
        if (prev_cycles != 0) {
            EXPECT_LT(stats.critical_cycles, prev_cycles);
            // Near-linear scaling: within 30% of ideal.
            EXPECT_NEAR(static_cast<double>(prev_cycles) /
                            stats.critical_cycles,
                        4.0, 1.2);
        }
        prev_cycles = stats.critical_cycles;
        EXPECT_GT(sim.lastUtilization(), 0.9);
    }
}

TEST(AcceleratorSim, ByteAccountingMatchesThePaper)
{
    rsu::rng::Xoshiro256 rng(17);
    // Segmentation: data2 is per-label (class means) -> 5 + M.
    const auto seg_scene =
        rsu::vision::makeSegmentationScene(16, 16, 5, 2.5, rng);
    rsu::vision::SegmentationModel seg_model(seg_scene.image,
                                             seg_scene.region_means);
    const auto seg_config =
        rsu::vision::segmentationConfig(seg_scene.image, 5);
    rsu::mrf::GridMrf seg(seg_config, seg_model);
    rsu::arch::AcceleratorSimConfig sim_config;
    sim_config.num_units = 4;
    rsu::arch::AcceleratorSim seg_sim(seg, sim_config);
    // Class means are global constants the accelerator caches, but
    // the general accounting charges per-candidate streams only
    // when data2 varies per label; the motion figure is the
    // paper-pinned one.
    const auto motion_scene =
        rsu::vision::makeMotionScene(16, 16, 1, 3, 0.0, rng);
    rsu::vision::MotionModel motion_model(motion_scene.frame1,
                                          motion_scene.frame2, 3);
    const auto motion_config =
        rsu::vision::motionConfig(motion_scene.frame1, 3);
    rsu::mrf::GridMrf motion(motion_config, motion_model);
    rsu::arch::AcceleratorSim motion_sim(motion, sim_config);
    EXPECT_EQ(motion_sim.bytesPerSite(), 54); // paper section 8.2
}

TEST(AcceleratorSim, MemoryFloorAppearsAtHighUnitCounts)
{
    rsu::rng::Xoshiro256 rng(19);
    const auto scene =
        rsu::vision::makeSegmentationScene(48, 32, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);

    rsu::arch::AcceleratorSimConfig sim_config;
    sim_config.num_units = 512;
    sim_config.mem_bw_gbs = 1.0; // starved
    rsu::arch::AcceleratorSim sim(mrf, sim_config);
    const auto stats = sim.sweep();
    EXPECT_GT(stats.memory_seconds, stats.compute_seconds);
    EXPECT_DOUBLE_EQ(stats.seconds(), stats.memory_seconds);
}

} // namespace
