/**
 * @file
 * Tests for loopy belief propagation: exactness on trees, quality
 * on loopy grids, and its role as the deterministic comparator.
 */

#include <gtest/gtest.h>

#include "mrf/belief_propagation.h"
#include "mrf/exact.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::mrf;

/** Small deterministic singleton model for oracle comparisons. */
class ToySingleton : public SingletonModel
{
  public:
    uint8_t
    data1(int x, int y) const override
    {
        return static_cast<uint8_t>((7 * x + 11 * y) % 30);
    }

    uint8_t
    data2(int, int, Label label) const override
    {
        return static_cast<uint8_t>((label * 9) & 0x3f);
    }
};

MrfConfig
toyConfig(int w, int h, int labels, double t = 10.0)
{
    MrfConfig config;
    config.width = w;
    config.height = h;
    config.num_labels = labels;
    config.temperature = t;
    return config;
}

TEST(BeliefPropagation, ExactOnChains)
{
    // A 1-pixel-wide model is a tree: sum-product BP must match
    // the brute-force marginals exactly.
    ToySingleton singleton;
    GridMrf mrf(toyConfig(6, 1, 3), singleton);
    const ExactInference exact(mrf);

    BeliefPropagation bp(mrf);
    const int iters = bp.run();
    EXPECT_TRUE(bp.converged());
    EXPECT_LE(iters, 20);
    for (int x = 0; x < 6; ++x) {
        const auto b = bp.belief(x, 0);
        const auto truth = exact.marginal(x, 0);
        for (int l = 0; l < 3; ++l)
            EXPECT_NEAR(b[l], truth[l], 1e-6)
                << "site " << x << " label " << l;
    }
}

TEST(BeliefPropagation, ExactOnColumns)
{
    ToySingleton singleton;
    GridMrf mrf(toyConfig(1, 7, 2), singleton);
    const ExactInference exact(mrf);
    BeliefPropagation bp(mrf);
    bp.run();
    for (int y = 0; y < 7; ++y) {
        const auto b = bp.belief(0, y);
        const auto truth = exact.marginal(0, y);
        EXPECT_NEAR(b[0], truth[0], 1e-6) << "site " << y;
    }
}

TEST(BeliefPropagation, CloseToExactOnLoopyGrids)
{
    ToySingleton singleton;
    GridMrf mrf(toyConfig(3, 3, 3), singleton);
    const ExactInference exact(mrf);
    BeliefPropagation bp(mrf);
    bp.run();
    EXPECT_TRUE(bp.converged());
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 3; ++x) {
            const auto b = bp.belief(x, y);
            const auto truth = exact.marginal(x, y);
            for (int l = 0; l < 3; ++l)
                EXPECT_NEAR(b[l], truth[l], 0.05);
        }
    }
}

TEST(BeliefPropagation, MaxProductDecodesTheChainMap)
{
    ToySingleton singleton;
    GridMrf mrf(toyConfig(6, 1, 3, 6.0), singleton);
    const ExactInference exact(mrf);

    BpConfig config;
    config.max_product = true;
    config.max_iterations = 200;
    BeliefPropagation bp(mrf, config);
    bp.run();
    const auto decoded = bp.decode();

    // Max-marginal decoding reaches a configuration with the MAP's
    // energy (per-site argmax can differ from the joint MAP only
    // through ties, which leave the energy unchanged).
    GridMrf scratch(mrf.config(), mrf.singleton());
    scratch.setLabels(decoded);
    const int64_t decoded_energy = scratch.totalEnergy();
    scratch.setLabels(exact.mapLabels());
    EXPECT_EQ(decoded_energy, scratch.totalEnergy());
}

TEST(BeliefPropagation, DampingStillConverges)
{
    ToySingleton singleton;
    GridMrf mrf(toyConfig(4, 4, 3), singleton);
    BpConfig config;
    config.damping = 0.5;
    config.max_iterations = 200;
    BeliefPropagation bp(mrf, config);
    bp.run();
    EXPECT_TRUE(bp.converged());
    EXPECT_GT(bp.messageUpdates(), 0u);
}

TEST(BeliefPropagation, ValidatesConfig)
{
    ToySingleton singleton;
    GridMrf mrf(toyConfig(2, 2, 2), singleton);
    BpConfig bad;
    bad.max_iterations = 0;
    EXPECT_THROW(BeliefPropagation(mrf, bad),
                 std::invalid_argument);
    bad = BpConfig{};
    bad.damping = 1.0;
    EXPECT_THROW(BeliefPropagation(mrf, bad),
                 std::invalid_argument);
}

TEST(BeliefPropagation, SegmentationQualityComparableToGibbs)
{
    // The deterministic comparator should be competitive on an
    // easy loopy problem — and the sampler must at least match it.
    rsu::rng::Xoshiro256 rng(6);
    const auto scene =
        rsu::vision::makeSegmentationScene(32, 24, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 6.0, 6);
    GridMrf mrf(config, model);

    BpConfig bp_config;
    bp_config.damping = 0.3;
    bp_config.max_iterations = 100;
    BeliefPropagation bp(mrf, bp_config);
    bp.run();
    const double bp_acc = rsu::vision::labelAccuracy(
        bp.decode(), scene.truth);

    GridMrf mrf_gibbs(config, model);
    mrf_gibbs.initializeMaximumLikelihood();
    GibbsSampler gibbs(mrf_gibbs, 4);
    gibbs.run(40);
    const double gibbs_acc = rsu::vision::labelAccuracy(
        mrf_gibbs.labels(), scene.truth);

    EXPECT_GT(bp_acc, 0.85);
    EXPECT_GT(gibbs_acc, bp_acc - 0.05);
}

TEST(BeliefPropagation, VectorLabelCodesWork)
{
    // BP over a motion model exercises the non-contiguous code
    // table through codeOf().
    rsu::rng::Xoshiro256 rng(8);
    const auto scene =
        rsu::vision::makeMotionScene(10, 8, 1, 1, 0.5, rng);
    rsu::vision::MotionModel model(scene.frame1, scene.frame2, 1);
    const auto config =
        rsu::vision::motionConfig(scene.frame1, 1, 4.0, 2);
    GridMrf mrf(config, model);
    BeliefPropagation bp(mrf);
    bp.run();
    const auto decoded = bp.decode();
    // All decoded labels are valid codes of the model.
    for (Label l : decoded)
        EXPECT_GE(mrf.indexOfCode(l), 0);
}

} // namespace
