/**
 * @file
 * Table-driven fast sweep path tests.
 *
 * The headline contract: because every energy in the system is an
 * exact integer, the fast path's lookups are bit-identical to the
 * reference sampler's recomputation — same label field, same RNG
 * consumption — for every (seed, schedule, shard count, temperature
 * schedule). These tests enforce that contract, plus unit-level
 * equivalence of each table, ExpTable invalidation on
 * setTemperature(), border correctness on degenerate lattices, and
 * the logical SamplerWork accounting.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/tables.h"
#include "core/types.h"
#include "mrf/fast_sweep.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using rsu::core::DoubletonTable;
using rsu::core::EnergyConfig;
using rsu::core::EnergyUnit;
using rsu::core::ExpTable;
using rsu::core::Label;
using rsu::core::LabelMode;
using rsu::mrf::GibbsSampler;
using rsu::mrf::GridMrf;
using rsu::mrf::MrfConfig;
using rsu::mrf::Schedule;
using rsu::mrf::SweepPath;
using rsu::mrf::SweepTables;
using rsu::runtime::ChromaticGibbsSampler;
using rsu::runtime::ParallelSweepExecutor;
using rsu::runtime::SamplerKind;
using rsu::runtime::ThreadPool;

/** A small segmentation problem with deterministic content. */
struct Problem
{
    rsu::vision::SegmentationScene scene;
    rsu::vision::SegmentationModel model;
    MrfConfig config;

    Problem(int width, int height, int labels, uint64_t seed)
        : scene(makeScene(width, height, labels, seed)),
          model(scene.image, scene.region_means),
          config(rsu::vision::segmentationConfig(scene.image, labels))
    {
    }

    static rsu::vision::SegmentationScene
    makeScene(int width, int height, int labels, uint64_t seed)
    {
        rsu::rng::Xoshiro256 rng(seed);
        return rsu::vision::makeSegmentationScene(width, height,
                                                  labels, 3.0, rng);
    }
};

void
expectSameWork(const rsu::mrf::SamplerWork &a,
               const rsu::mrf::SamplerWork &b)
{
    EXPECT_EQ(a.site_updates, b.site_updates);
    EXPECT_EQ(a.energy_evals, b.energy_evals);
    EXPECT_EQ(a.exp_calls, b.exp_calls);
    EXPECT_EQ(a.random_draws, b.random_draws);
}

TEST(ExpTableTest, MatchesStdExpBitwise)
{
    ExpTable table;
    for (double t : {16.0, 8.0, 2.5, 0.7}) {
        table.rebuild(t, 42);
        EXPECT_EQ(table.version(), 42u);
        EXPECT_EQ(table.temperature(), t);
        for (int e = 0; e <= rsu::core::kEnergyMax; ++e)
            EXPECT_EQ(table.at(e),
                      std::exp(-static_cast<double>(e) / t))
                << "e=" << e << " t=" << t;
    }
    EXPECT_THROW(table.rebuild(0.0, 0), std::invalid_argument);
}

TEST(DoubletonTableTest, MatchesEnergyUnitForAllCodePairs)
{
    std::vector<EnergyConfig> configs(4);
    configs[1].doubleton_weight = 8;
    configs[2].doubleton_cap = 4;
    configs[2].doubleton_weight = 3;
    configs[3].mode = LabelMode::Vector;
    configs[3].doubleton_cap = 9;

    std::vector<Label> codes;
    for (int c = 0; c < rsu::core::kMaxLabels; c += 3)
        codes.push_back(static_cast<Label>(c));

    for (const auto &config : configs) {
        const EnergyUnit unit(config);
        const DoubletonTable table(unit, codes);
        ASSERT_EQ(table.numCandidates(),
                  static_cast<int>(codes.size()));
        for (int i = 0; i < table.numCandidates(); ++i)
            for (int c = 0; c < rsu::core::kMaxLabels; ++c)
                EXPECT_EQ(table.at(i, static_cast<Label>(c)),
                          unit.doubleton(codes[i],
                                         static_cast<Label>(c)));
    }
}

TEST(SingletonTableTest, MatchesModelAndDrivesMlInit)
{
    Problem p(19, 13, 5, 7);
    GridMrf mrf(p.config, p.model);
    const auto table = mrf.buildSingletonTable();

    for (int y = 0; y < mrf.height(); ++y) {
        for (int x = 0; x < mrf.width(); ++x) {
            const int site = mrf.index(x, y);
            for (int i = 0; i < mrf.numLabels(); ++i)
                ASSERT_EQ(table.at(site, i),
                          mrf.energyUnit().singleton(
                              p.model.data1(x, y),
                              p.model.data2(x, y, mrf.codeOf(i))));
        }
    }

    // ML init = per-site argmin of the table, first minimum wins.
    mrf.initializeMaximumLikelihood();
    for (int y = 0; y < mrf.height(); ++y) {
        for (int x = 0; x < mrf.width(); ++x) {
            const int site = mrf.index(x, y);
            int best = 0;
            for (int i = 1; i < mrf.numLabels(); ++i)
                if (table.at(site, i) < table.at(site, best))
                    best = i;
            EXPECT_EQ(mrf.label(x, y), mrf.codeOf(best));
        }
    }
}

TEST(Data2TableTest, RowsMatchData2At)
{
    Problem p(11, 9, 4, 3);
    GridMrf mrf(p.config, p.model);
    const auto staged = mrf.buildData2Table();
    std::vector<uint8_t> direct(mrf.numLabels());
    for (int y = 0; y < mrf.height(); ++y) {
        for (int x = 0; x < mrf.width(); ++x) {
            mrf.data2At(x, y, direct.data());
            const uint8_t *row = staged.row(mrf.index(x, y));
            for (int i = 0; i < mrf.numLabels(); ++i)
                ASSERT_EQ(row[i], direct[i]);
        }
    }
}

TEST(ScheduleSplit, VisitOrderIdenticalToUnsplit)
{
    using Site = std::pair<int, int>;
    for (const int w : {1, 2, 3, 9}) {
        for (const int h : {1, 2, 7}) {
            for (const Schedule schedule :
                 {Schedule::Raster, Schedule::Checkerboard}) {
                std::vector<Site> unsplit;
                rsu::mrf::forEachSite(w, h, schedule,
                                      [&](int x, int y) {
                                          unsplit.emplace_back(x, y);
                                      });
                std::vector<Site> split;
                int interior = 0;
                rsu::mrf::forEachSiteSplit(
                    w, h, schedule,
                    [&](int x, int y) {
                        EXPECT_TRUE(x > 0 && x < w - 1 && y > 0 &&
                                    y < h - 1);
                        split.emplace_back(x, y);
                        ++interior;
                    },
                    [&](int x, int y) {
                        EXPECT_TRUE(x == 0 || x == w - 1 || y == 0 ||
                                    y == h - 1);
                        split.emplace_back(x, y);
                    });
                EXPECT_EQ(split, unsplit);
                EXPECT_EQ(interior,
                          std::max(0, (w - 2)) * std::max(0, (h - 2)));
            }
        }
    }
}

TEST(FastSweepTest, BitExactAcrossSeedsAndSchedules)
{
    Problem p(29, 22, 6, 17);
    for (const uint64_t seed : {1ull, 7ull, 42ull}) {
        for (const Schedule schedule :
             {Schedule::Raster, Schedule::Checkerboard}) {
            GridMrf ref_mrf(p.config, p.model);
            ref_mrf.initializeMaximumLikelihood();
            GibbsSampler reference(ref_mrf, seed, schedule);

            GridMrf fast_mrf(p.config, p.model);
            fast_mrf.initializeMaximumLikelihood();
            GibbsSampler fast(fast_mrf, seed, schedule,
                              SweepPath::Table);

            for (int sweep = 0; sweep < 4; ++sweep) {
                reference.sweep();
                fast.sweep();
                ASSERT_EQ(ref_mrf.labels(), fast_mrf.labels())
                    << "seed=" << seed << " sweep=" << sweep;
            }
            expectSameWork(reference.work(), fast.work());
        }
    }
}

TEST(FastSweepTest, BitExactOnVectorModeCodes)
{
    // Motion-style model: vector labels on a 3x3 window, codes
    // packed with stride 8 (non-contiguous), truncated-quadratic
    // doubleton.
    class WarpModel : public rsu::mrf::SingletonModel
    {
      public:
        uint8_t
        data1(int x, int y) const override
        {
            return static_cast<uint8_t>((3 * x + 5 * y) & 63);
        }
        uint8_t
        data2(int x, int y, Label label) const override
        {
            return static_cast<uint8_t>(
                (x + 2 * y + 7 * rsu::core::labelX1(label) +
                 11 * rsu::core::labelX2(label)) &
                63);
        }
    };

    MrfConfig config;
    config.width = 17;
    config.height = 12;
    config.num_labels = 9;
    for (int dy = 0; dy < 3; ++dy)
        for (int dx = 0; dx < 3; ++dx)
            config.label_codes.push_back(
                rsu::core::packVectorLabel(dx, dy));
    config.energy.mode = LabelMode::Vector;
    config.energy.doubleton_weight = 4;
    config.energy.doubleton_cap = 5;
    config.temperature = 6.0;

    const WarpModel model;
    GridMrf ref_mrf(config, model);
    ref_mrf.initializeMaximumLikelihood();
    GibbsSampler reference(ref_mrf, 19);

    GridMrf fast_mrf(config, model);
    fast_mrf.initializeMaximumLikelihood();
    GibbsSampler fast(fast_mrf, 19, Schedule::Checkerboard,
                      SweepPath::Table);

    reference.run(5);
    fast.run(5);
    EXPECT_EQ(ref_mrf.labels(), fast_mrf.labels());
    expectSameWork(reference.work(), fast.work());
}

TEST(FastSweepTest, BitExactAcrossRuntimeShardCounts)
{
    Problem p(37, 26, 5, 29);
    for (const int shards : {1, 2, 4, 8}) {
        GridMrf ref_mrf(p.config, p.model);
        ref_mrf.initializeMaximumLikelihood();
        ThreadPool ref_pool(2);
        ParallelSweepExecutor ref_executor(ref_pool, shards);
        ChromaticGibbsSampler reference(ref_mrf, ref_executor, 99);

        GridMrf fast_mrf(p.config, p.model);
        fast_mrf.initializeMaximumLikelihood();
        ThreadPool fast_pool(3); // pool size must not matter
        ParallelSweepExecutor fast_executor(fast_pool, shards);
        ChromaticGibbsSampler fast(fast_mrf, fast_executor, 99,
                                   SamplerKind::SoftwareGibbs, {},
                                   SweepPath::Table);
        ASSERT_EQ(fast.path(), SweepPath::Table);

        for (int sweep = 0; sweep < 3; ++sweep) {
            reference.sweep();
            fast.sweep();
            ASSERT_EQ(ref_mrf.labels(), fast_mrf.labels())
                << "shards=" << shards << " sweep=" << sweep;
        }
        expectSameWork(reference.work(), fast.work());
    }
}

TEST(FastSweepTest, OneShardTableMatchesSequentialTable)
{
    Problem p(23, 18, 4, 47);

    GridMrf sequential(p.config, p.model);
    sequential.initializeMaximumLikelihood();
    GibbsSampler reference(sequential, 5, Schedule::Checkerboard,
                           SweepPath::Table);
    reference.run(4);

    GridMrf parallel(p.config, p.model);
    parallel.initializeMaximumLikelihood();
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 1);
    ChromaticGibbsSampler sampler(parallel, executor, 5,
                                  SamplerKind::SoftwareGibbs, {},
                                  SweepPath::Table);
    sampler.run(4);

    EXPECT_EQ(sequential.labels(), parallel.labels());
}

TEST(FastSweepTest, AnnealingRampInvalidatesExpTable)
{
    Problem p(21, 16, 4, 13);

    // Sequential samplers under an explicit temperature ramp.
    GridMrf ref_mrf(p.config, p.model);
    ref_mrf.initializeMaximumLikelihood();
    GibbsSampler reference(ref_mrf, 31);

    GridMrf fast_mrf(p.config, p.model);
    fast_mrf.initializeMaximumLikelihood();
    GibbsSampler fast(fast_mrf, 31, Schedule::Checkerboard,
                      SweepPath::Table);
    ASSERT_NE(fast.tables(), nullptr);

    double t = p.config.temperature;
    for (int stage = 0; stage < 5; ++stage) {
        reference.setTemperature(t);
        fast.setTemperature(t);
        reference.run(2);
        fast.run(2);
        ASSERT_EQ(ref_mrf.labels(), fast_mrf.labels())
            << "stage=" << stage << " t=" << t;
        // The fast path's exp table must have followed the ramp.
        EXPECT_EQ(fast.tables()->expTable().temperature(), t);
        t *= 0.6;
    }

    // Same ramp through the chromatic runtime's setTemperature.
    for (const int shards : {1, 3}) {
        GridMrf a_mrf(p.config, p.model);
        a_mrf.initializeMaximumLikelihood();
        ThreadPool a_pool(2);
        ParallelSweepExecutor a_executor(a_pool, shards);
        ChromaticGibbsSampler a(a_mrf, a_executor, 77);

        GridMrf b_mrf(p.config, p.model);
        b_mrf.initializeMaximumLikelihood();
        ThreadPool b_pool(2);
        ParallelSweepExecutor b_executor(b_pool, shards);
        ChromaticGibbsSampler b(b_mrf, b_executor, 77,
                                SamplerKind::SoftwareGibbs, {},
                                SweepPath::Table);

        double stage_t = p.config.temperature;
        for (int stage = 0; stage < 4; ++stage) {
            a.setTemperature(stage_t);
            b.setTemperature(stage_t);
            a.run(2);
            b.run(2);
            ASSERT_EQ(a_mrf.labels(), b_mrf.labels())
                << "shards=" << shards << " stage=" << stage;
            stage_t *= 0.5;
        }
    }
}

TEST(FastSweepTest, BitExactOnDegenerateLattices)
{
    // 1xN and Nx1 lattices: every site is a border site, exercising
    // each neighbour-validity combination the border kernel handles.
    const std::pair<int, int> dims[] = {
        {1, 24}, {24, 1}, {1, 1}, {2, 15}, {15, 2}};
    for (const auto &[w, h] : dims) {
        Problem p(w, h, 3, 61);
        for (const Schedule schedule :
             {Schedule::Raster, Schedule::Checkerboard}) {
            GridMrf ref_mrf(p.config, p.model);
            ref_mrf.initializeMaximumLikelihood();
            GibbsSampler reference(ref_mrf, 3, schedule);

            GridMrf fast_mrf(p.config, p.model);
            fast_mrf.initializeMaximumLikelihood();
            GibbsSampler fast(fast_mrf, 3, schedule,
                              SweepPath::Table);

            reference.run(6);
            fast.run(6);
            ASSERT_EQ(ref_mrf.labels(), fast_mrf.labels())
                << w << "x" << h;
            expectSameWork(reference.work(), fast.work());
        }
    }
}

TEST(FastSweepTest, SingleSiteUpdatesMatchReference)
{
    Problem p(9, 7, 4, 5);
    GridMrf ref_mrf(p.config, p.model);
    ref_mrf.initializeMaximumLikelihood();
    GibbsSampler reference(ref_mrf, 71);

    GridMrf fast_mrf(p.config, p.model);
    fast_mrf.initializeMaximumLikelihood();
    GibbsSampler fast(fast_mrf, 71, Schedule::Checkerboard,
                      SweepPath::Table);

    // Mixed interior and border single-site updates.
    const std::pair<int, int> sites[] = {
        {0, 0}, {4, 3}, {8, 6}, {1, 1}, {0, 3}, {4, 0}, {8, 2}};
    for (const auto &[x, y] : sites)
        EXPECT_EQ(reference.updateSite(x, y), fast.updateSite(x, y))
            << "(" << x << ", " << y << ")";
    EXPECT_EQ(ref_mrf.labels(), fast_mrf.labels());
}

} // namespace
