/**
 * @file
 * Tests for the Förster-theory spectral model and its cascade
 * networks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ret/forster.h"
#include "rng/stats.h"
#include "rng/xoshiro256.h"

namespace {

using namespace rsu::ret;

Chromophore
donorDye()
{
    Chromophore c;
    c.emission_peak_nm = 570.0;
    c.excitation_peak_nm = 550.0;
    return c;
}

Chromophore
acceptorDye()
{
    Chromophore c;
    c.emission_peak_nm = 670.0;
    c.excitation_peak_nm = 600.0;
    return c;
}

TEST(Forster, TypicalPairLandsNearFiveNanometres)
{
    Chromophore acceptor = donorDye();
    acceptor.excitation_peak_nm = 550.0; // perfect overlap case
    const double r0 = forsterRadius(donorDye(), acceptor);
    EXPECT_GT(r0, 4.0);
    EXPECT_LT(r0, 7.0);
}

TEST(Forster, OverlapDecreasesWithPeakSeparation)
{
    const Chromophore donor = donorDye();
    double prev = 1e18;
    for (double peak : {570.0, 600.0, 630.0, 680.0}) {
        Chromophore acceptor = acceptorDye();
        acceptor.excitation_peak_nm = peak;
        const double j = spectralOverlap(donor, acceptor);
        EXPECT_LT(j, prev);
        prev = j;
    }
}

TEST(Forster, RateAtR0EqualsDecayRate)
{
    const Chromophore donor = donorDye();
    const Chromophore acceptor = acceptorDye();
    const double r0 = forsterRadius(donor, acceptor);
    const double k = transferRate(donor, acceptor, r0);
    EXPECT_NEAR(k, 1.0 / donor.lifetime_ns, 1e-9);
    EXPECT_NEAR(transferEfficiency(donor, acceptor, r0), 0.5,
                1e-9);
}

TEST(Forster, RateFollowsInverseSixthPower)
{
    const Chromophore donor = donorDye();
    const Chromophore acceptor = acceptorDye();
    const double k1 = transferRate(donor, acceptor, 4.0);
    const double k2 = transferRate(donor, acceptor, 8.0);
    EXPECT_NEAR(k1 / k2, 64.0, 1e-6);
}

TEST(Forster, EfficiencyIsMonotoneInDistance)
{
    const Chromophore donor = donorDye();
    const Chromophore acceptor = acceptorDye();
    double prev = 1.1;
    for (double r : {2.0, 4.0, 6.0, 8.0, 12.0}) {
        const double e = transferEfficiency(donor, acceptor, r);
        EXPECT_LT(e, prev);
        EXPECT_GT(e, 0.0);
        prev = e;
    }
}

TEST(Forster, QuantumYieldScalesR0Sixth)
{
    Chromophore bright = donorDye();
    Chromophore dim = donorDye();
    dim.quantum_yield = bright.quantum_yield / 2.0;
    const Chromophore acceptor = acceptorDye();
    const double ratio = forsterRadius(bright, acceptor) /
                         forsterRadius(dim, acceptor);
    EXPECT_NEAR(std::pow(ratio, 6.0), 2.0, 1e-6);
}

TEST(Forster, ValidatesInputs)
{
    Chromophore bad = donorDye();
    bad.lifetime_ns = 0.0;
    EXPECT_THROW(spectralOverlap(bad, acceptorDye()),
                 std::invalid_argument);
    EXPECT_THROW(transferRate(donorDye(), acceptorDye(), 0.0),
                 std::invalid_argument);
    RetMedium vacuumish;
    vacuumish.refractive_index = 0.0;
    EXPECT_THROW(
        forsterRadius(donorDye(), acceptorDye(), vacuumish),
        std::invalid_argument);
}

TEST(Forster, CascadeEfficiencyMatchesSampledNetwork)
{
    // Two-hop cascade at moderate coupling; the fraction of bright
    // (finite-TTF) samples must match the analytic efficiency.
    const std::vector<Chromophore> chain = {donorDye(), donorDye(),
                                            acceptorDye()};
    const std::vector<double> spacings = {4.5, 5.0};
    const double analytic = cascadeEfficiency(chain, spacings);
    EXPECT_GT(analytic, 0.1);
    EXPECT_LT(analytic, 0.95);

    const auto network = buildCascadeNetwork(chain, spacings);
    rsu::rng::Xoshiro256 rng(9);
    int bright = 0;
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i) {
        if (std::isfinite(network.sampleTtf(rng)))
            ++bright;
    }
    EXPECT_NEAR(bright / double(kDraws), analytic, 0.01);
}

TEST(Forster, CascadeTimingIsHypoexponential)
{
    // Single-chromophore "cascade": the bright-photon time is the
    // terminal lifetime; mean of bright samples ~ tau.
    const std::vector<Chromophore> chain = {donorDye()};
    const auto network = buildCascadeNetwork(chain, {});
    rsu::rng::Xoshiro256 rng(11);
    rsu::rng::RunningMoments m;
    for (int i = 0; i < 60000; ++i) {
        const double t = network.sampleTtf(rng);
        if (std::isfinite(t))
            m.add(t);
    }
    EXPECT_NEAR(m.mean(), donorDye().lifetime_ns, 0.05);
    // Bright fraction = quantum yield.
    EXPECT_NEAR(m.count() / 60000.0, donorDye().quantum_yield,
                0.01);
}

TEST(Forster, CascadeShapesValidate)
{
    EXPECT_THROW(buildCascadeNetwork({}, {}), std::invalid_argument);
    EXPECT_THROW(buildCascadeNetwork({donorDye()}, {3.0}),
                 std::invalid_argument);
    EXPECT_THROW(cascadeEfficiency({donorDye(), donorDye()}, {}),
                 std::invalid_argument);
}

} // namespace
