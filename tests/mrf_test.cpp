/**
 * @file
 * Unit tests for the MRF substrate: lattice model, samplers,
 * solvers, the exact oracle, and the estimator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "mrf/estimator.h"
#include "mrf/exact.h"
#include "mrf/gibbs.h"
#include "mrf/icm.h"
#include "mrf/metropolis.h"
#include "mrf/rsu_gibbs.h"
#include "mrf/schedule.h"
#include "rng/stats.h"

namespace {

using namespace rsu::mrf;

/** data1 = a fixed per-pixel value; data2 = 8 * label code. */
class ToySingleton : public SingletonModel
{
  public:
    explicit ToySingleton(int width) : width_(width) {}

    uint8_t
    data1(int x, int y) const override
    {
        return static_cast<uint8_t>((x + y * width_) * 5 % 40);
    }

    uint8_t
    data2(int, int, Label label) const override
    {
        return static_cast<uint8_t>((label * 8) & 0x3f);
    }

  private:
    int width_;
};

MrfConfig
toyConfig(int w, int h, int labels, double t = 16.0)
{
    MrfConfig config;
    config.width = w;
    config.height = h;
    config.num_labels = labels;
    config.temperature = t;
    config.energy.singleton_shift = 4;
    return config;
}

TEST(GridMrf, NeighborExtractionHandlesBorders)
{
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 4), singleton);
    mrf.fillLabels(2);
    mrf.setLabel(1, 0, 1); // north of centre
    mrf.setLabel(1, 2, 3); // south of centre

    const EnergyInputs centre = mrf.inputsAt(1, 1);
    // Order: N, S, W, E.
    EXPECT_EQ(centre.neighbors[0], 1);
    EXPECT_EQ(centre.neighbors[1], 3);
    EXPECT_EQ(centre.neighbors[2], 2);
    EXPECT_EQ(centre.neighbors[3], 2);
    for (bool v : centre.neighbor_valid)
        EXPECT_TRUE(v);

    const EnergyInputs corner = mrf.inputsAt(0, 0);
    EXPECT_FALSE(corner.neighbor_valid[0]); // no north
    EXPECT_TRUE(corner.neighbor_valid[1]);
    EXPECT_FALSE(corner.neighbor_valid[2]); // no west
    EXPECT_TRUE(corner.neighbor_valid[3]);
}

TEST(GridMrf, ConditionalDistributionIsSoftmaxOfEnergies)
{
    ToySingleton singleton(2);
    GridMrf mrf(toyConfig(2, 2, 3, 10.0), singleton);
    mrf.fillLabels(1);
    const auto dist = mrf.conditionalDistribution(0, 1);
    ASSERT_EQ(dist.size(), 3u);
    double z = 0.0;
    std::vector<double> expected(3);
    for (int i = 0; i < 3; ++i) {
        const Energy e = mrf.conditionalEnergy(0, 1, mrf.codeOf(i));
        expected[i] = std::exp(-e / 10.0);
        z += expected[i];
    }
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(dist[i], expected[i] / z, 1e-12);
    EXPECT_NEAR(std::accumulate(dist.begin(), dist.end(), 0.0), 1.0,
                1e-12);
}

TEST(GridMrf, TotalEnergyHandComputed)
{
    // 2x1 lattice, 2 labels, singleton shift 0 for clarity.
    class TinySingleton : public SingletonModel
    {
      public:
        uint8_t data1(int x, int) const override { return x ? 4 : 2; }
        uint8_t
        data2(int, int, Label l) const override
        {
            return l ? 6 : 1;
        }
    };
    TinySingleton singleton;
    MrfConfig config = toyConfig(2, 1, 2);
    config.energy.singleton_shift = 0;
    GridMrf mrf(config, singleton);
    mrf.setLabel(0, 0, 0);
    mrf.setLabel(1, 0, 1);
    // Singletons: (2-1)^2 + (4-6)^2 = 5; edge doubleton (0-1)^2 = 1.
    EXPECT_EQ(mrf.totalEnergy(), 6);
}

TEST(GridMrf, LabelCodeTablesValidate)
{
    ToySingleton singleton(2);
    MrfConfig config = toyConfig(2, 2, 3);
    config.label_codes = {1, 9, 17};
    GridMrf mrf(config, singleton);
    EXPECT_EQ(mrf.codeOf(2), 17);
    EXPECT_EQ(mrf.indexOfCode(9), 1);
    EXPECT_EQ(mrf.indexOfCode(5), -1);

    config.label_codes = {1, 1, 2};
    EXPECT_THROW(GridMrf(config, singleton), std::invalid_argument);
    config.label_codes = {1, 2};
    EXPECT_THROW(GridMrf(config, singleton), std::invalid_argument);
}

TEST(GridMrf, RejectsBadConfigs)
{
    ToySingleton singleton(2);
    EXPECT_THROW(GridMrf(toyConfig(0, 2, 2), singleton),
                 std::invalid_argument);
    EXPECT_THROW(GridMrf(toyConfig(2, 2, 0), singleton),
                 std::invalid_argument);
    EXPECT_THROW(GridMrf(toyConfig(2, 2, 65), singleton),
                 std::invalid_argument);
    EXPECT_THROW(GridMrf(toyConfig(2, 2, 2, -1.0), singleton),
                 std::invalid_argument);
}

TEST(Schedule, CheckerboardVisitsEverySiteOnce)
{
    std::vector<int> visits(12, 0);
    int parity_flips = 0;
    int last_parity = 0;
    bool first = true;
    forEachSite(4, 3, Schedule::Checkerboard, [&](int x, int y) {
        ++visits[y * 4 + x];
        const int parity = (x + y) & 1;
        if (first) {
            EXPECT_EQ(parity, 0);
            first = false;
        } else if (parity != last_parity) {
            ++parity_flips;
        }
        last_parity = parity;
    });
    for (int v : visits)
        EXPECT_EQ(v, 1);
    EXPECT_EQ(parity_flips, 1); // all evens, then all odds
}

TEST(GibbsSampler, SingleSiteUpdatesMatchConditional)
{
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 4, 12.0), singleton);
    mrf.fillLabels(1);
    GibbsSampler sampler(mrf, 321);

    const auto expected = mrf.conditionalDistribution(1, 1);
    std::vector<uint64_t> counts(4, 0);
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i) {
        const Label l = sampler.updateSite(1, 1);
        ++counts[mrf.indexOfCode(l)];
        mrf.setLabel(1, 1, 1); // restore state
    }
    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(3, 0.001));
    EXPECT_EQ(sampler.work().site_updates, kDraws);
    EXPECT_EQ(sampler.work().energy_evals, kDraws * 4u);
}

TEST(GibbsSampler, LongRunMatchesExactMarginals)
{
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 3, 12.0), singleton);
    const ExactInference exact(mrf);

    GibbsSampler sampler(mrf, 99);
    MarginalMapEstimator est(mrf, 50);
    est.run(4050, [&] { sampler.sweep(); });

    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 3; ++x) {
            const auto truth = exact.marginal(x, y);
            const auto emp = est.empiricalMarginal(x, y);
            for (int l = 0; l < 3; ++l) {
                EXPECT_NEAR(emp[l], truth[l], 0.04)
                    << "site (" << x << "," << y << ") label " << l;
            }
        }
    }
}

TEST(MetropolisSampler, LongRunMatchesExactMarginals)
{
    ToySingleton singleton(2);
    GridMrf mrf(toyConfig(2, 2, 3, 12.0), singleton);
    const ExactInference exact(mrf);

    MetropolisSampler sampler(mrf, 17);
    MarginalMapEstimator est(mrf, 200);
    est.run(12200, [&] { sampler.sweep(); });

    EXPECT_GT(sampler.acceptanceRate(), 0.2);
    for (int y = 0; y < 2; ++y) {
        for (int x = 0; x < 2; ++x) {
            const auto truth = exact.marginal(x, y);
            const auto emp = est.empiricalMarginal(x, y);
            for (int l = 0; l < 3; ++l)
                EXPECT_NEAR(emp[l], truth[l], 0.05);
        }
    }
}

TEST(IcmSolver, ReachesAFixedPointAndLowersEnergy)
{
    ToySingleton singleton(6);
    GridMrf mrf(toyConfig(6, 6, 4), singleton);
    rsu::rng::Xoshiro256 rng(3);
    mrf.randomizeLabels(rng);
    const int64_t before = mrf.totalEnergy();

    IcmSolver solver(mrf);
    const int sweeps = solver.solve(50);
    EXPECT_LT(sweeps, 50);
    const int64_t after = mrf.totalEnergy();
    EXPECT_LE(after, before);
    // Fixed point: another sweep changes nothing.
    EXPECT_EQ(solver.sweep(), 0);
}

TEST(ExactInference, MatchesHandEnumerationOnTwoSites)
{
    // 2 sites, 2 labels, hand-computable joint.
    class FlatSingleton : public SingletonModel
    {
      public:
        uint8_t data1(int, int) const override { return 0; }
        uint8_t
        data2(int, int, Label l) const override
        {
            return l ? 4 : 0;
        }
    };
    FlatSingleton singleton;
    MrfConfig config = toyConfig(2, 1, 2, 8.0);
    config.energy.singleton_shift = 0;
    GridMrf mrf(config, singleton);
    const ExactInference exact(mrf);

    // E(l0,l1) = l0^2*16? No: singleton (0 - 4l)^2 = 16 l; edge
    // (l0-l1)^2. E(0,0)=0, E(0,1)=17, E(1,0)=17, E(1,1)=32.
    const double t = 8.0;
    const double w00 = 1.0, w01 = std::exp(-17 / t),
                 w10 = std::exp(-17 / t), w11 = std::exp(-32 / t);
    const double z = w00 + w01 + w10 + w11;
    EXPECT_NEAR(exact.partition(), z, 1e-9);
    EXPECT_NEAR(exact.marginal(0, 0)[0], (w00 + w01) / z, 1e-9);
    EXPECT_NEAR(exact.marginal(1, 0)[1], (w01 + w11) / z, 1e-9);
    EXPECT_EQ(exact.mapLabels()[0], 0);
    EXPECT_EQ(exact.mapLabels()[1], 0);
    const double mean_e =
        (0 * w00 + 17 * w01 + 17 * w10 + 32 * w11) / z;
    EXPECT_NEAR(exact.meanEnergy(), mean_e, 1e-9);
}

TEST(ExactInference, EnforcesStateBudget)
{
    ToySingleton singleton(4);
    GridMrf mrf(toyConfig(4, 4, 8), singleton);
    EXPECT_THROW(ExactInference(mrf, 1000), std::invalid_argument);
}

TEST(Estimator, BurnInIsDiscarded)
{
    ToySingleton singleton(2);
    GridMrf mrf(toyConfig(2, 2, 2), singleton);
    MarginalMapEstimator est(mrf, 10);
    int calls = 0;
    est.run(25, [&] { ++calls; });
    EXPECT_EQ(calls, 25);
    EXPECT_EQ(est.retained(), 15);
    EXPECT_EQ(est.energyTrajectory().size(), 25u);
}

TEST(RsuGibbs, DirectModeMatchesSoftwareGibbsDistribution)
{
    // On a single site with fixed neighbours, the RSU sampler's
    // empirical distribution must agree exactly with the device
    // race oracle and approximately with the software conditional
    // (the gap is the device's limited-precision quantization).
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 4, 12.0), singleton);
    mrf.fillLabels(1);

    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 55);
    RsuGibbsSampler sampler(mrf, unit);

    const auto softmax = mrf.conditionalDistribution(1, 1);
    const auto inputs = mrf.referencedInputsAt(1, 1);
    std::vector<uint8_t> data2(4);
    mrf.data2At(1, 1, data2.data());
    const auto race = unit.raceDistribution(inputs, data2.data());

    std::vector<uint64_t> counts(4, 0);
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) {
        const Label l = sampler.updateSite(1, 1);
        ++counts[mrf.indexOfCode(l)];
        mrf.setLabel(1, 1, 1);
    }
    const double stat = rsu::rng::chiSquareStatistic(counts, race);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(3, 0.001));
    for (int l = 0; l < 4; ++l) {
        EXPECT_NEAR(counts[l] / double(kDraws), softmax[l], 0.12)
            << "label " << l;
    }
}

TEST(RsuGibbs, TwoPassReferencingTightensTheConditional)
{
    // Two-pass min-referencing removes the clamp distortion of the
    // single-pass current-label reference: the race should track
    // the softmax closely even when several candidates beat the
    // current label.
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 4, 12.0), singleton);
    mrf.fillLabels(1);

    const auto softmax = mrf.conditionalDistribution(1, 1);
    const auto inputs = mrf.referencedInputsAt(1, 1);
    std::vector<uint8_t> data2(4);
    mrf.data2At(1, 1, data2.data());

    auto tv_distance = [&](rsu::core::RsuG &unit) {
        const auto race =
            unit.raceDistribution(inputs, data2.data());
        double tv = 0.0;
        for (int l = 0; l < 4; ++l)
            tv += std::abs(race[l] - softmax[l]);
        return 0.5 * tv;
    };

    rsu::core::RsuG single(rsu::core::RsuGConfig{}, 58);
    RsuGibbsSampler s1(mrf, single);
    const double tv_single = tv_distance(single);

    rsu::core::RsuGConfig config;
    config.two_pass_offset = true;
    rsu::core::RsuG two(config, 58);
    RsuGibbsSampler s2(mrf, two);
    const double tv_two = tv_distance(two);

    EXPECT_LT(tv_two, tv_single);
    EXPECT_LT(tv_two, 0.10); // residual is timer-tick bias
    // And the second pass is charged in the timing model.
    EXPECT_EQ(two.latencyCycles(), single.latencyCycles() + 4);
}

TEST(RsuGibbs, IsaModeCountsInstructions)
{
    ToySingleton singleton(3);
    GridMrf mrf(toyConfig(3, 3, 4, 12.0), singleton);
    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 56);
    RsuGibbsSampler sampler(mrf, unit, Schedule::Checkerboard,
                            RsuGibbsSampler::Mode::Isa);
    sampler.sweep();
    // Per pixel: NEIGHBORS + SINGLETON_A + ENERGY_OFFSET + 1
    // packed SINGLETON_D (4 labels fit one write) + read = 5
    // instructions.
    EXPECT_EQ(sampler.rsuInstructions(), 9u * 5u);
    EXPECT_EQ(unit.stats().samples, 9u);
}

TEST(RsuGibbs, IsaAndDirectModesAgreeStatistically)
{
    ToySingleton singleton(3);

    auto run_mode = [&](RsuGibbsSampler::Mode mode, uint64_t seed) {
        GridMrf mrf(toyConfig(3, 3, 3, 12.0), singleton);
        mrf.fillLabels(0);
        rsu::core::RsuG unit(rsu::core::RsuGConfig{}, seed);
        RsuGibbsSampler sampler(mrf, unit, Schedule::Checkerboard,
                                mode);
        std::vector<uint64_t> counts(3, 0);
        for (int i = 0; i < 20000; ++i) {
            const Label l = sampler.updateSite(1, 1);
            ++counts[mrf.indexOfCode(l)];
            mrf.setLabel(1, 1, 0);
        }
        return counts;
    };

    const auto direct =
        run_mode(RsuGibbsSampler::Mode::Direct, 1001);
    const auto isa = run_mode(RsuGibbsSampler::Mode::Isa, 2002);
    for (int l = 0; l < 3; ++l) {
        EXPECT_NEAR(direct[l] / 20000.0, isa[l] / 20000.0, 0.02)
            << "label " << l;
    }
}

TEST(RsuGibbs, SweepLowersEnergyFromRandomInit)
{
    ToySingleton singleton(8);
    GridMrf mrf(toyConfig(8, 8, 4, 6.0), singleton);
    rsu::rng::Xoshiro256 rng(9);
    mrf.randomizeLabels(rng);
    const int64_t before = mrf.totalEnergy();

    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 77);
    RsuGibbsSampler sampler(mrf, unit);
    sampler.run(10);
    EXPECT_LT(mrf.totalEnergy(), before);
}

} // namespace
