/**
 * @file
 * Fault-tolerant serving tests: cancellation, deadlines,
 * backpressure, shutdown promise hygiene, hardened exception paths,
 * and RSU device-fault injection with graceful degradation.
 *
 * The contracts pinned here (see DESIGN.md section 12):
 *  - cancellation/deadline stop at sweep granularity — a job
 *    observed to cancel after sweep k holds exactly k sweeps'
 *    labels, bit-identical to a direct chain run for k sweeps;
 *  - every submitted future resolves, with a value or an
 *    EngineError — never a std::future_error — in both shutdown
 *    modes;
 *  - a failed RSU device degrades the job onto the software Table
 *    path mid-run instead of losing it.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_unit.h"
#include "core/rsu_g.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "ret/fault_injection.h"
#include "rng/stats.h"
#include "runtime/cancellation.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/inference_engine.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using rsu::mrf::GridMrf;
using rsu::runtime::BackpressurePolicy;
using rsu::runtime::CancellationToken;
using rsu::runtime::ChromaticGibbsSampler;
using rsu::runtime::EngineError;
using rsu::runtime::EngineErrorCode;
using rsu::runtime::InferenceEngine;
using rsu::runtime::InferenceJob;
using rsu::runtime::JobOutcome;
using rsu::runtime::JobStatus;
using rsu::runtime::ParallelSweepExecutor;
using rsu::runtime::SamplerKind;
using rsu::runtime::shardRows;
using rsu::runtime::ShutdownMode;
using rsu::runtime::ThreadPool;

/** A small segmentation problem with deterministic content. */
struct Problem
{
    rsu::vision::SegmentationScene scene;
    rsu::vision::SegmentationModel model;
    rsu::mrf::MrfConfig config;

    Problem(int width, int height, int labels, uint64_t seed)
        : scene(makeScene(width, height, labels, seed)),
          model(scene.image, scene.region_means),
          config(rsu::vision::segmentationConfig(scene.image, labels))
    {
    }

    static rsu::vision::SegmentationScene
    makeScene(int width, int height, int labels, uint64_t seed)
    {
        rsu::rng::Xoshiro256 rng(seed);
        return rsu::vision::makeSegmentationScene(width, height,
                                                  labels, 3.0, rng);
    }

    /** Non-owning view for job submission; the Problem outlives
     * every future in these tests. */
    std::shared_ptr<const rsu::mrf::SingletonModel>
    modelPtr() const
    {
        return {std::shared_ptr<const void>(), &model};
    }
};

InferenceJob
baseJob(const Problem &p, int sweeps, uint64_t seed = 11,
        int shards = 2)
{
    InferenceJob job;
    job.config = p.config;
    job.singleton = p.modelPtr();
    job.sweeps = sweeps;
    job.seed = seed;
    job.shards = shards;
    return job;
}

// ---------------------------------------------------------------
// shardRows precondition regressions (satellite: the guard accepts
// height == 0 — the message "need height >= 0" is the behaviour).
// ---------------------------------------------------------------

TEST(ShardRowsRobustness, ZeroHeightYieldsEmptyBands)
{
    const auto bands = shardRows(0, 4);
    ASSERT_EQ(bands.size(), 4u);
    for (const auto &band : bands) {
        EXPECT_EQ(band.y0, 0);
        EXPECT_EQ(band.y1, 0);
        EXPECT_EQ(band.rows(), 0);
    }
}

TEST(ShardRowsRobustness, NegativeHeightAndBadShardsThrow)
{
    EXPECT_THROW(shardRows(-1, 2), std::invalid_argument);
    EXPECT_THROW(shardRows(10, 0), std::invalid_argument);
    EXPECT_THROW(shardRows(10, -3), std::invalid_argument);
    EXPECT_THROW(shardRows(0, 0), std::invalid_argument);
    try {
        shardRows(-5, 2);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "shardRows: need height >= 0");
    }
}

// ---------------------------------------------------------------
// Cancellation and deadline semantics
// ---------------------------------------------------------------

TEST(Cancellation, InertTokenCostsNothingAndNeverCancels)
{
    CancellationToken inert;
    EXPECT_FALSE(inert.cancellable());
    EXPECT_FALSE(inert.cancelled());
    inert.cancel(); // no-op
    EXPECT_FALSE(inert.cancelled());

    auto live = CancellationToken::make();
    EXPECT_TRUE(live.cancellable());
    EXPECT_FALSE(live.cancelled());
    CancellationToken copy = live;
    copy.cancel();
    EXPECT_TRUE(live.cancelled());
}

TEST(Cancellation, ExecutorSkipsSweepOnceCancelled)
{
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 2);
    auto token = CancellationToken::make();
    executor.setCancellationToken(token);

    std::atomic<int> visits{0};
    auto count = [&](int, int, int) {
        visits.fetch_add(1, std::memory_order_relaxed);
    };
    EXPECT_TRUE(executor.sweep(6, 6, count));
    EXPECT_EQ(visits.load(), 36);

    token.cancel();
    EXPECT_FALSE(executor.sweep(6, 6, count));
    EXPECT_EQ(visits.load(), 36); // no site visited after cancel
    EXPECT_EQ(executor.timing().sweeps, 1u);
}

TEST(Cancellation, CancelAfterKSweepsIsBitExact)
{
    const Problem p(24, 18, 3, 5);
    constexpr int kCancelAt = 3;

    InferenceEngine::Options options;
    options.threads = 2;
    options.default_shards = 2;
    InferenceEngine engine(options);

    auto job = baseJob(p, 50);
    auto token = CancellationToken::make();
    job.cancel = token;
    job.on_sweep = [token](int done) mutable {
        if (done >= kCancelAt)
            token.cancel();
    };
    auto handle = engine.submit(std::move(job));
    const auto result = handle.get();

    EXPECT_EQ(result.outcome, JobOutcome::Cancelled);
    EXPECT_EQ(result.sweeps_run, kCancelAt);
    EXPECT_EQ(handle.status(), JobStatus::Done);
    EXPECT_EQ(handle.sweepsDone(), kCancelAt);

    // The partial labelling must be *exactly* the chain after
    // kCancelAt sweeps: same model, seed, shards, Table path.
    GridMrf direct(p.config, p.model);
    direct.initializeMaximumLikelihood();
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 2);
    ChromaticGibbsSampler sampler(direct, executor, 11,
                                  SamplerKind::SoftwareGibbs, {},
                                  rsu::mrf::SweepPath::Table);
    sampler.run(kCancelAt);
    EXPECT_EQ(result.labels, direct.labels());
    EXPECT_EQ(result.final_energy, direct.totalEnergy());
}

TEST(Cancellation, CancelledWhileQueuedIsTypedError)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    InferenceEngine engine(options);

    // Occupy the single dispatcher until released.
    std::atomic<bool> go{false};
    auto blocker = baseJob(p, 1);
    blocker.on_sweep = [&go](int) {
        while (!go.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    };
    auto blocker_handle = engine.submit(std::move(blocker));

    auto queued_handle = engine.submit(baseJob(p, 5));
    queued_handle.cancel();
    go.store(true);

    EXPECT_NO_THROW(blocker_handle.get());
    try {
        queued_handle.get();
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), EngineErrorCode::Cancelled);
    }
    EXPECT_EQ(queued_handle.status(), JobStatus::Cancelled);
}

TEST(Deadline, ExpiredInQueueIsTypedError)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    InferenceEngine engine(options);

    std::atomic<bool> go{false};
    auto blocker = baseJob(p, 1);
    blocker.on_sweep = [&go](int) {
        while (!go.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    };
    auto blocker_handle = engine.submit(std::move(blocker));

    auto doomed = baseJob(p, 5);
    doomed.deadline_seconds = 0.02;
    auto doomed_handle = engine.submit(std::move(doomed));

    // Let the deadline lapse while the job is stuck in the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    go.store(true);

    EXPECT_NO_THROW(blocker_handle.get());
    try {
        doomed_handle.get();
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), EngineErrorCode::DeadlineExceeded);
    }
    EXPECT_EQ(doomed_handle.status(), JobStatus::Cancelled);
}

TEST(Deadline, MidRunDeadlineReturnsPartialResult)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    InferenceEngine engine(options);

    auto job = baseJob(p, 1000);
    job.deadline_seconds = 0.03;
    job.on_sweep = [](int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    };
    const auto result = engine.submit(std::move(job)).get();

    EXPECT_EQ(result.outcome, JobOutcome::DeadlineExceeded);
    EXPECT_GT(result.sweeps_run, 0);
    EXPECT_LT(result.sweeps_run, 1000);
    EXPECT_EQ(result.labels.size(),
              static_cast<std::size_t>(16 * 16));
}

// ---------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------

TEST(Backpressure, RejectNewestThrowsQueueFull)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    options.max_queued_jobs = 1;
    options.backpressure = BackpressurePolicy::RejectNewest;
    InferenceEngine engine(options);

    std::atomic<bool> go{false};
    auto blocker = baseJob(p, 1);
    blocker.on_sweep = [&go](int) {
        while (!go.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    };
    auto blocker_handle = engine.submit(std::move(blocker));
    // Wait until the blocker leaves the queue and runs.
    while (blocker_handle.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    auto queued_handle = engine.submit(baseJob(p, 2)); // fills queue
    try {
        engine.submit(baseJob(p, 2));
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), EngineErrorCode::QueueFull);
    }

    go.store(true);
    EXPECT_NO_THROW(blocker_handle.get());
    EXPECT_NO_THROW(queued_handle.get());
}

TEST(Backpressure, BlockWaitsForSpaceThenCompletes)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    options.max_queued_jobs = 1;
    options.backpressure = BackpressurePolicy::Block;
    InferenceEngine engine(options);

    std::atomic<bool> go{false};
    auto blocker = baseJob(p, 1);
    blocker.on_sweep = [&go](int) {
        while (!go.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    };
    auto blocker_handle = engine.submit(std::move(blocker));
    while (blocker_handle.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto queued_handle = engine.submit(baseJob(p, 2));

    // The third submit must block until the dispatcher frees a
    // queue slot, then succeed.
    std::atomic<bool> submitted{false};
    std::future<rsu::runtime::InferenceResult> third;
    std::thread submitter([&] {
        auto handle = engine.submit(baseJob(p, 2));
        submitted.store(true);
        third = std::move(handle.future);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(submitted.load()); // still blocked on backpressure

    go.store(true);
    submitter.join();
    EXPECT_TRUE(submitted.load());
    EXPECT_NO_THROW(blocker_handle.get());
    EXPECT_NO_THROW(queued_handle.get());
    EXPECT_NO_THROW(third.get());
    EXPECT_EQ(engine.pendingJobs(), 0);
}

// ---------------------------------------------------------------
// Shutdown / destructor promise hygiene (satellite: queued futures
// must resolve with EngineError, never std::future_error)
// ---------------------------------------------------------------

TEST(Shutdown, CancelAllResolvesQueuedAndRunningFutures)
{
    const Problem p(16, 16, 3, 6);
    std::future<rsu::runtime::InferenceResult> running;
    std::vector<std::future<rsu::runtime::InferenceResult>> queued;
    {
        InferenceEngine::Options options;
        options.threads = 2;
        options.max_concurrent_jobs = 1;
        options.shutdown_mode = ShutdownMode::CancelAll;
        InferenceEngine engine(options);

        // The running job parks until its own token trips (which
        // CancelAll does), then finishes as a partial result.
        auto blocker = baseJob(p, 50);
        auto token = CancellationToken::make();
        blocker.cancel = token;
        blocker.on_sweep = [token](int) {
            while (!token.cancelled())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        };
        auto blocker_handle = engine.submit(std::move(blocker));
        while (blocker_handle.status() != JobStatus::Running)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        running = std::move(blocker_handle.future);

        for (int i = 0; i < 3; ++i)
            queued.push_back(
                engine.submit(baseJob(p, 5)).future);
        // Engine destroyed here with work outstanding.
    }

    // The running job resolved with a partial value.
    const auto partial = running.get();
    EXPECT_EQ(partial.outcome, JobOutcome::Cancelled);

    // Every queued-but-unstarted future resolved with the typed
    // error — not std::future_error from a broken promise.
    for (auto &future : queued) {
        try {
            future.get();
            FAIL() << "expected EngineError";
        } catch (const EngineError &e) {
            EXPECT_EQ(e.code(), EngineErrorCode::Cancelled);
        } catch (const std::future_error &) {
            FAIL() << "broken promise leaked to the caller";
        }
    }
}

TEST(Shutdown, DrainRunsEverythingToCompletion)
{
    const Problem p(16, 16, 3, 6);
    std::atomic<bool> go{false};
    std::vector<std::future<rsu::runtime::InferenceResult>> futures;
    std::thread releaser;
    {
        InferenceEngine::Options options;
        options.threads = 2;
        options.max_concurrent_jobs = 1;
        options.shutdown_mode = ShutdownMode::Drain;
        InferenceEngine engine(options);

        auto blocker = baseJob(p, 1);
        blocker.on_sweep = [&go](int) {
            while (!go.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        };
        futures.push_back(engine.submit(std::move(blocker)).future);
        for (int i = 0; i < 3; ++i)
            futures.push_back(
                engine.submit(baseJob(p, 3)).future);

        releaser = std::thread([&go] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            go.store(true);
        });
        // Drain destructor: blocks until all four jobs ran.
    }
    releaser.join();
    for (auto &future : futures) {
        const auto result = future.get();
        EXPECT_EQ(result.outcome, JobOutcome::Completed);
    }
}

TEST(Shutdown, SubmitAfterShutdownIsTypedError)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    InferenceEngine engine(options);
    engine.shutdown();
    engine.shutdown(); // idempotent
    try {
        engine.submit(baseJob(p, 1));
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), EngineErrorCode::Cancelled);
    }
}

// ---------------------------------------------------------------
// Hardened exception paths
// ---------------------------------------------------------------

TEST(ExceptionPaths, ThrowingSweepKernelRethrowsAndPoolSurvives)
{
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 2);

    EXPECT_THROW(executor.sweep(8, 8,
                                [](int, int x, int y) {
                                    if (x == 3 && y == 3)
                                        throw std::runtime_error(
                                            "kernel fault");
                                }),
                 std::runtime_error);

    // The pool and executor must still work: no wedged latch, no
    // poisoned workers.
    std::atomic<int> visits{0};
    EXPECT_TRUE(executor.sweep(8, 8, [&](int, int, int) {
        visits.fetch_add(1, std::memory_order_relaxed);
    }));
    EXPECT_EQ(visits.load(), 64);
}

TEST(ExceptionPaths, ThrowingJobResolvesFutureEngineSurvives)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    InferenceEngine engine(options);

    auto bad = baseJob(p, 3);
    bad.on_sweep = [](int) {
        throw std::runtime_error("job hook fault");
    };
    EXPECT_THROW(engine.submit(std::move(bad)).get(),
                 std::runtime_error);

    // The dispatcher that ran the bad job must still serve others.
    const auto result = engine.submit(baseJob(p, 3)).get();
    EXPECT_EQ(result.outcome, JobOutcome::Completed);
    EXPECT_EQ(engine.pendingJobs(), 0);
}

TEST(ExceptionPaths, ThrowingQualityHookIsAdvisory)
{
    const Problem p(16, 16, 3, 6);
    InferenceEngine::Options options;
    options.threads = 2;
    InferenceEngine engine(options);

    auto job = baseJob(p, 3);
    job.quality = [](const std::vector<rsu::mrf::Label> &) -> double {
        throw std::runtime_error("metric exploded");
    };
    job.quality_metric = "accuracy";
    const auto result = engine.submit(std::move(job)).get();

    EXPECT_EQ(result.outcome, JobOutcome::Completed);
    EXPECT_FALSE(result.quality.has_value());
    EXPECT_EQ(result.quality_error, "metric exploded");
    EXPECT_FALSE(result.labels.empty());
}

// ---------------------------------------------------------------
// Device fault injection (RET / RSU-G layer)
// ---------------------------------------------------------------

TEST(FaultInjection, PlanExpansionIsDeterministicAndValidated)
{
    rsu::ret::FaultPlan plan;
    plan.seed = 42;
    plan.stuck_led_fraction = 0.5;
    plan.dead_spad_fraction = 0.3;
    plan.dark_unit_fraction = 0.5;
    plan.dark_rate_per_ns = 0.25;
    plan.ttf_saturation_fraction = 0.1;
    EXPECT_TRUE(plan.anyFaults());

    const auto a = plan.faultsFor(3, 8);
    const auto b = plan.faultsFor(3, 8);
    EXPECT_EQ(a.led_stuck_high, b.led_stuck_high);
    EXPECT_EQ(a.led_stuck_low, b.led_stuck_low);
    EXPECT_EQ(a.dead_spad, b.dead_spad);
    EXPECT_EQ(a.dark_rate_per_ns, b.dark_rate_per_ns);
    EXPECT_EQ(a.force_ttf_saturation, b.force_ttf_saturation);

    // A lane is stuck high or low, never both; masks stay in the
    // 4-bit LED code.
    for (std::size_t lane = 0; lane < a.led_stuck_high.size();
         ++lane) {
        EXPECT_FALSE(a.led_stuck_high[lane] != 0 &&
                     a.led_stuck_low[lane] != 0);
        EXPECT_EQ(a.led_stuck_high[lane] & ~0xF, 0);
        EXPECT_EQ(a.led_stuck_low[lane] & ~0xF, 0);
    }

    EXPECT_THROW(plan.faultsFor(-1, 4), std::invalid_argument);
    EXPECT_THROW(plan.faultsFor(0, 0), std::invalid_argument);

    EXPECT_FALSE(rsu::ret::FaultPlan{}.anyFaults());
    EXPECT_FALSE(rsu::ret::UnitFaults{}.any());
}

TEST(FaultInjection, UnafflictedSliceLeavesUnitBitIdentical)
{
    // A plan slice that happened to break nothing must not disturb
    // the unit's entropy stream: same seed, same samples.
    rsu::core::EnergyInputs in;
    in.neighbors = {1, 2, 2, 3};
    in.data1 = 25;

    rsu::core::RsuG clean(rsu::core::RsuGConfig{}, 99);
    clean.initialize(4, 16.0);
    rsu::core::RsuG dosed(rsu::core::RsuGConfig{}, 99);
    dosed.initialize(4, 16.0);

    rsu::ret::FaultPlan empty_plan; // afflicts nothing
    dosed.injectFaults(empty_plan.faultsFor(0, 1));
    EXPECT_FALSE(dosed.faultsInjected());

    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(clean.sample(in), dosed.sample(in));
    EXPECT_FALSE(dosed.failed());
    EXPECT_EQ(dosed.stats().reraces, 0u);
}

TEST(FaultInjection, AllSaturatedRaceYieldsDefinedLabelAndCounts)
{
    // Property (satellite): with kTtfSaturated on every lane the
    // selection unit still returns a defined label — the
    // first-evaluated candidate (index M-1, down-counter order) —
    // and the health counters advance.
    rsu::ret::UnitFaults faults;
    faults.led_stuck_high.assign(1, 0);
    faults.led_stuck_low.assign(1, 0);
    faults.dead_spad.assign(1, 1); // the lane never fires
    faults.max_reraces = 2;
    faults.failure_threshold = 4;

    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 7);
    const int labels = 5;
    unit.initialize(labels, 16.0);
    unit.injectFaults(faults);
    EXPECT_TRUE(unit.faultsInjected());

    rsu::core::EnergyInputs in;
    in.neighbors = {0, 1, 2, 3};
    in.data1 = 30;

    for (int i = 0; i < 4; ++i) {
        const auto label = unit.sample(in);
        EXPECT_EQ(label, static_cast<rsu::core::Label>(labels - 1));
    }
    const auto &stats = unit.stats();
    // Every evaluation saturated...
    EXPECT_EQ(stats.saturated_ttfs, stats.label_evals);
    EXPECT_DOUBLE_EQ(stats.misfireFraction(), 1.0);
    // ...each sample re-raced max_reraces times then reported...
    EXPECT_EQ(stats.reraces, 4u * 2u);
    EXPECT_EQ(stats.unrecovered_races, 4u);
    EXPECT_EQ(stats.all_saturated_races, 4u * 3u);
    // ...and the threshold declared the unit failed.
    EXPECT_TRUE(unit.failed());
}

TEST(FaultInjection, DarkCountsMatchAnalyticThinnedRates)
{
    // Chi-square (satellite): with an elevated dark-count rate the
    // empirical winner histogram must match raceDistribution(),
    // whose oracle models dark counts through
    // Spad::effectiveRate(). max_reraces = 0 keeps the protocol out
    // of the distribution.
    rsu::ret::UnitFaults faults;
    faults.led_stuck_high.assign(1, 0);
    faults.led_stuck_low.assign(1, 0);
    faults.dead_spad.assign(1, 0);
    faults.dark_rate_per_ns = 0.35;

    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 2024);
    unit.initialize(5, 16.0);
    unit.injectFaults(faults);
    EXPECT_TRUE(unit.faultsInjected());

    rsu::core::EnergyInputs in;
    in.neighbors = {1, 2, 2, 3};
    in.data1 = 25;
    std::vector<uint8_t> data2 = {12, 25, 31, 40, 55};

    const auto expected = unit.raceDistribution(in, data2.data());
    std::vector<uint64_t> counts(5, 0);
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[unit.sample(in, data2.data())];

    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(4, 0.001));
}

TEST(FaultInjection, LaneVectorSizeMismatchThrows)
{
    rsu::core::RsuG unit(rsu::core::RsuGConfig{}, 7);
    rsu::ret::UnitFaults faults;
    faults.led_stuck_high.assign(2, 0); // unit width is 1
    faults.led_stuck_low.assign(2, 0);
    faults.dead_spad.assign(2, 0);
    EXPECT_THROW(unit.injectFaults(faults), std::invalid_argument);
}

// ---------------------------------------------------------------
// Graceful degradation end to end (acceptance)
// ---------------------------------------------------------------

TEST(Degradation, FaultedRsuJobFallsBackWithinOnePercent)
{
    const Problem p(32, 32, 3, 5);

    // Every SPAD lane dead: afflicted units saturate every race and
    // declare failure after a few sweeps.
    rsu::ret::FaultPlan plan;
    plan.seed = 7;
    plan.stuck_led_fraction = 0.5;
    plan.dead_spad_fraction = 1.0;
    plan.max_reraces = 1;
    plan.failure_threshold = 4;

    InferenceEngine::Options options;
    options.threads = 2;
    options.default_shards = 2;
    InferenceEngine engine(options);

    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = p.config.temperature;
    schedule.stop_temperature = 0.5;
    schedule.cooling_factor = 0.7;
    schedule.sweeps_per_stage = 4;

    auto make_rsu_job = [&] {
        auto job = baseJob(p, 0, 11, 2);
        job.sampler = SamplerKind::RsuGibbs;
        job.annealing = schedule;
        return job;
    };

    auto faulted = make_rsu_job();
    faulted.faults = plan;
    const auto degraded = engine.submit(std::move(faulted)).get();
    const auto healthy = engine.submit(make_rsu_job()).get();

    EXPECT_TRUE(degraded.degraded);
    EXPECT_GE(degraded.degraded_at_sweep, 0);
    EXPECT_EQ(degraded.outcome, JobOutcome::Completed);
    EXPECT_EQ(degraded.sweeps_run, healthy.sweeps_run);

    // The device-phase health telemetry travelled with the result.
    EXPECT_GT(degraded.device_stats.unrecovered_races, 0u);
    EXPECT_GT(degraded.device_stats.all_saturated_races, 0u);
    EXPECT_FALSE(healthy.degraded);
    EXPECT_EQ(healthy.device_stats.unrecovered_races, 0u);

    // Degradation must preserve solution quality: final energy
    // within 1% of the fault-free device run.
    const double healthy_energy =
        static_cast<double>(healthy.final_energy);
    const double degraded_energy =
        static_cast<double>(degraded.final_energy);
    EXPECT_LE(std::abs(degraded_energy - healthy_energy),
              0.01 * std::abs(healthy_energy))
        << "healthy " << healthy_energy << " vs degraded "
        << degraded_energy;
}

TEST(Degradation, FailJobPolicyRaisesDeviceFailed)
{
    const Problem p(24, 24, 3, 5);

    rsu::ret::FaultPlan plan;
    plan.seed = 7;
    plan.dead_spad_fraction = 1.0;
    plan.max_reraces = 1;
    plan.failure_threshold = 4;

    InferenceEngine::Options options;
    options.threads = 2;
    options.default_shards = 2;
    options.degradation = rsu::runtime::DegradationPolicy::FailJob;
    InferenceEngine engine(options);

    auto job = baseJob(p, 10);
    job.sampler = SamplerKind::RsuGibbs;
    job.faults = plan;
    try {
        engine.submit(std::move(job)).get();
        FAIL() << "expected EngineError";
    } catch (const EngineError &e) {
        EXPECT_EQ(e.code(), EngineErrorCode::DeviceFailed);
    }
}

TEST(Degradation, FaultFreeRsuJobIsBitIdenticalToSeedBehaviour)
{
    // The robustness layer must be invisible when unused: an RSU
    // job with no FaultPlan matches one submitted to an engine
    // carrying a plan-free job field default.
    const Problem p(20, 16, 3, 9);
    InferenceEngine::Options options;
    options.threads = 2;
    options.default_shards = 2;
    InferenceEngine engine(options);

    auto a = baseJob(p, 6, 21);
    a.sampler = SamplerKind::RsuGibbs;
    auto b = baseJob(p, 6, 21);
    b.sampler = SamplerKind::RsuGibbs;
    b.faults = rsu::ret::FaultPlan{}; // present but afflicts nothing

    const auto ra = engine.submit(std::move(a)).get();
    const auto rb = engine.submit(std::move(b)).get();
    EXPECT_EQ(ra.labels, rb.labels);
    EXPECT_EQ(ra.final_energy, rb.final_energy);
    EXPECT_FALSE(rb.degraded);
}

} // namespace
