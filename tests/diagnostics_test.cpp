/**
 * @file
 * Tests for the MCMC convergence diagnostics, including their
 * behaviour on actual sampler output.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mrf/diagnostics.h"
#include "mrf/estimator.h"
#include "mrf/gibbs.h"
#include "mrf/metropolis.h"
#include "rng/distributions.h"
#include "rng/xoshiro256.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::mrf;

TEST(GelmanRubin, NearOneForIdenticallyDistributedChains)
{
    rsu::rng::Xoshiro256 rng(1);
    std::vector<std::vector<double>> chains(4);
    for (auto &c : chains) {
        c.resize(2000);
        for (auto &x : c)
            x = rsu::rng::sampleNormal(rng, 5.0, 2.0);
    }
    const double rhat = gelmanRubin(chains);
    EXPECT_NEAR(rhat, 1.0, 0.02);
}

TEST(GelmanRubin, DetectsChainsStuckInDifferentModes)
{
    rsu::rng::Xoshiro256 rng(2);
    std::vector<std::vector<double>> chains(2);
    for (int j = 0; j < 2; ++j) {
        chains[j].resize(500);
        for (auto &x : chains[j])
            x = rsu::rng::sampleNormal(rng, j * 10.0, 1.0);
    }
    EXPECT_GT(gelmanRubin(chains), 2.0);
}

TEST(GelmanRubin, HandlesDegenerateChains)
{
    const std::vector<std::vector<double>> frozen_same = {
        {3.0, 3.0, 3.0}, {3.0, 3.0, 3.0}};
    EXPECT_DOUBLE_EQ(gelmanRubin(frozen_same), 1.0);
    const std::vector<std::vector<double>> frozen_apart = {
        {3.0, 3.0, 3.0}, {4.0, 4.0, 4.0}};
    EXPECT_TRUE(std::isinf(gelmanRubin(frozen_apart)));
}

TEST(GelmanRubin, ValidatesInput)
{
    EXPECT_THROW(gelmanRubin({{1.0, 2.0}}), std::invalid_argument);
    EXPECT_THROW(gelmanRubin({{1.0}, {2.0}}), std::invalid_argument);
    EXPECT_THROW(gelmanRubin({{1.0, 2.0}, {1.0}}),
                 std::invalid_argument);
}

TEST(AutocorrelationTime, NearOneForIndependentSamples)
{
    rsu::rng::Xoshiro256 rng(3);
    std::vector<double> chain(8000);
    for (auto &x : chain)
        x = rng.uniform();
    const double tau = autocorrelationTime(chain);
    EXPECT_NEAR(tau, 1.0, 0.3);
    EXPECT_NEAR(effectiveSampleSize(chain), 8000.0, 2500.0);
}

TEST(AutocorrelationTime, GrowsForCorrelatedChains)
{
    // AR(1) with coefficient 0.9: tau = (1+rho)/(1-rho) = 19.
    rsu::rng::Xoshiro256 rng(4);
    std::vector<double> chain(20000);
    double x = 0.0;
    for (auto &v : chain) {
        x = 0.9 * x + rsu::rng::sampleNormal(rng, 0.0, 1.0);
        v = x;
    }
    const double tau = autocorrelationTime(chain);
    EXPECT_GT(tau, 10.0);
    EXPECT_LT(tau, 30.0);
}

TEST(AutocorrelationTime, ConstantChainIsTrivial)
{
    const std::vector<double> chain(100, 7.0);
    EXPECT_DOUBLE_EQ(autocorrelationTime(chain), 1.0);
    EXPECT_THROW(autocorrelationTime({1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Diagnostics, GibbsChainsMixOnSegmentation)
{
    // Four independent Gibbs chains on the same model must agree
    // (R-hat ~ 1) after burn-in; Gibbs should also decorrelate
    // faster than Metropolis on the same problem.
    rsu::rng::Xoshiro256 rng(5);
    const auto scene =
        rsu::vision::makeSegmentationScene(24, 20, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 8.0, 4);

    auto energy_chain = [&](uint64_t seed, bool metropolis) {
        GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        std::vector<double> chain;
        if (metropolis) {
            MetropolisSampler sampler(mrf, seed);
            sampler.run(20); // burn-in
            for (int i = 0; i < 150; ++i) {
                sampler.sweep();
                chain.push_back(
                    static_cast<double>(mrf.totalEnergy()));
            }
        } else {
            GibbsSampler sampler(mrf, seed);
            sampler.run(20);
            for (int i = 0; i < 150; ++i) {
                sampler.sweep();
                chain.push_back(
                    static_cast<double>(mrf.totalEnergy()));
            }
        }
        return chain;
    };

    std::vector<std::vector<double>> chains;
    for (uint64_t seed : {11u, 22u, 33u, 44u})
        chains.push_back(energy_chain(seed, false));
    EXPECT_LT(gelmanRubin(chains), 1.1);

    const double tau_gibbs = autocorrelationTime(chains[0]);
    const double tau_mh =
        autocorrelationTime(energy_chain(11, true));
    EXPECT_LT(tau_gibbs, tau_mh + 1.0);
}

} // namespace
