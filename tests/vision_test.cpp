/**
 * @file
 * Unit tests for the vision layer: images, synthetic scenes,
 * application models, metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "vision/denoise.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/segmentation.h"
#include "vision/stereo.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::vision;
using rsu::core::Label;
using rsu::core::packVectorLabel;
using rsu::rng::Xoshiro256;

TEST(Image, ConstructionAndAccess)
{
    Image img(4, 3, 63, 7);
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.size(), 12);
    EXPECT_EQ(img.at(2, 1), 7);
    img.set(2, 1, 30);
    EXPECT_EQ(img.at(2, 1), 30);
    EXPECT_THROW(Image(0, 3), std::invalid_argument);
}

TEST(Image, ClampedAccessExtendsEdges)
{
    Image img(2, 2, 63);
    img.set(0, 0, 1);
    img.set(1, 0, 2);
    img.set(0, 1, 3);
    img.set(1, 1, 4);
    EXPECT_EQ(img.atClamped(-5, -5), 1);
    EXPECT_EQ(img.atClamped(9, 0), 2);
    EXPECT_EQ(img.atClamped(0, 9), 3);
    EXPECT_EQ(img.atClamped(9, 9), 4);
}

TEST(Image, RequantizeRescalesRange)
{
    Image img(2, 1, 255);
    img.set(0, 0, 0);
    img.set(1, 0, 255);
    const Image q = img.requantized(63);
    EXPECT_EQ(q.maxval(), 63);
    EXPECT_EQ(q.at(0, 0), 0);
    EXPECT_EQ(q.at(1, 0), 63);
}

TEST(Image, PgmRoundTrip)
{
    Xoshiro256 rng(1);
    Image img = makeValueNoise(17, 9, 3, 63, rng);
    const std::string path = "/tmp/rsu_test_roundtrip.pgm";
    img.writePgm(path);
    const Image back = Image::readPgm(path);
    EXPECT_EQ(back.width(), img.width());
    EXPECT_EQ(back.height(), img.height());
    EXPECT_EQ(back.maxval(), img.maxval());
    EXPECT_EQ(back.pixels(), img.pixels());
    std::remove(path.c_str());
}

TEST(Image, ReadsAsciiPgmWithComments)
{
    const std::string path = "/tmp/rsu_test_ascii.pgm";
    {
        std::ofstream out(path);
        out << "P2\n# a comment line\n3 2\n63\n"
            << "0 10 20\n30 40 63\n";
    }
    const Image img = Image::readPgm(path);
    EXPECT_EQ(img.width(), 3);
    EXPECT_EQ(img.height(), 2);
    EXPECT_EQ(img.at(1, 0), 10);
    EXPECT_EQ(img.at(2, 1), 63);
    std::remove(path.c_str());
}

TEST(Image, ReadRejectsGarbage)
{
    const std::string path = "/tmp/rsu_test_bad.pgm";
    {
        std::ofstream out(path);
        out << "P6\n2 2\n255\nxxxx";
    }
    EXPECT_THROW(Image::readPgm(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(Image::readPgm("/nonexistent/nope.pgm"),
                 std::runtime_error);
}

TEST(Synthetic, ValueNoiseStaysInRange)
{
    Xoshiro256 rng(2);
    const Image img = makeValueNoise(64, 48, 4, 63, rng);
    int min = 255, max = 0;
    for (uint8_t p : img.pixels()) {
        min = std::min<int>(min, p);
        max = std::max<int>(max, p);
    }
    EXPECT_GE(min, 0);
    EXPECT_LE(max, 63);
    EXPECT_GT(max - min, 10); // actually textured
}

TEST(Synthetic, SegmentationSceneIsConsistent)
{
    Xoshiro256 rng(3);
    const auto scene = makeSegmentationScene(40, 30, 5, 2.0, rng);
    EXPECT_EQ(scene.image.size(), 1200);
    EXPECT_EQ(scene.truth.size(), 1200u);
    EXPECT_EQ(scene.region_means.size(), 5u);
    // Noise-free pixels should be near their region mean.
    int close = 0;
    for (int i = 0; i < 1200; ++i) {
        const int mean = scene.region_means[scene.truth[i]];
        if (std::abs(static_cast<int>(scene.image.pixels()[i]) -
                     mean) <= 6)
            ++close;
    }
    EXPECT_GT(close, 1100); // 3-sigma of 2.0 = 6
}

TEST(Synthetic, MotionSceneWarpMatchesTruth)
{
    Xoshiro256 rng(4);
    const auto scene = makeMotionScene(48, 40, 2, 3, 0.0, rng);
    ASSERT_EQ(scene.radius, 3);
    // For moving pixels whose target stays in bounds and is not
    // overwritten by another mover, frame2(p + d) == frame1(p).
    int checked = 0, matched = 0;
    for (int y = 0; y < 40; ++y) {
        for (int x = 0; x < 48; ++x) {
            const Label t = scene.truth[y * 48 + x];
            const int dx = rsu::core::labelX1(t) - 3;
            const int dy = rsu::core::labelX2(t) - 3;
            if (dx == 0 && dy == 0)
                continue;
            const int tx = x + dx, ty = y + dy;
            if (tx < 0 || tx >= 48 || ty < 0 || ty >= 40)
                continue;
            ++checked;
            if (scene.frame2.at(tx, ty) == scene.frame1.at(x, y))
                ++matched;
        }
    }
    ASSERT_GT(checked, 50);
    EXPECT_GT(matched, checked * 9 / 10);
}

TEST(Synthetic, StereoSceneShiftMatchesTruth)
{
    Xoshiro256 rng(5);
    const auto scene = makeStereoScene(40, 30, 4, 0.0, rng);
    int checked = 0, matched = 0;
    for (int y = 0; y < 30; ++y) {
        for (int x = 0; x < 40; ++x) {
            const int d = scene.truth[y * 40 + x];
            if (x + d >= 40)
                continue;
            ++checked;
            if (scene.right.at(x, y) == scene.left.at(x + d, y))
                ++matched;
        }
    }
    EXPECT_EQ(checked, matched);
}

TEST(SegmentationModel, DataInputsAreMeansAndPixels)
{
    Image img(4, 4, 63, 20);
    img.set(1, 2, 33);
    SegmentationModel model(img, {5, 25, 45});
    EXPECT_EQ(model.data1(1, 2), 33);
    EXPECT_EQ(model.data1(0, 0), 20);
    EXPECT_EQ(model.data2(0, 0, 1), 25);
    EXPECT_EQ(model.data2(3, 3, 2), 45);
    EXPECT_EQ(model.numLabels(), 3);
    EXPECT_THROW(SegmentationModel(img, {}), std::invalid_argument);
    EXPECT_THROW(SegmentationModel(img, {70}), std::invalid_argument);
}

TEST(SegmentationModel, EvenMeansAreSpreadAndSorted)
{
    const auto means = SegmentationModel::evenMeans(5);
    ASSERT_EQ(means.size(), 5u);
    for (size_t i = 1; i < means.size(); ++i)
        EXPECT_GT(means[i], means[i - 1]);
    EXPECT_LT(means[0], 13);
    EXPECT_GT(means[4], 50);
}

TEST(SegmentationModel, KmeansFindsBimodalModes)
{
    Image img(20, 20, 63);
    for (int i = 0; i < img.size(); ++i)
        img.pixels()[i] = (i % 2) ? 10 : 50;
    const auto means = SegmentationModel::kmeansMeans(img, 2);
    ASSERT_EQ(means.size(), 2u);
    EXPECT_NEAR(means[0], 10, 2);
    EXPECT_NEAR(means[1], 50, 2);
}

TEST(MotionModel, Data2FollowsDisplacement)
{
    Xoshiro256 rng(6);
    const Image f1 = makeValueNoise(16, 16, 3, 63, rng);
    const Image f2 = makeValueNoise(16, 16, 3, 63, rng);
    MotionModel model(f1, f2, 3);
    EXPECT_EQ(model.numLabels(), 49);
    EXPECT_EQ(model.data1(5, 5), f1.at(5, 5));
    // Label (dx=+2, dy=-1) -> packed (5, 2).
    const Label l = packVectorLabel(5, 2);
    EXPECT_EQ(model.data2(5, 5, l), f2.at(7, 4));
    // Clamping at the border.
    EXPECT_EQ(model.data2(0, 0, packVectorLabel(0, 0)), f2.at(0, 0));
}

TEST(MotionModel, IndexLabelMapsRoundTrip)
{
    for (int radius : {1, 2, 3}) {
        const int m = (2 * radius + 1) * (2 * radius + 1);
        for (int i = 0; i < m; ++i) {
            const Label l = MotionModel::indexToLabel(i, radius);
            EXPECT_EQ(MotionModel::labelToIndex(l, radius), i);
        }
    }
}

TEST(MotionModel, ConfigUsesVectorCodes)
{
    Xoshiro256 rng(7);
    const Image f1 = makeValueNoise(8, 8, 2, 63, rng);
    const auto config = motionConfig(f1, 3);
    EXPECT_EQ(config.num_labels, 49);
    EXPECT_EQ(config.energy.mode, rsu::core::LabelMode::Vector);
    ASSERT_EQ(config.label_codes.size(), 49u);
    // Code of window index 0 is displacement (-3, -3) -> packed 0.
    EXPECT_EQ(config.label_codes[0], packVectorLabel(0, 0));
    // Centre index 24 is (0, 0) displacement -> packed (3, 3).
    EXPECT_EQ(config.label_codes[24], packVectorLabel(3, 3));
}

TEST(StereoModel, Data2ShiftsLeftward)
{
    Xoshiro256 rng(8);
    const Image left = makeValueNoise(16, 8, 2, 63, rng);
    const Image right = makeValueNoise(16, 8, 2, 63, rng);
    StereoModel model(left, right, 5);
    EXPECT_EQ(model.data1(6, 3), left.at(6, 3));
    EXPECT_EQ(model.data2(6, 3, 2), right.at(4, 3));
    EXPECT_EQ(model.data2(1, 0, 4), right.at(0, 0)); // clamped
    EXPECT_THROW(StereoModel(left, right, 1), std::invalid_argument);
    EXPECT_THROW(StereoModel(left, right, 9), std::invalid_argument);
}

TEST(DenoiseModel, LevelsQuantizeTheRange)
{
    Image img(4, 4, 63, 30);
    DenoiseModel model(img, 4);
    EXPECT_EQ(model.numLabels(), 4);
    EXPECT_LT(model.levelValue(0), model.levelValue(3));
    EXPECT_EQ(model.data1(0, 0), 30);
    EXPECT_EQ(model.data2(0, 0, 2), model.levelValue(2));

    std::vector<Label> labels(16, 3);
    const Image rec = model.reconstruct(labels);
    EXPECT_EQ(rec.at(2, 2), model.levelValue(3));
}

TEST(Metrics, LabelAccuracyCounts)
{
    const std::vector<Label> a = {0, 1, 2, 3};
    const std::vector<Label> b = {0, 1, 0, 3};
    EXPECT_DOUBLE_EQ(labelAccuracy(a, b), 0.75);
    EXPECT_THROW(labelAccuracy(a, {0}), std::invalid_argument);
}

TEST(Metrics, EndpointErrorHandChecked)
{
    const std::vector<Label> truth = {packVectorLabel(3, 3),
                                      packVectorLabel(3, 3)};
    const std::vector<Label> est = {packVectorLabel(3, 3),
                                    packVectorLabel(6, 7)};
    // Second site: error vector (3, 4) -> length 5; mean 2.5.
    EXPECT_DOUBLE_EQ(meanEndpointError(est, truth), 2.5);
}

TEST(Metrics, PsnrBehaviour)
{
    Image a(4, 4, 63, 10);
    Image b(4, 4, 63, 10);
    EXPECT_TRUE(std::isinf(psnr(a, b)));
    b.set(0, 0, 20);
    const double noisy = psnr(a, b);
    EXPECT_GT(noisy, 20.0);
    EXPECT_TRUE(std::isfinite(noisy));
    b.pixels().assign(16, 40);
    EXPECT_LT(psnr(a, b), noisy);
}

} // namespace
