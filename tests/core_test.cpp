/**
 * @file
 * Unit tests for the RSU-G core: energy datapath, intensity map,
 * selection, the sampling unit itself, and the instruction
 * interface.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/energy_unit.h"
#include "core/intensity_map.h"
#include "core/rsu_g.h"
#include "core/rsu_isa.h"
#include "core/selection_unit.h"
#include "rng/stats.h"

namespace {

using namespace rsu::core;

TEST(EnergyUnit, ScalarDoubletonIsSquaredDifference)
{
    const EnergyUnit unit;
    EXPECT_EQ(unit.doubleton(3, 3), 0);
    EXPECT_EQ(unit.doubleton(5, 2), 9);
    EXPECT_EQ(unit.doubleton(0, 7), 49);
    // Scalar mode ignores the upper 3 bits of the label.
    EXPECT_EQ(unit.doubleton(0b111000 | 2, 2), 0);
}

TEST(EnergyUnit, DoubletonWeightScalesDistance)
{
    EnergyConfig config;
    config.doubleton_weight = 3;
    const EnergyUnit unit(config);
    EXPECT_EQ(unit.doubleton(4, 1), 27);
}

TEST(EnergyUnit, VectorDoubletonSumsComponents)
{
    EnergyConfig config;
    config.mode = LabelMode::Vector;
    const EnergyUnit unit(config);
    const Label a = packVectorLabel(1, 2);
    const Label b = packVectorLabel(4, 6);
    EXPECT_EQ(unit.doubleton(a, b), 9 + 16);
    EXPECT_EQ(unit.doubleton(a, a), 0);
}

TEST(EnergyUnit, TruncatedDoubletonCapsTheDistance)
{
    EnergyConfig config;
    config.doubleton_cap = 4;
    config.doubleton_weight = 3;
    const EnergyUnit unit(config);
    EXPECT_EQ(unit.doubleton(0, 1), 3 * 1);  // below the cap
    EXPECT_EQ(unit.doubleton(0, 2), 3 * 4);  // at the cap
    EXPECT_EQ(unit.doubleton(0, 7), 3 * 4);  // truncated
    // Vector mode truncates the summed distance.
    EnergyConfig vec = config;
    vec.mode = LabelMode::Vector;
    const EnergyUnit vunit(vec);
    EXPECT_EQ(vunit.doubleton(packVectorLabel(0, 0),
                              packVectorLabel(1, 1)),
              3 * 2);
    EXPECT_EQ(vunit.doubleton(packVectorLabel(0, 0),
                              packVectorLabel(7, 7)),
              3 * 4);
    // Zero disables truncation.
    const EnergyUnit plain;
    EXPECT_EQ(plain.doubleton(0, 7), 49);
    EnergyConfig bad;
    bad.doubleton_cap = -1;
    EXPECT_THROW(EnergyUnit{bad}, std::invalid_argument);
}

TEST(EnergyUnit, SingletonAppliesShift)
{
    EnergyConfig config;
    config.singleton_shift = 4;
    const EnergyUnit unit(config);
    EXPECT_EQ(unit.singleton(63, 0), 3969 >> 4);
    EXPECT_EQ(unit.singleton(10, 10), 0);
    EXPECT_EQ(unit.singleton(0, 16), 16);

    EnergyConfig raw;
    raw.singleton_shift = 0;
    EXPECT_EQ(EnergyUnit(raw).singleton(10, 4), 36);
}

TEST(EnergyUnit, EvaluateSumsCliquesAndSaturates)
{
    EnergyConfig config;
    config.doubleton_weight = 2;
    config.singleton_shift = 4;
    const EnergyUnit unit(config);

    EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    in.data2 = 4;
    // singleton (16^2)>>4 = 16; doubletons 2*((1)+(0)+(1)+(4)) = 12.
    EXPECT_EQ(unit.evaluate(2, in), 28);

    // Border pixel: invalid neighbours contribute nothing.
    in.neighbor_valid = {true, false, false, true};
    EXPECT_EQ(unit.evaluate(2, in), 16 + 2 * (1 + 4));

    // Saturation at 255.
    EnergyInputs hot;
    hot.neighbors = {7, 7, 7, 7};
    hot.data1 = 63;
    hot.data2 = 0;
    EnergyConfig heavy;
    heavy.doubleton_weight = 10;
    heavy.singleton_shift = 0;
    EXPECT_EQ(EnergyUnit(heavy).evaluate(0, hot), 255);
}

TEST(EnergyUnit, OffsetReReferencesWithZeroFloor)
{
    const EnergyUnit unit;
    EnergyInputs in;
    in.neighbors = {2, 2, 2, 2};
    in.data1 = 20;
    in.data2 = 20;
    const Energy base = unit.evaluate(4, in); // 4 * (2)^2 = 16
    EXPECT_EQ(base, 16);
    in.energy_offset = 10;
    EXPECT_EQ(unit.evaluate(4, in), 6);
    in.energy_offset = 30; // better than the offset: floors at 0
    EXPECT_EQ(unit.evaluate(4, in), 0);
    // The offset applies after 8-bit saturation of the clique sum.
    EnergyConfig heavy;
    heavy.doubleton_weight = 10;
    heavy.singleton_shift = 0;
    EnergyInputs hot;
    hot.neighbors = {7, 7, 7, 7};
    hot.data1 = 63;
    hot.data2 = 0;
    hot.energy_offset = 55;
    EXPECT_EQ(EnergyUnit(heavy).evaluate(0, hot), 200);
}

TEST(EnergyUnit, RejectsBadConfig)
{
    EnergyConfig bad;
    bad.doubleton_weight = -1;
    EXPECT_THROW(EnergyUnit{bad}, std::invalid_argument);
    bad = EnergyConfig{};
    bad.singleton_shift = 13;
    EXPECT_THROW(EnergyUnit{bad}, std::invalid_argument);
}

TEST(IntensityMap, BuildIsMonotoneInEnergy)
{
    const rsu::ret::QdLedBank bank;
    IntensityMap map;
    map.build(bank, 16.0);
    double prev = bank.intensity(map.lookup(0));
    EXPECT_DOUBLE_EQ(prev, bank.maxIntensity());
    for (int e = 1; e < map.entries(); ++e) {
        const double cur = bank.intensity(map.lookup(e));
        EXPECT_LE(cur, prev + 1e-12);
        prev = cur;
    }
}

TEST(IntensityMap, HighEnergiesMapToOff)
{
    const rsu::ret::QdLedBank bank;
    IntensityMap map;
    map.build(bank, 8.0);
    // exp(-255/8) is far below the dimmest LED: code 0.
    EXPECT_EQ(map.lookup(255), 0);
}

TEST(IntensityMap, LookupClampsOutOfRangeEnergies)
{
    IntensityMap map;
    map.setEntry(0, 5);
    map.setEntry(255, 9);
    EXPECT_EQ(map.lookup(-3), 5);
    EXPECT_EQ(map.lookup(400), 9);
}

TEST(IntensityMap, WordPackingRoundTrips)
{
    IntensityMap map;
    for (int e = 0; e < map.entries(); ++e)
        map.setEntry(e, static_cast<uint8_t>((e * 7) & 0x0f));
    IntensityMap copy;
    for (int w = 0; w < map.words(); ++w)
        copy.writeWord(w, map.readWord(w));
    EXPECT_TRUE(map == copy);
    EXPECT_EQ(map.sizeBytes(), 128);
    EXPECT_EQ(map.words(), 16);
}

TEST(IntensityMap, BoundsAreChecked)
{
    IntensityMap map;
    EXPECT_THROW(map.setEntry(-1, 0), std::out_of_range);
    EXPECT_THROW(map.setEntry(256, 0), std::out_of_range);
    EXPECT_THROW(map.writeWord(16, 0), std::out_of_range);
    EXPECT_THROW(map.readWord(-1), std::out_of_range);
    EXPECT_THROW(IntensityMap(1), std::invalid_argument);
}

TEST(SelectionUnit, KeepsStrictMinimum)
{
    SelectionUnit sel;
    sel.observe(4, 20);
    sel.observe(3, 10);
    sel.observe(2, 15);
    EXPECT_EQ(sel.bestLabel(), 3);
    EXPECT_EQ(sel.bestTtf(), 10);
}

TEST(SelectionUnit, TiesKeepTheIncumbent)
{
    SelectionUnit sel;
    sel.observe(5, 12);
    sel.observe(1, 12);
    EXPECT_EQ(sel.bestLabel(), 5);
}

TEST(SelectionUnit, FirstObservationAlwaysLands)
{
    SelectionUnit sel;
    sel.observe(7, 255); // saturated but first
    EXPECT_TRUE(sel.hasObservation());
    EXPECT_EQ(sel.bestLabel(), 7);
    sel.observe(2, 255);
    EXPECT_EQ(sel.bestLabel(), 7);
    sel.reset();
    EXPECT_FALSE(sel.hasObservation());
}

TEST(RsuG, LatencyMatchesPaperFormulas)
{
    // RSU-G1: 7 + (M - 1) cycles (section 5.1).
    RsuGConfig g1;
    g1.width = 1;
    RsuG unit1(g1);
    unit1.initialize(5, 16.0);
    EXPECT_EQ(unit1.latencyCycles(), 7 + (5 - 1));
    unit1.setNumLabels(49);
    EXPECT_EQ(unit1.latencyCycles(), 7 + (49 - 1));

    // RSU-G64 evaluates 64 labels in 12 cycles (section 5.1).
    RsuGConfig g64;
    g64.width = 64;
    RsuG unit64(g64);
    unit64.initialize(64, 16.0);
    EXPECT_EQ(unit64.latencyCycles(), 12);
}

TEST(RsuG, SteadyStateIntervalCoversQuiescence)
{
    RsuGConfig config;
    config.width = 1;
    config.circuits_per_lane = 4;
    config.circuit.quiescence_cycles = 4;
    RsuG unit(config);
    unit.initialize(5, 16.0);
    EXPECT_DOUBLE_EQ(unit.steadyStateIntervalCycles(), 5.0);

    // Under-replicated lanes stall: 2 circuits, 4-cycle quiescence.
    RsuGConfig starved = config;
    starved.circuits_per_lane = 2;
    RsuG hungry(starved);
    hungry.initialize(5, 16.0);
    EXPECT_DOUBLE_EQ(hungry.steadyStateIntervalCycles(), 10.0);
}

TEST(RsuG, StallCountersMatchReplication)
{
    EnergyInputs in;
    in.neighbors = {1, 1, 1, 1};
    in.data1 = 10;
    in.data2 = 10;

    RsuGConfig full;
    full.circuits_per_lane = 4;
    RsuG ok(full, 1);
    ok.initialize(8, 16.0);
    for (int i = 0; i < 50; ++i)
        ok.sample(in);
    EXPECT_EQ(ok.stats().stall_cycles, 0u);
    EXPECT_EQ(ok.stats().samples, 50u);
    EXPECT_EQ(ok.stats().label_evals, 400u);

    RsuGConfig starved;
    starved.circuits_per_lane = 1;
    RsuG stalls(starved, 1);
    stalls.initialize(8, 16.0);
    for (int i = 0; i < 50; ++i)
        stalls.sample(in);
    // One circuit with 4-cycle quiescence: 3 stall cycles per
    // issue after the first.
    EXPECT_GT(stalls.stats().stall_cycles, 0u);
    EXPECT_NEAR(static_cast<double>(stalls.stats().stall_cycles) /
                    stalls.stats().label_evals,
                3.0, 0.1);
}

TEST(RsuG, RaceDistributionIsNormalized)
{
    RsuG unit;
    unit.initialize(5, 16.0);
    EnergyInputs in;
    in.neighbors = {0, 1, 2, 3};
    in.data1 = 30;
    in.data2 = 20;
    const auto dist = unit.raceDistribution(in);
    EXPECT_EQ(dist.size(), 5u);
    const double total =
        std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RsuG, RaceDistributionTracksSoftmax)
{
    // Well-conditioned energies: the quantized race should be close
    // to the ideal Gibbs conditional.
    RsuG unit;
    const double t = 16.0;
    unit.initialize(4, t);
    EnergyInputs in;
    in.neighbors = {0, 0, 1, 1};
    in.data1 = 24;

    std::vector<uint8_t> data2 = {24, 30, 18, 40};
    const auto dist = unit.raceDistribution(in, data2.data());

    std::vector<double> soft(4);
    double z = 0.0;
    for (int i = 0; i < 4; ++i) {
        const Energy e = unit.labelEnergy(
            static_cast<Label>(i), in, data2[i]);
        soft[i] = std::exp(-static_cast<double>(e) / t);
        z += soft[i];
    }
    for (int i = 0; i < 4; ++i) {
        soft[i] /= z;
        EXPECT_NEAR(dist[i], soft[i], 0.05)
            << "label " << i;
    }
}

TEST(RsuG, SampleHistogramMatchesRaceDistribution)
{
    RsuG unit(RsuGConfig{}, 12345);
    unit.initialize(5, 16.0);
    EnergyInputs in;
    in.neighbors = {1, 2, 2, 3};
    in.data1 = 25;
    std::vector<uint8_t> data2 = {12, 25, 31, 40, 55};

    const auto expected = unit.raceDistribution(in, data2.data());
    std::vector<uint64_t> counts(5, 0);
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[unit.sample(in, data2.data())];

    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(4, 0.001));
}

TEST(RsuG, WideUnitSamplesSameDistribution)
{
    EnergyInputs in;
    in.neighbors = {1, 1, 3, 3};
    in.data1 = 30;
    std::vector<uint8_t> data2 = {20, 28, 35, 42, 50};

    RsuGConfig wide;
    wide.width = 4;
    RsuG unit(wide, 777);
    unit.initialize(5, 16.0);

    const auto expected = unit.raceDistribution(in, data2.data());
    std::vector<uint64_t> counts(5, 0);
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[unit.sample(in, data2.data())];
    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(4, 0.001));
}

TEST(RsuG, DecodeTableRemapsCandidates)
{
    RsuG unit(RsuGConfig{}, 99);
    unit.initialize(3, 16.0);
    unit.setLabelCodes({10, 20, 30});
    EnergyInputs in;
    in.neighbors = {10, 10, 10, 10};
    in.data1 = 0;
    in.data2 = 0;
    for (int i = 0; i < 64; ++i) {
        const Label code = unit.sample(in);
        EXPECT_TRUE(code == 10 || code == 20 || code == 30);
    }
    EXPECT_THROW(unit.setLabelCodes({1, 2}), std::invalid_argument);
}

TEST(RsuG, RejectsBadConfigs)
{
    RsuGConfig bad;
    bad.width = 0;
    EXPECT_THROW(RsuG{bad}, std::invalid_argument);
    bad = RsuGConfig{};
    bad.circuits_per_lane = 0;
    EXPECT_THROW(RsuG{bad}, std::invalid_argument);
    RsuG unit;
    EXPECT_THROW(unit.setNumLabels(0), std::invalid_argument);
    EXPECT_THROW(unit.setNumLabels(65), std::invalid_argument);
    EXPECT_THROW(unit.initialize(4, -1.0), std::invalid_argument);
}

TEST(RsuIsa, NeighborPackingRoundTrips)
{
    const std::array<Label, 4> labels = {5, 0, 63, 17};
    const std::array<bool, 4> valid = {true, false, true, false};
    const uint64_t word = packNeighbors(labels, valid);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ((word >> (6 * i)) & 0x3f, labels[i] & 0x3f);
        EXPECT_EQ(((word >> (24 + i)) & 1) == 0, valid[i]);
    }
}

TEST(RsuIsa, SingletonPackingReplicatesShortWrites)
{
    const uint8_t values[3] = {7, 9, 11};
    const uint64_t word = packSingletonD(values, 3);
    EXPECT_EQ((word >> 0) & 0x3f, 7u);
    EXPECT_EQ((word >> 8) & 0x3f, 9u);
    EXPECT_EQ((word >> 16) & 0x3f, 11u);
    // Padding lanes repeat the last value.
    EXPECT_EQ((word >> 56) & 0x3f, 11u);
    EXPECT_THROW(packSingletonD(values, 0), std::invalid_argument);
    EXPECT_THROW(packSingletonD(values, 9), std::invalid_argument);
}

TEST(RsuIsa, DeviceSamplesTheConfiguredModel)
{
    RsuG unit(RsuGConfig{}, 4242);
    unit.initialize(5, 16.0);
    RsuDevice dev(unit);

    EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 22;
    std::vector<uint8_t> data2 = {10, 20, 30, 40, 50};

    const auto expected = unit.raceDistribution(in, data2.data());

    std::vector<uint64_t> counts(5, 0);
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) {
        dev.write(RsuReg::Neighbors,
                  packNeighbors(in.neighbors, in.neighbor_valid));
        dev.write(RsuReg::SingletonA, in.data1);
        dev.write(RsuReg::SingletonD,
                  packSingletonD(data2.data(), 5));
        const auto result = dev.readResult();
        EXPECT_EQ(result.latency_cycles, 7 + 4);
        ++counts[result.label];
    }
    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(4, 0.001));
    EXPECT_EQ(dev.instructionCount(), kDraws * 4u);
}

TEST(RsuIsa, MapTableWritesReachTheLut)
{
    RsuG unit;
    unit.initialize(2, 16.0);
    RsuDevice dev(unit);
    dev.write(RsuReg::DownCounter, 1); // resets stream pointers
    // Fill the whole LUT with a known pattern through the hi/lo
    // streams.
    for (int w = 0; w < 8; ++w)
        dev.write(RsuReg::MapLo, 0x1111111111111111ULL * (w % 4));
    for (int w = 0; w < 8; ++w)
        dev.write(RsuReg::MapHi, 0x2222222222222222ULL);
    EXPECT_EQ(unit.intensityMap().lookup(0), 0x0);
    EXPECT_EQ(unit.intensityMap().lookup(16), 0x1);
    EXPECT_EQ(unit.intensityMap().lookup(200), 0x2);
}

TEST(RsuIsa, EnergyOffsetRegisterReReferences)
{
    RsuG unit(RsuGConfig{}, 321);
    unit.initialize(2, 16.0);
    RsuDevice dev(unit);

    // Two candidates with large common energy but a small genuine
    // difference (below the 8-bit saturation point): without the
    // offset both map past the LED ladder's range (all channels
    // dark, the first-evaluated candidate wins by default); with
    // the offset the difference drives a live race.
    EnergyInputs in;
    in.neighbors = {5, 5, 5, 5};
    in.data1 = 40;
    uint8_t data2[2] = {40, 8};
    EnergyConfig cfg;
    cfg.doubleton_weight = 2;
    RsuGConfig config;
    config.energy = cfg;
    RsuG unit2(config, 321);
    unit2.initialize(2, 16.0);
    RsuDevice dev2(unit2);
    // Energies: label 0 = 4*2*25 + 0 = 200; label 1 = 4*2*16 +
    // (32^2 >> 4) = 128 + 64 = 192. Both >> T*ln(30) ~ 54.

    auto count_zero = [&](uint8_t offset) {
        int zeros = 0;
        for (int i = 0; i < 4000; ++i) {
            dev2.write(RsuReg::Neighbors,
                       packNeighbors(in.neighbors));
            dev2.write(RsuReg::SingletonA, in.data1);
            dev2.write(RsuReg::SingletonD,
                       packSingletonD(data2, 2));
            dev2.write(RsuReg::EnergyOffset, offset);
            if (dev2.readResult().label == 0)
                ++zeros;
        }
        return zeros;
    };

    // Unreferenced: all channels dark, the incumbent (index 1,
    // evaluated first) always wins — label 0 never appears, for
    // the wrong reason.
    EXPECT_EQ(count_zero(0), 0);
    // Referenced to the better candidate (192): E' = {8, 0}, a
    // live race where label 0 wins with probability
    // ~exp(-8/16) / (1 + exp(-8/16)) ~ 0.38.
    const int zeros_ref = count_zero(192);
    EXPECT_GT(zeros_ref, 800);
    EXPECT_LT(zeros_ref, 2400);
}

TEST(RsuIsa, MapStreamPointersWrapPerHalf)
{
    RsuG unit;
    unit.initialize(2, 16.0);
    RsuDevice dev(unit);
    dev.write(RsuReg::DownCounter, 1);
    // 9 writes to MapLo: the 9th wraps to word 0 again.
    for (int i = 0; i < 8; ++i)
        dev.write(RsuReg::MapLo, 0x1111111111111111ULL);
    dev.write(RsuReg::MapLo, 0x7777777777777777ULL);
    EXPECT_EQ(unit.intensityMap().lookup(0), 0x7);
    EXPECT_EQ(unit.intensityMap().lookup(16), 0x1);
}

TEST(RsuIsa, ContextSaveRestoreRoundTrips)
{
    RsuG unit_a;
    unit_a.initialize(7, 12.0);
    RsuDevice dev_a(unit_a);
    const RsuContext ctx = dev_a.saveContext();
    EXPECT_EQ(ctx.down_counter, 6);
    EXPECT_EQ(ctx.map_words.size(), 16u);

    RsuG unit_b;
    unit_b.initialize(2, 99.0); // different application state
    RsuDevice dev_b(unit_b);
    dev_b.restoreContext(ctx);
    EXPECT_EQ(unit_b.numLabels(), 7);
    EXPECT_TRUE(unit_b.intensityMap() == unit_a.intensityMap());
}

TEST(RsuIsa, ReadResultIsTheRestartBoundary)
{
    RsuG unit(RsuGConfig{}, 5);
    unit.initialize(3, 16.0);
    RsuDevice dev(unit);
    EnergyInputs in;
    in.neighbors = {0, 0, 0, 0};

    // Stream per-label data, read, then read again with fresh data:
    // the second evaluation must not see the first stream.
    uint8_t first[3] = {0, 0, 63};
    dev.write(RsuReg::Neighbors, packNeighbors(in.neighbors));
    dev.write(RsuReg::SingletonA, 63);
    dev.write(RsuReg::SingletonD, packSingletonD(first, 3));
    (void)dev.readResult();

    // Without new SINGLETON_D writes the fifo is empty: data2 = 0
    // for every candidate, which with data1 = 0 gives a nearly
    // uniform conditional. Label 2's singleton would have been 0
    // under the stale stream.
    dev.write(RsuReg::SingletonA, 0);
    std::vector<uint64_t> counts(3, 0);
    for (int i = 0; i < 30000; ++i) {
        dev.write(RsuReg::Neighbors, packNeighbors(in.neighbors));
        ++counts[dev.readResult().label];
    }
    // Doubletons still differ per label (neighbours are 0), but the
    // saturated singleton from the stale stream would have crushed
    // labels 0/1 to near-zero probability. Check label 0 dominates
    // instead (neighbour agreement).
    EXPECT_GT(counts[0], counts[2]);
}

} // namespace
