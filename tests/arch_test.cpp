/**
 * @file
 * Unit tests for the architecture models, pinned against the
 * paper's published numbers (Tables 2-4, section 8.2).
 */

#include <gtest/gtest.h>

#include "arch/accelerator_model.h"
#include "arch/cpu_model.h"
#include "arch/gpu_model.h"
#include "arch/power_area.h"
#include "arch/technology.h"
#include "arch/workload.h"

namespace {

using namespace rsu::arch;

TEST(Technology, NodeLookup)
{
    EXPECT_EQ(nodeByFeature(45).feature_nm, 45);
    EXPECT_EQ(nodeByFeature(15).feature_nm, 15);
    EXPECT_THROW(nodeByFeature(7), std::invalid_argument);
}

TEST(Technology, IdentityScalingIsNeutral)
{
    const TechNode &n45 = nodeByFeature(45);
    EXPECT_DOUBLE_EQ(scalePower(7.2, n45, 590, n45, 590), 7.2);
    EXPECT_DOUBLE_EQ(scaleArea(100.0, n45, n45), 100.0);
}

TEST(Technology, FrequencyScalesPowerLinearly)
{
    const TechNode &n45 = nodeByFeature(45);
    EXPECT_NEAR(scalePower(10.0, n45, 500, n45, 1000), 20.0, 1e-9);
    EXPECT_THROW(scalePower(1.0, n45, 0.0, n45, 1.0),
                 std::invalid_argument);
}

TEST(Technology, ProjectionReproducesPaperTable3Power)
{
    // Paper Table 3: logic 7.20 mW @45nm/590MHz -> 2.33 @15nm/1GHz;
    // LUT 3.92 -> 1.42.
    const TechNode &n45 = nodeByFeature(45);
    const TechNode &n15 = nodeByFeature(15);
    EXPECT_NEAR(scalePower(7.20, n45, 590, n15, 1000, false), 2.33,
                0.02);
    EXPECT_NEAR(scalePower(3.92, n45, 590, n15, 1000, true), 1.42,
                0.02);
}

TEST(Technology, ProjectionReproducesPaperTable4Area)
{
    // Paper Table 4: logic 2275 -> 642 um^2; LUT 1798 -> 656 um^2.
    const TechNode &n45 = nodeByFeature(45);
    const TechNode &n15 = nodeByFeature(15);
    EXPECT_NEAR(scaleArea(2275.0, n45, n15, false), 642.0, 3.0);
    EXPECT_NEAR(scaleArea(1798.0, n45, n15, true), 656.0, 3.0);
}

TEST(PowerArea, ReferenceTotalsMatchTable3And4)
{
    const RsuBudget ref = RsuPowerAreaModel::reference45nm();
    EXPECT_NEAR(ref.totalPowerMw(), 11.28, 1e-9);
    EXPECT_NEAR(ref.totalAreaUm2(), 5673.0, 1e-9);
}

TEST(PowerArea, ProjectedTotalsMatchTable3And4)
{
    const RsuBudget b = RsuPowerAreaModel::project(15, 1000.0);
    EXPECT_NEAR(b.logic_mw, 2.33, 0.02);
    EXPECT_NEAR(b.lut_mw, 1.42, 0.02);
    EXPECT_DOUBLE_EQ(b.ret_mw, 0.16);
    EXPECT_NEAR(b.totalPowerMw(), 3.91, 0.04);
    EXPECT_NEAR(b.logic_um2, 642.0, 3.0);
    EXPECT_NEAR(b.lut_um2, 656.0, 3.0);
    EXPECT_DOUBLE_EQ(b.ret_um2, 1600.0);
    EXPECT_NEAR(b.totalAreaUm2(), 2898.0, 6.0);
}

TEST(PowerArea, WidthProjectionScalesComponents)
{
    const RsuBudget g1 = RsuPowerAreaModel::project(15, 1000.0);
    const RsuBudget same =
        RsuPowerAreaModel::projectWidth(15, 1000.0, 1, 4);
    EXPECT_NEAR(same.totalPowerMw(), g1.totalPowerMw(), 1e-9);
    EXPECT_NEAR(same.totalAreaUm2(), g1.totalAreaUm2(), 1e-9);

    const RsuBudget g4 =
        RsuPowerAreaModel::projectWidth(15, 1000.0, 4, 4);
    // Optics and LUT scale by K; logic slightly super-linearly.
    EXPECT_NEAR(g4.ret_mw, 4.0 * g1.ret_mw, 1e-9);
    EXPECT_NEAR(g4.lut_um2, 4.0 * g1.lut_um2, 1e-9);
    EXPECT_GT(g4.logic_mw, 4.0 * g1.logic_mw);
    EXPECT_LT(g4.logic_mw, 5.0 * g1.logic_mw);

    // Replication scales only the optics.
    const RsuBudget deep =
        RsuPowerAreaModel::projectWidth(15, 1000.0, 1, 8);
    EXPECT_NEAR(deep.ret_mw, 2.0 * g1.ret_mw, 1e-9);
    EXPECT_NEAR(deep.logic_mw, g1.logic_mw, 1e-9);

    EXPECT_THROW(RsuPowerAreaModel::projectWidth(15, 1000.0, 0),
                 std::invalid_argument);
}

TEST(PowerArea, SystemRollupsMatchPaper)
{
    const RsuBudget unit = RsuPowerAreaModel::project(15, 1000.0);
    // GPU augmented with 3072 units: ~12 W (section 8.3).
    EXPECT_NEAR(RsuPowerAreaModel::systemPowerW(unit, 3072), 12.0,
                0.15);
    // 336-unit accelerator: ~1.3 W.
    EXPECT_NEAR(RsuPowerAreaModel::systemPowerW(unit, 336), 1.3,
                0.03);
    EXPECT_DOUBLE_EQ(RsuPowerAreaModel::retCircuitAreaUm2(), 400.0);
}

class GpuTable2Test : public ::testing::Test
{
  protected:
    GpuModel model_;
};

TEST_F(GpuTable2Test, BaselineColumnsMatchCalibration)
{
    // Paper Table 2, GPU column: 0.3 / 3.2 (seg), 0.55 / 7.17
    // (motion). The baseline is the calibration target, so the
    // tolerance is tight.
    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    EXPECT_NEAR(model_.totalSeconds(seg_s, GpuVariant::Baseline),
                0.30, 0.02);
    EXPECT_NEAR(model_.totalSeconds(seg_hd, GpuVariant::Baseline),
                3.2, 0.2);
    EXPECT_NEAR(model_.totalSeconds(mot_s, GpuVariant::Baseline),
                0.55, 0.04);
    EXPECT_NEAR(model_.totalSeconds(mot_hd, GpuVariant::Baseline),
                7.17, 0.8);
}

TEST_F(GpuTable2Test, OptimizedColumnIsPredictedWithin15Percent)
{
    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    EXPECT_NEAR(model_.totalSeconds(seg_s, GpuVariant::Optimized),
                0.23, 0.23 * 0.15);
    EXPECT_NEAR(model_.totalSeconds(seg_hd, GpuVariant::Optimized),
                2.6, 2.6 * 0.15);
    EXPECT_NEAR(model_.totalSeconds(mot_s, GpuVariant::Optimized),
                0.27, 0.27 * 0.15);
    EXPECT_NEAR(model_.totalSeconds(mot_hd, GpuVariant::Optimized),
                3.35, 3.35 * 0.15);
}

TEST_F(GpuTable2Test, RsuColumnsArePredictedWithin20Percent)
{
    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    EXPECT_NEAR(model_.totalSeconds(seg_s, GpuVariant::RsuG1), 0.09,
                0.09 * 0.20);
    EXPECT_NEAR(model_.totalSeconds(seg_hd, GpuVariant::RsuG1), 1.1,
                1.1 * 0.20);
    EXPECT_NEAR(model_.totalSeconds(mot_s, GpuVariant::RsuG1), 0.04,
                0.04 * 0.20);
    EXPECT_NEAR(model_.totalSeconds(mot_hd, GpuVariant::RsuG1), 0.45,
                0.45 * 0.20);
    EXPECT_NEAR(model_.totalSeconds(mot_s, GpuVariant::RsuG4), 0.02,
                0.02 * 0.20);
    EXPECT_NEAR(model_.totalSeconds(mot_hd, GpuVariant::RsuG4), 0.21,
                0.21 * 0.20);
}

TEST_F(GpuTable2Test, SpeedupShapesMatchFigure8)
{
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    // Segmentation HD: ~3x over baseline GPU for RSU-G1, and G4
    // adds nothing (M = 5 is issue-bound, not width-bound).
    const double seg_g1 = model_.speedup(seg_hd, GpuVariant::RsuG1,
                                         GpuVariant::Baseline);
    EXPECT_NEAR(seg_g1, 3.0, 0.6);
    const double seg_g4 = model_.speedup(seg_hd, GpuVariant::RsuG4,
                                         GpuVariant::Baseline);
    EXPECT_NEAR(seg_g4 / seg_g1, 1.0, 0.05);

    // Motion HD: ~16x over baseline for G1, G4 roughly doubles it.
    const double mot_g1 = model_.speedup(mot_hd, GpuVariant::RsuG1,
                                         GpuVariant::Baseline);
    EXPECT_NEAR(mot_g1, 16.0, 3.5);
    const double mot_g4 = model_.speedup(mot_hd, GpuVariant::RsuG4,
                                         GpuVariant::Baseline);
    EXPECT_GT(mot_g4 / mot_g1, 1.6);

    // Ordering invariants: RSU beats Opt beats Baseline everywhere.
    for (const auto &w : {seg_hd, mot_hd}) {
        EXPECT_GT(model_.speedup(w, GpuVariant::Optimized,
                                 GpuVariant::Baseline),
                  1.0);
        EXPECT_GT(model_.speedup(w, GpuVariant::RsuG1,
                                 GpuVariant::Optimized),
                  1.0);
    }
}

TEST_F(GpuTable2Test, SmallImagesUnderfillTheGpu)
{
    const auto small = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto hd = segmentationWorkload(kHdWidth, kHdHeight);
    EXPECT_LT(model_.occupancy(small), 0.6);
    EXPECT_GT(model_.occupancy(hd), 0.9);
}

TEST_F(GpuTable2Test, RsuPowerBudgetMatchesSection83)
{
    EXPECT_NEAR(model_.rsuPowerW(15), 12.0, 0.15);
}

TEST(GpuModel, MemoryFloorBindsWhenComputeVanishes)
{
    GpuConfig tiny_bw;
    tiny_bw.mem_bw_gbs = 0.001;
    const GpuModel model(tiny_bw);
    const auto w = segmentationWorkload(64, 64);
    const double expected =
        w.pixels() * w.bytes_per_pixel / (0.001 * 1e9);
    EXPECT_DOUBLE_EQ(model.iterationSeconds(w, GpuVariant::RsuG1),
                     expected);
}

TEST(GpuModel, RejectsBadConfig)
{
    GpuConfig bad;
    bad.lanes = 0;
    EXPECT_THROW(GpuModel{bad}, std::invalid_argument);
}

TEST(Accelerator, BandwidthBoundTimesMatchSection82)
{
    const AcceleratorModel accel;
    // Paper: seg small 102400*5*5000/336e9 etc.
    EXPECT_NEAR(accel.totalSeconds(
                    segmentationWorkload(kSmallWidth, kSmallHeight)),
                0.00762, 0.0002);
    EXPECT_NEAR(accel.totalSeconds(
                    segmentationWorkload(kHdWidth, kHdHeight)),
                0.1543, 0.002);
    EXPECT_NEAR(accel.totalSeconds(
                    motionWorkload(kSmallWidth, kSmallHeight)),
                0.00658, 0.0002);
    EXPECT_NEAR(accel.totalSeconds(motionWorkload(kHdWidth,
                                                  kHdHeight)),
                0.1333, 0.002);
}

TEST(Accelerator, RequiresPaperUnitCount)
{
    const AcceleratorModel accel;
    EXPECT_EQ(accel.requiredUnits(), 336);
    EXPECT_NEAR(accel.rsuPowerW(15), 1.3, 0.03);
}

TEST(Accelerator, SpeedupsOverGpuMatchSection82)
{
    const AcceleratorModel accel;
    const GpuModel gpu;

    // Paper: 39 / 21 (seg small/HD), 84 / 54 (motion small/HD)
    // over the baseline GPU. Our GPU times are modeled, so allow
    // modest slack.
    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    EXPECT_NEAR(gpu.totalSeconds(seg_s, GpuVariant::Baseline) /
                    accel.totalSeconds(seg_s),
                39.0, 5.0);
    EXPECT_NEAR(gpu.totalSeconds(seg_hd, GpuVariant::Baseline) /
                    accel.totalSeconds(seg_hd),
                21.0, 3.0);
    EXPECT_NEAR(gpu.totalSeconds(mot_s, GpuVariant::Baseline) /
                    accel.totalSeconds(mot_s),
                84.0, 12.0);
    EXPECT_NEAR(gpu.totalSeconds(mot_hd, GpuVariant::Baseline) /
                    accel.totalSeconds(mot_hd),
                54.0, 8.0);

    // Motion HD: only ~1.55x over the RSU-G4 GPU (it nearly
    // saturates memory bandwidth).
    EXPECT_NEAR(gpu.totalSeconds(mot_hd, GpuVariant::RsuG4) /
                    accel.totalSeconds(mot_hd),
                1.55, 0.4);
}

TEST(Accelerator, UnitsScaleWithBandwidth)
{
    AcceleratorConfig config;
    config.mem_bw_gbs = 672.0;
    const AcceleratorModel accel(config);
    EXPECT_EQ(accel.requiredUnits(), 672);
    EXPECT_NEAR(accel.totalSeconds(
                    segmentationWorkload(kSmallWidth, kSmallHeight)),
                0.00381, 0.0002);
}

TEST(Cpu, RsuAugmentedCoreExceedsHundredFold)
{
    const CpuModel cpu;
    const auto seg = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto stereo = stereoWorkload(kSmallWidth, kSmallHeight);
    EXPECT_GT(cpu.speedup(seg), 100.0);
    EXPECT_GT(cpu.speedup(stereo), 100.0);
    EXPECT_GT(cpu.baselineSeconds(seg), cpu.rsuSeconds(seg));
}

TEST(Workloads, ByteAccountingMatchesSection82)
{
    EXPECT_EQ(segmentationWorkload(10, 10).bytes_per_pixel, 5);
    EXPECT_EQ(motionWorkload(10, 10).bytes_per_pixel, 54);
    EXPECT_EQ(segmentationWorkload(10, 10).num_labels, 5);
    EXPECT_EQ(motionWorkload(10, 10).num_labels, 49);
    EXPECT_EQ(segmentationWorkload(10, 10).iterations, 5000);
    EXPECT_EQ(motionWorkload(10, 10).iterations, 400);
    EXPECT_EQ(motionWorkload(3, 4).pixels(), 12);
}

} // namespace
