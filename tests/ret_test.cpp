/**
 * @file
 * Unit tests for the RET device substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ret/qdled.h"
#include "ret/ret_circuit.h"
#include "ret/ret_network.h"
#include "ret/spad.h"
#include "ret/ttf_timer.h"
#include "rng/stats.h"
#include "rng/xoshiro256.h"

namespace {

using namespace rsu::ret;
using rsu::rng::RunningMoments;
using rsu::rng::Xoshiro256;

TEST(QdLedBank, IntensityIsSumOfLitLeds)
{
    const QdLedBank bank({1.0, 2.0, 4.0, 8.0});
    EXPECT_DOUBLE_EQ(bank.intensity(0b0000), 0.0);
    EXPECT_DOUBLE_EQ(bank.intensity(0b0001), 1.0);
    EXPECT_DOUBLE_EQ(bank.intensity(0b1010), 10.0);
    EXPECT_DOUBLE_EQ(bank.intensity(0b1111), 15.0);
    EXPECT_DOUBLE_EQ(bank.maxIntensity(), 15.0);
    EXPECT_DOUBLE_EQ(bank.minIntensity(), 1.0);
}

TEST(QdLedBank, DesignWeightsCoverDynamicRange)
{
    const auto w = QdLedBank::designWeights(255.0);
    const QdLedBank bank(w);
    // Largest single LED alone must reach the dynamic range.
    EXPECT_NEAR(w[3] / w[0], 255.0, 1e-9);
    EXPECT_GE(bank.maxIntensity() / bank.minIntensity(), 255.0);
}

TEST(QdLedBank, NearestCodeIsLogOptimal)
{
    const QdLedBank bank; // default geometric ladder
    for (double target = bank.minIntensity();
         target <= bank.maxIntensity(); target *= 1.37) {
        const uint8_t code = bank.nearestCode(target);
        const double chosen_err =
            std::abs(std::log(bank.intensity(code) / target));
        for (int other = 1; other < kNumLedCodes; ++other) {
            const double err = std::abs(
                std::log(bank.intensity(other) / target));
            EXPECT_LE(chosen_err, err + 1e-12);
        }
    }
}

TEST(QdLedBank, NearestCodeZeroTargetIsOff)
{
    const QdLedBank bank;
    EXPECT_EQ(bank.nearestCode(0.0), 0);
    EXPECT_EQ(bank.nearestCode(-1.0), 0);
}

TEST(QdLedBank, RejectsBadWeights)
{
    EXPECT_THROW(QdLedBank({1.0, 0.0, 1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(QdLedBank::designWeights(0.5), std::invalid_argument);
}

TEST(TtfTimer, QuantizesAtTickBoundaries)
{
    const TtfTimer timer(1.0); // 0.125 ns ticks
    EXPECT_DOUBLE_EQ(timer.tickNs(), 0.125);
    EXPECT_EQ(timer.quantize(0.0), 0);
    EXPECT_EQ(timer.quantize(0.1249), 0);
    EXPECT_EQ(timer.quantize(0.125), 1);
    EXPECT_EQ(timer.quantize(0.3), 2);
}

TEST(TtfTimer, SaturatesLateAndInvalidArrivals)
{
    const TtfTimer timer(1.0);
    EXPECT_EQ(timer.quantize(255 * 0.125), kTtfSaturated);
    EXPECT_EQ(timer.quantize(1e9), kTtfSaturated);
    EXPECT_EQ(timer.quantize(-1.0), kTtfSaturated);
    EXPECT_EQ(timer.quantize(
                  std::numeric_limits<double>::infinity()),
              kTtfSaturated);
}

TEST(TtfTimer, TickProbabilitiesFormADistribution)
{
    const TtfTimer timer(1.0);
    for (double rate : {0.01, 0.5, 3.0}) {
        double total = 0.0;
        for (int q = 0; q <= kTtfSaturated; ++q) {
            total += timer.tickProbability(
                rate, static_cast<uint8_t>(q));
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(TtfTimer, TickDistributionIsGeometric)
{
    const TtfTimer timer(1.0);
    const double rate = 0.8;
    const double p0 = timer.tickProbability(rate, 0);
    const double p1 = timer.tickProbability(rate, 1);
    const double p2 = timer.tickProbability(rate, 2);
    EXPECT_NEAR(p1 / p0, p2 / p1, 1e-12);
    EXPECT_NEAR(p1 / p0, std::exp(-rate * timer.tickNs()), 1e-12);
}

TEST(TtfTimer, ZeroRateMassesOnSaturation)
{
    const TtfTimer timer(1.0);
    EXPECT_DOUBLE_EQ(timer.tickProbability(0.0, kTtfSaturated), 1.0);
    EXPECT_DOUBLE_EQ(timer.tickProbability(0.0, 7), 0.0);
}

TEST(ExponentialNetwork, TtfMeanMatchesRate)
{
    Xoshiro256 rng(7);
    ExponentialNetwork net(0.5);
    RunningMoments m;
    for (int i = 0; i < 100000; ++i)
        m.add(net.sampleTtf(rng, 2.0)); // rate = 1.0
    EXPECT_NEAR(m.mean(), 1.0, 0.02);
}

TEST(ExponentialNetwork, ZeroIntensityNeverFires)
{
    Xoshiro256 rng(7);
    ExponentialNetwork net(1.0);
    EXPECT_TRUE(std::isinf(net.sampleTtf(rng, 0.0)));
}

TEST(ExponentialNetwork, WearReducesEffectiveRate)
{
    Xoshiro256 rng(7);
    WearModel wear;
    wear.bleach_per_cycle = 1e-3;
    ExponentialNetwork net(1.0, wear);
    const double fresh = net.effectiveRate();
    for (int i = 0; i < 1000; ++i)
        net.sampleTtf(rng, 1.0);
    EXPECT_LT(net.effectiveRate(), fresh);
    EXPECT_NEAR(net.survivingFraction(),
                std::pow(1.0 - 1e-3, 1000), 1e-6);
    EXPECT_EQ(net.cycles(), 1000u);
    net.refresh();
    EXPECT_DOUBLE_EQ(net.effectiveRate(), fresh);
}

TEST(ExponentialNetwork, EncapsulationSlowsWear)
{
    Xoshiro256 rng(7);
    WearModel wear;
    wear.bleach_per_cycle = 1e-3;
    wear.encapsulation_factor = 0.1;
    ExponentialNetwork net(1.0, wear);
    for (int i = 0; i < 1000; ++i)
        net.sampleTtf(rng, 1.0);
    EXPECT_NEAR(net.survivingFraction(),
                std::pow(1.0 - 1e-4, 1000), 1e-6);
}

TEST(PhaseTypeNetwork, ErlangMeanAndShape)
{
    Xoshiro256 rng(11);
    const auto net = PhaseTypeNetwork::makeErlang(3, 2.0);
    EXPECT_NEAR(net.meanTtf(), 1.5, 1e-9);
    RunningMoments m;
    for (int i = 0; i < 100000; ++i)
        m.add(net.sampleTtf(rng));
    EXPECT_NEAR(m.mean(), 1.5, 0.02);
    // Erlang-3 variance = k / rate^2 = 0.75.
    EXPECT_NEAR(m.variance(), 0.75, 0.03);
}

TEST(PhaseTypeNetwork, BernoulliPathProbability)
{
    Xoshiro256 rng(13);
    const auto net = PhaseTypeNetwork::makeBernoulli(3.0, 1.0);
    int bright = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (std::isfinite(net.sampleTtf(rng)))
            ++bright;
    }
    EXPECT_NEAR(bright / double(kDraws), 0.75, 0.01);
}

TEST(PhaseTypeNetwork, IntensityGatesTheFirstHop)
{
    Xoshiro256 rng(17);
    const auto net = PhaseTypeNetwork::makeErlang(1, 1.0);
    RunningMoments m;
    for (int i = 0; i < 50000; ++i)
        m.add(net.sampleTtf(rng, 4.0));
    EXPECT_NEAR(m.mean(), 0.25, 0.01);
}

TEST(PhaseTypeNetwork, RejectsMalformedRates)
{
    EXPECT_THROW(PhaseTypeNetwork({}, 0), std::invalid_argument);
    EXPECT_THROW(PhaseTypeNetwork({{0.0}}, 0), std::invalid_argument);
    EXPECT_THROW(PhaseTypeNetwork({{0.0, -1.0}}, 0),
                 std::invalid_argument);
    EXPECT_THROW(PhaseTypeNetwork({{0.0, 1.0}}, 5),
                 std::invalid_argument);
}

TEST(Spad, PerfectDetectorPassesRateThrough)
{
    const Spad spad;
    EXPECT_DOUBLE_EQ(spad.effectiveRate(2.5), 2.5);
    EXPECT_DOUBLE_EQ(spad.effectiveRate(0.0), 0.0);
}

TEST(Spad, EfficiencyThinsTheRate)
{
    const Spad spad({.efficiency = 0.4});
    EXPECT_DOUBLE_EQ(spad.effectiveRate(10.0), 4.0);
}

TEST(Spad, DarkCountsRaceAgainstSignal)
{
    Xoshiro256 rng(19);
    const Spad spad({.efficiency = 1.0, .dark_rate_per_ns = 0.5});
    EXPECT_DOUBLE_EQ(spad.effectiveRate(1.5), 2.0);
    // Even a dead channel produces (dark) detections.
    EXPECT_TRUE(std::isfinite(spad.detect(rng, 0.0)));
}

TEST(Spad, RejectsBadModel)
{
    EXPECT_THROW(Spad({.efficiency = 0.0}), std::invalid_argument);
    EXPECT_THROW(Spad({.efficiency = 1.5}), std::invalid_argument);
    EXPECT_THROW(Spad({.dark_rate_per_ns = -1.0}),
                 std::invalid_argument);
}

TEST(RetCircuit, DetectionRateFollowsLedCode)
{
    RetCircuit circ;
    EXPECT_DOUBLE_EQ(circ.detectionRate(0), 0.0);
    EXPECT_GT(circ.detectionRate(0b1111), circ.detectionRate(0b0001));
    // Default tuning: all-on code gives a 1/ns detection rate.
    EXPECT_NEAR(circ.detectionRate(0b1111), 1.0, 1e-9);
}

TEST(RetCircuit, CodeZeroSaturates)
{
    Xoshiro256 rng(23);
    RetCircuit circ;
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(circ.sample(rng, 0), kTtfSaturated);
}

TEST(RetCircuit, QuiescenceWindowIsHonoured)
{
    Xoshiro256 rng(29);
    RetCircuitConfig config;
    config.quiescence_cycles = 4;
    RetCircuit circ(config);
    EXPECT_TRUE(circ.readyAt(0));
    circ.sampleAt(rng, 0b1111, 10);
    EXPECT_EQ(circ.busyUntil(), 14u);
    EXPECT_FALSE(circ.readyAt(13));
    EXPECT_TRUE(circ.readyAt(14));
}

TEST(RetCircuit, QuantizedTtfMatchesAnalyticDistribution)
{
    Xoshiro256 rng(31);
    RetCircuit circ;
    const uint8_t code = 0b0110;
    const double rate = circ.detectionRate(code);
    // Histogram the low ticks and chi-square against the analytic
    // geometric tick law; the tail is pooled into one bin.
    constexpr int kBins = 24;
    std::vector<uint64_t> counts(kBins + 1, 0);
    constexpr int kDraws = 120000;
    for (int i = 0; i < kDraws; ++i) {
        const uint8_t q = circ.sample(rng, code);
        counts[std::min<int>(q, kBins)] += 1;
    }
    std::vector<double> expected(kBins + 1, 0.0);
    double tail = 1.0;
    for (int q = 0; q < kBins; ++q) {
        expected[q] = circ.timer().tickProbability(
            rate, static_cast<uint8_t>(q));
        tail -= expected[q];
    }
    expected[kBins] = tail;
    const double stat =
        rsu::rng::chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, rsu::rng::chiSquareCritical(kBins, 0.001));
}

TEST(RetCircuit, SpadNoiseShiftsDetectionRate)
{
    RetCircuitConfig config;
    config.spad.efficiency = 0.5;
    config.spad.dark_rate_per_ns = 0.01;
    RetCircuit circ(config);
    RetCircuit ideal;
    const uint8_t code = 0b1111;
    EXPECT_NEAR(circ.detectionRate(code),
                0.5 * ideal.detectionRate(code) + 0.01, 1e-9);
}

} // namespace
