/**
 * @file
 * Chromatic runtime tests: shard partitioning, pool/latch basics,
 * determinism of the parallel chain (including bit-equality with the
 * sequential samplers at one shard), chromatic phase safety, and the
 * inference-engine job layer.
 */

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rsu_g.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/rsu_gibbs.h"
#include "mrf/schedule.h"
#include "rng/streams.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/inference_engine.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using rsu::mrf::GridMrf;
using rsu::mrf::Label;
using rsu::runtime::ChromaticGibbsSampler;
using rsu::runtime::InferenceEngine;
using rsu::runtime::InferenceJob;
using rsu::runtime::ParallelSweepExecutor;
using rsu::runtime::SamplerKind;
using rsu::runtime::shardRows;
using rsu::runtime::ThreadPool;

/** A small segmentation problem with deterministic content. */
struct Problem
{
    rsu::vision::SegmentationScene scene;
    rsu::vision::SegmentationModel model;
    rsu::mrf::MrfConfig config;

    Problem(int width, int height, int labels, uint64_t seed)
        : scene(makeScene(width, height, labels, seed)),
          model(scene.image, scene.region_means),
          config(rsu::vision::segmentationConfig(scene.image, labels))
    {
    }

    static rsu::vision::SegmentationScene
    makeScene(int width, int height, int labels, uint64_t seed)
    {
        rsu::rng::Xoshiro256 rng(seed);
        return rsu::vision::makeSegmentationScene(width, height,
                                                  labels, 3.0, rng);
    }

    /** Non-owning view for job submission; the Problem outlives
     * every future in these tests. */
    std::shared_ptr<const rsu::mrf::SingletonModel>
    modelPtr() const
    {
        return {std::shared_ptr<const void>(), &model};
    }
};

TEST(ShardRows, PartitionCoversDisjointBalanced)
{
    for (int height : {1, 7, 24, 100}) {
        for (int shards : {1, 2, 3, 8, 150}) {
            const auto bands = shardRows(height, shards);
            ASSERT_EQ(static_cast<int>(bands.size()), shards);
            int y = 0, min_rows = height, max_rows = 0;
            for (const auto &band : bands) {
                EXPECT_EQ(band.y0, y);
                EXPECT_GE(band.rows(), 0);
                y = band.y1;
                min_rows = std::min(min_rows, band.rows());
                max_rows = std::max(max_rows, band.rows());
            }
            EXPECT_EQ(y, height);
            EXPECT_LE(max_rows - min_rows, 1);
        }
    }
    EXPECT_THROW(shardRows(10, 0), std::invalid_argument);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> counter{0};
    rsu::runtime::Latch latch(100);
    for (int i = 0; i < 100; ++i)
        pool.submit([&] {
            counter.fetch_add(1, std::memory_order_relaxed);
            latch.countDown();
        });
    latch.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(Schedule, ForEachSiteInRowsMatchesWholeLatticeSweep)
{
    const int w = 9, h = 7;
    std::vector<std::pair<int, int>> whole;
    rsu::mrf::forEachSite(w, h, rsu::mrf::Schedule::Checkerboard,
                          [&](int x, int y) {
                              whole.emplace_back(x, y);
                          });

    std::vector<std::pair<int, int>> by_rows;
    for (int parity = 0; parity < 2; ++parity)
        rsu::mrf::forEachSiteInRows(w, 0, h, parity,
                                    [&](int x, int y) {
                                        by_rows.emplace_back(x, y);
                                    });
    EXPECT_EQ(whole, by_rows);

    // A banded visit covers each colour class exactly once, and
    // every visited site has the phase's parity.
    const auto bands = shardRows(h, 3);
    for (int parity = 0; parity < 2; ++parity) {
        std::set<std::pair<int, int>> visited;
        for (const auto &band : bands)
            rsu::mrf::forEachSiteInRows(
                w, band.y0, band.y1, parity, [&](int x, int y) {
                    EXPECT_EQ((x + y) & 1, parity);
                    EXPECT_TRUE(visited.emplace(x, y).second);
                });
        EXPECT_EQ(static_cast<int>(visited.size()),
                  (w * h + (parity == 0 ? 1 : 0)) / 2);
    }
}

TEST(Streams, SplitStreamsAreDisjointAndAnchored)
{
    auto streams = rsu::rng::splitStreams(77, 4);
    rsu::rng::Xoshiro256 reference(77);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(streams[0](), reference());

    // Distinct streams should not produce identical outputs.
    EXPECT_NE(streams[1](), streams[2]());

    const auto seeds = rsu::rng::splitSeeds(77, 3);
    EXPECT_EQ(seeds[0], 77u);
    EXPECT_NE(seeds[1], seeds[2]);
}

TEST(ChromaticSampler, OneShardMatchesSequentialGibbs)
{
    Problem p(33, 26, 4, 11);

    GridMrf sequential(p.config, p.model);
    sequential.initializeMaximumLikelihood();
    rsu::mrf::GibbsSampler reference(sequential, 5);
    reference.run(4);

    GridMrf parallel(p.config, p.model);
    parallel.initializeMaximumLikelihood();
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 1);
    ChromaticGibbsSampler sampler(parallel, executor, 5);
    sampler.run(4);

    EXPECT_EQ(sequential.labels(), parallel.labels());
    EXPECT_EQ(reference.work().random_draws,
              sampler.work().random_draws);
}

TEST(ChromaticSampler, OneShardMatchesSequentialRsuGibbs)
{
    Problem p(24, 18, 3, 23);

    GridMrf sequential(p.config, p.model);
    sequential.initializeMaximumLikelihood();
    rsu::core::RsuG unit(
        rsu::mrf::RsuGibbsSampler::unitConfigFor(sequential), 9);
    rsu::mrf::RsuGibbsSampler reference(sequential, unit);
    reference.run(3);

    GridMrf parallel(p.config, p.model);
    parallel.initializeMaximumLikelihood();
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 1);
    ChromaticGibbsSampler sampler(parallel, executor, 9,
                                  SamplerKind::RsuGibbs);
    sampler.run(3);

    EXPECT_EQ(sequential.labels(), parallel.labels());
}

TEST(ChromaticSampler, DeterministicPerSeedAndShardCount)
{
    Problem p(40, 31, 5, 3);

    const auto run = [&](int shards, int pool_threads,
                         SamplerKind kind) {
        GridMrf mrf(p.config, p.model);
        mrf.initializeMaximumLikelihood();
        ThreadPool pool(pool_threads);
        ParallelSweepExecutor executor(pool, shards);
        ChromaticGibbsSampler sampler(mrf, executor, 123, kind);
        sampler.run(3);
        return mrf.labels();
    };

    for (SamplerKind kind :
         {SamplerKind::SoftwareGibbs, SamplerKind::RsuGibbs}) {
        for (int shards : {1, 2, 4, 8}) {
            const auto a = run(shards, 2, kind);
            const auto b = run(shards, 2, kind);
            EXPECT_EQ(a, b) << "shards=" << shards;
            // Pool size must not affect the result — only the
            // (seed, shard count) pair identifies the chain.
            const auto c = run(shards, 5, kind);
            EXPECT_EQ(a, c) << "shards=" << shards;
        }
    }
}

TEST(ParallelSweep, NoSamePhaseNeighbourUpdates)
{
    // Instrumented sweep: stamp each site with the phase in which it
    // was updated; a chromatic violation would be a neighbour already
    // stamped with the current phase. Runs many shards on several
    // threads to give interleavings a chance to expose bugs.
    const int w = 31, h = 23;
    ThreadPool pool(4);
    ParallelSweepExecutor executor(pool, 8);
    std::vector<std::atomic<int>> stamp(w * h);
    for (auto &s : stamp)
        s.store(-1, std::memory_order_relaxed);

    std::atomic<int> violations{0};
    std::atomic<int> updates{0};
    for (int sweep = 0; sweep < 3; ++sweep) {
        // The executor runs both phases inside one sweep() call;
        // the phase a site was updated in is derivable from its
        // parity, giving every update a unique phase stamp.
        executor.sweep(w, h, [&](int, int x, int y) {
            const int current = 2 * sweep + ((x + y) & 1);
            const int dx[] = {1, -1, 0, 0};
            const int dy[] = {0, 0, 1, -1};
            for (int k = 0; k < 4; ++k) {
                const int nx = x + dx[k], ny = y + dy[k];
                if (nx < 0 || nx >= w || ny < 0 || ny >= h)
                    continue;
                if (stamp[ny * w + nx].load() == current)
                    violations.fetch_add(1);
            }
            stamp[y * w + x].store(current);
            updates.fetch_add(1);
        });
    }
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(updates.load(), 3 * w * h);
    EXPECT_EQ(executor.timing().sweeps, 3u);
    EXPECT_GT(executor.timing().total(), 0.0);
}

TEST(InferenceEngineTest, JobsAreReproducibleAndIsolated)
{
    Problem p(30, 22, 4, 41);

    InferenceEngine::Options options;
    options.threads = 3;
    options.max_concurrent_jobs = 2;
    InferenceEngine engine(options);
    EXPECT_EQ(engine.threads(), 3);

    const auto make_job = [&](uint64_t seed, int shards) {
        InferenceJob job;
        job.config = p.config;
        job.singleton = p.modelPtr();
        job.sweeps = 3;
        job.seed = seed;
        job.shards = shards;
        job.energy_trace_stride = 1;
        return job;
    };

    // Several concurrent jobs, two of them identical: identical jobs
    // must agree bit-for-bit even while unrelated jobs share the
    // pool, and each must match a directly driven chain.
    std::vector<std::future<rsu::runtime::InferenceResult>> futures;
    futures.push_back(engine.submit(make_job(100, 2)).future);
    futures.push_back(engine.submit(make_job(200, 4)).future);
    futures.push_back(engine.submit(make_job(100, 2)).future);
    futures.push_back(engine.submit(make_job(300, 1)).future);

    std::vector<rsu::runtime::InferenceResult> results;
    for (auto &future : futures)
        results.push_back(future.get());
    EXPECT_EQ(engine.pendingJobs(), 0);

    EXPECT_EQ(results[0].labels, results[2].labels);
    EXPECT_EQ(results[0].final_energy, results[2].final_energy);
    EXPECT_NE(results[0].job_id, results[2].job_id);

    GridMrf direct(p.config, p.model);
    direct.initializeMaximumLikelihood();
    ThreadPool pool(2);
    ParallelSweepExecutor executor(pool, 2);
    ChromaticGibbsSampler sampler(direct, executor, 100);
    sampler.run(3);
    EXPECT_EQ(results[0].labels, direct.labels());

    for (const auto &result : results) {
        EXPECT_EQ(static_cast<int>(result.labels.size()),
                  p.config.width * p.config.height);
        EXPECT_EQ(result.sweeps_run, 3);
        // stride 1: initial + one energy per sweep (+ no duplicate
        // final entry, since the last sweep's probe is the final).
        EXPECT_EQ(result.energy_trace.size(), 4u);
        EXPECT_EQ(result.energy_trace.back(), result.final_energy);
        EXPECT_EQ(result.work.site_updates,
                  static_cast<uint64_t>(3 * p.config.width *
                                        p.config.height));
        EXPECT_EQ(result.phase_timing.sweeps, 3u);
    }
}

TEST(InferenceEngineTest, AnnealingJobTracksBestLabelling)
{
    Problem p(26, 20, 3, 57);

    InferenceEngine engine({.threads = 2,
                            .max_concurrent_jobs = 1,
                            .default_shards = 2});

    InferenceJob job;
    job.config = p.config;
    job.singleton = p.modelPtr();
    job.seed = 5;
    rsu::mrf::AnnealingSchedule schedule;
    schedule.start_temperature = p.config.temperature;
    schedule.stop_temperature = 1.0;
    schedule.cooling_factor = 0.5;
    schedule.sweeps_per_stage = 2;
    job.annealing = schedule;

    auto result = engine.submit(std::move(job)).get();
    EXPECT_LE(result.final_energy, result.initial_energy);
    EXPECT_EQ(result.shards, 2);
    EXPECT_EQ(
        result.sweeps_run,
        static_cast<int>(schedule.temperatures().size()) *
            schedule.sweeps_per_stage);

    // The returned labels are the best-seen configuration.
    GridMrf check(p.config, p.model);
    check.setLabels(result.labels);
    EXPECT_EQ(check.totalEnergy(), result.final_energy);
}

TEST(InferenceEngineTest, RejectsBadJobs)
{
    InferenceEngine engine({.threads = 1});
    InferenceJob job;
    EXPECT_THROW(engine.submit(std::move(job)),
                 std::invalid_argument);
}

} // namespace
