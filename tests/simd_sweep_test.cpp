/**
 * @file
 * Simd sweep path tests.
 *
 * The Simd path's contract differs from the Table path's: it is NOT
 * bit-identical to the reference sampler (weights are Q32-quantized)
 * but it IS self-deterministic — AVX2, SSE2, and the scalar fallback
 * must produce *identical* label fields for the same (seed,
 * schedule, shard count). These tests enforce that lane-equivalence
 * contract across the sequential and chromatic drivers, check each
 * new table/kernel building block against its definition, establish
 * statistical correctness of the fixed-point draw with chi-square
 * tests against the exact conditional distribution, and cover the
 * engine's cross-job SweepTableSet cache.
 */

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/simd.h"
#include "core/tables.h"
#include "core/types.h"
#include "mrf/fast_sweep.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "mrf/schedule.h"
#include "rng/block.h"
#include "rng/xoshiro256.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/inference_engine.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using rsu::core::EnergyConfig;
using rsu::core::EnergyUnit;
using rsu::core::FixedExpTable;
using rsu::core::Label;
using rsu::core::LabelMode;
using rsu::core::SimdIsa;
using rsu::core::TransposedDoubletonTable;
using rsu::mrf::GibbsSampler;
using rsu::mrf::GridMrf;
using rsu::mrf::MrfConfig;
using rsu::mrf::Schedule;
using rsu::mrf::SweepPath;
using rsu::mrf::SweepTables;
using rsu::runtime::ChromaticGibbsSampler;
using rsu::runtime::InferenceEngine;
using rsu::runtime::InferenceJob;
using rsu::runtime::ParallelSweepExecutor;
using rsu::runtime::SamplerKind;
using rsu::runtime::ThreadPool;

/** A small segmentation problem with deterministic content. */
struct Problem
{
    rsu::vision::SegmentationScene scene;
    rsu::vision::SegmentationModel model;
    MrfConfig config;

    Problem(int width, int height, int labels, uint64_t seed)
        : scene(makeScene(width, height, labels, seed)),
          model(scene.image, scene.region_means),
          config(rsu::vision::segmentationConfig(scene.image, labels))
    {
    }

    static rsu::vision::SegmentationScene
    makeScene(int width, int height, int labels, uint64_t seed)
    {
        rsu::rng::Xoshiro256 rng(seed);
        return rsu::vision::makeSegmentationScene(width, height,
                                                  labels, 3.0, rng);
    }

    /** Non-owning view for job submission; the Problem outlives
     * every future in these tests. */
    std::shared_ptr<const rsu::mrf::SingletonModel>
    modelPtr() const
    {
        return {std::shared_ptr<const void>(), &model};
    }
};

/** Labels after @p sweeps sequential Simd sweeps on @p isa. */
std::vector<Label>
runSimdSequential(const Problem &p, uint64_t seed,
                  Schedule schedule, SimdIsa isa, int sweeps)
{
    GridMrf mrf(p.config, p.model);
    mrf.initializeMaximumLikelihood();
    GibbsSampler sampler(mrf, seed, schedule, SweepPath::Simd);
    sampler.setSimdIsa(isa);
    sampler.run(sweeps);
    return mrf.labels();
}

/** Labels after @p sweeps chromatic Simd sweeps on @p isa. */
std::vector<Label>
runSimdChromatic(const Problem &p, uint64_t seed, int shards,
                 int pool_threads, SimdIsa isa, int sweeps)
{
    GridMrf mrf(p.config, p.model);
    mrf.initializeMaximumLikelihood();
    ThreadPool pool(pool_threads);
    ParallelSweepExecutor executor(pool, shards);
    ChromaticGibbsSampler sampler(mrf, executor, seed,
                                  SamplerKind::SoftwareGibbs, {},
                                  SweepPath::Simd);
    sampler.setSimdIsa(isa);
    sampler.run(sweeps);
    return mrf.labels();
}

/** Pearson statistic of @p counts against @p probs * @p n. */
double
chiSquareStat(const std::vector<int> &counts,
              const std::vector<double> &probs, int n)
{
    double stat = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        const double expected = probs[i] * n;
        if (expected < 1e-9) {
            EXPECT_EQ(counts[i], 0) << "impossible candidate drawn";
            continue;
        }
        const double d = counts[i] - expected;
        stat += d * d / expected;
    }
    return stat;
}

/** Wilson-Hilferty upper critical value; z = 3.0902 is the
 * standard-normal quantile for alpha = 1e-3. The draws are seeded,
 * so a pass is reproducible, not probabilistic. */
double
chiSquareCritical(int df, double z = 3.0902)
{
    const double a = 2.0 / (9.0 * df);
    const double c = 1.0 - a + z * std::sqrt(a);
    return df * c * c * c;
}

TEST(SimdIsaTest, ResolutionClampsToDetected)
{
    using rsu::core::resolveSimdIsa;
    // No request: whatever the hardware offers.
    EXPECT_EQ(resolveSimdIsa(nullptr, SimdIsa::Avx2), SimdIsa::Avx2);
    EXPECT_EQ(resolveSimdIsa("", SimdIsa::Sse2), SimdIsa::Sse2);
    // A request is a ceiling: it can narrow, never widen.
    EXPECT_EQ(resolveSimdIsa("scalar", SimdIsa::Avx2),
              SimdIsa::Scalar);
    EXPECT_EQ(resolveSimdIsa("sse2", SimdIsa::Avx2), SimdIsa::Sse2);
    EXPECT_EQ(resolveSimdIsa("avx2", SimdIsa::Sse2), SimdIsa::Sse2);
    EXPECT_EQ(resolveSimdIsa("avx2", SimdIsa::Avx2), SimdIsa::Avx2);
    // Unrecognized strings fall back to detected.
    EXPECT_EQ(resolveSimdIsa("avx512", SimdIsa::Sse2),
              SimdIsa::Sse2);

    EXPECT_EQ(rsu::core::simdLanes(SimdIsa::Scalar), 1);
    EXPECT_EQ(rsu::core::simdLanes(SimdIsa::Sse2), 4);
    EXPECT_EQ(rsu::core::simdLanes(SimdIsa::Avx2), 8);
    EXPECT_STREQ(rsu::core::simdIsaName(SimdIsa::Avx2), "avx2");
}

TEST(SimdIsaTest, EnvVarNarrowsActiveIsa)
{
    const SimdIsa detected = rsu::core::detectedSimdIsa();
    ASSERT_EQ(setenv("RSU_SIMD", "scalar", 1), 0);
    EXPECT_EQ(rsu::core::activeSimdIsa(), SimdIsa::Scalar);

    // A SweepTables built under the env override adopts it.
    Problem p(9, 7, 4, 3);
    GridMrf mrf(p.config, p.model);
    SweepTables tables(mrf);
    EXPECT_EQ(tables.simdIsa(), SimdIsa::Scalar);

    ASSERT_EQ(setenv("RSU_SIMD", "not-an-isa", 1), 0);
    EXPECT_EQ(rsu::core::activeSimdIsa(), detected);

    ASSERT_EQ(unsetenv("RSU_SIMD"), 0);
    EXPECT_EQ(rsu::core::activeSimdIsa(), detected);
}

TEST(BlockRngTest, BufferedSequenceIdenticalToDirect)
{
    for (const int capacity : {1, 7, 256}) {
        rsu::rng::Xoshiro256 direct(91), buffered(91);
        rsu::rng::BlockRng block(capacity);
        for (int i = 0; i < 600; ++i)
            ASSERT_EQ(block.next(buffered), direct())
                << "capacity=" << capacity << " i=" << i;
    }
}

TEST(FixedExpTableTest, QuantizesExpWithUnitFloor)
{
    FixedExpTable table;
    for (const double t : {16.0, 8.0, 2.5, 0.7}) {
        table.rebuild(t, 9);
        EXPECT_EQ(table.version(), 9u);
        EXPECT_EQ(table.temperature(), t);
        // exp(0) = 1 maps to the full scale.
        EXPECT_EQ(table.at(0), 4294967295u);
        for (int e = 0; e <= rsu::core::kEnergyMax; ++e) {
            const long long q = std::llround(
                std::exp(-static_cast<double>(e) / t) *
                FixedExpTable::kScale);
            const uint32_t expected =
                static_cast<uint32_t>(q < 1 ? 1 : q);
            ASSERT_EQ(table.at(e), expected) << "e=" << e;
            ASSERT_GE(table.at(e), 1u); // nonzero-probability floor
        }
        // Monotone non-increasing in energy.
        for (int e = 1; e <= rsu::core::kEnergyMax; ++e)
            ASSERT_LE(table.at(e), table.at(e - 1));
    }
    EXPECT_THROW(table.rebuild(0.0, 0), std::invalid_argument);
}

TEST(TransposedDoubletonTableTest, MatchesTransposeWithZeroPad)
{
    std::vector<EnergyConfig> configs(3);
    configs[1].doubleton_weight = 8;
    configs[2].mode = LabelMode::Vector;
    configs[2].doubleton_cap = 9;

    std::vector<Label> codes;
    for (int c = 0; c < rsu::core::kMaxLabels; c += 5)
        codes.push_back(static_cast<Label>(c));
    const int padded = 16; // next lane multiple above 13 codes

    for (const auto &config : configs) {
        const EnergyUnit unit(config);
        const rsu::core::DoubletonTable fwd(unit, codes);
        const TransposedDoubletonTable rev(unit, codes, padded);
        ASSERT_EQ(rev.numCandidates(),
                  static_cast<int>(codes.size()));
        ASSERT_EQ(rev.paddedCandidates(), padded);
        for (int c = 0; c < rsu::core::kMaxLabels; ++c) {
            const auto code = static_cast<Label>(c);
            for (int i = 0; i < rev.numCandidates(); ++i)
                ASSERT_EQ(rev.at(code, i), fwd.at(i, code));
            for (int i = rev.numCandidates(); i < padded; ++i)
                ASSERT_EQ(rev.at(code, i), 0);
        }
    }
    EXPECT_THROW(
        TransposedDoubletonTable(EnergyUnit(EnergyConfig{}), codes, 4),
        std::invalid_argument);
}

TEST(PaddedSingletonTest, PadLanesSaturateAndParallelBuildMatches)
{
    Problem p(23, 17, 5, 11);
    GridMrf mrf(p.config, p.model);
    const int padded = 8; // 5 labels padded to one 8-lane block

    const auto sequential = mrf.buildSingletonTable(padded, {});
    EXPECT_EQ(sequential.numLabels(), 5);
    EXPECT_EQ(sequential.paddedLabels(), padded);

    ThreadPool pool(3);
    const auto parallel = mrf.buildSingletonTable(
        padded, rsu::runtime::parallelRowRunner(pool));

    const auto unpadded = mrf.buildSingletonTable();
    for (int site = 0; site < mrf.size(); ++site) {
        for (int i = 0; i < 5; ++i) {
            ASSERT_EQ(sequential.at(site, i), unpadded.at(site, i));
            ASSERT_EQ(parallel.at(site, i), unpadded.at(site, i));
        }
        for (int i = 5; i < padded; ++i) {
            // Pad energies saturate so the shared clamp keeps them
            // at the bottom of the weight table.
            ASSERT_EQ(sequential.at(site, i), rsu::core::kEnergyMax);
            ASSERT_EQ(parallel.at(site, i), rsu::core::kEnergyMax);
        }
        ASSERT_EQ(sequential.argminRow(site),
                  parallel.argminRow(site));
    }
}

TEST(SimdLaneEquivalence, SequentialAcrossSeedsAndSchedules)
{
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    Problem p(29, 22, 6, 17);
    for (const uint64_t seed : {1ull, 7ull, 42ull}) {
        for (const Schedule schedule :
             {Schedule::Raster, Schedule::Checkerboard}) {
            const auto scalar = runSimdSequential(
                p, seed, schedule, SimdIsa::Scalar, 5);
            const auto vector =
                runSimdSequential(p, seed, schedule, widest, 5);
            ASSERT_EQ(scalar, vector)
                << "seed=" << seed << " widest="
                << rsu::core::simdIsaName(widest);
            if (widest == SimdIsa::Avx2) {
                const auto sse2 = runSimdSequential(
                    p, seed, schedule, SimdIsa::Sse2, 5);
                ASSERT_EQ(scalar, sse2) << "seed=" << seed;
            }
        }
    }
}

TEST(SimdLaneEquivalence, ChromaticAcrossShardCounts)
{
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    Problem p(37, 26, 5, 29);
    for (const int shards : {1, 2, 4, 8}) {
        const auto scalar = runSimdChromatic(
            p, 99, shards, 2, SimdIsa::Scalar, 3);
        // Pool size must not matter either.
        const auto vector =
            runSimdChromatic(p, 99, shards, 3, widest, 3);
        ASSERT_EQ(scalar, vector) << "shards=" << shards;
    }
}

TEST(SimdLaneEquivalence, OneShardChromaticMatchesSequential)
{
    Problem p(23, 18, 4, 47);
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    const auto sequential = runSimdSequential(
        p, 5, Schedule::Checkerboard, widest, 4);
    const auto chromatic =
        runSimdChromatic(p, 5, 1, 2, widest, 4);
    EXPECT_EQ(sequential, chromatic);
}

TEST(SimdLaneEquivalence, UnderAnnealingRamp)
{
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    Problem p(21, 16, 4, 13);

    GridMrf a_mrf(p.config, p.model);
    a_mrf.initializeMaximumLikelihood();
    GibbsSampler a(a_mrf, 31, Schedule::Checkerboard,
                   SweepPath::Simd);
    a.setSimdIsa(SimdIsa::Scalar);

    GridMrf b_mrf(p.config, p.model);
    b_mrf.initializeMaximumLikelihood();
    GibbsSampler b(b_mrf, 31, Schedule::Checkerboard,
                   SweepPath::Simd);
    b.setSimdIsa(widest);

    double t = p.config.temperature;
    for (int stage = 0; stage < 5; ++stage) {
        a.setTemperature(t);
        b.setTemperature(t);
        a.run(2);
        b.run(2);
        ASSERT_EQ(a_mrf.labels(), b_mrf.labels())
            << "stage=" << stage << " t=" << t;
        // The fixed-point table must have followed the ramp.
        EXPECT_EQ(a.tables()->fixedExpTable().temperature(), t);
        t *= 0.6;
    }
}

TEST(SimdEdgeCases, PaddedLabelCounts)
{
    // M = 2 (six pad lanes) and M = 8 (no pad lanes): both must
    // sweep correctly and stay lane-equivalent.
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    for (const int labels : {2, 8}) {
        Problem p(19, 14, labels, 53);
        GridMrf probe(p.config, p.model);
        SweepTables tables(probe);
        EXPECT_EQ(tables.paddedLabels(), 8);

        const auto scalar = runSimdSequential(
            p, 23, Schedule::Checkerboard, SimdIsa::Scalar, 5);
        const auto vector = runSimdSequential(
            p, 23, Schedule::Checkerboard, widest, 5);
        ASSERT_EQ(scalar, vector) << "labels=" << labels;
        // Pad lanes must never be selected: every drawn label is a
        // valid candidate code.
        for (const Label l : vector)
            ASSERT_GE(probe.indexOfCode(l), 0);
    }
}

TEST(SimdEdgeCases, VectorModeLargeM)
{
    // Motion-style 7x7 window: 49 vector codes, padded to 56 —
    // exercises non-contiguous codes and a multi-block candidate
    // loop with a partial final block.
    class WarpModel : public rsu::mrf::SingletonModel
    {
      public:
        uint8_t
        data1(int x, int y) const override
        {
            return static_cast<uint8_t>((3 * x + 5 * y) & 63);
        }
        uint8_t
        data2(int x, int y, Label label) const override
        {
            return static_cast<uint8_t>(
                (x + 2 * y + 7 * rsu::core::labelX1(label) +
                 11 * rsu::core::labelX2(label)) &
                63);
        }
    };

    MrfConfig config;
    config.width = 15;
    config.height = 11;
    config.num_labels = 49;
    for (int dy = 0; dy < 7; ++dy)
        for (int dx = 0; dx < 7; ++dx)
            config.label_codes.push_back(
                rsu::core::packVectorLabel(dx, dy));
    config.energy.mode = LabelMode::Vector;
    config.energy.doubleton_weight = 4;
    config.energy.doubleton_cap = 5;
    config.temperature = 6.0;

    const WarpModel model;
    const SimdIsa widest = rsu::core::detectedSimdIsa();

    GridMrf probe(config, model);
    SweepTables tables(probe);
    EXPECT_EQ(tables.paddedLabels(), 56);

    std::vector<std::vector<Label>> fields;
    for (const SimdIsa isa : {SimdIsa::Scalar, widest}) {
        GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        GibbsSampler sampler(mrf, 19, Schedule::Checkerboard,
                             SweepPath::Simd);
        sampler.setSimdIsa(isa);
        sampler.run(5);
        fields.push_back(mrf.labels());
    }
    EXPECT_EQ(fields[0], fields[1]);
    for (const Label l : fields[0])
        ASSERT_GE(probe.indexOfCode(l), 0);
}

TEST(SimdEdgeCases, DegenerateLattices)
{
    // 1xN / Nx1 / tiny lattices: every site runs the border kernel.
    const SimdIsa widest = rsu::core::detectedSimdIsa();
    const std::pair<int, int> dims[] = {
        {1, 24}, {24, 1}, {1, 1}, {2, 15}, {15, 2}};
    for (const auto &[w, h] : dims) {
        Problem p(w, h, 3, 61);
        for (const Schedule schedule :
             {Schedule::Raster, Schedule::Checkerboard}) {
            const auto scalar = runSimdSequential(
                p, 3, schedule, SimdIsa::Scalar, 6);
            const auto vector =
                runSimdSequential(p, 3, schedule, widest, 6);
            ASSERT_EQ(scalar, vector) << w << "x" << h;
        }
    }
}

TEST(SimdWorkCounters, LogicalCostsMatchReference)
{
    Problem p(17, 13, 5, 37);
    GridMrf ref_mrf(p.config, p.model);
    ref_mrf.initializeMaximumLikelihood();
    GibbsSampler reference(ref_mrf, 7);
    reference.run(3);

    GridMrf simd_mrf(p.config, p.model);
    simd_mrf.initializeMaximumLikelihood();
    GibbsSampler simd(simd_mrf, 7, Schedule::Checkerboard,
                      SweepPath::Simd);
    simd.run(3);

    // The Simd path replaces the arithmetic, not the workload: the
    // architecture cost models must see identical logical counts.
    EXPECT_EQ(reference.work().site_updates,
              simd.work().site_updates);
    EXPECT_EQ(reference.work().energy_evals,
              simd.work().energy_evals);
    EXPECT_EQ(reference.work().exp_calls, simd.work().exp_calls);
    EXPECT_EQ(reference.work().random_draws,
              simd.work().random_draws);
}

TEST(SimdChiSquare, ConditionalDrawsMatchExactDistribution)
{
    // Repeated single-site updates with frozen neighbours are i.i.d.
    // draws from the site's full conditional (a site's conditional
    // does not depend on its own label). Compare the empirical
    // histogram against GridMrf::conditionalDistribution — the
    // exact double-precision softmax — at alpha = 1e-3. Seeded, so
    // deterministic: this can only fail if the fixed-point draw is
    // actually biased beyond quantization noise.
    Problem p(11, 9, 5, 67);
    const int n = 60000;
    const std::pair<int, int> sites[] = {
        {5, 4},  // interior: vectorized kernel
        {0, 0},  // corner: border kernel, 2 neighbours
        {5, 0},  // edge: border kernel, 3 neighbours
    };
    for (const auto &[x, y] : sites) {
        GridMrf mrf(p.config, p.model);
        mrf.initializeMaximumLikelihood();
        const auto probs = mrf.conditionalDistribution(x, y);
        GibbsSampler sampler(mrf, 101, Schedule::Checkerboard,
                             SweepPath::Simd);
        std::vector<int> counts(mrf.numLabels(), 0);
        for (int i = 0; i < n; ++i) {
            const Label l = sampler.updateSite(x, y);
            const int idx = mrf.indexOfCode(l);
            ASSERT_GE(idx, 0);
            ++counts[idx];
        }
        const double stat = chiSquareStat(counts, probs, n);
        const double crit = chiSquareCritical(mrf.numLabels() - 1);
        EXPECT_LT(stat, crit) << "site (" << x << ", " << y << ")";
    }
}

TEST(SimdChiSquare, ScalarKernelDrawsMatchToo)
{
    // Same check through the forced-scalar kernel: lane equivalence
    // already proves scalar == vector draws, but this pins the
    // statistical contract directly on the portable code path every
    // platform runs.
    Problem p(11, 9, 4, 71);
    const int n = 60000;
    GridMrf mrf(p.config, p.model);
    mrf.initializeMaximumLikelihood();
    const auto probs = mrf.conditionalDistribution(4, 4);
    GibbsSampler sampler(mrf, 103, Schedule::Checkerboard,
                         SweepPath::Simd);
    sampler.setSimdIsa(SimdIsa::Scalar);
    std::vector<int> counts(mrf.numLabels(), 0);
    for (int i = 0; i < n; ++i)
        ++counts[mrf.indexOfCode(sampler.updateSite(4, 4))];
    EXPECT_LT(chiSquareStat(counts, probs, n),
              chiSquareCritical(mrf.numLabels() - 1));
}

TEST(SimdEnergyTrajectory, TracksTablePathWithinTolerance)
{
    // Simd is a different chain than Table (quantized weights draw
    // different variates) but samples the same stationary
    // distribution, so both must relax to statistically equal
    // energies. Deterministic seeds make the comparison exact and
    // repeatable.
    Problem p(48, 36, 6, 83);
    auto relax = [&](SweepPath path) {
        GridMrf mrf(p.config, p.model);
        mrf.initializeMaximumLikelihood();
        GibbsSampler sampler(mrf, 59, Schedule::Checkerboard, path);
        sampler.run(20); // burn-in
        double mean = 0.0;
        const int probes = 10;
        for (int i = 0; i < probes; ++i) {
            sampler.run(2);
            mean += static_cast<double>(mrf.totalEnergy());
        }
        return mean / probes;
    };
    const double table = relax(SweepPath::Table);
    const double simd = relax(SweepPath::Simd);
    EXPECT_NEAR(simd, table, 0.03 * table)
        << "table=" << table << " simd=" << simd;
}

TEST(EngineTableCache, RepeatJobsHitAndSkipRebuild)
{
    Problem p(33, 25, 5, 19);
    rsu::runtime::EngineOptions options;
    options.threads = 2;
    options.max_concurrent_jobs = 1; // serialize: hit is guaranteed
    InferenceEngine engine(options);

    InferenceJob job;
    job.config = p.config;
    job.singleton = p.modelPtr();
    job.sweeps = 3;
    job.sweep_path = SweepPath::Simd;
    job.seed = 11;
    job.shards = 2;

    const auto first = engine.submit(job).get();
    EXPECT_FALSE(first.table_cache_hit);
    EXPECT_GE(first.table_build_seconds, 0.0);

    const auto second = engine.submit(job).get();
    EXPECT_TRUE(second.table_cache_hit);
    EXPECT_EQ(second.table_build_seconds, 0.0);

    // Same model + same seed => same chain, cached tables or not.
    EXPECT_EQ(first.labels, second.labels);
    EXPECT_EQ(first.final_energy, second.final_energy);

    // Table and Simd jobs share one static set (same key).
    job.sweep_path = SweepPath::Table;
    const auto third = engine.submit(job).get();
    EXPECT_TRUE(third.table_cache_hit);

    const auto stats = engine.tableCacheStats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1);
}

TEST(EngineTableCache, MatchesDirectChromaticSampler)
{
    Problem p(27, 21, 4, 23);
    rsu::runtime::EngineOptions options;
    options.threads = 2;
    InferenceEngine engine(options);

    InferenceJob job;
    job.config = p.config;
    job.singleton = p.modelPtr();
    job.sweeps = 4;
    job.sweep_path = SweepPath::Simd;
    job.seed = 77;
    job.shards = 2;
    const auto result = engine.submit(job).get();

    const auto direct = runSimdChromatic(
        p, 77, 2, 2, rsu::core::activeSimdIsa(), 4);
    EXPECT_EQ(result.labels, direct);
}

TEST(EngineTableCache, DistinctModelsGetDistinctEntries)
{
    Problem a(21, 15, 4, 29);
    Problem b(21, 15, 4, 31); // same shape, different model object
    rsu::runtime::EngineOptions options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    InferenceEngine engine(options);

    InferenceJob job;
    job.sweeps = 2;
    job.sweep_path = SweepPath::Table;
    job.seed = 5;
    job.shards = 1;

    job.config = a.config;
    job.singleton = a.modelPtr();
    engine.submit(job).get();
    job.config = b.config;
    job.singleton = b.modelPtr();
    engine.submit(job).get();

    const auto stats = engine.tableCacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2);
}

TEST(EngineTableCache, CapacityBoundsEntriesWithLruEviction)
{
    Problem a(19, 13, 4, 37);
    Problem b(19, 13, 4, 41);
    rsu::runtime::EngineOptions options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    options.table_cache_capacity = 1;
    InferenceEngine engine(options);

    InferenceJob job;
    job.sweeps = 2;
    job.sweep_path = SweepPath::Table;
    job.seed = 5;
    job.shards = 1;

    auto submit = [&](const Problem &p) {
        job.config = p.config;
        job.singleton = p.modelPtr();
        return engine.submit(job).get();
    };

    EXPECT_FALSE(submit(a).table_cache_hit); // miss: insert a
    EXPECT_FALSE(submit(b).table_cache_hit); // miss: evicts a
    EXPECT_FALSE(submit(a).table_cache_hit); // miss again: evicted
    EXPECT_TRUE(submit(a).table_cache_hit);  // now cached
    const auto stats = engine.tableCacheStats();
    EXPECT_EQ(stats.entries, 1);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(EngineTableCache, DisabledCacheAndReferencePathBypass)
{
    Problem p(17, 12, 3, 43);
    rsu::runtime::EngineOptions options;
    options.threads = 2;
    options.max_concurrent_jobs = 1;
    options.table_cache_capacity = 0;
    InferenceEngine engine(options);

    InferenceJob job;
    job.config = p.config;
    job.singleton = p.modelPtr();
    job.sweeps = 2;
    job.seed = 5;
    job.shards = 1;

    job.sweep_path = SweepPath::Table;
    EXPECT_FALSE(engine.submit(job).get().table_cache_hit);
    EXPECT_FALSE(engine.submit(job).get().table_cache_hit);

    // Reference jobs never touch tables at all.
    job.sweep_path = SweepPath::Reference;
    const auto ref = engine.submit(job).get();
    EXPECT_FALSE(ref.table_cache_hit);
    EXPECT_EQ(ref.table_build_seconds, 0.0);

    const auto stats = engine.tableCacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0);
}

} // namespace
