/**
 * @file
 * Unit tests for the rng substrate: generators, continuous and
 * discrete samplers, statistical helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rng/discrete.h"
#include "rng/distributions.h"
#include "rng/splitmix64.h"
#include "rng/stats.h"
#include "rng/xoshiro256.h"

namespace {

using namespace rsu::rng;

TEST(SplitMix64, IsDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, IsDeterministic)
{
    Xoshiro256 a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformIsInHalfOpenUnitInterval)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro256, UniformPositiveNeverZero)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniformPositive();
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Xoshiro256, UniformMeanAndVariance)
{
    Xoshiro256 rng(11);
    RunningMoments m;
    for (int i = 0; i < 200000; ++i)
        m.add(rng.uniform());
    EXPECT_NEAR(m.mean(), 0.5, 0.005);
    EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.003);
}

TEST(Xoshiro256, BelowCoversRangeWithoutBias)
{
    Xoshiro256 rng(13);
    constexpr int kBound = 7;
    std::vector<uint64_t> counts(kBound, 0);
    constexpr int kDraws = 140000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBound)];
    const std::vector<double> expected(kBound, 1.0 / kBound);
    const double stat = chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, chiSquareCritical(kBound - 1, 0.001));
}

TEST(Xoshiro256, JumpYieldsDisjointStreams)
{
    Xoshiro256 a(99);
    Xoshiro256 b(99);
    b.jump();
    std::set<uint64_t> seen;
    for (int i = 0; i < 4096; ++i)
        seen.insert(a());
    for (int i = 0; i < 4096; ++i)
        EXPECT_FALSE(seen.count(b()));
}

TEST(Distributions, ExponentialMeanMatchesRate)
{
    Xoshiro256 rng(5);
    for (double rate : {0.25, 1.0, 8.0}) {
        RunningMoments m;
        for (int i = 0; i < 100000; ++i)
            m.add(sampleExponential(rng, rate));
        EXPECT_NEAR(m.mean(), 1.0 / rate, 0.02 / rate);
    }
}

TEST(Distributions, ExponentialPassesKs)
{
    Xoshiro256 rng(17);
    const double rate = 2.0;
    std::vector<double> samples(20000);
    for (auto &s : samples)
        s = sampleExponential(rng, rate);
    const double d = ksStatisticExponential(samples, rate);
    EXPECT_LT(d, ksCritical01(samples.size()));
}

TEST(Distributions, NormalMoments)
{
    Xoshiro256 rng(23);
    RunningMoments m;
    for (int i = 0; i < 200000; ++i)
        m.add(sampleNormal(rng, 3.0, 2.0));
    EXPECT_NEAR(m.mean(), 3.0, 0.02);
    EXPECT_NEAR(m.stddev(), 2.0, 0.02);
}

TEST(Distributions, NormalTailsAreSymmetric)
{
    Xoshiro256 rng(29);
    int above = 0, below = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double x = sampleNormal(rng, 0.0, 1.0);
        if (x > 1.0)
            ++above;
        if (x < -1.0)
            ++below;
    }
    // P(|X| > 1) ~ 0.3173 split evenly.
    EXPECT_NEAR(above / double(kDraws), 0.1587, 0.005);
    EXPECT_NEAR(below / double(kDraws), 0.1587, 0.005);
}

TEST(Distributions, GammaMomentsShapeAboveOne)
{
    Xoshiro256 rng(31);
    const double shape = 3.0, scale = 2.0;
    RunningMoments m;
    for (int i = 0; i < 200000; ++i)
        m.add(sampleGamma(rng, shape, scale));
    EXPECT_NEAR(m.mean(), shape * scale, 0.05);
    EXPECT_NEAR(m.variance(), shape * scale * scale, 0.3);
}

TEST(Distributions, GammaMomentsShapeBelowOne)
{
    Xoshiro256 rng(37);
    const double shape = 0.5, scale = 1.0;
    RunningMoments m;
    for (int i = 0; i < 200000; ++i)
        m.add(sampleGamma(rng, shape, scale));
    EXPECT_NEAR(m.mean(), shape * scale, 0.01);
    EXPECT_NEAR(m.variance(), shape * scale * scale, 0.05);
}

TEST(Distributions, RaceWinnerProportionalToRates)
{
    Xoshiro256 rng(41);
    const double rates[3] = {1.0, 2.0, 5.0};
    std::vector<uint64_t> wins(3, 0);
    constexpr int kDraws = 160000;
    for (int i = 0; i < kDraws; ++i) {
        int w = -1;
        sampleExponentialRace(rng, rates, 3, &w);
        ++wins[w];
    }
    const std::vector<double> expected = {1.0 / 8, 2.0 / 8, 5.0 / 8};
    const double stat = chiSquareStatistic(wins, expected);
    EXPECT_LT(stat, chiSquareCritical(2, 0.001));
}

TEST(Distributions, RaceSkipsZeroRateClocks)
{
    Xoshiro256 rng(43);
    const double rates[3] = {0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i) {
        int w = -1;
        sampleExponentialRace(rng, rates, 3, &w);
        EXPECT_EQ(w, 1);
    }
}

TEST(DiscreteLinear, MatchesWeights)
{
    Xoshiro256 rng(47);
    const double weights[4] = {1.0, 0.0, 3.0, 6.0};
    std::vector<uint64_t> counts(4, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[sampleDiscreteLinear(rng, weights, 4)];
    EXPECT_EQ(counts[1], 0u);
    const std::vector<double> expected = {0.1, 0.0, 0.3, 0.6};
    const double stat = chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, chiSquareCritical(2, 0.001));
}

TEST(CdfSampler, ProbabilityAccessorsMatchInput)
{
    const CdfSampler s({2.0, 3.0, 5.0});
    EXPECT_DOUBLE_EQ(s.probability(0), 0.2);
    EXPECT_DOUBLE_EQ(s.probability(1), 0.3);
    EXPECT_DOUBLE_EQ(s.probability(2), 0.5);
    EXPECT_EQ(s.size(), 3);
}

TEST(CdfSampler, SamplesMatchDistribution)
{
    Xoshiro256 rng(53);
    const CdfSampler s({1.0, 1.0, 2.0, 4.0});
    std::vector<uint64_t> counts(4, 0);
    constexpr int kDraws = 120000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[s.sample(rng)];
    const std::vector<double> expected = {0.125, 0.125, 0.25, 0.5};
    const double stat = chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, chiSquareCritical(3, 0.001));
}

TEST(CdfSampler, RejectsBadWeights)
{
    EXPECT_THROW(CdfSampler({}), std::invalid_argument);
    EXPECT_THROW(CdfSampler({1.0, -1.0}), std::invalid_argument);
    EXPECT_THROW(CdfSampler({0.0, 0.0}), std::invalid_argument);
}

TEST(AliasSampler, ProbabilityAccessorsMatchInput)
{
    const AliasSampler s({2.0, 3.0, 5.0});
    EXPECT_NEAR(s.probability(0), 0.2, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.3, 1e-12);
    EXPECT_NEAR(s.probability(2), 0.5, 1e-12);
}

TEST(AliasSampler, SamplesMatchDistribution)
{
    Xoshiro256 rng(59);
    const AliasSampler s({0.5, 0.0, 2.5, 7.0});
    std::vector<uint64_t> counts(4, 0);
    constexpr int kDraws = 120000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[s.sample(rng)];
    EXPECT_EQ(counts[1], 0u);
    const std::vector<double> expected = {0.05, 0.0, 0.25, 0.7};
    const double stat = chiSquareStatistic(counts, expected);
    EXPECT_LT(stat, chiSquareCritical(2, 0.001));
}

TEST(AliasSampler, RejectsBadWeights)
{
    EXPECT_THROW(AliasSampler({}), std::invalid_argument);
    EXPECT_THROW(AliasSampler({-0.5, 1.0}), std::invalid_argument);
}

TEST(RunningMoments, HandChecked)
{
    RunningMoments m;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        m.add(x);
    EXPECT_EQ(m.count(), 8u);
    EXPECT_DOUBLE_EQ(m.mean(), 5.0);
    EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
}

TEST(ChiSquare, StatisticHandChecked)
{
    // Observed 60/40 against fair coin: (10^2/50)*2 = 4.
    const double stat = chiSquareStatistic({60, 40}, {0.5, 0.5});
    EXPECT_NEAR(stat, 4.0, 1e-12);
}

TEST(ChiSquare, CriticalValuesApproximateTables)
{
    // Table values: chi2(0.01, 5) = 15.09, chi2(0.01, 50) = 76.15.
    EXPECT_NEAR(chiSquareCritical(5, 0.01), 15.09, 0.5);
    EXPECT_NEAR(chiSquareCritical(50, 0.01), 76.15, 1.0);
    EXPECT_THROW(chiSquareCritical(5, 0.5), std::invalid_argument);
}

TEST(ChiSquare, RejectsMismatchedInput)
{
    EXPECT_THROW(chiSquareStatistic({1, 2}, {1.0}),
                 std::invalid_argument);
}

TEST(Ks, DetectsWrongRate)
{
    Xoshiro256 rng(61);
    std::vector<double> samples(20000);
    for (auto &s : samples)
        s = sampleExponential(rng, 1.0);
    // Testing against double the true rate must fail decisively.
    const double d = ksStatisticExponential(samples, 2.0);
    EXPECT_GT(d, ksCritical01(samples.size()) * 5.0);
}

} // namespace
