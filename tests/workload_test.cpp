/**
 * @file
 * Workload-layer tests: the InferenceProblem factories, the
 * registry, and the engine-vs-direct contract.
 *
 * The load-bearing guarantee: for every workload factory, an engine
 * submission at one shard on the Table path is bit-identical to
 * solveDirect()'s sequential sampler — the cross-check behind the
 * examples' --reference flag. On top of that: problems own their
 * models (jobs outlive their problems), repeat multi-shard
 * submissions hit the engine's table cache, and every factory's
 * quality metric carries the right name, direction, and range.
 */

#include <future>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/inference_engine.h"
#include "workload/factories.h"
#include "workload/problem.h"
#include "workload/registry.h"

namespace {

using rsu::mrf::Label;
using rsu::runtime::InferenceEngine;
using rsu::workload::InferenceProblem;
using rsu::workload::SceneOptions;
using rsu::workload::SubmitOptions;
using rsu::workload::WorkloadRegistry;

/** Small instances so every test runs in milliseconds. */
SceneOptions
smallScene()
{
    SceneOptions scene;
    scene.width = 32;
    scene.height = 24;
    return scene;
}

SubmitOptions
shortRun(int shards = 1)
{
    SubmitOptions options;
    options.sweeps = 6;
    options.seed = 5;
    options.shards = shards;
    return options;
}

TEST(WorkloadRegistry, BuiltinNamesAndDescriptions)
{
    const auto &registry = WorkloadRegistry::builtin();
    const std::vector<std::string> expected = {
        "segmentation", "motion", "stereo", "denoise", "synthetic"};
    EXPECT_EQ(registry.names(), expected);
    for (const auto &name : expected) {
        EXPECT_TRUE(registry.contains(name));
        EXPECT_FALSE(registry.description(name).empty());
    }
    EXPECT_FALSE(registry.contains("no-such-workload"));
    EXPECT_THROW(registry.make("no-such-workload"),
                 std::out_of_range);
    EXPECT_THROW(registry.description("no-such-workload"),
                 std::out_of_range);
}

TEST(WorkloadRegistry, RejectsDuplicatesAndEmptyFactories)
{
    WorkloadRegistry registry;
    registry.add("custom", "test workload",
                 [](const SceneOptions &options) {
                     return rsu::workload::makeSynthetic(options);
                 });
    EXPECT_TRUE(registry.contains("custom"));
    EXPECT_THROW(registry.add("custom", "again",
                              [](const SceneOptions &options) {
                                  return rsu::workload::
                                      makeSynthetic(options);
                              }),
                 std::invalid_argument);
    EXPECT_THROW(registry.add("empty", "no factory", {}),
                 std::invalid_argument);
}

TEST(WorkloadProblem, FactoriesProduceSelfContainedProblems)
{
    const auto &registry = WorkloadRegistry::builtin();
    for (const auto &name : registry.names()) {
        const auto problem = registry.make(name, smallScene());
        EXPECT_EQ(problem.workload, name);
        EXPECT_FALSE(problem.description.empty());
        ASSERT_TRUE(problem.singleton) << name;
        EXPECT_EQ(problem.config.width, 32) << name;
        EXPECT_EQ(problem.config.height, 24) << name;
        // The default schedule must start where the config runs and
        // pass the guard in AnnealingSchedule::temperatures().
        EXPECT_DOUBLE_EQ(
            problem.default_annealing.start_temperature,
            problem.config.temperature);
        EXPECT_FALSE(
            problem.default_annealing.temperatures().empty());
        if (!problem.ground_truth.empty())
            EXPECT_EQ(static_cast<int>(problem.ground_truth.size()),
                      32 * 24)
                << name;
    }
}

TEST(WorkloadProblem, MakeJobRequiresAModel)
{
    const InferenceProblem empty;
    EXPECT_THROW(makeJob(empty), std::invalid_argument);
    EXPECT_THROW(solveDirect(empty), std::invalid_argument);
}

// The contract behind the examples' --reference flag: at one shard
// on the Table (and Reference) path, the engine's result is
// bit-identical to the directly constructed sequential sampler —
// for every registered workload.
TEST(WorkloadEngineContract, TablePathMatchesDirectPerWorkload)
{
    InferenceEngine engine;
    const auto &registry = WorkloadRegistry::builtin();
    for (const auto &name : registry.names()) {
        const auto problem = registry.make(name, smallScene());
        const auto options = shortRun(1);
        const auto direct = solveDirect(problem, options);
        const auto result =
            engine.submit(makeJob(problem, options)).get();
        EXPECT_EQ(result.labels, direct) << name;
        EXPECT_EQ(result.shards, 1) << name;
    }
}

TEST(WorkloadEngineContract, ReferencePathMatchesDirect)
{
    InferenceEngine engine;
    const auto problem =
        rsu::workload::makeStereo(smallScene());
    auto options = shortRun(1);
    options.sweep_path = rsu::mrf::SweepPath::Reference;
    const auto direct = solveDirect(problem, options);
    const auto result =
        engine.submit(makeJob(problem, options)).get();
    EXPECT_EQ(result.labels, direct);
}

TEST(WorkloadEngineContract, AnnealedRunMatchesDirect)
{
    InferenceEngine engine;
    const auto problem =
        rsu::workload::makeSegmentation(smallScene());
    auto options = shortRun(1);
    options.anneal = true;
    const auto direct = solveDirect(problem, options);
    const auto result =
        engine.submit(makeJob(problem, options)).get();
    EXPECT_EQ(result.labels, direct);
    // Annealed jobs report the best labelling's energy.
    EXPECT_LE(result.final_energy, result.initial_energy);
}

TEST(WorkloadEngineContract, RepeatSubmissionHitsTableCache)
{
    InferenceEngine engine;
    const auto problem =
        rsu::workload::makeDenoise(smallScene());
    const auto options = shortRun(4);
    const auto first =
        engine.submit(makeJob(problem, options)).get();
    const auto second =
        engine.submit(makeJob(problem, options)).get();
    EXPECT_FALSE(first.table_cache_hit);
    EXPECT_TRUE(second.table_cache_hit);
    // Same (seed, shards) -> same chain, cached tables or not.
    EXPECT_EQ(first.labels, second.labels);
    const auto stats = engine.tableCacheStats();
    EXPECT_GE(stats.hits, 1u);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_GE(stats.entries, 1);
}

TEST(WorkloadQuality, MetricsCarryNameDirectionAndRange)
{
    InferenceEngine engine;
    const auto &registry = WorkloadRegistry::builtin();
    for (const auto &name : registry.names()) {
        const auto problem = registry.make(name, smallScene());
        const auto result =
            engine.submit(makeJob(problem, shortRun(1))).get();
        if (name == "synthetic") {
            EXPECT_FALSE(problem.quality);
            EXPECT_FALSE(result.quality.has_value());
            continue;
        }
        ASSERT_TRUE(problem.quality) << name;
        ASSERT_TRUE(result.quality.has_value()) << name;
        EXPECT_EQ(result.quality_metric, problem.quality.name);
        if (name == "motion") {
            EXPECT_EQ(result.quality_metric, "epe_px");
            EXPECT_FALSE(result.quality_higher_is_better);
            EXPECT_GE(*result.quality, 0.0);
            // The ground truth itself has zero endpoint error.
            EXPECT_DOUBLE_EQ(
                problem.quality.evaluate(problem.ground_truth),
                0.0);
        } else if (name == "denoise") {
            EXPECT_EQ(result.quality_metric, "psnr_db");
            EXPECT_TRUE(result.quality_higher_is_better);
            EXPECT_GT(*result.quality, 0.0);
        } else {
            EXPECT_EQ(result.quality_metric, "accuracy");
            EXPECT_TRUE(result.quality_higher_is_better);
            EXPECT_GE(*result.quality, 0.0);
            EXPECT_LE(*result.quality, 1.0);
            EXPECT_DOUBLE_EQ(
                problem.quality.evaluate(problem.ground_truth),
                1.0);
        }
    }
}

// Ownership: a job made from a problem keeps the model (and the
// quality closure's captures) alive after the problem is gone —
// the raw "must outlive the future" contract is dead.
TEST(WorkloadOwnership, JobOutlivesItsProblem)
{
    rsu::runtime::InferenceJob job;
    std::vector<Label> direct;
    {
        const auto problem =
            rsu::workload::makeMotion(smallScene());
        const auto options = shortRun(1);
        direct = solveDirect(problem, options);
        job = makeJob(problem, options);
    } // problem destroyed; the job owns everything it needs
    InferenceEngine engine;
    const auto result = engine.submit(std::move(job)).get();
    EXPECT_EQ(result.labels, direct);
    ASSERT_TRUE(result.quality.has_value());
    EXPECT_EQ(result.quality_metric, "epe_px");
}

TEST(WorkloadFactories, ImageOverloadServesRealDataWithoutTruth)
{
    const auto synthetic =
        rsu::workload::makeSegmentation(smallScene());
    SceneOptions scene = smallScene();
    scene.labels = 4;
    const auto problem = rsu::workload::makeSegmentation(
        synthetic.observation, scene);
    ASSERT_TRUE(problem.singleton);
    EXPECT_TRUE(problem.ground_truth.empty());
    EXPECT_FALSE(problem.quality);
    EXPECT_EQ(problem.config.num_labels, 4);

    InferenceEngine engine;
    const auto options = shortRun(1);
    const auto result =
        engine.submit(makeJob(problem, options)).get();
    EXPECT_EQ(result.labels, solveDirect(problem, options));
    EXPECT_FALSE(result.quality.has_value());
    // The render hook paints class means back into an image.
    const auto rendered = problem.render(result.labels);
    EXPECT_EQ(rendered.width(), 32);
    EXPECT_EQ(rendered.height(), 24);
}

} // namespace
