/**
 * @file
 * Property tests for the architecture models: monotonicity and
 * consistency invariants that must hold for any parameterization,
 * plus cross-checks between the analytic models and the functional
 * simulators.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/accel_sim.h"
#include "arch/accelerator_model.h"
#include "arch/cpu_model.h"
#include "arch/gpu_model.h"
#include "arch/power_area.h"
#include "core/rsu_g.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::arch;

class GpuMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    Workload
    workload() const
    {
        const auto [app, size] = GetParam();
        const int w = size == 0 ? kSmallWidth : kHdWidth;
        const int h = size == 0 ? kSmallHeight : kHdHeight;
        return app == 0 ? segmentationWorkload(w, h)
                        : motionWorkload(w, h);
    }
};

TEST_P(GpuMonotonicity, VariantOrderingHolds)
{
    const GpuModel model;
    const Workload w = workload();
    // Baseline >= Optimized >= RSU-G1 >= RSU-G4 in time.
    EXPECT_GE(model.totalSeconds(w, GpuVariant::Baseline),
              model.totalSeconds(w, GpuVariant::Optimized));
    EXPECT_GE(model.totalSeconds(w, GpuVariant::Optimized),
              model.totalSeconds(w, GpuVariant::RsuG1));
    EXPECT_GE(model.totalSeconds(w, GpuVariant::RsuG1),
              model.totalSeconds(w, GpuVariant::RsuG4) - 1e-12);
}

TEST_P(GpuMonotonicity, MoreLanesNeverSlower)
{
    const Workload w = workload();
    GpuConfig narrow;
    narrow.lanes = 1536;
    GpuConfig wide;
    wide.lanes = 6144;
    for (auto v : {GpuVariant::Baseline, GpuVariant::RsuG1}) {
        EXPECT_GE(GpuModel(narrow).totalSeconds(w, v),
                  GpuModel(wide).totalSeconds(w, v));
    }
}

TEST_P(GpuMonotonicity, MoreBandwidthNeverSlower)
{
    const Workload w = workload();
    GpuConfig slim;
    slim.mem_bw_gbs = 84.0;
    GpuConfig fat;
    fat.mem_bw_gbs = 672.0;
    for (auto v : {GpuVariant::Baseline, GpuVariant::RsuG4}) {
        EXPECT_GE(GpuModel(slim).totalSeconds(w, v),
                  GpuModel(fat).totalSeconds(w, v));
    }
}

TEST_P(GpuMonotonicity, AcceleratorNeverLosesToTheGpu)
{
    // The bandwidth bound is an upper bound on *any* RSU system
    // fed by the same DRAM, so it must beat the RSU-augmented GPU
    // whenever the GPU is not itself memory-bound.
    const Workload w = workload();
    const GpuModel gpu;
    const AcceleratorModel accel;
    EXPECT_LE(accel.totalSeconds(w),
              gpu.totalSeconds(w, GpuVariant::RsuG1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, GpuMonotonicity,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

TEST(GpuModelNames, AllVariantsNamed)
{
    EXPECT_EQ(variantName(GpuVariant::Baseline), "GPU");
    EXPECT_EQ(variantName(GpuVariant::Optimized), "Opt GPU");
    EXPECT_EQ(variantName(GpuVariant::RsuG1), "RSU-G1");
    EXPECT_EQ(variantName(GpuVariant::RsuG4), "RSU-G4");
}

TEST(CpuModelProperties, SpeedupGrowsWithLabelCount)
{
    const CpuModel cpu;
    const auto seg = segmentationWorkload(64, 64);   // M = 5
    const auto motion = motionWorkload(64, 64);      // M = 49
    EXPECT_GT(cpu.speedup(motion), cpu.speedup(seg));
}

TEST(AcceleratorSimProperties,
     CriticalPathMatchesUnitIntervalModel)
{
    // For a farm where every unit gets the same site count, the
    // per-iteration critical path should equal
    // sites_per_unit * steadyStateIntervalCycles of one unit.
    rsu::rng::Xoshiro256 rng(3);
    const auto scene =
        rsu::vision::makeSegmentationScene(32, 32, 4, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 4, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    AcceleratorSimConfig sim_config;
    sim_config.num_units = 16; // 1024 sites / 16 = 64 each
    AcceleratorSim sim(mrf, sim_config);
    const auto stats = sim.sweep();

    rsu::core::RsuGConfig ucfg;
    ucfg.energy = config.energy;
    rsu::core::RsuG reference(ucfg);
    reference.initialize(4, config.temperature);
    const double expected =
        (1024.0 / 16.0) * reference.steadyStateIntervalCycles();
    EXPECT_NEAR(static_cast<double>(stats.critical_cycles),
                expected, expected * 0.05);
}

TEST(AcceleratorSimProperties, RejectsBadConfigs)
{
    rsu::rng::Xoshiro256 rng(5);
    const auto scene =
        rsu::vision::makeSegmentationScene(8, 8, 2, 2.0, rng);
    rsu::vision::SegmentationModel model(
        scene.image,
        {scene.region_means[0], scene.region_means[1]});
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 2);
    rsu::mrf::GridMrf mrf(config, model);

    AcceleratorSimConfig bad;
    bad.num_units = 0;
    EXPECT_THROW(AcceleratorSim(mrf, bad), std::invalid_argument);
    bad = AcceleratorSimConfig{};
    bad.mem_bw_gbs = 0.0;
    EXPECT_THROW(AcceleratorSim(mrf, bad), std::invalid_argument);
}

TEST(EnergyDatapath, PottsPriorIsTheCapOneSpecialCase)
{
    // Potts model: doubleton = w * [a != b]. With the truncated
    // quadratic at cap = 1, min((a-b)^2, 1) is exactly the
    // indicator — the categorical prior segmentation arguably
    // wants, expressible on the existing datapath.
    rsu::core::EnergyConfig config;
    config.doubleton_cap = 1;
    config.doubleton_weight = 7;
    const rsu::core::EnergyUnit unit(config);
    for (int a = 0; a < 8; ++a) {
        for (int b = 0; b < 8; ++b) {
            const int expected = a == b ? 0 : 7;
            EXPECT_EQ(unit.doubleton(static_cast<uint8_t>(a),
                                     static_cast<uint8_t>(b)),
                      expected);
        }
    }
}

TEST(TechnologyProperties, PowerAndAreaShrinkMonotonically)
{
    double prev_power = 1e9, prev_area = 1e9;
    for (int node : {45, 32, 22, 15}) {
        const auto b = RsuPowerAreaModel::project(node, 1000.0);
        EXPECT_LT(b.totalPowerMw(), prev_power);
        EXPECT_LT(b.totalAreaUm2(), prev_area);
        prev_power = b.totalPowerMw();
        prev_area = b.totalAreaUm2();
        // Optics never scale.
        EXPECT_DOUBLE_EQ(b.ret_mw, 0.16);
        EXPECT_DOUBLE_EQ(b.ret_um2, 1600.0);
    }
}

} // namespace
