/**
 * @file
 * Property-based tests: parameterized sweeps over design and input
 * spaces, checking invariants rather than point values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "core/rsu_g.h"
#include "core/rsu_isa.h"
#include "mrf/exact.h"
#include "mrf/grid_mrf.h"
#include "ret/qdled.h"
#include "ret/ttf_timer.h"
#include "rng/discrete.h"
#include "rng/stats.h"

namespace {

using namespace rsu::core;

// --------------------------------------------------------------
// Latency formula across the (M, K) design grid.
// --------------------------------------------------------------

class LatencyGrid
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LatencyGrid, MatchesPipelineModel)
{
    const auto [m, k] = GetParam();
    RsuGConfig config;
    config.width = k;
    RsuG unit(config);
    unit.setNumLabels(m);

    const int groups = (m + k - 1) / k;
    int tree = 0;
    if (k > 1) {
        int v = 1;
        while (v < k) {
            v <<= 1;
            ++tree;
        }
        --tree;
    }
    EXPECT_EQ(unit.latencyCycles(), 6 + groups + tree);

    // Invariants: latency never increases with width, and K = 1
    // reproduces the paper's 7 + (M - 1).
    if (k == 1) {
        EXPECT_EQ(unit.latencyCycles(), 7 + (m - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, LatencyGrid,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 49, 64),
                       ::testing::Values(1, 2, 4, 8, 16, 32, 64)));

// --------------------------------------------------------------
// Replication vs stalls: issue interval = groups * max(1, Q/R).
// --------------------------------------------------------------

class ReplicationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ReplicationSweep, MeasuredIntervalMatchesModel)
{
    const int replicas = GetParam();
    RsuGConfig config;
    config.circuits_per_lane = replicas;
    RsuG unit(config, 7);
    unit.initialize(8, 16.0);

    EnergyInputs in;
    in.neighbors = {1, 2, 1, 2};
    in.data1 = 20;
    in.data2 = 24;

    constexpr int kSamples = 4000;
    for (int i = 0; i < kSamples; ++i)
        unit.sample(in);

    const auto &s = unit.stats();
    const double measured =
        static_cast<double>(s.issue_cycles + s.stall_cycles) /
        static_cast<double>(s.samples);
    EXPECT_NEAR(measured, unit.steadyStateIntervalCycles(),
                unit.steadyStateIntervalCycles() * 0.02 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, ReplicationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

// --------------------------------------------------------------
// Race distribution: normalization and softmax tracking across
// temperatures, with min-referenced energies.
// --------------------------------------------------------------

class TemperatureSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TemperatureSweep, RaceIsNormalizedAndTracksSoftmax)
{
    const double t = GetParam();
    RsuG unit(RsuGConfig{}, 3);
    unit.initialize(5, t);
    rsu::rng::Xoshiro256 rng(17);

    double worst_tv = 0.0;
    for (int trial = 0; trial < 40; ++trial) {
        EnergyInputs in;
        for (auto &n : in.neighbors)
            n = static_cast<Label>(rng.below(5));
        in.data1 = static_cast<uint8_t>(rng.below(64));
        uint8_t data2[5];
        for (auto &d : data2)
            d = static_cast<uint8_t>(rng.below(64));

        Energy lo = 255;
        for (int i = 0; i < 5; ++i) {
            lo = std::min(lo,
                          unit.labelEnergy(static_cast<Label>(i),
                                           in, data2[i]));
        }
        in.energy_offset = lo;

        const auto race = unit.raceDistribution(in, data2);
        const double total =
            std::accumulate(race.begin(), race.end(), 0.0);
        ASSERT_NEAR(total, 1.0, 1e-9);

        std::vector<double> soft(5);
        double z = 0.0;
        for (int i = 0; i < 5; ++i) {
            soft[i] = std::exp(
                -static_cast<double>(unit.labelEnergy(
                    static_cast<Label>(i), in, data2[i])) /
                t);
            z += soft[i];
        }
        double tv = 0.0;
        for (int i = 0; i < 5; ++i)
            tv += std::abs(race[i] - soft[i] / z);
        worst_tv = std::max(worst_tv, 0.5 * tv);
    }
    // Across the application temperature range the device error
    // stays bounded; it grows with T (ladder compression).
    EXPECT_LT(worst_tv, t <= 8.0 ? 0.10 : 0.16);
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, TemperatureSweep,
                         ::testing::Values(2.0, 4.0, 6.0, 8.0, 16.0));

// --------------------------------------------------------------
// Discrete samplers agree on arbitrary weight vectors.
// --------------------------------------------------------------

class WeightVectors : public ::testing::TestWithParam<int>
{
};

TEST_P(WeightVectors, CdfAndAliasMatchTheNormalizedWeights)
{
    rsu::rng::Xoshiro256 rng(GetParam());
    const int n = 2 + static_cast<int>(rng.below(14));
    std::vector<double> weights(n);
    double total = 0.0;
    for (auto &w : weights) {
        w = rng.uniform() < 0.2 ? 0.0 : rng.uniform() * 10.0;
        total += w;
    }
    if (total == 0.0)
        weights[0] = total = 1.0;

    const rsu::rng::CdfSampler cdf(weights);
    const rsu::rng::AliasSampler alias(weights);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(cdf.probability(i), weights[i] / total, 1e-12);
        EXPECT_NEAR(alias.probability(i), weights[i] / total,
                    1e-12);
    }

    // Empirical agreement between the two samplers.
    std::vector<uint64_t> c1(n, 0), c2(n, 0);
    for (int i = 0; i < 20000; ++i) {
        ++c1[cdf.sample(rng)];
        ++c2[alias.sample(rng)];
    }
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(c1[i] / 20000.0, c2[i] / 20000.0, 0.02)
            << "bucket " << i;
        if (weights[i] == 0.0) {
            EXPECT_EQ(c1[i], 0u);
            EXPECT_EQ(c2[i], 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, WeightVectors,
                         ::testing::Range(1, 13));

// --------------------------------------------------------------
// ISA packing fuzz: neighbors and singleton streams round-trip.
// --------------------------------------------------------------

class PackFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PackFuzz, NeighborsRoundTrip)
{
    rsu::rng::Xoshiro256 rng(1000 + GetParam());
    std::array<Label, 4> labels;
    std::array<bool, 4> valid;
    for (int i = 0; i < 4; ++i) {
        labels[i] = static_cast<Label>(rng.below(64));
        valid[i] = rng.below(2) == 0;
    }
    const uint64_t word = packNeighbors(labels, valid);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ((word >> (6 * i)) & 0x3f, labels[i]);
        EXPECT_EQ(((word >> (24 + i)) & 1) == 0, valid[i]);
    }
    // Upper bits stay clear for future use.
    EXPECT_EQ(word >> 28, 0u);
}

TEST_P(PackFuzz, SingletonStreamRoundTripsThroughTheDevice)
{
    rsu::rng::Xoshiro256 rng(2000 + GetParam());
    const int m = 2 + static_cast<int>(rng.below(31));
    std::vector<uint8_t> values(m);
    for (auto &v : values)
        v = static_cast<uint8_t>(rng.below(64));

    RsuG unit(RsuGConfig{}, 1);
    unit.initialize(m, 16.0);
    RsuDevice dev(unit);
    for (int base = 0; base < m; base += 8) {
        const int count = std::min(8, m - base);
        dev.write(RsuReg::SingletonD,
                  packSingletonD(&values[base], count));
    }
    // The race oracle sees exactly the streamed values: compare a
    // device read distribution against the oracle built from the
    // same values.
    EnergyInputs in;
    in.neighbors = {0, 0, 0, 0};
    in.data1 = static_cast<uint8_t>(rng.below(64));
    const auto oracle = unit.raceDistribution(in, values.data());
    const double total =
        std::accumulate(oracle.begin(), oracle.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PackFuzz, ::testing::Range(0, 10));

// --------------------------------------------------------------
// LED ladder properties across design ranges.
// --------------------------------------------------------------

class LedDesigns : public ::testing::TestWithParam<double>
{
};

TEST_P(LedDesigns, LadderIsMonotoneAndCoversTheRange)
{
    const double dr = GetParam();
    const rsu::ret::QdLedBank bank(
        rsu::ret::QdLedBank::designWeights(dr));
    EXPECT_NEAR(bank.maxIntensity() / bank.minIntensity(),
                1.0 + dr + std::pow(dr, 2.0 / 3.0) +
                    std::pow(dr, 1.0 / 3.0),
                1e-6);
    // nearestCode is idempotent on achievable intensities.
    for (int code = 1; code < rsu::ret::kNumLedCodes; ++code) {
        const double i = bank.intensity(code);
        EXPECT_NEAR(bank.intensity(bank.nearestCode(i)), i, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, LedDesigns,
                         ::testing::Values(2.0, 8.0, 27.0, 64.0,
                                           255.0));

// --------------------------------------------------------------
// Timer tick law across clock rates.
// --------------------------------------------------------------

class ClockSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ClockSweep, TickDistributionSumsToOneAndIsGeometric)
{
    const rsu::ret::TtfTimer timer(GetParam());
    for (double rate : {0.01, 0.2, 1.0, 4.0}) {
        double total = 0.0;
        for (int q = 0; q <= rsu::ret::kTtfSaturated; ++q) {
            const double p = timer.tickProbability(
                rate, static_cast<uint8_t>(q));
            EXPECT_GE(p, 0.0);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
        const double p0 = timer.tickProbability(rate, 0);
        const double p1 = timer.tickProbability(rate, 1);
        if (p0 > 0.0) {
            EXPECT_NEAR(p1 / p0,
                        std::exp(-rate * timer.tickNs()), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, ClockSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0));

// --------------------------------------------------------------
// Gibbs invariance: the energy offset never changes the software
// conditional (softmax invariance), for random models.
// --------------------------------------------------------------

class OffsetInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(OffsetInvariance, SoftmaxIsOffsetInvariantUntilTheFloor)
{
    rsu::rng::Xoshiro256 rng(300 + GetParam());
    const EnergyUnit unit;
    EnergyInputs in;
    for (auto &n : in.neighbors)
        n = static_cast<Label>(rng.below(8));
    in.data1 = static_cast<uint8_t>(rng.below(64));
    in.data2 = static_cast<uint8_t>(rng.below(64));

    // Find the minimum candidate energy over 6 candidates.
    Energy lo = 255;
    for (int l = 0; l < 6; ++l) {
        lo = std::min(lo,
                      unit.evaluate(static_cast<Label>(l), in));
    }
    // Any offset <= lo shifts all energies equally (no clamping),
    // so softmax ratios are unchanged.
    EnergyInputs shifted = in;
    shifted.energy_offset = lo;
    for (int l = 0; l < 6; ++l) {
        const Energy raw = unit.evaluate(static_cast<Label>(l), in);
        const Energy ref =
            unit.evaluate(static_cast<Label>(l), shifted);
        EXPECT_EQ(static_cast<int>(raw) - lo, ref);
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, OffsetInvariance,
                         ::testing::Range(0, 8));

} // namespace
