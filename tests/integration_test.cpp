/**
 * @file
 * Integration tests: whole applications driven end-to-end through
 * the public API, spanning vision models, MRF samplers, the RSU-G
 * device, its instruction interface, and the estimators.
 */

#include <gtest/gtest.h>

// The umbrella header must compile standalone; the integration
// suite uses it as its include, which pins that property.
#include "rsu.h"

#include "core/rsu_g.h"
#include "core/rsu_isa.h"
#include "rng/distributions.h"
#include "mrf/estimator.h"
#include "mrf/gibbs.h"
#include "mrf/icm.h"
#include "mrf/rsu_gibbs.h"
#include "vision/denoise.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/segmentation.h"
#include "vision/stereo.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::mrf;
using namespace rsu::vision;
using rsu::core::RsuG;

TEST(EndToEnd, SegmentationRecoversRegions)
{
    rsu::rng::Xoshiro256 rng(2016);
    const auto scene = makeSegmentationScene(48, 40, 4, 2.5, rng);
    SegmentationModel model(scene.image, scene.region_means);
    const auto config = segmentationConfig(scene.image, 4, 6.0, 6);

    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    RsuG unit(RsuGibbsSampler::unitConfigFor(mrf), 1);
    RsuGibbsSampler sampler(mrf, unit);
    MarginalMapEstimator est(mrf, 10);
    est.run(60, [&] { sampler.sweep(); });

    const double acc =
        labelAccuracy(est.estimate(), scene.truth);
    EXPECT_GT(acc, 0.9);
}

TEST(EndToEnd, SegmentationRsuTracksSoftwareGibbs)
{
    rsu::rng::Xoshiro256 rng(7);
    const auto scene = makeSegmentationScene(40, 32, 5, 2.5, rng);
    SegmentationModel model(scene.image, scene.region_means);
    const auto config = segmentationConfig(scene.image, 5, 6.0, 6);

    GridMrf mrf_sw(config, model);
    mrf_sw.initializeMaximumLikelihood();
    GridMrf mrf_dev(config, model);
    mrf_dev.setLabels(mrf_sw.labels());

    GibbsSampler sw(mrf_sw, 3);
    RsuG unit(RsuGibbsSampler::unitConfigFor(mrf_dev), 4);
    RsuGibbsSampler dev(mrf_dev, unit);

    sw.run(40);
    dev.run(40);

    // Equilibrium energies within 10% of each other and final
    // labellings in high agreement.
    const double e_sw = static_cast<double>(mrf_sw.totalEnergy());
    const double e_dev = static_cast<double>(mrf_dev.totalEnergy());
    EXPECT_NEAR(e_dev / e_sw, 1.0, 0.10);
    EXPECT_GT(labelAccuracy(mrf_sw.labels(), mrf_dev.labels()),
              0.9);
}

TEST(EndToEnd, MotionEstimationRecoversTheField)
{
    rsu::rng::Xoshiro256 rng(99);
    const auto scene = makeMotionScene(48, 40, 2, 3, 1.0, rng);
    MotionModel model(scene.frame1, scene.frame2, 3);
    const auto config = motionConfig(scene.frame1, 3);

    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    const double init_epe =
        meanEndpointError(mrf.labels(), scene.truth);

    auto ucfg = RsuGibbsSampler::unitConfigFor(mrf);
    ucfg.width = 4; // RSU-G4, as the paper recommends for M = 49
    RsuG unit(ucfg, 5);
    RsuGibbsSampler sampler(mrf, unit);
    MarginalMapEstimator est(mrf, 10);
    est.run(60, [&] { sampler.sweep(); });

    const double epe =
        meanEndpointError(est.estimate(), scene.truth);
    EXPECT_LT(epe, 0.5);
    EXPECT_LT(epe, init_epe * 0.5);
}

TEST(EndToEnd, StereoThroughTheIsaInterface)
{
    rsu::rng::Xoshiro256 rng(123);
    const auto scene = makeStereoScene(64, 56, 5, 1.0, rng);
    StereoModel model(scene.left, scene.right, 5);
    const auto config = stereoConfig(scene.left, 5, 6.0, 6);

    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    RsuG unit(RsuGibbsSampler::unitConfigFor(mrf), 6);
    RsuGibbsSampler sampler(mrf, unit, Schedule::Checkerboard,
                            RsuGibbsSampler::Mode::Isa);
    MarginalMapEstimator est(mrf, 10);
    est.run(60, [&] { sampler.sweep(); });

    EXPECT_GT(labelAccuracy(est.estimate(), scene.truth), 0.85);
    // ISA accounting: 5 instructions per site update.
    EXPECT_EQ(sampler.rsuInstructions(),
              static_cast<uint64_t>(64) * 56 * 60 * 5);
}

TEST(EndToEnd, DenoiseImprovesPsnr)
{
    rsu::rng::Xoshiro256 rng(31);
    const auto scene = makeSegmentationScene(48, 40, 6, 0.0, rng);
    const Image &clean = scene.image;
    Image noisy = clean;
    for (auto &p : noisy.pixels()) {
        p = clampPixel(
            p + rsu::rng::sampleNormal(rng, 0.0, 5.0), 63);
    }

    DenoiseModel model(noisy, 6);
    const auto config = denoiseConfig(noisy, 6);
    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    RsuG unit(RsuGibbsSampler::unitConfigFor(mrf), 8);
    RsuGibbsSampler sampler(mrf, unit);
    MarginalMapEstimator est(mrf, 10);
    est.run(60, [&] { sampler.sweep(); });

    const Image restored = model.reconstruct(est.estimate());
    EXPECT_GT(psnr(restored, clean), psnr(noisy, clean) + 1.0);
}

TEST(EndToEnd, GibbsBeatsIcmOnMotion)
{
    // The paper's core argument for MCMC over deterministic
    // solvers: ICM gets stuck in local minima on hard problems.
    rsu::rng::Xoshiro256 rng(99);
    const auto scene = makeMotionScene(48, 40, 2, 3, 1.0, rng);
    MotionModel model(scene.frame1, scene.frame2, 3);
    const auto config = motionConfig(scene.frame1, 3);

    GridMrf mrf_icm(config, model);
    mrf_icm.initializeMaximumLikelihood();
    IcmSolver icm(mrf_icm);
    icm.solve();

    GridMrf mrf_gibbs(config, model);
    mrf_gibbs.initializeMaximumLikelihood();
    GibbsSampler gibbs(mrf_gibbs, 11);
    gibbs.run(60);

    EXPECT_LT(meanEndpointError(mrf_gibbs.labels(), scene.truth),
              meanEndpointError(mrf_icm.labels(), scene.truth));
}

TEST(EndToEnd, ContextSwitchPreservesInference)
{
    // Two applications share one RSU-G via save/restore; the
    // interrupted application's chain statistics are unaffected
    // because the read-result boundary is idempotent.
    rsu::rng::Xoshiro256 rng(55);
    const auto scene = makeSegmentationScene(24, 20, 3, 2.5, rng);
    SegmentationModel model(scene.image, scene.region_means);
    const auto config = segmentationConfig(scene.image, 3, 6.0, 6);

    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    RsuG unit(RsuGibbsSampler::unitConfigFor(mrf), 9);
    RsuGibbsSampler sampler(mrf, unit);
    rsu::core::RsuDevice device(unit);

    for (int iter = 0; iter < 30; ++iter) {
        sampler.sweep();
        if (iter % 5 == 4) {
            // Preempt: save, let another application clobber the
            // unit state, then restore.
            const auto ctx = device.saveContext();
            unit.initialize(7, 99.0);
            for (int w = 0; w < unit.intensityMap().words(); ++w)
                unit.intensityMap().writeWord(w, 0x5555555555555555);
            device.restoreContext(ctx);
            // The decode table is per-application configuration
            // restored by the runtime alongside the map table.
            unit.setLabelCodes(mrf.labelCodes());
        }
    }
    EXPECT_GT(labelAccuracy(mrf.labels(), scene.truth), 0.85);
}

TEST(EndToEnd, WideUnitsAgreeWithNarrowOnes)
{
    rsu::rng::Xoshiro256 rng(77);
    const auto scene = makeSegmentationScene(32, 24, 5, 2.5, rng);
    SegmentationModel model(scene.image, scene.region_means);
    const auto config = segmentationConfig(scene.image, 5, 6.0, 6);

    std::vector<double> energies;
    for (int width : {1, 4, 8}) {
        GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        auto ucfg = RsuGibbsSampler::unitConfigFor(mrf);
        ucfg.width = width;
        ucfg.circuits_per_lane = 4;
        RsuG unit(ucfg, 100 + width);
        RsuGibbsSampler sampler(mrf, unit);
        sampler.run(30);
        energies.push_back(
            static_cast<double>(mrf.totalEnergy()));
        EXPECT_EQ(unit.stats().stall_cycles, 0u)
            << "width " << width;
    }
    // Same statistics regardless of unit width.
    EXPECT_NEAR(energies[1] / energies[0], 1.0, 0.08);
    EXPECT_NEAR(energies[2] / energies[0], 1.0, 0.08);
}

TEST(EndToEnd, SegmentationSurvivesSpadNoise)
{
    // Robustness: realistic SPAD efficiency and dark counts leave
    // MAP quality essentially unchanged (rates scale uniformly;
    // dark counts add a small uniform component).
    rsu::rng::Xoshiro256 rng(2016);
    const auto scene = makeSegmentationScene(40, 32, 4, 2.5, rng);
    SegmentationModel model(scene.image, scene.region_means);
    const auto config = segmentationConfig(scene.image, 4, 6.0, 6);

    GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();
    auto ucfg = RsuGibbsSampler::unitConfigFor(mrf);
    ucfg.circuit.spad.efficiency = 0.5;
    ucfg.circuit.spad.dark_rate_per_ns = 1e-4;
    RsuG unit(ucfg, 12);
    RsuGibbsSampler sampler(mrf, unit);
    MarginalMapEstimator est(mrf, 10);
    est.run(50, [&] { sampler.sweep(); });

    EXPECT_GT(labelAccuracy(est.estimate(), scene.truth), 0.88);
}

} // namespace
