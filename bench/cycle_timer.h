/**
 * @file
 * Cycle-accurate timing helper for the Table 1 measurements.
 *
 * The paper measures cycles with the Intel Performance Counter
 * Monitor on an E5-2640; the closest portable equivalent is the
 * x86 TSC (rdtsc), which counts at the base clock. On non-x86
 * hosts we fall back to std::chrono nanoseconds scaled by a nominal
 * frequency.
 */

#ifndef RSU_BENCH_CYCLE_TIMER_H
#define RSU_BENCH_CYCLE_TIMER_H

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace rsu::bench {

/** Nominal frequency used by the chrono fallback (GHz). */
constexpr double kNominalGhz = 2.5;

inline uint64_t
cycleCount()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    const auto now = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count();
    return static_cast<uint64_t>(ns * kNominalGhz);
#endif
}

/**
 * Average cycles per call of @p fn over @p iterations invocations
 * (one warmup pass of a tenth of the iterations first).
 */
template <typename Fn>
double
averageCycles(int iterations, Fn &&fn)
{
    for (int i = 0; i < iterations / 10 + 1; ++i)
        fn();
    const uint64_t start = cycleCount();
    for (int i = 0; i < iterations; ++i)
        fn();
    const uint64_t stop = cycleCount();
    return static_cast<double>(stop - start) / iterations;
}

} // namespace rsu::bench

#endif // RSU_BENCH_CYCLE_TIMER_H
