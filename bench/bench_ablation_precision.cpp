/**
 * @file
 * Precision ablations for the RSU-G design choices (paper section
 * 4.4 argues 8-bit energies and limited label precision suffice;
 * section 5.2 sizes the QD-LEDs for dynamic range).
 *
 * Sweeps three design knobs and reports the total-variation
 * distance between the device's exact race distribution and the
 * ideal Gibbs conditional, averaged over random conditionals:
 *
 *  1. LED dynamic range (ladder coverage vs range trade-off);
 *  2. TTF quantization (system clock / 8x shift register);
 *  3. Gibbs temperature (how hard the conditionals push the 4-bit
 *     intensity quantization).
 *
 * Ends with an end-to-end check: segmentation accuracy across LED
 * designs, demonstrating that moderate distribution error does not
 * measurably hurt MAP quality — the paper's implicit claim.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/rsu_g.h"
#include "mrf/rsu_gibbs.h"
#include "rng/xoshiro256.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::core;

/** Mean TV distance between device race and ideal softmax over
 * random 5-label conditionals. */
double
meanTvDistance(const RsuGConfig &config, double temperature)
{
    RsuG unit(config, 4);
    unit.initialize(5, temperature);
    rsu::rng::Xoshiro256 rng(17);

    double acc = 0.0;
    constexpr int kTrials = 200;
    for (int trial = 0; trial < kTrials; ++trial) {
        EnergyInputs in;
        for (auto &n : in.neighbors)
            n = static_cast<Label>(rng.below(5));
        in.data1 = static_cast<uint8_t>(rng.below(64));
        uint8_t data2[5];
        for (auto &d : data2)
            d = static_cast<uint8_t>(rng.below(64));

        // Re-reference to the minimum candidate energy, as the
        // samplers do in operation (softmax is invariant to it).
        Energy lo = 255;
        for (int i = 0; i < 5; ++i) {
            lo = std::min(lo, unit.labelEnergy(
                                  static_cast<Label>(i), in,
                                  data2[i]));
        }
        in.energy_offset = lo;

        const auto race = unit.raceDistribution(in, data2);
        std::vector<double> soft(5);
        double z = 0.0;
        for (int i = 0; i < 5; ++i) {
            const Energy e = unit.labelEnergy(
                static_cast<Label>(i), in, data2[i]);
            soft[i] = std::exp(-static_cast<double>(e) /
                               temperature);
            z += soft[i];
        }
        double tv = 0.0;
        for (int i = 0; i < 5; ++i)
            tv += std::abs(race[i] - soft[i] / z);
        acc += 0.5 * tv;
    }
    return acc / kTrials;
}

void
ledDesignSweep()
{
    std::printf("=== Ablation 1: QD-LED dynamic range (T = 16) "
                "===\n");
    std::printf("%16s %22s\n", "largest LED (x)", "mean TV "
                                                  "distance");
    for (double dr : {2.0, 4.0, 8.0, 27.0, 64.0, 255.0}) {
        RsuGConfig config;
        config.circuit.led_weights =
            rsu::ret::QdLedBank::designWeights(dr);
        std::printf("%16.0f %22.4f\n", dr,
                    meanTvDistance(config, 16.0));
    }
    std::printf("The binary (8x) design minimizes distribution "
                "error: its sums tile 1..15 with no ladder gaps. "
                "Wide ladders trade mid-range coverage for range "
                "and distort the race.\n\n");
}

void
clockSweep()
{
    std::printf("=== Ablation 2: TTF quantization (tick = "
                "clock/8, T = 16) ===\n");
    std::printf("%18s %22s\n", "clock period (ns)", "mean TV "
                                                    "distance");
    for (double period : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        RsuGConfig config;
        config.circuit.clock_period_ns = period;
        std::printf("%18.2f %22.4f\n", period,
                    meanTvDistance(config, 16.0));
    }
    std::printf("Slower clocks coarsen the 8-bit TTF register "
                "(ties and saturation); the paper's 1 GHz / 8x "
                "design point keeps the error small.\n\n");
}

void
temperatureSweep()
{
    std::printf("=== Ablation 3: Gibbs temperature vs 4-bit "
                "intensity precision ===\n");
    std::printf("%14s %22s\n", "temperature", "mean TV distance");
    for (double t : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        std::printf("%14.1f %22.4f\n", t,
                    meanTvDistance(RsuGConfig{}, t));
    }
    std::printf("Low temperatures push conditionals toward "
                "deterministic argmin (easy for the race); high "
                "temperatures compress weight ratios into few LED "
                "codes. The application presets (T = 6..16) sit in "
                "the accurate regime.\n\n");
}

void
endToEnd()
{
    std::printf("=== End-to-end: segmentation accuracy across LED "
                "designs ===\n");
    rsu::rng::Xoshiro256 rng(77);
    const auto scene =
        rsu::vision::makeSegmentationScene(48, 48, 5, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto mrf_config =
        rsu::vision::segmentationConfig(scene.image, 5, 6.0, 6);

    std::printf("%16s %14s\n", "largest LED (x)", "accuracy");
    for (double dr : {2.0, 8.0, 64.0, 255.0}) {
        rsu::mrf::GridMrf mrf(mrf_config, model);
        mrf.initializeMaximumLikelihood();
        RsuGConfig config =
            rsu::mrf::RsuGibbsSampler::unitConfigFor(mrf);
        config.circuit.led_weights =
            rsu::ret::QdLedBank::designWeights(dr);
        RsuG unit(config, 5);
        rsu::mrf::RsuGibbsSampler sampler(mrf, unit);
        sampler.run(40);
        std::printf("%16.0f %13.1f%%\n", dr,
                    100.0 * rsu::vision::labelAccuracy(
                                mrf.labels(), scene.truth));
    }
    std::printf("MAP quality is robust to moderate distribution "
                "error — consistent with the paper's limited-"
                "precision argument (section 4.4).\n");
}

} // namespace

int
main()
{
    ledDesignSweep();
    clockSweep();
    temperatureSweep();
    endToEnd();
    return 0;
}
