/**
 * @file
 * Reproduces paper Figure 7: two-label image segmentation on the
 * macro-scale RSU-G2 prototype. The paper segments a 50x67 image
 * into foreground/background with 10 MCMC iterations, the PC
 * computing energies and intensity mapping in software and the
 * prototype drawing every pixel's binary sample.
 *
 * Writes fig7_input.pgm (the noisy observation), fig7_truth.pgm,
 * and fig7_iter10.pgm (the sample after 10 iterations) next to the
 * binary, and reports segmentation accuracy plus the bench-time
 * accounting the paper quotes (~2 us/pixel sampling dwarfed by
 * ~60 s/iteration of laser-controller interface delay).
 */

#include <cstdio>

#include "mrf/grid_mrf.h"
#include "proto/prototype.h"
#include "vision/image.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

int
main()
{
    using namespace rsu::vision;

    // The paper's input is a 50x67 two-region photo; we synthesize
    // a two-region scene of the same dimensions (see DESIGN.md,
    // Substitutions).
    constexpr int kWidth = 50;
    constexpr int kHeight = 67;
    rsu::rng::Xoshiro256 rng(7);
    const auto scene =
        makeSegmentationScene(kWidth, kHeight, 2, 9.0, rng);

    SegmentationModel model(
        scene.image,
        {scene.region_means[0], scene.region_means[1]});
    auto config = segmentationConfig(scene.image, 2, 6.0, 6);
    rsu::mrf::GridMrf mrf(config, model);

    // Pixel-wise maximum-likelihood baseline (no smoothness prior)
    // shows how much the MRF contributes at this noise level.
    mrf.initializeMaximumLikelihood();
    const double ml_acc = labelAccuracy(mrf.labels(), scene.truth);

    rsu::proto::PrototypeRsuG2 proto(rsu::proto::PrototypeConfig{},
                                     2016);
    rsu::proto::PrototypeGibbsSampler sampler(mrf, proto);

    std::printf("=== Figure 7: prototype image segmentation "
                "(%dx%d, 2 labels, 10 iterations) ===\n",
                kWidth, kHeight);
    std::printf("Pixel-wise ML baseline (no prior): %.1f%% "
                "accuracy\n",
                100.0 * ml_acc);

    scene.image.writePgm("fig7_input.pgm");
    Image truth_img(kWidth, kHeight, 63);
    for (int i = 0; i < truth_img.size(); ++i)
        truth_img.pixels()[i] = scene.truth[i] ? 63 : 0;
    truth_img.writePgm("fig7_truth.pgm");

    for (int iter = 1; iter <= 10; ++iter) {
        sampler.sweep();
        const double acc = labelAccuracy(mrf.labels(), scene.truth);
        std::printf("  iteration %2d: accuracy %.1f%%, energy "
                    "%lld\n",
                    iter, 100.0 * acc,
                    static_cast<long long>(mrf.totalEnergy()));
    }

    Image result(kWidth, kHeight, 63);
    for (int i = 0; i < result.size(); ++i)
        result.pixels()[i] = mrf.labels()[i] ? 63 : 0;
    result.writePgm("fig7_iter10.pgm");

    const double final_acc =
        labelAccuracy(mrf.labels(), scene.truth);
    std::printf("\nFinal accuracy after 10 iterations: %.1f%% "
                "(wrote fig7_input.pgm / fig7_truth.pgm / "
                "fig7_iter10.pgm)\n",
                100.0 * final_acc);

    const auto t = sampler.timing();
    std::printf("\nBench-time accounting (paper section 7): "
                "sampling %.3f s total (~%.1f us/pixel), laser "
                "interface %.0f s (%.0f s/iteration) — the "
                "interface delay dwarfs sampling, as reported.\n",
                t.sampling_s,
                1e6 * t.sampling_s /
                    (10.0 * kWidth * kHeight),
                t.interface_s, t.interface_s / 10.0);
    std::printf("Prototype shots fired: %llu (re-fires on "
                "timer ties/losses included)\n",
                static_cast<unsigned long long>(proto.shots()));
    return 0;
}
