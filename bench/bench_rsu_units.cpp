/**
 * @file
 * Characterization of the generic RSU family (RSU-E, RSU-B) —
 * the paper's section 3 units beyond Gibbs sampling.
 *
 * For RSU-E: rate coverage of the 4-bit LED ladder, achieved vs
 * requested rate, and the quantized output's moment accuracy.
 * For RSU-B: achieved vs requested bias across the probability
 * range, with the analytic oracle.
 */

#include <cmath>
#include <cstdio>

#include "core/rsu_units.h"
#include "rng/stats.h"

int
main()
{
    using namespace rsu::core;

    std::printf("=== RSU-E: exponential sampling unit ===\n");
    RsuExponential rsu_e;
    std::printf("rate range: %.4f .. %.4f per ns (4-bit ladder)\n\n",
                rsu_e.minRate(), rsu_e.maxRate());
    std::printf("%14s %14s %12s %16s\n", "requested", "achieved",
                "rel.err", "measured mean");
    for (double rate : {0.08, 0.15, 0.3, 0.5, 0.7, 0.95}) {
        RsuExponential unit(rsu::ret::RetCircuitConfig{}, 11);
        const double achieved = unit.setRate(rate);
        rsu::rng::RunningMoments m;
        for (int i = 0; i < 50000; ++i)
            m.add(unit.sample() * unit.tickNs());
        std::printf("%14.3f %14.3f %11.1f%% %13.3f ns\n", rate,
                    achieved,
                    100.0 * std::abs(achieved - rate) / rate,
                    m.mean());
    }
    std::printf("\nThe quantized mean sits ~half a tick below "
                "1/rate (floor quantization); saturation clips the "
                "tail for the slowest settings.\n");

    std::printf("\n=== RSU-B: Bernoulli sampling unit ===\n");
    std::printf("%12s %12s %12s %12s\n", "requested", "oracle",
                "empirical", "|err|");
    for (double p : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95}) {
        RsuBernoulli unit(rsu::ret::RetCircuitConfig{}, 7);
        unit.setProbability(p);
        const double oracle = unit.achievedProbability();
        int ones = 0;
        constexpr int kDraws = 40000;
        for (int i = 0; i < kDraws; ++i)
            ones += unit.sample();
        const double emp = ones / double(kDraws);
        std::printf("%12.3f %12.4f %12.4f %12.4f\n", p, oracle, emp,
                    std::abs(emp - p));
    }
    std::printf("\nAchieved bias follows the requested probability "
                "within the 4-bit ladder's resolution — the "
                "integrated counterpart of the prototype's "
                "relative-probability experiment.\n");
    return 0;
}
