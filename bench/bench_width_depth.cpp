/**
 * @file
 * RSU pipeline width/depth design-space exploration — the paper's
 * section 9 future work ("actively investigating the width and
 * depth of RSU pipelines").
 *
 * For each width K (RSU-G1..G64) and the motion workload's M = 49
 * labels, reports: sample latency, steady-state throughput, unit
 * power and area at 15 nm (using the width-scaled component model),
 * and the throughput-per-watt / throughput-per-area figures a
 * designer would use to pick an operating point. Also sweeps RET
 * circuit replication below and above the quiescence-matching 4.
 */

#include <cstdio>

#include "arch/power_area.h"
#include "core/rsu_g.h"

namespace {

using namespace rsu::arch;
using rsu::core::RsuG;
using rsu::core::RsuGConfig;

void
widthSweep(int m)
{
    std::printf("=== Width sweep at M = %d labels (15 nm, 1 GHz, "
                "4 circuits/lane) ===\n",
                m);
    std::printf("%6s %8s %12s %14s %10s %12s %14s %16s\n", "K",
                "latency", "cyc/sample", "Msamples/s", "mW",
                "area um2", "Msamp/s/W", "Msamp/s/mm2");
    for (int k : {1, 2, 4, 8, 16, 32, 64}) {
        RsuGConfig config;
        config.width = k;
        RsuG unit(config);
        unit.setNumLabels(m);
        const double interval = unit.steadyStateIntervalCycles();
        const double msps = 1e9 / interval / 1e6; // at 1 GHz
        const RsuBudget b =
            RsuPowerAreaModel::projectWidth(15, 1000.0, k);
        std::printf("%6d %8d %12.1f %14.2f %10.1f %12.0f %14.1f "
                    "%16.1f\n",
                    k, unit.latencyCycles(), interval, msps,
                    b.totalPowerMw(), b.totalAreaUm2(),
                    msps / (b.totalPowerMw() * 1e-3),
                    msps / (b.totalAreaUm2() / 1e6));
    }
    std::printf("\nThroughput scales ~linearly with width while "
                "power/area grow slightly super-linearly (selection "
                "tree, LUT banking), so efficiency peaks at "
                "moderate widths unless single-cycle sampling is "
                "required.\n\n");
}

void
replicationSweep()
{
    std::printf("=== Depth (replication) sweep at K = 1, M = 16 "
                "===\n");
    std::printf("%10s %14s %12s %10s %14s\n", "replicas",
                "cyc/sample", "Msamples/s", "mW",
                "Msamp/s/W");
    for (int r : {1, 2, 3, 4, 6, 8}) {
        RsuGConfig config;
        config.circuits_per_lane = r;
        RsuG unit(config);
        unit.setNumLabels(16);
        const double interval = unit.steadyStateIntervalCycles();
        const double msps = 1e9 / interval / 1e6;
        const RsuBudget b =
            RsuPowerAreaModel::projectWidth(15, 1000.0, 1, r);
        std::printf("%10d %14.1f %12.2f %10.2f %14.1f\n", r,
                    interval, msps, b.totalPowerMw(),
                    msps / (b.totalPowerMw() * 1e-3));
    }
    std::printf("\n4 replicas exactly cover the 4-cycle quiescence "
                "window; fewer stall the pipeline, more burn optics "
                "power for nothing — the paper's design point is "
                "the efficiency knee.\n");
}

} // namespace

int
main()
{
    widthSweep(49); // motion estimation
    widthSweep(5);  // segmentation
    replicationSweep();
    return 0;
}
