/**
 * @file
 * Shared benchmark metadata: build configuration and machine info.
 *
 * Benchmark numbers are meaningless without knowing what was built
 * and where it ran, so every JSON-emitting bench records a common
 * "metadata" object — hardware concurrency, the SIMD ISA the Simd
 * sweep path selected at startup, CMake build type, and the
 * effective compiler flags (injected by bench/CMakeLists.txt as
 * RSU_BUILD_TYPE / RSU_CXX_FLAGS definitions). Non-release builds
 * additionally get a warning banner on stderr and a "build_warning"
 * field in the metadata, mirroring the configure-time CMake warning:
 * numbers from un-optimized builds must never be mistaken for
 * results.
 */

#ifndef RSU_BENCH_BENCH_META_H
#define RSU_BENCH_BENCH_META_H

#include <cstdio>
#include <cstring>
#include <thread>

#include "core/simd.h"

#ifndef RSU_BUILD_TYPE
#define RSU_BUILD_TYPE "unknown"
#endif
#ifndef RSU_CXX_FLAGS
#define RSU_CXX_FLAGS ""
#endif

namespace rsu::bench {

inline const char *
buildType()
{
    return RSU_BUILD_TYPE;
}

inline const char *
buildFlags()
{
    return RSU_CXX_FLAGS;
}

/** True for the build types whose timings are meaningful. */
inline bool
releaseBuild()
{
    return std::strcmp(RSU_BUILD_TYPE, "Release") == 0 ||
           std::strcmp(RSU_BUILD_TYPE, "RelWithDebInfo") == 0;
}

inline unsigned
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/** stderr banner when benchmarking a non-release build. */
inline void
warnIfNotRelease()
{
    if (releaseBuild())
        return;
    std::fprintf(stderr,
                 "WARNING: build type is '%s' — benchmark timings "
                 "from this build are not meaningful; reconfigure "
                 "with -DCMAKE_BUILD_TYPE=Release.\n",
                 buildType());
}

/**
 * Write the common `"metadata": {...},` object (with trailing
 * comma) into an in-progress JSON document, indented two spaces.
 * @p extra_fields optionally appends bench-specific fields: raw
 * JSON `"key": value` pairs (comma-separated, no surrounding
 * braces), e.g. `"\"simd_isa\": \"avx2\""`.
 */
inline void
writeMetaJson(FILE *json, const char *extra_fields = nullptr)
{
    std::fprintf(json,
                 "  \"metadata\": {\n"
                 "    \"hardware_concurrency\": %u,\n"
                 "    \"simd_isa\": \"%s\",\n"
                 "    \"build_type\": \"%s\",\n"
                 "    \"cxx_flags\": \"%s\",\n"
                 "    \"release_build\": %s",
                 hardwareConcurrency(),
                 rsu::core::simdIsaName(rsu::core::activeSimdIsa()),
                 buildType(), buildFlags(),
                 releaseBuild() ? "true" : "false");
    if (!releaseBuild())
        std::fprintf(json,
                     ",\n    \"build_warning\": \"non-release build; "
                     "timings are not meaningful\"");
    if (extra_fields && *extra_fields)
        std::fprintf(json, ",\n    %s", extra_fields);
    std::fprintf(json, "\n  },\n");
}

} // namespace rsu::bench

#endif // RSU_BENCH_BENCH_META_H
