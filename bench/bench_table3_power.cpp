/**
 * @file
 * Reproduces paper Table 3: power consumption for a single RSU-G1
 * at 45 nm (590 MHz, synthesized) and 15 nm (1 GHz, projected),
 * broken down into logic, RET circuit, and LUT, plus the
 * system-level roll-ups of section 8.3 (12 W for a 3072-unit GPU,
 * 1.3 W for the 336-unit accelerator).
 */

#include <cstdio>

#include "arch/power_area.h"

int
main()
{
    using namespace rsu::arch;

    const RsuBudget ref = RsuPowerAreaModel::reference45nm();
    const RsuBudget b15 = RsuPowerAreaModel::project(15, 1000.0);

    std::printf("=== Table 3: Power Consumption for a Single "
                "RSU-G1 (mW) ===\n");
    std::printf("%-14s %16s %22s %10s\n", "Component",
                "45nm/590MHz", "15nm/1GHz (model)",
                "15nm paper");
    std::printf("%-14s %16.2f %22.2f %10.2f\n", "Logic",
                ref.logic_mw, b15.logic_mw, 2.33);
    std::printf("%-14s %16.2f %22.2f %10.2f\n", "RET Circuit",
                ref.ret_mw, b15.ret_mw, 0.16);
    std::printf("%-14s %16.2f %22.2f %10.2f\n", "LUT", ref.lut_mw,
                b15.lut_mw, 1.42);
    std::printf("%-14s %16.2f %22.2f %10.2f\n", "Total",
                ref.totalPowerMw(), b15.totalPowerMw(), 3.91);

    std::printf("\n=== Section 8.3 system roll-ups ===\n");
    std::printf("GPU augmented with 3072 RSU-G1 units (all "
                "active): %.2f W (paper: 12 W)\n",
                RsuPowerAreaModel::systemPowerW(b15, 3072));
    std::printf("Discrete accelerator, 336 units @ 336 GB/s: "
                "%.2f W (paper: 1.3 W)\n",
                RsuPowerAreaModel::systemPowerW(b15, 336));

    std::printf("\n--- Node sweep (model projection, 1 GHz) ---\n");
    std::printf("%-8s %10s %10s %10s %10s\n", "Node", "logic",
                "RET", "LUT", "total");
    for (int node : {45, 32, 22, 15}) {
        const RsuBudget b = RsuPowerAreaModel::project(node, 1000.0);
        std::printf("%-8d %10.2f %10.2f %10.2f %10.2f\n", node,
                    b.logic_mw, b.ret_mw, b.lut_mw,
                    b.totalPowerMw());
    }
    std::printf("\nNote: the optical RET circuit does not scale "
                "with CMOS, so its share of unit power grows from "
                "%.1f%% at 45 nm to %.1f%% at 15 nm.\n",
                100.0 * ref.ret_mw / ref.totalPowerMw(),
                100.0 * b15.ret_mw / b15.totalPowerMw());
    return 0;
}
