/**
 * @file
 * MCMC solution-quality benchmark: verifies that the quantized
 * RSU-G device sampler converges like the exact software Gibbs
 * sampler — the property that makes the paper's speedups "free".
 *
 * On a synthetic 5-label segmentation scene, runs software Gibbs,
 * RSU-Gibbs, Metropolis, and ICM, reporting the energy trajectory
 * and ground-truth accuracy over iterations. The paper functionally
 * verified its implementations against MATLAB references
 * (section 8.1); this is the equivalent cross-check, plus marginal
 * fidelity on a tiny lattice against the brute-force oracle.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/rsu_g.h"
#include "mrf/belief_propagation.h"
#include "mrf/diagnostics.h"
#include "mrf/estimator.h"
#include "mrf/exact.h"
#include "mrf/gibbs.h"
#include "mrf/icm.h"
#include "mrf/metropolis.h"
#include "mrf/rsu_gibbs.h"
#include "vision/metrics.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

using namespace rsu::mrf;
using namespace rsu::vision;

void
energyRace()
{
    rsu::rng::Xoshiro256 rng(11);
    const auto scene = makeSegmentationScene(64, 64, 5, 2.5, rng);
    SegmentationModel model(
        scene.image, std::vector<uint8_t>(scene.region_means.begin(),
                                          scene.region_means.end()));
    const auto config = segmentationConfig(scene.image, 5, 6.0, 6);

    std::printf("=== Convergence: 64x64 segmentation, 5 labels "
                "===\n");
    std::printf("%6s %14s %14s %14s %14s\n", "iter", "Gibbs",
                "RSU-Gibbs", "Metropolis", "(accuracy G/R)");

    // All samplers start from the standard per-pixel ML
    // initialization (required by the RSU path's single-pass
    // energy re-referencing; see GridMrf::initializeMaximumLikelihood).
    GridMrf mrf_sw(config, model);
    GridMrf mrf_rsu(config, model);
    GridMrf mrf_mh(config, model);
    mrf_sw.initializeMaximumLikelihood();
    mrf_rsu.setLabels(mrf_sw.labels());
    mrf_mh.setLabels(mrf_sw.labels());

    GibbsSampler sw(mrf_sw, 21);
    rsu::core::RsuG unit(
        RsuGibbsSampler::unitConfigFor(mrf_rsu), 22);
    RsuGibbsSampler dev(mrf_rsu, unit);
    MetropolisSampler mh(mrf_mh, 23);

    for (int iter = 1; iter <= 60; ++iter) {
        sw.sweep();
        dev.sweep();
        mh.sweep();
        if (iter == 1 || iter % 10 == 0) {
            std::printf(
                "%6d %14lld %14lld %14lld   %5.1f%% / %5.1f%%\n",
                iter,
                static_cast<long long>(mrf_sw.totalEnergy()),
                static_cast<long long>(mrf_rsu.totalEnergy()),
                static_cast<long long>(mrf_mh.totalEnergy()),
                100.0 * labelAccuracy(mrf_sw.labels(), scene.truth),
                100.0 *
                    labelAccuracy(mrf_rsu.labels(), scene.truth));
        }
    }

    GridMrf mrf_icm(config, model);
    mrf_icm.initializeMaximumLikelihood();
    IcmSolver icm(mrf_icm);
    const int icm_sweeps = icm.solve();
    std::printf("\nICM baseline: fixed point after %d sweeps, "
                "energy %lld, accuracy %.1f%%\n",
                icm_sweeps,
                static_cast<long long>(mrf_icm.totalEnergy()),
                100.0 * labelAccuracy(mrf_icm.labels(), scene.truth));

    // Deterministic approximate inference (the section 2.4
    // alternative): loopy max-product BP on the same model.
    GridMrf mrf_bp(config, model);
    BpConfig bp_config;
    bp_config.damping = 0.3;
    bp_config.max_product = true;
    bp_config.max_iterations = 100;
    BeliefPropagation bp(mrf_bp, bp_config);
    const int bp_iters = bp.run();
    mrf_bp.setLabels(bp.decode());
    std::printf("Loopy BP baseline: %d message iterations "
                "(converged: %s), energy %lld, accuracy %.1f%%\n",
                bp_iters, bp.converged() ? "yes" : "no",
                static_cast<long long>(mrf_bp.totalEnergy()),
                100.0 * labelAccuracy(mrf_bp.labels(), scene.truth));

    const double gap =
        100.0 *
        (static_cast<double>(mrf_rsu.totalEnergy()) -
         static_cast<double>(mrf_sw.totalEnergy())) /
        static_cast<double>(mrf_sw.totalEnergy());
    std::printf("RSU-Gibbs final energy within %.1f%% of software "
                "Gibbs — device quantization does not impede "
                "convergence.\n\n",
                gap);

    // Robustness from a *random* start: the single-pass
    // current-label reference is ill-conditioned there (the offset
    // can crush all candidate differences), while the two-pass
    // minimum reference converges regardless — the design-space
    // trade-off the two_pass_offset extension buys with its extra
    // ceil(M/K) cycles.
    std::printf("--- Initialization robustness (random start) "
                "---\n");
    std::printf("%24s %14s %10s\n", "sampler", "energy@40",
                "accuracy");
    for (int two_pass = 0; two_pass <= 1; ++two_pass) {
        GridMrf mrf(config, model);
        rsu::rng::Xoshiro256 init(5);
        mrf.randomizeLabels(init);
        rsu::core::RsuGConfig ucfg =
            RsuGibbsSampler::unitConfigFor(mrf);
        ucfg.two_pass_offset = (two_pass == 1);
        rsu::core::RsuG unit2(ucfg, 29);
        RsuGibbsSampler sampler(mrf, unit2);
        sampler.run(40);
        std::printf("%24s %14lld %9.1f%%\n",
                    two_pass ? "RSU two-pass (random)"
                             : "RSU single-pass (random)",
                    static_cast<long long>(mrf.totalEnergy()),
                    100.0 * labelAccuracy(mrf.labels(),
                                          scene.truth));
    }
    std::printf("\n");
}

void
marginalFidelity()
{
    std::printf("=== Marginal fidelity vs brute-force oracle (3x3, "
                "3 labels) ===\n");
    rsu::rng::Xoshiro256 rng(13);
    const auto scene = makeSegmentationScene(3, 3, 3, 4.0, rng);
    SegmentationModel model(
        scene.image, std::vector<uint8_t>(scene.region_means.begin(),
                                          scene.region_means.end()));
    const auto config = segmentationConfig(scene.image, 3, 10.0, 4);
    GridMrf mrf(config, model);
    const ExactInference exact(mrf);

    rsu::core::RsuG unit(
        RsuGibbsSampler::unitConfigFor(mrf), 31);
    RsuGibbsSampler sampler(mrf, unit);
    MarginalMapEstimator est(mrf, 100);
    est.run(8100, [&] { sampler.sweep(); });

    double max_err = 0.0, mean_err = 0.0;
    int cells = 0;
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 3; ++x) {
            const auto truth = exact.marginal(x, y);
            const auto emp = est.empiricalMarginal(x, y);
            for (int l = 0; l < 3; ++l) {
                const double err = std::abs(emp[l] - truth[l]);
                max_err = std::max(max_err, err);
                mean_err += err;
                ++cells;
            }
        }
    }
    std::printf("RSU-Gibbs empirical marginals vs exact "
                "enumeration: mean |error| %.4f, max %.4f over %d "
                "cells (8000 retained samples).\n",
                mean_err / cells, max_err, cells);
    std::printf("Note: residual error includes both Monte Carlo "
                "noise and the device's 4-bit intensity "
                "quantization (characterized in "
                "bench_ablation_precision).\n");
}

void
mixingDiagnostics()
{
    std::printf("=== Mixing diagnostics (4 chains, 32x32 "
                "segmentation) ===\n");
    rsu::rng::Xoshiro256 rng(17);
    const auto scene = makeSegmentationScene(32, 32, 4, 2.5, rng);
    SegmentationModel model(
        scene.image, std::vector<uint8_t>(scene.region_means.begin(),
                                          scene.region_means.end()));
    const auto config = segmentationConfig(scene.image, 4, 8.0, 4);

    auto chain_for = [&](uint64_t seed, bool use_rsu) {
        GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        std::vector<double> chain;
        rsu::core::RsuG unit(
            RsuGibbsSampler::unitConfigFor(mrf), seed);
        if (use_rsu) {
            RsuGibbsSampler sampler(mrf, unit);
            sampler.run(20);
            for (int i = 0; i < 200; ++i) {
                sampler.sweep();
                chain.push_back(
                    static_cast<double>(mrf.totalEnergy()));
            }
        } else {
            GibbsSampler sampler(mrf, seed);
            sampler.run(20);
            for (int i = 0; i < 200; ++i) {
                sampler.sweep();
                chain.push_back(
                    static_cast<double>(mrf.totalEnergy()));
            }
        }
        return chain;
    };

    for (int use_rsu = 0; use_rsu <= 1; ++use_rsu) {
        std::vector<std::vector<double>> chains;
        for (uint64_t seed : {101u, 202u, 303u, 404u})
            chains.push_back(chain_for(seed, use_rsu == 1));
        std::printf("%12s: R-hat %.4f, autocorrelation time %.2f "
                    "sweeps, ESS %.0f / 200\n",
                    use_rsu ? "RSU-Gibbs" : "Gibbs",
                    gelmanRubin(chains),
                    autocorrelationTime(chains[0]),
                    effectiveSampleSize(chains[0]));
    }
    std::printf("Both samplers converge to the same distribution "
                "(R-hat ~ 1 across independent chains). The RSU "
                "chain decorrelates a few times slower: the "
                "single-pass energy re-reference slightly favours "
                "the incumbent label (clamp at zero), a stickiness "
                "the two-pass mode removes. Budget iterations "
                "accordingly (ESS column).\n");
}

} // namespace

int
main()
{
    energyRace();
    marginalFidelity();
    mixingDiagnostics();
    return 0;
}
