/**
 * @file
 * Software discrete-sampler microbenchmarks (google-benchmark).
 *
 * Complements Table 1: the Gibbs inner loop's *discrete* draw can
 * be implemented several ways in software, and this bench shows
 * their throughput against the std:: baseline and the full
 * emulated RSU-G path:
 *
 *  - linear CDF scan (what a straightforward kernel does, O(M));
 *  - binary-search CDF (O(log M), O(M) setup per pixel);
 *  - alias method (O(1), O(M) setup per pixel — setup dominates
 *    when the distribution changes every draw, the MRF case);
 *  - std::discrete_distribution (allocates per construction);
 *  - full Gibbs site parameterization + draw.
 */

#include <random>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/energy_unit.h"
#include "rng/discrete.h"
#include "rng/distributions.h"
#include "rng/xoshiro256.h"

namespace {

using rsu::rng::Xoshiro256;

std::vector<double>
freshWeights(Xoshiro256 &rng, int m)
{
    std::vector<double> w(m);
    for (auto &x : w)
        x = 0.05 + rng.uniform();
    return w;
}

void
BM_LinearScan(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(1);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            rsu::rng::sampleDiscreteLinear(rng, w.data(), m));
    }
}
BENCHMARK(BM_LinearScan)->Arg(5)->Arg(49);

void
BM_CdfSamplerReused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(2);
    const rsu::rng::CdfSampler sampler(freshWeights(rng, m));
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_CdfSamplerReused)->Arg(5)->Arg(49);

void
BM_AliasSamplerReused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(3);
    const rsu::rng::AliasSampler sampler(freshWeights(rng, m));
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_AliasSamplerReused)->Arg(5)->Arg(49);

void
BM_AliasSamplerRebuiltPerDraw(benchmark::State &state)
{
    // The MRF case: the conditional changes every pixel, so setup
    // cost is paid per draw.
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(4);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        const rsu::rng::AliasSampler sampler(w);
        benchmark::DoNotOptimize(sampler.sample(rng));
    }
}
BENCHMARK(BM_AliasSamplerRebuiltPerDraw)->Arg(5)->Arg(49);

void
BM_StdDiscreteDistribution(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(5);
    std::mt19937_64 eng(5);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        std::discrete_distribution<int> dist(w.begin(), w.end());
        benchmark::DoNotOptimize(dist(eng));
    }
}
BENCHMARK(BM_StdDiscreteDistribution)->Arg(5)->Arg(49);

void
BM_FullGibbsSiteDraw(benchmark::State &state)
{
    // Parameterization (M energies + M exp) plus the draw — the
    // complete software inner loop the RSU-G replaces.
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(6);
    const rsu::core::EnergyUnit unit;
    rsu::core::EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    std::vector<double> weights(m);
    for (auto _ : state) {
        for (int l = 0; l < m; ++l) {
            in.data2 = static_cast<uint8_t>((l * 7) & 0x3f);
            const auto e = unit.evaluate(
                static_cast<rsu::core::Label>(l & 0x3f), in);
            weights[l] =
                __builtin_exp(-static_cast<double>(e) / 16.0);
        }
        benchmark::DoNotOptimize(rsu::rng::sampleDiscreteLinear(
            rng, weights.data(), m));
    }
}
BENCHMARK(BM_FullGibbsSiteDraw)->Arg(5)->Arg(49);

} // namespace

BENCHMARK_MAIN();
