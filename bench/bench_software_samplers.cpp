/**
 * @file
 * Software discrete-sampler microbenchmarks (google-benchmark).
 *
 * Complements Table 1: the Gibbs inner loop's *discrete* draw can
 * be implemented several ways in software, and this bench shows
 * their throughput against the std:: baseline and the full
 * emulated RSU-G path:
 *
 *  - linear CDF scan (what a straightforward kernel does, O(M));
 *  - binary-search CDF (O(log M), O(M) setup per pixel);
 *  - alias method (O(1), O(M) setup per pixel — setup dominates
 *    when the distribution changes every draw, the MRF case);
 *  - std::discrete_distribution (allocates per construction);
 *  - full Gibbs site parameterization + draw.
 *
 * On top of the microbenchmarks, a full-sweep benchmark is
 * registered for every workload in the WorkloadRegistry, on the
 * Reference and Table sweep paths (BM_WorkloadSweep/<name>/<path>),
 * so per-application sweep cost is measured through the same
 * factories the serving stack uses. Filter as usual, e.g.
 *   bench_software_samplers
 *       --benchmark_filter=BM_WorkloadSweep/motion
 */

#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/energy_unit.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "rng/discrete.h"
#include "rng/distributions.h"
#include "rng/xoshiro256.h"
#include "workload/registry.h"

namespace {

using rsu::rng::Xoshiro256;

std::vector<double>
freshWeights(Xoshiro256 &rng, int m)
{
    std::vector<double> w(m);
    for (auto &x : w)
        x = 0.05 + rng.uniform();
    return w;
}

void
BM_LinearScan(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(1);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            rsu::rng::sampleDiscreteLinear(rng, w.data(), m));
    }
}
BENCHMARK(BM_LinearScan)->Arg(5)->Arg(49);

void
BM_CdfSamplerReused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(2);
    const rsu::rng::CdfSampler sampler(freshWeights(rng, m));
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_CdfSamplerReused)->Arg(5)->Arg(49);

void
BM_AliasSamplerReused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(3);
    const rsu::rng::AliasSampler sampler(freshWeights(rng, m));
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_AliasSamplerReused)->Arg(5)->Arg(49);

void
BM_AliasSamplerRebuiltPerDraw(benchmark::State &state)
{
    // The MRF case: the conditional changes every pixel, so setup
    // cost is paid per draw.
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(4);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        const rsu::rng::AliasSampler sampler(w);
        benchmark::DoNotOptimize(sampler.sample(rng));
    }
}
BENCHMARK(BM_AliasSamplerRebuiltPerDraw)->Arg(5)->Arg(49);

void
BM_StdDiscreteDistribution(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(5);
    std::mt19937_64 eng(5);
    const auto w = freshWeights(rng, m);
    for (auto _ : state) {
        std::discrete_distribution<int> dist(w.begin(), w.end());
        benchmark::DoNotOptimize(dist(eng));
    }
}
BENCHMARK(BM_StdDiscreteDistribution)->Arg(5)->Arg(49);

void
BM_FullGibbsSiteDraw(benchmark::State &state)
{
    // Parameterization (M energies + M exp) plus the draw — the
    // complete software inner loop the RSU-G replaces.
    const int m = static_cast<int>(state.range(0));
    Xoshiro256 rng(6);
    const rsu::core::EnergyUnit unit;
    rsu::core::EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    std::vector<double> weights(m);
    for (auto _ : state) {
        for (int l = 0; l < m; ++l) {
            in.data2 = static_cast<uint8_t>((l * 7) & 0x3f);
            const auto e = unit.evaluate(
                static_cast<rsu::core::Label>(l & 0x3f), in);
            weights[l] =
                __builtin_exp(-static_cast<double>(e) / 16.0);
        }
        benchmark::DoNotOptimize(rsu::rng::sampleDiscreteLinear(
            rng, weights.data(), m));
    }
}
BENCHMARK(BM_FullGibbsSiteDraw)->Arg(5)->Arg(49);

/** One full checkerboard sweep of workload @p name on @p path,
 * over a small registry-built instance (48x36). */
void
workloadSweep(benchmark::State &state, const std::string &name,
              rsu::mrf::SweepPath path)
{
    rsu::workload::SceneOptions scene;
    scene.width = 48;
    scene.height = 36;
    const auto problem =
        rsu::workload::WorkloadRegistry::builtin().make(name,
                                                        scene);
    rsu::mrf::GridMrf mrf(problem.config, *problem.singleton);
    if (problem.initial_labels.empty())
        mrf.initializeMaximumLikelihood();
    else
        mrf.setLabels(problem.initial_labels);
    rsu::mrf::GibbsSampler sampler(
        mrf, 7, rsu::mrf::Schedule::Checkerboard, path);
    for (auto _ : state)
        sampler.sweep();
    state.SetItemsProcessed(state.iterations() * mrf.width() *
                            mrf.height());
}

void
registerWorkloadSweeps()
{
    const auto &registry =
        rsu::workload::WorkloadRegistry::builtin();
    for (const auto &name : registry.names()) {
        for (const auto path : {rsu::mrf::SweepPath::Reference,
                                rsu::mrf::SweepPath::Table}) {
            const std::string bench_name =
                "BM_WorkloadSweep/" + name +
                (path == rsu::mrf::SweepPath::Table
                     ? "/table"
                     : "/reference");
            benchmark::RegisterBenchmark(
                bench_name.c_str(),
                [name, path](benchmark::State &state) {
                    workloadSweep(state, name, path);
                });
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerWorkloadSweeps();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
