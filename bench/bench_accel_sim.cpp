/**
 * @file
 * Simulated discrete accelerator vs the analytic section 8.2 bound.
 *
 * The analytic model says the accelerator is bandwidth-bound with
 * #units = BW / frequency / bytes-per-unit-cycle; this bench runs
 * the *functional* farm simulator on a segmentation problem and a
 * motion problem, measuring cycles per iteration, unit utilization,
 * and where the compute-vs-memory crossover actually falls.
 */

#include <cstdio>

#include "arch/accel_sim.h"
#include "arch/accelerator_model.h"
#include "vision/metrics.h"
#include "vision/motion.h"
#include "vision/segmentation.h"
#include "vision/synthetic.h"

namespace {

void
unitScalingStudy()
{
    std::printf("=== Unit scaling: 96x96 segmentation (M=5) "
                "===\n");
    std::printf("%8s %16s %12s %14s %14s\n", "units",
                "cycles/iter", "util", "compute (us)",
                "memory (us)");

    rsu::rng::Xoshiro256 rng(1);
    const auto scene =
        rsu::vision::makeSegmentationScene(96, 96, 5, 2.5, rng);
    rsu::vision::SegmentationModel model(scene.image,
                                         scene.region_means);
    const auto config =
        rsu::vision::segmentationConfig(scene.image, 5, 6.0, 6);

    for (int units : {1, 4, 16, 64, 336}) {
        rsu::mrf::GridMrf mrf(config, model);
        mrf.initializeMaximumLikelihood();
        rsu::arch::AcceleratorSimConfig sim_config;
        sim_config.num_units = units;
        rsu::arch::AcceleratorSim sim(mrf, sim_config);
        const auto stats = sim.sweep();
        std::printf("%8d %16llu %11.1f%% %14.2f %14.2f\n", units,
                    static_cast<unsigned long long>(
                        stats.critical_cycles),
                    100.0 * sim.lastUtilization(),
                    stats.compute_seconds * 1e6,
                    stats.memory_seconds * 1e6);
    }
    std::printf("\nWith M = 5 a unit needs ~5 cycles per site, so "
                "the farm turns memory-bound once units x bytes/"
                "cycle outpace DRAM — the regime the analytic bound "
                "assumes.\n\n");
}

void
boundValidation()
{
    std::printf("=== Analytic bound vs simulation (24x24 motion, "
                "M=49) ===\n");
    rsu::rng::Xoshiro256 rng(2);
    const auto scene =
        rsu::vision::makeMotionScene(24, 24, 1, 3, 1.0, rng);
    rsu::vision::MotionModel model(scene.frame1, scene.frame2, 3);
    const auto config = rsu::vision::motionConfig(scene.frame1, 3);
    rsu::mrf::GridMrf mrf(config, model);
    mrf.initializeMaximumLikelihood();

    rsu::arch::AcceleratorSimConfig sim_config;
    sim_config.num_units = 336;
    rsu::arch::AcceleratorSim sim(mrf, sim_config);
    const auto stats = sim.run(10);

    std::printf("bytes/site: %d (paper: 54)\n", sim.bytesPerSite());
    std::printf("simulated:  %.3f us/iteration (%.1f%% "
                "memory-bound)\n",
                stats.seconds() / 10.0 * 1e6,
                100.0 * stats.memory_seconds /
                    (stats.memory_seconds + stats.compute_seconds));

    // Analytic bound for the same problem.
    rsu::arch::Workload w = rsu::arch::motionWorkload(24, 24);
    w.iterations = 1;
    const rsu::arch::AcceleratorModel analytic;
    std::printf("analytic:   %.3f us/iteration (pure bandwidth "
                "bound)\n",
                analytic.totalSeconds(w) * 1e6);
    std::printf("\nThe simulated accelerator lands on the analytic "
                "bound whenever enough units are provisioned; "
                "under-provisioned farms are compute-bound and the "
                "simulator exposes the gap the bound hides.\n\n");

    std::printf("Functional check: accelerator-solved motion EPE "
                "after 40 more iterations: ");
    sim.run(40);
    std::printf("%.3f px\n",
                rsu::vision::meanEndpointError(mrf.labels(),
                                               scene.truth));
}

} // namespace

int
main()
{
    unitScalingStudy();
    boundValidation();
    return 0;
}
