/**
 * @file
 * Reference vs table-driven software Gibbs sweep benchmark.
 *
 * Measures site updates per second of the two software realizations
 * of the Gibbs inner loop — GibbsSampler's reference path (virtual
 * data2 + EnergyUnit + std::exp per candidate) and the SweepTables
 * fast path (precomputed singleton/doubleton/exp lookups with the
 * interior/border split) — on square lattices across label counts.
 * The label-count sweep spans the paper's workloads: M = 2/8 run in
 * scalar mode (denoise/segmentation-like), M = 16/49 in vector mode
 * with packed 2 x 3-bit codes (motion's 7x7 window is M = 49). A
 * deterministic synthetic singleton model keeps the data terms
 * uniform across M so the comparison isolates the sweep kernels.
 * The two paths are bit-identical per seed
 * (tests/fast_sweep_test.cpp), so the speedup column is a pure
 * implementation win at constant output; it is the honest software
 * baseline the paper's accelerator comparisons should be read
 * against.
 *
 * Results go to stdout as a table and to BENCH_fast_sweep.json as
 *   {"benchmark": "fast_sweep",
 *    "metadata": {hardware_concurrency, build_type, cxx_flags, ...},
 *    "results": [{"size": N, "labels": M, "sweeps": S,
 *                 "reference_sites_per_sec": R,
 *                 "table_sites_per_sec": T,
 *                 "table_build_seconds": B, "speedup": X}, ...]}
 *
 * Usage:
 *   bench_fast_sweep [sizes-csv] [labels-csv] [site-budget]
 * Defaults: sizes 128,512,1024; labels 2,8,16,49; budget 2000000
 * (every measurement runs ceil(budget / size^2) full sweeps).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_meta.h"
#include "core/types.h"
#include "mrf/fast_sweep.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"

namespace {

/**
 * Deterministic data terms with the same per-call cost shape as the
 * vision models (a few integer ops), valid for any M <= 64. The
 * reference path pays this per candidate per site per sweep through
 * the virtual calls; the table path precomputes it once.
 */
class BenchModel : public rsu::mrf::SingletonModel
{
  public:
    explicit BenchModel(bool vector) : vector_(vector) {}

    uint8_t
    data1(int x, int y) const override
    {
        return static_cast<uint8_t>((3 * x + 5 * y) & 63);
    }

    uint8_t
    data2(int x, int y, rsu::mrf::Label label) const override
    {
        if (vector_)
            return static_cast<uint8_t>(
                (x + 2 * y + 7 * rsu::core::labelX1(label) +
                 11 * rsu::core::labelX2(label)) &
                63);
        return static_cast<uint8_t>((x + 2 * y + 9 * label) & 63);
    }

  private:
    bool vector_;
};

/** Scalar identity codes for M <= 8, packed vector codes above. */
rsu::mrf::MrfConfig
benchConfig(int size, int m)
{
    rsu::mrf::MrfConfig config;
    config.width = size;
    config.height = size;
    config.num_labels = m;
    config.temperature = 8.0;
    config.energy.doubleton_weight = 2;
    if (m > 8) {
        config.energy.mode = rsu::core::LabelMode::Vector;
        for (int i = 0; i < m; ++i)
            config.label_codes.push_back(
                rsu::core::packVectorLabel(i % 8, i / 8));
    }
    return config;
}

std::vector<int>
parseCsv(const char *arg)
{
    std::vector<int> values;
    std::string token;
    for (const char *c = arg;; ++c) {
        if (*c == ',' || *c == '\0') {
            if (!token.empty())
                values.push_back(std::atoi(token.c_str()));
            token.clear();
            if (*c == '\0')
                break;
        } else {
            token += *c;
        }
    }
    return values;
}

struct Row
{
    int size;
    int labels;
    int sweeps;
    double reference_sites_per_sec;
    double table_sites_per_sec;
    double table_build_seconds;
    double speedup;
};

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/** Sites/sec of one sampler path over `sweeps` full sweeps. */
double
measure(rsu::mrf::GridMrf &mrf, rsu::mrf::SweepPath path,
        int sweeps)
{
    mrf.initializeMaximumLikelihood();
    rsu::mrf::GibbsSampler sampler(
        mrf, 1234, rsu::mrf::Schedule::Checkerboard, path);
    sampler.sweep(); // warm-up: page in, prime caches

    const auto start = std::chrono::steady_clock::now();
    sampler.run(sweeps);
    const double elapsed = seconds(start);
    return static_cast<double>(sweeps) * mrf.size() / elapsed;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsu;

    std::vector<int> sizes = {128, 512, 1024};
    std::vector<int> labels = {2, 8, 16, 49};
    long budget = 2'000'000;
    if (argc > 1)
        sizes = parseCsv(argv[1]);
    if (argc > 2)
        labels = parseCsv(argv[2]);
    if (argc > 3)
        budget = std::atol(argv[3]);

    const auto all_positive = [](const std::vector<int> &values) {
        if (values.empty())
            return false;
        for (const int v : values)
            if (v < 1)
                return false;
        return true;
    };
    if (!all_positive(sizes) || !all_positive(labels) ||
        budget < 1) {
        std::fprintf(stderr,
                     "usage: %s [sizes-csv] [labels-csv] "
                     "[site-budget]\n"
                     "sizes must be positive, labels in [2, 64], "
                     "budget >= 1\n",
                     argv[0]);
        return 2;
    }
    for (const int m : labels) {
        if (m < 2 || m > 64) {
            std::fprintf(stderr, "labels must be in [2, 64]\n");
            return 2;
        }
    }

    bench::warnIfNotRelease();
    std::printf("software Gibbs: reference vs table-driven fast "
                "path (%s build, %u hardware thread(s))\n\n",
                bench::buildType(), bench::hardwareConcurrency());
    std::printf("%8s %8s %7s %16s %16s %11s %9s\n", "size",
                "labels", "sweeps", "ref sites/sec", "table "
                "sites/sec", "build(s)", "speedup");

    std::vector<Row> rows;
    for (const int size : sizes) {
        for (const int m : labels) {
            const BenchModel model(m > 8);
            const auto config = benchConfig(size, m);

            const long sites = static_cast<long>(size) * size;
            const int sweeps = static_cast<int>(
                std::max(1L, (budget + sites - 1) / sites));

            mrf::GridMrf ref_mrf(config, model);
            const double ref_rate = measure(
                ref_mrf, mrf::SweepPath::Reference, sweeps);

            // Table construction cost, reported separately: it is
            // a one-time per-model cost the sweep rate amortizes.
            mrf::GridMrf fast_mrf(config, model);
            const auto build_start =
                std::chrono::steady_clock::now();
            {
                mrf::SweepTables tables(fast_mrf);
            }
            const double build_seconds = seconds(build_start);
            const double table_rate = measure(
                fast_mrf, mrf::SweepPath::Table, sweeps);

            const double speedup = table_rate / ref_rate;
            rows.push_back({size, m, sweeps, ref_rate, table_rate,
                            build_seconds, speedup});
            std::printf(
                "%8d %8d %7d %16.0f %16.0f %11.4f %8.2fx\n", size,
                m, sweeps, ref_rate, table_rate, build_seconds,
                speedup);
        }
    }

    FILE *json = std::fopen("BENCH_fast_sweep.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_fast_sweep.json\n");
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"fast_sweep\",\n");
    bench::writeMetaJson(json);
    std::fprintf(json, "  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            json,
            "    {\"size\": %d, \"labels\": %d, \"sweeps\": %d, "
            "\"reference_sites_per_sec\": %.1f, "
            "\"table_sites_per_sec\": %.1f, "
            "\"table_build_seconds\": %.6f, \"speedup\": %.3f}%s\n",
            r.size, r.labels, r.sweeps, r.reference_sites_per_sec,
            r.table_sites_per_sec, r.table_build_seconds, r.speedup,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_fast_sweep.json (%zu rows)\n",
                rows.size());
    return 0;
}
