/**
 * @file
 * Reference vs table-driven vs SIMD software Gibbs sweep benchmark.
 *
 * Measures site updates per second of the three software
 * realizations of the Gibbs inner loop — GibbsSampler's reference
 * path (virtual data2 + EnergyUnit + std::exp per candidate), the
 * SweepTables Table path (precomputed singleton/doubleton/exp
 * lookups with the interior/border split, bit-identical to the
 * reference), and the Simd path (runtime-dispatched vector kernels
 * over Q32 fixed-point weights; identical across ISAs, not
 * bit-identical) — on square lattices across label counts. The
 * label-count sweep spans the paper's workloads: M = 2/8 run in
 * scalar mode (denoise/segmentation-like), M = 16/49 in vector mode
 * with packed 2 x 3-bit codes (motion's 7x7 window is M = 49). A
 * deterministic synthetic singleton model keeps the data terms
 * uniform across M so the comparison isolates the sweep kernels.
 * It is the honest software baseline the paper's accelerator
 * comparisons should be read against.
 *
 * Two more sections follow the per-path grid:
 * - parallel: the chromatic runtime sweeping the largest size at
 *   the largest M for Table/Simd x shard counts {1, 2, 4, 8}.
 *   Read these against the metadata's hardware_concurrency — on a
 *   1-thread host the shard sweep measures determinism overhead,
 *   not scaling.
 * - table_cache: the InferenceEngine's cross-job SweepTableSet
 *   cache — per-job table build seconds for a cold vs warm
 *   (repeat-model) submission; warm must be ~0.
 *
 * Results go to stdout as a table and to BENCH_fast_sweep.json as
 *   {"benchmark": "fast_sweep",
 *    "metadata": {hardware_concurrency, simd_isa, ...},
 *    "results": [{"size": N, "labels": M, "sweeps": S,
 *                 "reference_sites_per_sec": R,
 *                 "table_sites_per_sec": T,
 *                 "simd_sites_per_sec": V,
 *                 "table_build_seconds": B, "speedup": X,
 *                 "simd_speedup": Y, "simd_vs_table": Z}, ...],
 *    "parallel": [{"path": P, "shards": S, "sites_per_sec": R},...],
 *    "table_cache": {"cold_build_seconds": C,
 *                    "warm_build_seconds": W, "warm_hit": true}}
 *
 * Usage:
 *   bench_fast_sweep [sizes-csv] [labels-csv] [site-budget]
 * Defaults: sizes 128,512,1024; labels 2,8,16,49; budget 2000000
 * (every measurement runs ceil(budget / size^2) full sweeps, best
 * of five timed repetitions per cell and two whole-grid rounds —
 * see kRepeats / kGridRounds).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_meta.h"
#include "core/simd.h"
#include "core/types.h"
#include "mrf/fast_sweep.h"
#include "mrf/gibbs.h"
#include "mrf/grid_mrf.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/inference_engine.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"

namespace {

/**
 * Deterministic data terms with the same per-call cost shape as the
 * vision models (a few integer ops), valid for any M <= 64. The
 * reference path pays this per candidate per site per sweep through
 * the virtual calls; the table path precomputes it once.
 */
class BenchModel : public rsu::mrf::SingletonModel
{
  public:
    explicit BenchModel(bool vector) : vector_(vector) {}

    uint8_t
    data1(int x, int y) const override
    {
        return static_cast<uint8_t>((3 * x + 5 * y) & 63);
    }

    uint8_t
    data2(int x, int y, rsu::mrf::Label label) const override
    {
        if (vector_)
            return static_cast<uint8_t>(
                (x + 2 * y + 7 * rsu::core::labelX1(label) +
                 11 * rsu::core::labelX2(label)) &
                63);
        return static_cast<uint8_t>((x + 2 * y + 9 * label) & 63);
    }

  private:
    bool vector_;
};

/** Scalar identity codes for M <= 8, packed vector codes above. */
rsu::mrf::MrfConfig
benchConfig(int size, int m)
{
    rsu::mrf::MrfConfig config;
    config.width = size;
    config.height = size;
    config.num_labels = m;
    config.temperature = 8.0;
    config.energy.doubleton_weight = 2;
    if (m > 8) {
        config.energy.mode = rsu::core::LabelMode::Vector;
        for (int i = 0; i < m; ++i)
            config.label_codes.push_back(
                rsu::core::packVectorLabel(i % 8, i / 8));
    }
    return config;
}

std::vector<int>
parseCsv(const char *arg)
{
    std::vector<int> values;
    std::string token;
    for (const char *c = arg;; ++c) {
        if (*c == ',' || *c == '\0') {
            if (!token.empty())
                values.push_back(std::atoi(token.c_str()));
            token.clear();
            if (*c == '\0')
                break;
        } else {
            token += *c;
        }
    }
    return values;
}

struct Row
{
    int size;
    int labels;
    int sweeps;
    double reference_sites_per_sec;
    double table_sites_per_sec;
    double simd_sites_per_sec;
    double table_build_seconds;
    double speedup;       // table vs reference
    double simd_speedup;  // simd vs reference
    double simd_vs_table; // simd vs table
};

struct ParallelRow
{
    const char *path;
    int shards;
    double sites_per_sec;
};

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/**
 * Timing repetitions per measurement: the best (fastest) of five
 * is recorded. Shared VMs jitter individual intervals by 25% and
 * more; the minimum over repeats is the standard estimator for the
 * undisturbed rate.
 */
constexpr int kRepeats = 5;

/** One timed interval of @p sampler: sites/sec over @p sweeps. */
double
timeRun(rsu::mrf::GibbsSampler &sampler, long sites, int sweeps)
{
    const auto start = std::chrono::steady_clock::now();
    sampler.run(sweeps);
    return static_cast<double>(sweeps) * sites / seconds(start);
}

/**
 * Sites/sec of the three sequential paths on one problem, each the
 * best of kRepeats timed repetitions with the repeats
 * *interleaved* across paths: a slow phase of the machine then
 * degrades every path's same-numbered repeat alike instead of
 * falling entirely on whichever path happened to run during it, so
 * the recorded ratios stay meaningful on jittery hosts.
 */
struct CellRates
{
    double reference;
    double table;
    double simd;
};

CellRates
measureCell(rsu::mrf::GridMrf &ref_mrf, rsu::mrf::GridMrf &table_mrf,
            rsu::mrf::GridMrf &simd_mrf, int sweeps)
{
    using rsu::mrf::GibbsSampler;
    using rsu::mrf::Schedule;
    using rsu::mrf::SweepPath;
    ref_mrf.initializeMaximumLikelihood();
    table_mrf.initializeMaximumLikelihood();
    simd_mrf.initializeMaximumLikelihood();
    GibbsSampler ref(ref_mrf, 1234, Schedule::Checkerboard,
                     SweepPath::Reference);
    GibbsSampler table(table_mrf, 1234, Schedule::Checkerboard,
                       SweepPath::Table);
    GibbsSampler simd(simd_mrf, 1234, Schedule::Checkerboard,
                      SweepPath::Simd);
    ref.sweep(); // warm-up: page in, prime caches
    table.sweep();
    simd.sweep();

    CellRates best = {0.0, 0.0, 0.0};
    const long sites = ref_mrf.size();
    for (int rep = 0; rep < kRepeats; ++rep) {
        const double r = timeRun(ref, sites, sweeps);
        const double t = timeRun(table, sites, sweeps);
        const double v = timeRun(simd, sites, sweeps);
        best.reference = r > best.reference ? r : best.reference;
        best.table = t > best.table ? t : best.table;
        best.simd = v > best.simd ? v : best.simd;
    }
    return best;
}

/** Sites/sec of the chromatic runtime on @p shards row bands,
 * best of kRepeats timed repetitions. */
double
measureChromatic(rsu::mrf::GridMrf &mrf,
                 rsu::runtime::ThreadPool &pool,
                 rsu::mrf::SweepPath path, int shards, int sweeps)
{
    mrf.initializeMaximumLikelihood();
    rsu::runtime::ParallelSweepExecutor executor(pool, shards);
    rsu::runtime::ChromaticGibbsSampler sampler(
        mrf, executor, 1234,
        rsu::runtime::SamplerKind::SoftwareGibbs, {}, path);
    sampler.sweep(); // warm-up

    double best = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        sampler.run(sweeps);
        const double rate =
            static_cast<double>(sweeps) * mrf.size() /
            seconds(start);
        best = rate > best ? rate : best;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsu;

    std::vector<int> sizes = {128, 512, 1024};
    std::vector<int> labels = {2, 8, 16, 49};
    long budget = 2'000'000;
    if (argc > 1)
        sizes = parseCsv(argv[1]);
    if (argc > 2)
        labels = parseCsv(argv[2]);
    if (argc > 3)
        budget = std::atol(argv[3]);

    const auto all_positive = [](const std::vector<int> &values) {
        if (values.empty())
            return false;
        for (const int v : values)
            if (v < 1)
                return false;
        return true;
    };
    if (!all_positive(sizes) || !all_positive(labels) ||
        budget < 1) {
        std::fprintf(stderr,
                     "usage: %s [sizes-csv] [labels-csv] "
                     "[site-budget]\n"
                     "sizes must be positive, labels in [2, 64], "
                     "budget >= 1\n",
                     argv[0]);
        return 2;
    }
    for (const int m : labels) {
        if (m < 2 || m > 64) {
            std::fprintf(stderr, "labels must be in [2, 64]\n");
            return 2;
        }
    }

    bench::warnIfNotRelease();
    const char *isa_name =
        rsu::core::simdIsaName(rsu::core::activeSimdIsa());
    std::printf("software Gibbs: reference vs table vs simd "
                "(%s build, %u hardware thread(s), simd isa %s)\n\n",
                bench::buildType(), bench::hardwareConcurrency(),
                isa_name);
    std::printf("%6s %6s %6s %14s %14s %14s %9s %8s %8s %8s\n",
                "size", "labels", "sweeps", "ref sites/s",
                "table sites/s", "simd sites/s", "build(s)",
                "tbl/ref", "simd/ref", "simd/tbl");

    // Two full passes over the grid, keeping each cell's best
    // per-path rate: shared-VM slow phases last many seconds and
    // can blanket one cell's every repetition, but rarely strike
    // the same cell on both whole-grid rounds.
    constexpr int kGridRounds = 2;
    std::vector<Row> rows;
    for (int round = 0; round < kGridRounds; ++round) {
        size_t idx = 0;
        for (const int size : sizes) {
            for (const int m : labels) {
                const BenchModel model(m > 8);
                const auto config = benchConfig(size, m);

                const long sites = static_cast<long>(size) * size;
                const int sweeps = static_cast<int>(
                    std::max(1L, (budget + sites - 1) / sites));

                // Table construction cost, reported separately: it
                // is a one-time per-model cost the sweep rate
                // amortizes (and the engine's cache shares across
                // jobs — see the table_cache section below).
                mrf::GridMrf build_mrf(config, model);
                const auto build_start =
                    std::chrono::steady_clock::now();
                {
                    mrf::SweepTables tables(build_mrf);
                }
                const double build_seconds = seconds(build_start);

                mrf::GridMrf ref_mrf(config, model);
                mrf::GridMrf table_mrf(config, model);
                mrf::GridMrf simd_mrf(config, model);
                const CellRates rates = measureCell(
                    ref_mrf, table_mrf, simd_mrf, sweeps);

                if (round == 0) {
                    rows.push_back({size, m, sweeps,
                                    rates.reference, rates.table,
                                    rates.simd, build_seconds, 0.0,
                                    0.0, 0.0});
                } else {
                    Row &r = rows[idx];
                    r.reference_sites_per_sec =
                        std::max(r.reference_sites_per_sec,
                                 rates.reference);
                    r.table_sites_per_sec = std::max(
                        r.table_sites_per_sec, rates.table);
                    r.simd_sites_per_sec =
                        std::max(r.simd_sites_per_sec, rates.simd);
                    r.table_build_seconds = std::min(
                        r.table_build_seconds, build_seconds);
                }
                ++idx;
            }
        }
    }
    for (Row &r : rows) {
        r.speedup =
            r.table_sites_per_sec / r.reference_sites_per_sec;
        r.simd_speedup =
            r.simd_sites_per_sec / r.reference_sites_per_sec;
        r.simd_vs_table =
            r.simd_sites_per_sec / r.table_sites_per_sec;
        std::printf("%6d %6d %6d %14.0f %14.0f %14.0f %9.4f "
                    "%7.2fx %7.2fx %7.2fx\n",
                    r.size, r.labels, r.sweeps,
                    r.reference_sites_per_sec,
                    r.table_sites_per_sec, r.simd_sites_per_sec,
                    r.table_build_seconds, r.speedup,
                    r.simd_speedup, r.simd_vs_table);
    }

    // Chromatic runtime: largest size x largest M, both fast paths
    // across shard counts. On a 1-thread host this measures the
    // determinism machinery's overhead, not parallel scaling — the
    // metadata records hardware_concurrency for exactly this
    // reason.
    const int par_size = *std::max_element(sizes.begin(),
                                           sizes.end());
    const int par_m = *std::max_element(labels.begin(),
                                        labels.end());
    const BenchModel par_model(par_m > 8);
    const auto par_config = benchConfig(par_size, par_m);
    const long par_sites = static_cast<long>(par_size) * par_size;
    const int par_sweeps = static_cast<int>(
        std::max(1L, (budget + par_sites - 1) / par_sites));

    std::printf("\nchromatic runtime, size %d, %d labels "
                "(sites/sec):\n%8s %6s %14s %14s\n",
                par_size, par_m, "shards", "sweeps",
                "table", "simd");
    runtime::ThreadPool pool(0); // hardware concurrency
    std::vector<ParallelRow> parallel_rows;
    for (const int shards : {1, 2, 4, 8}) {
        mrf::GridMrf table_mrf(par_config, par_model);
        const double table_rate = measureChromatic(
            table_mrf, pool, mrf::SweepPath::Table, shards,
            par_sweeps);
        mrf::GridMrf simd_mrf(par_config, par_model);
        const double simd_rate = measureChromatic(
            simd_mrf, pool, mrf::SweepPath::Simd, shards,
            par_sweeps);
        parallel_rows.push_back({"table", shards, table_rate});
        parallel_rows.push_back({"simd", shards, simd_rate});
        std::printf("%8d %6d %14.0f %14.0f\n", shards, par_sweeps,
                    table_rate, simd_rate);
    }

    // Engine table cache: identical jobs back to back — the second
    // must find the first's SweepTableSet and skip the build.
    runtime::EngineOptions engine_options;
    engine_options.max_concurrent_jobs = 1;
    runtime::InferenceEngine engine(engine_options);
    runtime::InferenceJob cache_job;
    cache_job.config = par_config;
    cache_job.singleton = {std::shared_ptr<const void>(), &par_model};
    cache_job.sweeps = 1;
    cache_job.sweep_path = mrf::SweepPath::Simd;
    cache_job.shards = 1;
    const auto cold = engine.submit(cache_job).get();
    const auto warm = engine.submit(cache_job).get();
    std::printf("\nengine table cache: cold build %.4fs, warm "
                "build %.4fs (hit: %s)\n",
                cold.table_build_seconds, warm.table_build_seconds,
                warm.table_cache_hit ? "yes" : "no");

    FILE *json = std::fopen("BENCH_fast_sweep.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_fast_sweep.json\n");
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"fast_sweep\",\n");
    std::string extra = "\"simd_isa\": \"";
    extra += isa_name;
    extra += '"';
    if (bench::hardwareConcurrency() == 1)
        extra += ",\n    \"parallel_caveat\": \"single hardware "
                 "thread; shard rows measure determinism overhead, "
                 "not scaling\"";
    bench::writeMetaJson(json, extra.c_str());
    std::fprintf(json, "  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            json,
            "    {\"size\": %d, \"labels\": %d, \"sweeps\": %d, "
            "\"reference_sites_per_sec\": %.1f, "
            "\"table_sites_per_sec\": %.1f, "
            "\"simd_sites_per_sec\": %.1f, "
            "\"table_build_seconds\": %.6f, \"speedup\": %.3f, "
            "\"simd_speedup\": %.3f, \"simd_vs_table\": %.3f}%s\n",
            r.size, r.labels, r.sweeps, r.reference_sites_per_sec,
            r.table_sites_per_sec, r.simd_sites_per_sec,
            r.table_build_seconds, r.speedup, r.simd_speedup,
            r.simd_vs_table, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"parallel\": [\n");
    for (size_t i = 0; i < parallel_rows.size(); ++i) {
        const ParallelRow &r = parallel_rows[i];
        std::fprintf(json,
                     "    {\"path\": \"%s\", \"shards\": %d, "
                     "\"sites_per_sec\": %.1f}%s\n",
                     r.path, r.shards, r.sites_per_sec,
                     i + 1 < parallel_rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"table_cache\": "
                 "{\"cold_build_seconds\": %.6f, "
                 "\"warm_build_seconds\": %.6f, \"warm_hit\": %s}\n"
                 "}\n",
                 cold.table_build_seconds, warm.table_build_seconds,
                 warm.table_cache_hit ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_fast_sweep.json (%zu rows)\n",
                rows.size());
    return 0;
}
