/**
 * @file
 * Reproduces paper section 8.2's discrete-accelerator analysis: the
 * memory-bandwidth-bound execution times, the speedups over the
 * GPU variants, and the RSU-G unit count required to consume the
 * 336 GB/s of a GTX Titan X, plus a bandwidth scaling sweep (the
 * paper notes unit count scales linearly with bandwidth).
 */

#include <cstdio>

#include "arch/accelerator_model.h"
#include "arch/gpu_model.h"
#include "arch/workload.h"

namespace {

using namespace rsu::arch;

void
row(const char *name, const Workload &w, const AcceleratorModel &acc,
    const GpuModel &gpu, double paper_vs_gpu, double paper_vs_rsu1)
{
    const double t = acc.totalSeconds(w);
    const double vs_gpu =
        gpu.totalSeconds(w, GpuVariant::Baseline) / t;
    const double vs_rsu1 =
        gpu.totalSeconds(w, GpuVariant::RsuG1) / t;
    std::printf("%-28s %10.4f %9.1fx(p%4.1f) %9.1fx(p%4.1f)\n", name,
                t, vs_gpu, paper_vs_gpu, vs_rsu1, paper_vs_rsu1);
}

} // namespace

int
main()
{
    const AcceleratorModel accel;
    const GpuModel gpu;

    std::printf("=== Section 8.2: Discrete accelerator "
                "(bandwidth-bound upper bound) ===\n");
    std::printf("Assumption: accelerator consumes data at %.0f GB/s "
                "DRAM bandwidth; bytes/pixel/iteration: "
                "segmentation 5, motion 54.\n\n",
                accel.config().mem_bw_gbs);
    std::printf("%-28s %10s %18s %18s\n", "Workload", "time(s)",
                "vs GPU", "vs RSU-G1 GPU");
    row("segmentation 320x320",
        segmentationWorkload(kSmallWidth, kSmallHeight), accel, gpu,
        39.0, 12.1);
    row("segmentation HD",
        segmentationWorkload(kHdWidth, kHdHeight), accel, gpu, 21.0,
        7.0);
    row("motion 320x320", motionWorkload(kSmallWidth, kSmallHeight),
        accel, gpu, 84.0, 6.5);
    row("motion HD", motionWorkload(kHdWidth, kHdHeight), accel, gpu,
        54.0, 3.4);

    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);
    std::printf("\nMotion HD vs RSU-G4 GPU: %.2fx (paper: 1.55x — "
                "RSU-G4 nearly saturates memory bandwidth)\n",
                gpu.totalSeconds(mot_hd, GpuVariant::RsuG4) /
                    accel.totalSeconds(mot_hd));

    std::printf("\nUnit provisioning: #units = BW / frequency / "
                "bytes-per-unit-cycle = %d (paper: ~336 RSU-G1 "
                "units), drawing %.2f W of RSU power at 15 nm "
                "(paper: 1.3 W).\n",
                accel.requiredUnits(), accel.rsuPowerW(15));

    std::printf("\n--- Bandwidth scaling (paper: units scale "
                "linearly with available BW) ---\n");
    std::printf("%-12s %8s %14s %16s\n", "BW (GB/s)", "units",
                "seg-HD time(s)", "motion-HD time(s)");
    for (double bw : {168.0, 336.0, 672.0, 1344.0}) {
        AcceleratorConfig config;
        config.mem_bw_gbs = bw;
        const AcceleratorModel a(config);
        std::printf("%-12.0f %8d %14.4f %16.4f\n", bw,
                    a.requiredUnits(),
                    a.totalSeconds(
                        segmentationWorkload(kHdWidth, kHdHeight)),
                    a.totalSeconds(motionWorkload(kHdWidth,
                                                  kHdHeight)));
    }
    return 0;
}
