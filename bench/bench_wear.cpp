/**
 * @file
 * Chromophore longevity study (paper section 9).
 *
 * The paper identifies photobleaching as a deployment risk: oxygen
 * exposure limits the number of excitation cycles a RET network
 * survives, and proposes two mitigations — larger ensembles per
 * circuit (equivalently, a lower per-cycle bleach fraction) and
 * encapsulation. This bench quantifies both:
 *
 *  1. distribution drift: total-variation distance of the RSU-G
 *     conditional from its fresh-device value as excitation cycles
 *     accumulate, for several bleach rates;
 *  2. mitigation: the same drift under encapsulation factors;
 *  3. a refresh policy: cycles until drift exceeds a tolerance,
 *     i.e. the required service interval.
 */

#include <cmath>
#include <cstdio>

#include "core/rsu_g.h"
#include "ret/ret_network.h"

namespace {

using namespace rsu::core;

/** TV distance of the current race distribution from a fresh
 * unit's, for a fixed representative conditional. */
double
driftFromFresh(RsuG &aged, RsuG &fresh)
{
    EnergyInputs in;
    in.neighbors = {1, 2, 2, 3};
    in.data1 = 25;
    uint8_t data2[5] = {12, 25, 31, 40, 55};
    const auto a = aged.raceDistribution(in, data2);
    const auto f = fresh.raceDistribution(in, data2);
    double tv = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        tv += std::abs(a[i] - f[i]);
    return 0.5 * tv;
}

void
ageUnit(RsuG &unit, uint64_t cycles)
{
    // Age every circuit through the closed-form wear model (wear
    // is deterministic in the cycle count).
    const auto &config = unit.config();
    for (int lane = 0; lane < config.width; ++lane) {
        for (int rep = 0; rep < config.circuits_per_lane; ++rep)
            unit.circuit(lane, rep).network().age(cycles);
    }
}

} // namespace

int
main()
{
    std::printf("=== Section 9: photobleaching and mitigations "
                "===\n\n");

    std::printf("--- Drift vs excitation cycles (TV distance from "
                "fresh device) ---\n");
    std::printf("%14s", "cycles");
    const double bleach_rates[3] = {1e-6, 1e-7, 1e-8};
    for (double b : bleach_rates)
        std::printf("   bleach=%.0e", b);
    std::printf("\n");

    const uint64_t checkpoints[5] = {10000, 100000, 300000, 1000000,
                                     3000000};
    for (uint64_t total : checkpoints) {
        std::printf("%14llu", static_cast<unsigned long long>(total));
        for (double b : bleach_rates) {
            RsuGConfig config;
            config.circuit.wear.bleach_per_cycle = b;
            RsuG aged(config, 1);
            aged.initialize(5, 16.0);
            RsuG fresh(RsuGConfig{}, 1);
            fresh.initialize(5, 16.0);
            ageUnit(aged, total);
            std::printf("   %11.4f", driftFromFresh(aged, fresh));
        }
        std::printf("\n");
    }

    std::printf("\nWhy drift stays bounded: bleaching scales every "
                "channel's rate by the same surviving fraction, and "
                "the first-to-fire race depends only on rate "
                "*ratios* — the visible drift comes from the TTF "
                "register seeing slower absolute rates (more "
                "saturation, coarser effective resolution).\n");

    std::printf("\n--- Encapsulation mitigation (bleach 1e-6, 1M "
                "cycles) ---\n");
    std::printf("%24s %14s %14s\n", "encapsulation factor",
                "surviving", "TV drift");
    for (double f : {1.0, 0.3, 0.1, 0.01}) {
        RsuGConfig config;
        config.circuit.wear.bleach_per_cycle = 1e-6;
        config.circuit.wear.encapsulation_factor = f;
        RsuG aged(config, 1);
        aged.initialize(5, 16.0);
        RsuG fresh(RsuGConfig{}, 1);
        fresh.initialize(5, 16.0);
        ageUnit(aged, 1000000);
        std::printf("%24.2f %14.4f %14.4f\n", f,
                    aged.circuit(0, 0).network().survivingFraction(),
                    driftFromFresh(aged, fresh));
    }

    std::printf("\n--- Refresh policy: cycles until TV drift > 0.02 "
                "---\n");
    std::printf("%14s %20s\n", "bleach", "service interval");
    for (double b : bleach_rates) {
        RsuGConfig config;
        config.circuit.wear.bleach_per_cycle = b;
        RsuG aged(config, 1);
        aged.initialize(5, 16.0);
        RsuG fresh(RsuGConfig{}, 1);
        fresh.initialize(5, 16.0);
        uint64_t cycles = 0;
        const uint64_t stride = 100000;
        while (driftFromFresh(aged, fresh) <= 0.02 &&
               cycles < 20000000) {
            ageUnit(aged, stride);
            cycles += stride;
        }
        if (cycles >= 20000000) {
            std::printf("%14.0e %20s\n", b, "> 2e7 cycles");
        } else {
            std::printf("%14.0e %17llu+ cy\n", b,
                        static_cast<unsigned long long>(cycles));
        }
    }
    std::printf("\nAt 1 GHz issue rates a 1e-8 bleach fraction "
                "(large encapsulated ensembles) gives service "
                "intervals in seconds of continuous sampling; "
                "refresh() models chromophore replacement.\n");
    return 0;
}
