/**
 * @file
 * RSU-G pipeline characterization (paper section 5 claims):
 *
 *  - sample latency 7+(M-1) cycles for RSU-G1 and 12 cycles for
 *    RSU-G64, across the (M, K) design space;
 *  - the section 5.3 replication ablation: RET circuits per lane
 *    vs structural-hazard stalls (4 replicas sustain 1 label/cycle
 *    against the 4-cycle quiescence window);
 *  - emulator throughput (host samples/second) via
 *    google-benchmark, for users sizing statistical experiments.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/rsu_g.h"
#include "core/rsu_isa.h"

namespace {

using namespace rsu::core;

void
printLatencyTable()
{
    std::printf("=== Section 5: RSU-G sample latency (cycles) "
                "===\n");
    std::printf("Paper: RSU-G1 takes 7+(M-1) cycles; RSU-G64 "
                "evaluates 64 labels in 12 cycles.\n\n");
    std::printf("%6s", "M\\K");
    const int widths[5] = {1, 4, 8, 16, 64};
    for (int k : widths)
        std::printf(" %6d", k);
    std::printf("\n");
    for (int m : {2, 5, 16, 49, 64}) {
        std::printf("%6d", m);
        for (int k : widths) {
            RsuGConfig config;
            config.width = k;
            RsuG unit(config);
            unit.setNumLabels(m);
            std::printf(" %6d", unit.latencyCycles());
        }
        std::printf("\n");
    }
    std::printf("\nChecks: G1/M=5 -> %d (paper 11), G1/M=49 -> %d "
                "(paper 55), G64/M=64 -> %d (paper 12)\n\n",
                [] {
                    RsuG u;
                    u.setNumLabels(5);
                    return u.latencyCycles();
                }(),
                [] {
                    RsuG u;
                    u.setNumLabels(49);
                    return u.latencyCycles();
                }(),
                [] {
                    RsuGConfig c;
                    c.width = 64;
                    RsuG u(c);
                    u.setNumLabels(64);
                    return u.latencyCycles();
                }());
}

void
printReplicationAblation()
{
    std::printf("=== Section 5.3 ablation: RET circuit replication "
                "vs structural stalls ===\n");
    std::printf("4-cycle quiescence window; M=16 labels, RSU-G1; "
                "10000 samples.\n\n");
    std::printf("%10s %14s %16s %18s\n", "replicas",
                "stalls/label", "cycles/sample",
                "throughput (rel)");
    double base_cycles = 0.0;
    for (int r : {1, 2, 3, 4, 6, 8}) {
        RsuGConfig config;
        config.circuits_per_lane = r;
        RsuG unit(config, 99);
        unit.initialize(16, 16.0);
        EnergyInputs in;
        in.neighbors = {1, 2, 1, 2};
        in.data1 = 20;
        in.data2 = 24;
        for (int i = 0; i < 10000; ++i)
            unit.sample(in);
        const auto &s = unit.stats();
        const double cycles_per_sample =
            static_cast<double>(s.issue_cycles + s.stall_cycles) /
            s.samples;
        if (r == 1)
            base_cycles = cycles_per_sample;
        std::printf("%10d %14.3f %16.2f %17.2fx\n", r,
                    static_cast<double>(s.stall_cycles) /
                        s.label_evals,
                    cycles_per_sample,
                    base_cycles / cycles_per_sample);
    }
    std::printf("\nReplication 4 removes all stalls (1 label/cycle "
                "sustained); further replicas buy nothing — "
                "matching the paper's choice of 4.\n\n");
}

void
BM_RsuSampleM5(benchmark::State &state)
{
    RsuG unit(RsuGConfig{}, 7);
    unit.initialize(5, 16.0);
    EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    in.data2 = 24;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.sample(in));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsuSampleM5);

void
BM_RsuSampleM49Vector(benchmark::State &state)
{
    RsuGConfig config;
    config.energy.mode = LabelMode::Vector;
    RsuG unit(config, 7);
    unit.initialize(49, 16.0);
    EnergyInputs in;
    in.neighbors = {9, 18, 27, 36};
    in.data1 = 20;
    uint8_t data2[49];
    for (int i = 0; i < 49; ++i)
        data2[i] = static_cast<uint8_t>(i & 0x3f);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.sample(in, data2));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsuSampleM49Vector);

void
BM_RsuWideG64(benchmark::State &state)
{
    RsuGConfig config;
    config.width = 64;
    RsuG unit(config, 7);
    unit.initialize(64, 16.0);
    EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    in.data2 = 24;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.sample(in));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsuWideG64);

void
printContextSwitchCost()
{
    std::printf("=== Section 6.1: context-switch state ===\n");
    rsu::core::RsuG unit;
    unit.initialize(5, 16.0);
    rsu::core::RsuDevice device(unit);
    const auto ctx = device.saveContext();

    const int map_bytes = unit.intensityMap().sizeBytes();
    const int words =
        static_cast<int>(ctx.map_words.size()) + 1; // + counter
    std::printf("Idempotent-restart context (per application): "
                "%d B map table + 1 B down counter = %d B, "
                "%d register transfers.\n",
                map_bytes, map_bytes + 1, words);
    std::printf("Naive mid-evaluation context would add neighbour "
                "labels (3 B), singleton data (up to 64 B), the "
                "down-counter position and the selection "
                "registers (2 B) *per in-flight variable* — the "
                "random-variable restart boundary makes all of it "
                "architecturally invisible (paper section 6.1).\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printLatencyTable();
    printReplicationAblation();
    printContextSwitchCost();
    std::printf("=== Emulator host throughput (google-benchmark) "
                "===\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
