/**
 * @file
 * Reproduces paper Table 1: cycles to generate one sample from the
 * C++11 library distributions (average of 10,000 samples, the
 * paper's protocol), plus the section 2.2 claim that distribution
 * parameterization (a five-clique energy sum) costs >= 100 cycles,
 * and our own samplers for comparison.
 *
 * Paper values (Intel E5-2640, gcc -O3): Exponential 588,
 * Normal 633, Gamma 800. Absolute numbers are host-dependent; the
 * ordering (exp < normal < gamma) and magnitude band (hundreds of
 * cycles) are the reproduction targets.
 */

#include <cstdio>
#include <random>

#include "core/energy_unit.h"
#include "cycle_timer.h"
#include "rng/distributions.h"
#include "rng/xoshiro256.h"

namespace {

using rsu::bench::averageCycles;

volatile double g_sink;
volatile int g_sink_int;

} // namespace

int
main()
{
    constexpr int kSamples = 10000;

    std::printf("=== Table 1: Cycles to Sample from Different "
                "Distributions ===\n");
    std::printf("Protocol: average of %d samples, std:: "
                "distributions with mt19937_64 (paper: C++11 "
                "library on E5-2640, -O3)\n\n",
                kSamples);

    std::mt19937_64 eng(0x5eed);
    std::exponential_distribution<double> expo(1.0);
    std::normal_distribution<double> norm(0.0, 1.0);
    std::gamma_distribution<double> gamma(2.0, 2.0);

    const double c_exp =
        averageCycles(kSamples, [&] { g_sink = expo(eng); });
    const double c_norm =
        averageCycles(kSamples, [&] { g_sink = norm(eng); });
    const double c_gamma =
        averageCycles(kSamples, [&] { g_sink = gamma(eng); });

    std::printf("%-28s %14s %14s\n", "Distribution", "paper(cycles)",
                "measured");
    std::printf("%-28s %14d %14.0f\n", "Exponential (std::)", 588,
                c_exp);
    std::printf("%-28s %14d %14.0f\n", "Normal (std::)", 633, c_norm);
    std::printf("%-28s %14d %14.0f\n", "Gamma (std::)", 800, c_gamma);

    std::printf("\n--- This library's samplers (xoshiro256++) ---\n");
    rsu::rng::Xoshiro256 rng(0x5eed);
    const double o_exp = averageCycles(kSamples, [&] {
        g_sink = rsu::rng::sampleExponential(rng, 1.0);
    });
    const double o_norm = averageCycles(kSamples, [&] {
        g_sink = rsu::rng::sampleNormal(rng, 0.0, 1.0);
    });
    const double o_gamma = averageCycles(kSamples, [&] {
        g_sink = rsu::rng::sampleGamma(rng, 2.0, 2.0);
    });
    std::printf("%-28s %14s %14.0f\n", "Exponential (rsu::rng)", "-",
                o_exp);
    std::printf("%-28s %14s %14.0f\n", "Normal (rsu::rng)", "-",
                o_norm);
    std::printf("%-28s %14s %14.0f\n", "Gamma (rsu::rng)", "-",
                o_gamma);

    std::printf("\n=== Section 2.2: distribution parameterization "
                "cost ===\n");
    std::printf("Five-clique energy computation for one candidate "
                "label (paper: >= 100 cycles on E5-2640):\n");
    const rsu::core::EnergyUnit unit;
    rsu::core::EnergyInputs in;
    in.neighbors = {1, 2, 3, 4};
    in.data1 = 20;
    in.data2 = 35;
    uint8_t candidate = 0;
    const double c_param = averageCycles(kSamples, [&] {
        candidate = static_cast<uint8_t>((candidate + 1) & 0x3f);
        g_sink_int = unit.evaluate(candidate, in);
    });
    std::printf("  energy evaluate(): %.0f cycles (specialized "
                "C++; the paper's figure includes address "
                "arithmetic and loads in application code)\n",
                c_param);

    // The full per-pixel parameterization of a 5-label conditional:
    // 5 energies + 5 exp() calls, as the software Gibbs loop does.
    const double t = 16.0;
    const double c_pixel = averageCycles(kSamples, [&] {
        double acc = 0.0;
        for (int l = 0; l < 5; ++l) {
            const auto e =
                unit.evaluate(static_cast<uint8_t>(l), in);
            acc += __builtin_exp(-static_cast<double>(e) / t);
        }
        g_sink = acc;
    });
    std::printf("  full 5-label conditional parameterization "
                "(5 energies + 5 exp): %.0f cycles\n",
                c_pixel);
    std::printf("\nReproduction check: cost ordering exponential < "
                "normal < gamma: %s; gamma/exponential cost ratio "
                "%.2fx (paper: %.2fx).\n",
                (c_exp < c_norm && c_norm < c_gamma) ? "YES" : "NO",
                c_gamma / c_exp, 800.0 / 588.0);
    std::printf("Absolute cycle counts are host-dependent: the "
                "paper measured a 2012 E5-2640 through the Intel "
                "PCM inside a full application; a modern "
                "out-of-order core running this hot microbenchmark "
                "loop is roughly an order of magnitude faster. The "
                "architectural point — hundreds of host cycles per "
                "software sample vs a pipelined sample-per-cycle "
                "RSU — stands either way (see EXPERIMENTS.md).\n");
    return 0;
}
