/**
 * @file
 * Chromatic runtime thread-scaling benchmark.
 *
 * Measures software-Gibbs sweeps/sec of the ParallelSweepExecutor
 * path as a function of worker-thread count on square lattices of
 * any registered workload (WorkloadRegistry) — the software
 * realization of the paper's Figure 4 parallelism argument, and the
 * curve later sharding/serving PRs must not regress. Results go to
 * stdout as a table and to BENCH_runtime_scaling.json as
 *   {"benchmark": "runtime_scaling", "workload": W, "labels": M,
 *    "hardware_threads": H,
 *    "results": [{"size": N, "threads": T, "sweeps": S,
 *                 "sweeps_per_sec": R, "speedup": X}, ...]}
 * where speedup is relative to the 1-thread row of the same size.
 *
 * A second section measures the robustness-layer tax: the same
 * Table-path sweep loop run plain versus "checkpointed" — a live
 * (never-tripped) CancellationToken installed on the executor plus
 * the per-sweep token/deadline checks the InferenceEngine's traced
 * sweep performs (see DESIGN.md section 12). The delta is the price
 * every serving job pays for cancellability; the PR 5 acceptance bar
 * is <= 2%. Results go to BENCH_robustness.json as
 *   {"benchmark": "robustness_overhead", "workload": W, ...,
 *    "results": [{"variant": "plain"|"checkpointed", ...}, ...],
 *    "overhead_percent": X}
 *
 * Both JSONs carry the shared "metadata" object (hardware
 * concurrency, SIMD ISA, build type, compiler flags) from
 * bench_meta.h.
 *
 * Usage:
 *   bench_runtime_scaling [workload] [sizes-csv] [threads-csv]
 *                         [labels]
 * Defaults: segmentation; sizes 128,512,1024; threads 1,2,4,8;
 * labels 0 (the workload's default label count). The robustness
 * section uses the largest requested size and thread count.
 */

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>

#include "bench_meta.h"
#include "mrf/grid_mrf.h"
#include "runtime/cancellation.h"
#include "runtime/chromatic_sampler.h"
#include "runtime/parallel_sweep.h"
#include "runtime/thread_pool.h"
#include "workload/registry.h"

namespace {

std::vector<int>
parseCsv(const char *arg)
{
    std::vector<int> values;
    std::string token;
    for (const char *c = arg;; ++c) {
        if (*c == ',' || *c == '\0') {
            if (!token.empty())
                values.push_back(std::atoi(token.c_str()));
            token.clear();
            if (*c == '\0')
                break;
        } else {
            token += *c;
        }
    }
    return values;
}

struct Row
{
    int size;
    int threads;
    int sweeps;
    double sweeps_per_sec;
    double speedup;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsu;

    std::string name = "segmentation";
    std::vector<int> sizes = {128, 512, 1024};
    std::vector<int> threads = {1, 2, 4, 8};
    int labels = 0;
    if (argc > 1)
        name = argv[1];
    if (argc > 2)
        sizes = parseCsv(argv[2]);
    if (argc > 3)
        threads = parseCsv(argv[3]);
    if (argc > 4)
        labels = std::atoi(argv[4]);

    const auto &registry = workload::WorkloadRegistry::builtin();
    const auto all_positive = [](const std::vector<int> &values) {
        if (values.empty())
            return false;
        for (const int v : values)
            if (v < 1)
                return false;
        return true;
    };
    if (!registry.contains(name) || !all_positive(sizes) ||
        !all_positive(threads) || labels < 0) {
        std::fprintf(stderr,
                     "usage: %s [workload] [sizes-csv] "
                     "[threads-csv] [labels]\n"
                     "workloads:",
                     argv[0]);
        for (const auto &known : registry.names())
            std::fprintf(stderr, " %s", known.c_str());
        std::fprintf(stderr, "\nsizes/threads must be positive "
                             "integers, labels 0 = workload "
                             "default\n");
        return 2;
    }

    bench::warnIfNotRelease();
    const int hardware = runtime::ThreadPool::hardwareThreads();
    int num_labels = 0; // filled from the first instance
    std::printf("chromatic runtime scaling — software Gibbs, '%s' "
                "workload, %d hardware thread(s)\n\n",
                name.c_str(), hardware);
    std::printf("%8s %8s %7s %14s %8s\n", "size", "threads",
                "sweeps", "sweeps/sec", "speedup");

    std::vector<Row> rows;
    for (const int size : sizes) {
        workload::SceneOptions scene;
        scene.width = size;
        scene.height = size;
        scene.labels = labels;
        const auto problem = registry.make(name, scene);
        num_labels = problem.config.num_labels;

        // Enough sweeps that a measurement is tens of milliseconds
        // even at the largest size, without making 1024^2 painful.
        const int sweeps =
            std::max(2, 4'000'000 / (size * size) + 1);

        double base_rate = 0.0;
        for (const int t : threads) {
            mrf::GridMrf mrf(problem.config, *problem.singleton);
            if (problem.initial_labels.empty())
                mrf.initializeMaximumLikelihood();
            else
                mrf.setLabels(problem.initial_labels);
            runtime::ThreadPool pool(t);
            runtime::ParallelSweepExecutor executor(pool, t);
            runtime::ChromaticGibbsSampler sampler(mrf, executor,
                                                   1234);
            sampler.sweep(); // warm-up: page in, prime caches

            const auto start = std::chrono::steady_clock::now();
            sampler.run(sweeps);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;

            const double rate = sweeps / elapsed.count();
            if (t == threads.front())
                base_rate = rate;
            const double speedup = rate / base_rate;
            rows.push_back({size, t, sweeps, rate, speedup});
            std::printf("%8d %8d %7d %14.2f %7.2fx\n", size, t,
                        sweeps, rate, speedup);
        }
    }

    FILE *json = std::fopen("BENCH_runtime_scaling.json", "w");
    if (!json) {
        std::fprintf(stderr,
                     "cannot write BENCH_runtime_scaling.json\n");
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"runtime_scaling\",\n");
    bench::writeMetaJson(json);
    std::fprintf(json,
                 "  \"workload\": \"%s\",\n"
                 "  \"labels\": %d,\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"results\": [\n",
                 name.c_str(), num_labels, hardware);
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(json,
                     "    {\"size\": %d, \"threads\": %d, "
                     "\"sweeps\": %d, \"sweeps_per_sec\": %.3f, "
                     "\"speedup\": %.3f}%s\n",
                     r.size, r.threads, r.sweeps, r.sweeps_per_sec,
                     r.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_runtime_scaling.json (%zu rows)\n",
                rows.size());

    // ---- Robustness overhead: the serving layer's per-sweep tax.
    //
    // The InferenceEngine's traced sweep adds, per sweep, one
    // CancellationToken load, one steady_clock deadline comparison,
    // and the executor's own pre-phase token check. Measure the
    // Table-path sweep loop plain vs with exactly those checkpoints
    // armed (live token, far-future deadline) at the largest
    // requested size/thread count; best-of-3 per variant to shave
    // scheduler noise.
    const int rsize = *std::max_element(sizes.begin(), sizes.end());
    const int rthreads =
        *std::max_element(threads.begin(), threads.end());
    workload::SceneOptions rscene;
    rscene.width = rsize;
    rscene.height = rsize;
    rscene.labels = labels;
    const auto rproblem = registry.make(name, rscene);
    const int rsweeps = std::max(4, 8'000'000 / (rsize * rsize) + 1);
    const int reps = 5;

    const auto measure_once = [&](bool checkpointed) {
        mrf::GridMrf mrf(rproblem.config, *rproblem.singleton);
        if (rproblem.initial_labels.empty())
            mrf.initializeMaximumLikelihood();
        else
            mrf.setLabels(rproblem.initial_labels);
        runtime::ThreadPool pool(rthreads);
        runtime::ParallelSweepExecutor executor(pool, rthreads);
        runtime::ChromaticGibbsSampler sampler(
            mrf, executor, 1234,
            runtime::SamplerKind::SoftwareGibbs, {},
            mrf::SweepPath::Table);
        runtime::CancellationToken token;
        std::chrono::steady_clock::time_point deadline{};
        if (checkpointed) {
            token = runtime::CancellationToken::make();
            executor.setCancellationToken(token);
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::hours(24);
        }
        sampler.sweep(); // warm-up: page in, prime caches

        const auto start = std::chrono::steady_clock::now();
        for (int s = 0; s < rsweeps; ++s) {
            if (checkpointed) {
                if (token.cancelled())
                    break;
                if (std::chrono::steady_clock::now() >= deadline)
                    break;
            }
            sampler.sweep();
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return rsweeps / elapsed.count();
    };

    std::printf("\nrobustness overhead — Table path, %dx%d, %d "
                "thread(s), %d sweeps, best of %d\n",
                rsize, rsize, rthreads, rsweeps, reps);
    // Interleave the two variants so load drift (frequency scaling,
    // container neighbours) biases both equally, then compare bests.
    double plain_rate = 0.0;
    double checkpointed_rate = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        plain_rate = std::max(plain_rate, measure_once(false));
        checkpointed_rate =
            std::max(checkpointed_rate, measure_once(true));
    }
    const double overhead_percent =
        (plain_rate - checkpointed_rate) / plain_rate * 100.0;
    std::printf("%14s %14.2f sweeps/sec\n", "plain", plain_rate);
    std::printf("%14s %14.2f sweeps/sec\n", "checkpointed",
                checkpointed_rate);
    std::printf("%14s %13.2f%% (acceptance bar: 2%%)\n", "overhead",
                overhead_percent);

    FILE *rjson = std::fopen("BENCH_robustness.json", "w");
    if (!rjson) {
        std::fprintf(stderr, "cannot write BENCH_robustness.json\n");
        return 1;
    }
    std::fprintf(rjson,
                 "{\n  \"benchmark\": \"robustness_overhead\",\n");
    bench::writeMetaJson(rjson);
    std::fprintf(rjson,
                 "  \"workload\": \"%s\",\n"
                 "  \"labels\": %d,\n"
                 "  \"size\": %d,\n"
                 "  \"threads\": %d,\n"
                 "  \"sweeps\": %d,\n"
                 "  \"repetitions\": %d,\n"
                 "  \"results\": [\n"
                 "    {\"variant\": \"plain\", "
                 "\"sweeps_per_sec\": %.3f},\n"
                 "    {\"variant\": \"checkpointed\", "
                 "\"sweeps_per_sec\": %.3f}\n"
                 "  ],\n"
                 "  \"overhead_percent\": %.3f\n}\n",
                 name.c_str(), rproblem.config.num_labels, rsize,
                 rthreads, rsweeps, reps, plain_rate,
                 checkpointed_rate, overhead_percent);
    std::fclose(rjson);
    std::printf("wrote BENCH_robustness.json\n");
    return 0;
}
