/**
 * @file
 * Reproduces the paper's section 7 prototype parameterization
 * experiment: sweep commanded pairwise probability ratios from 1 to
 * 255 on the emulated RSU-G2 bench and report the achieved relative
 * probabilities. Paper result: within 10% of the commanded ratio
 * below 30, ~24% above.
 */

#include <cstdio>
#include <vector>

#include "proto/prototype.h"

int
main()
{
    using namespace rsu::proto;

    const PrototypeConfig config;
    const std::vector<double> ratios = {1,  2,  4,   8,   15, 20,
                                        28, 40, 64,  100, 160, 255};
    constexpr int kTrials = 40000;
    constexpr int kRepeats = 16;

    std::printf("=== Section 7: RSU-G2 prototype ratio sweep ===\n");
    std::printf("Commanded pairwise probability ratios, %d shots x "
                "%d laser configurations each.\n\n",
                kTrials, kRepeats);
    std::printf("%10s %12s %12s\n", "commanded", "measured",
                "rel.error");

    const auto sweep =
        ratioSweep(config, 20160618, ratios, kTrials, kRepeats);

    double low_err = 0.0, high_err = 0.0;
    int low_n = 0, high_n = 0;
    for (const auto &m : sweep) {
        std::printf("%10.0f %12.2f %11.1f%%\n", m.commanded,
                    m.measured, 100.0 * m.rel_error);
        if (m.commanded < 30.0) {
            low_err += m.rel_error;
            ++low_n;
        } else {
            high_err += m.rel_error;
            ++high_n;
        }
    }
    std::printf("\nMean relative error, ratios < 30: %.1f%% "
                "(paper: within 10%%)\n",
                100.0 * low_err / low_n);
    std::printf("Mean relative error, ratios >= 30: %.1f%% "
                "(paper: ~24%%)\n",
                100.0 * high_err / high_n);
    std::printf("\nError sources modeled: per-configuration laser "
                "calibration noise (grows past the linear control "
                "range), SPAD dead-time compression at high rates, "
                "250 ps FPGA quantization, finite shot counts.\n");
    return 0;
}
