/**
 * @file
 * Reproduces paper Table 2: application execution time in seconds
 * for the four GPU variants (GPU, Opt GPU, RSU-G1, RSU-G4), two
 * applications (image segmentation, dense motion estimation), two
 * image sizes (320x320, 1080x1920).
 *
 * The baseline GPU column calibrates the model (see gpu_model.h);
 * every other cell is a prediction. Paper values are printed next
 * to the model's for direct comparison.
 */

#include <cstdio>

#include "arch/gpu_model.h"
#include "arch/workload.h"

namespace {

using namespace rsu::arch;

struct PaperRow
{
    const char *size;
    double paper[4]; // GPU, Opt, G1, G4
};

void
printApp(const GpuModel &model, const char *title, const Workload &s,
         const Workload &hd, const PaperRow *paper)
{
    constexpr GpuVariant kVariants[4] = {
        GpuVariant::Baseline, GpuVariant::Optimized, GpuVariant::RsuG1,
        GpuVariant::RsuG4};

    std::printf("\n%s\n", title);
    std::printf("%-8s", "Size");
    for (const auto v : kVariants)
        std::printf("  %9s(p) %9s(m)", variantName(v).c_str(),
                    variantName(v).c_str());
    std::printf("\n");

    const Workload *sizes[2] = {&s, &hd};
    for (int row = 0; row < 2; ++row) {
        std::printf("%-8s", paper[row].size);
        for (int v = 0; v < 4; ++v) {
            const double modeled =
                model.totalSeconds(*sizes[row], kVariants[v]);
            std::printf("  %12.3f %12.3f", paper[row].paper[v],
                        modeled);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    const GpuModel model;

    std::printf("=== Table 2: Application Execution Time (seconds) "
                "===\n");
    std::printf("(p) = paper, (m) = model. GPU column is the "
                "calibration target; other columns are model "
                "predictions.\n");

    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const PaperRow seg_rows[2] = {
        {"320x320", {0.30, 0.23, 0.09, 0.09}},
        {"HD", {3.20, 2.60, 1.10, 1.10}},
    };
    printApp(model, "Image Segmentation (M=5, 5000 iterations)",
             seg_s, seg_hd, seg_rows);

    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);
    const PaperRow mot_rows[2] = {
        {"320x320", {0.55, 0.27, 0.04, 0.02}},
        {"HD", {7.17, 3.35, 0.45, 0.21}},
    };
    printApp(model,
             "Dense Motion Estimation (M=49, 400 iterations)", mot_s,
             mot_hd, mot_rows);

    std::printf("\nOccupancy model: 320x320 fills %.0f%% of the "
                "GPU, HD fills %.0f%% (paper: small images do not "
                "saturate the GPU, HD does).\n",
                100.0 * model.occupancy(seg_s),
                100.0 * model.occupancy(seg_hd));
    return 0;
}
