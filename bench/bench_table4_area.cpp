/**
 * @file
 * Reproduces paper Table 4: area for a single RSU-G1 at 45 nm and
 * 15 nm, broken down into logic, RET circuit (SPAD + QD-LEDs +
 * network ensemble), and LUT, with the section 8.3 observations on
 * optics dominance.
 */

#include <cstdio>

#include "arch/power_area.h"

int
main()
{
    using namespace rsu::arch;

    const RsuBudget ref = RsuPowerAreaModel::reference45nm();
    const RsuBudget b15 = RsuPowerAreaModel::project(15, 1000.0);

    std::printf("=== Table 4: Area for a Single RSU-G1 (um^2) "
                "===\n");
    std::printf("%-14s %12s %20s %12s\n", "Component", "45nm",
                "15nm (model)", "15nm paper");
    std::printf("%-14s %12.0f %20.0f %12.0f\n", "Logic",
                ref.logic_um2, b15.logic_um2, 642.0);
    std::printf("%-14s %12.0f %20.0f %12.0f\n", "RET Circuit",
                ref.ret_um2, b15.ret_um2, 1600.0);
    std::printf("%-14s %12.0f %20.0f %12.0f\n", "LUT", ref.lut_um2,
                b15.lut_um2, 656.0);
    std::printf("%-14s %12.0f %20.0f %12.0f\n", "Total",
                ref.totalAreaUm2(), b15.totalAreaUm2(), 2898.0);

    std::printf("\nRET circuit composition: one SPAD (~1 um^2) + "
                "four QD-LEDs (~16x25 um^2 each) = %.0f um^2 per "
                "circuit; 4 replicated circuits per RSU-G1 = "
                "%.4f mm^2 of optics (paper: 0.0016 mm^2).\n",
                RsuPowerAreaModel::retCircuitAreaUm2(),
                4.0 * RsuPowerAreaModel::retCircuitAreaUm2() / 1e6);
    std::printf("Total RSU-G1 at 15 nm: %.4f mm^2 (paper: 0.0029 "
                "mm^2); CMOS portion %.4f mm^2 (paper: 0.0013 "
                "mm^2).\n",
                b15.totalAreaUm2() / 1e6,
                (b15.logic_um2 + b15.lut_um2) / 1e6);

    std::printf("\n--- Node sweep (model projection) ---\n");
    std::printf("%-8s %10s %10s %10s %10s\n", "Node", "logic",
                "RET", "LUT", "total");
    for (int node : {45, 32, 22, 15}) {
        const RsuBudget b = RsuPowerAreaModel::project(node, 1000.0);
        std::printf("%-8d %10.0f %10.0f %10.0f %10.0f\n", node,
                    b.logic_um2, b.ret_um2, b.lut_um2,
                    b.totalAreaUm2());
    }
    std::printf("\n3072 units on a GPU occupy %.2f mm^2 at 15 nm "
                "— the area budget the paper argues is reasonable "
                "for the speedups obtained.\n",
                3072.0 * b15.totalAreaUm2() / 1e6);
    return 0;
}
