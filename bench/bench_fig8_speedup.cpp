/**
 * @file
 * Reproduces paper Figure 8: RSU speedup over the baseline GPU and
 * over the optimized GPU, for RSU-G1 and RSU-G4, both applications
 * and both image sizes. Prints the two panels as text bar charts.
 *
 * Paper reference points: segmentation RSU-G1 3.2x (320x320) and
 * 3.0x (HD) over GPU, 2.5x / 2.4x over Opt GPU; motion RSU-G1
 * ~12.8x-16.1x over GPU, 6.4x-7.5x over Opt; motion RSU-G4 23x
 * (small) and 34x (HD) over GPU.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "arch/gpu_model.h"
#include "arch/workload.h"

namespace {

using namespace rsu::arch;

void
bar(const char *label, double paper, double model)
{
    std::string blocks(
        static_cast<size_t>(std::min(model * 1.5, 60.0)), '#');
    std::printf("  %-24s paper %6.1fx  model %6.1fx  |%s\n", label,
                paper, model, blocks.c_str());
}

} // namespace

int
main()
{
    const GpuModel model;
    const auto seg_s = segmentationWorkload(kSmallWidth, kSmallHeight);
    const auto seg_hd = segmentationWorkload(kHdWidth, kHdHeight);
    const auto mot_s = motionWorkload(kSmallWidth, kSmallHeight);
    const auto mot_hd = motionWorkload(kHdWidth, kHdHeight);

    auto su = [&](const Workload &w, GpuVariant v, GpuVariant ref) {
        return model.speedup(w, v, ref);
    };

    std::printf("=== Figure 8 (panel 1): Speedup over baseline GPU "
                "===\n");
    std::printf("Image segmentation:\n");
    bar("RSU-G1 320x320", 3.2,
        su(seg_s, GpuVariant::RsuG1, GpuVariant::Baseline));
    bar("RSU-G1 1080x1920", 3.0,
        su(seg_hd, GpuVariant::RsuG1, GpuVariant::Baseline));
    bar("RSU-G4 320x320", 3.2,
        su(seg_s, GpuVariant::RsuG4, GpuVariant::Baseline));
    bar("RSU-G4 1080x1920", 3.0,
        su(seg_hd, GpuVariant::RsuG4, GpuVariant::Baseline));
    std::printf("Dense motion estimation:\n");
    bar("RSU-G1 320x320", 13.8,
        su(mot_s, GpuVariant::RsuG1, GpuVariant::Baseline));
    bar("RSU-G1 1080x1920", 16.1,
        su(mot_hd, GpuVariant::RsuG1, GpuVariant::Baseline));
    bar("RSU-G4 320x320", 23.0,
        su(mot_s, GpuVariant::RsuG4, GpuVariant::Baseline));
    bar("RSU-G4 1080x1920", 34.0,
        su(mot_hd, GpuVariant::RsuG4, GpuVariant::Baseline));

    std::printf("\n=== Figure 8 (panel 2): Speedup over optimized "
                "GPU ===\n");
    std::printf("Image segmentation:\n");
    bar("RSU-G1 320x320", 2.5,
        su(seg_s, GpuVariant::RsuG1, GpuVariant::Optimized));
    bar("RSU-G1 1080x1920", 2.4,
        su(seg_hd, GpuVariant::RsuG1, GpuVariant::Optimized));
    std::printf("Dense motion estimation:\n");
    bar("RSU-G1 320x320", 6.4,
        su(mot_s, GpuVariant::RsuG1, GpuVariant::Optimized));
    bar("RSU-G1 1080x1920", 7.5,
        su(mot_hd, GpuVariant::RsuG1, GpuVariant::Optimized));
    bar("RSU-G4 320x320", 13.5,
        su(mot_s, GpuVariant::RsuG4, GpuVariant::Optimized));
    bar("RSU-G4 1080x1920", 16.0,
        su(mot_hd, GpuVariant::RsuG4, GpuVariant::Optimized));

    std::printf("\nShape checks: seg G4 == seg G1 (M=5 is "
                "issue-bound, extra width buys nothing): %s; "
                "motion G4 > motion G1 (M=49 is width-bound): %s; "
                "motion >> seg (more sampled work eliminated): "
                "%s\n",
                std::abs(su(seg_hd, GpuVariant::RsuG4,
                            GpuVariant::Baseline) -
                         su(seg_hd, GpuVariant::RsuG1,
                            GpuVariant::Baseline)) < 0.2
                    ? "YES"
                    : "NO",
                su(mot_hd, GpuVariant::RsuG4, GpuVariant::Baseline) >
                        1.6 * su(mot_hd, GpuVariant::RsuG1,
                                 GpuVariant::Baseline)
                    ? "YES"
                    : "NO",
                su(mot_hd, GpuVariant::RsuG1, GpuVariant::Baseline) >
                        3.0 * su(seg_hd, GpuVariant::RsuG1,
                                 GpuVariant::Baseline)
                    ? "YES"
                    : "NO");
    std::printf("(The paper's small-vs-HD speedup ordering within "
                "an application differs by run-to-run residuals its "
                "own emulation measured; the calibrated model "
                "reproduces each cell within ~16%% — see "
                "EXPERIMENTS.md.)\n");
    return 0;
}
