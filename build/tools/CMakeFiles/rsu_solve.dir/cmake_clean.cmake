file(REMOVE_RECURSE
  "CMakeFiles/rsu_solve.dir/rsu_solve.cpp.o"
  "CMakeFiles/rsu_solve.dir/rsu_solve.cpp.o.d"
  "rsu_solve"
  "rsu_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
