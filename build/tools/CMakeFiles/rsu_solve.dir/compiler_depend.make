# Empty compiler generated dependencies file for rsu_solve.
# This may be replaced when dependencies are built.
