# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_rsu_solve_seg "/root/repo/build/tools/rsu_solve" "--app" "seg" "--sampler" "rsu" "--iterations" "15")
set_tests_properties(tool_rsu_solve_seg PROPERTIES  PASS_REGULAR_EXPRESSION "wrote rsu_solve_out.pgm" WORKING_DIRECTORY "/root/repo/build/tools/smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rsu_solve_anneal "/root/repo/build/tools/rsu_solve" "--app" "denoise" "--sampler" "anneal" "--labels" "6" "--iterations" "20")
set_tests_properties(tool_rsu_solve_anneal PROPERTIES  PASS_REGULAR_EXPRESSION "annealed best energy" WORKING_DIRECTORY "/root/repo/build/tools/smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rsu_solve_usage "/root/repo/build/tools/rsu_solve" "--bogus")
set_tests_properties(tool_rsu_solve_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
