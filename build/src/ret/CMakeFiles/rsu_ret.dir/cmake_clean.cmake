file(REMOVE_RECURSE
  "CMakeFiles/rsu_ret.dir/forster.cpp.o"
  "CMakeFiles/rsu_ret.dir/forster.cpp.o.d"
  "CMakeFiles/rsu_ret.dir/qdled.cpp.o"
  "CMakeFiles/rsu_ret.dir/qdled.cpp.o.d"
  "CMakeFiles/rsu_ret.dir/ret_circuit.cpp.o"
  "CMakeFiles/rsu_ret.dir/ret_circuit.cpp.o.d"
  "CMakeFiles/rsu_ret.dir/ret_network.cpp.o"
  "CMakeFiles/rsu_ret.dir/ret_network.cpp.o.d"
  "CMakeFiles/rsu_ret.dir/spad.cpp.o"
  "CMakeFiles/rsu_ret.dir/spad.cpp.o.d"
  "CMakeFiles/rsu_ret.dir/ttf_timer.cpp.o"
  "CMakeFiles/rsu_ret.dir/ttf_timer.cpp.o.d"
  "librsu_ret.a"
  "librsu_ret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_ret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
