file(REMOVE_RECURSE
  "librsu_ret.a"
)
