
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ret/forster.cpp" "src/ret/CMakeFiles/rsu_ret.dir/forster.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/forster.cpp.o.d"
  "/root/repo/src/ret/qdled.cpp" "src/ret/CMakeFiles/rsu_ret.dir/qdled.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/qdled.cpp.o.d"
  "/root/repo/src/ret/ret_circuit.cpp" "src/ret/CMakeFiles/rsu_ret.dir/ret_circuit.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/ret_circuit.cpp.o.d"
  "/root/repo/src/ret/ret_network.cpp" "src/ret/CMakeFiles/rsu_ret.dir/ret_network.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/ret_network.cpp.o.d"
  "/root/repo/src/ret/spad.cpp" "src/ret/CMakeFiles/rsu_ret.dir/spad.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/spad.cpp.o.d"
  "/root/repo/src/ret/ttf_timer.cpp" "src/ret/CMakeFiles/rsu_ret.dir/ttf_timer.cpp.o" "gcc" "src/ret/CMakeFiles/rsu_ret.dir/ttf_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
