# Empty compiler generated dependencies file for rsu_ret.
# This may be replaced when dependencies are built.
