file(REMOVE_RECURSE
  "CMakeFiles/rsu_arch.dir/accel_sim.cpp.o"
  "CMakeFiles/rsu_arch.dir/accel_sim.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/accelerator_model.cpp.o"
  "CMakeFiles/rsu_arch.dir/accelerator_model.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/cpu_model.cpp.o"
  "CMakeFiles/rsu_arch.dir/cpu_model.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/gpu_model.cpp.o"
  "CMakeFiles/rsu_arch.dir/gpu_model.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/power_area.cpp.o"
  "CMakeFiles/rsu_arch.dir/power_area.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/technology.cpp.o"
  "CMakeFiles/rsu_arch.dir/technology.cpp.o.d"
  "CMakeFiles/rsu_arch.dir/workload.cpp.o"
  "CMakeFiles/rsu_arch.dir/workload.cpp.o.d"
  "librsu_arch.a"
  "librsu_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
