
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accel_sim.cpp" "src/arch/CMakeFiles/rsu_arch.dir/accel_sim.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/accel_sim.cpp.o.d"
  "/root/repo/src/arch/accelerator_model.cpp" "src/arch/CMakeFiles/rsu_arch.dir/accelerator_model.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/accelerator_model.cpp.o.d"
  "/root/repo/src/arch/cpu_model.cpp" "src/arch/CMakeFiles/rsu_arch.dir/cpu_model.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/cpu_model.cpp.o.d"
  "/root/repo/src/arch/gpu_model.cpp" "src/arch/CMakeFiles/rsu_arch.dir/gpu_model.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/gpu_model.cpp.o.d"
  "/root/repo/src/arch/power_area.cpp" "src/arch/CMakeFiles/rsu_arch.dir/power_area.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/power_area.cpp.o.d"
  "/root/repo/src/arch/technology.cpp" "src/arch/CMakeFiles/rsu_arch.dir/technology.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/technology.cpp.o.d"
  "/root/repo/src/arch/workload.cpp" "src/arch/CMakeFiles/rsu_arch.dir/workload.cpp.o" "gcc" "src/arch/CMakeFiles/rsu_arch.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mrf/CMakeFiles/rsu_mrf.dir/DependInfo.cmake"
  "/root/repo/build/src/ret/CMakeFiles/rsu_ret.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
