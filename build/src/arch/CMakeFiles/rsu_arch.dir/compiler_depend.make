# Empty compiler generated dependencies file for rsu_arch.
# This may be replaced when dependencies are built.
