file(REMOVE_RECURSE
  "librsu_arch.a"
)
