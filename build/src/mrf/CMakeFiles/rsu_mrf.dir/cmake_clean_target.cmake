file(REMOVE_RECURSE
  "librsu_mrf.a"
)
