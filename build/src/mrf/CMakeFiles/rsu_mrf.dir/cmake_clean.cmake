file(REMOVE_RECURSE
  "CMakeFiles/rsu_mrf.dir/annealing.cpp.o"
  "CMakeFiles/rsu_mrf.dir/annealing.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/belief_propagation.cpp.o"
  "CMakeFiles/rsu_mrf.dir/belief_propagation.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/diagnostics.cpp.o"
  "CMakeFiles/rsu_mrf.dir/diagnostics.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/estimator.cpp.o"
  "CMakeFiles/rsu_mrf.dir/estimator.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/exact.cpp.o"
  "CMakeFiles/rsu_mrf.dir/exact.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/gibbs.cpp.o"
  "CMakeFiles/rsu_mrf.dir/gibbs.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/grid_mrf.cpp.o"
  "CMakeFiles/rsu_mrf.dir/grid_mrf.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/icm.cpp.o"
  "CMakeFiles/rsu_mrf.dir/icm.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/metropolis.cpp.o"
  "CMakeFiles/rsu_mrf.dir/metropolis.cpp.o.d"
  "CMakeFiles/rsu_mrf.dir/rsu_gibbs.cpp.o"
  "CMakeFiles/rsu_mrf.dir/rsu_gibbs.cpp.o.d"
  "librsu_mrf.a"
  "librsu_mrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_mrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
