
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrf/annealing.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/annealing.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/annealing.cpp.o.d"
  "/root/repo/src/mrf/belief_propagation.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/belief_propagation.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/belief_propagation.cpp.o.d"
  "/root/repo/src/mrf/diagnostics.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/diagnostics.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/diagnostics.cpp.o.d"
  "/root/repo/src/mrf/estimator.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/estimator.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/estimator.cpp.o.d"
  "/root/repo/src/mrf/exact.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/exact.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/exact.cpp.o.d"
  "/root/repo/src/mrf/gibbs.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/gibbs.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/gibbs.cpp.o.d"
  "/root/repo/src/mrf/grid_mrf.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/grid_mrf.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/grid_mrf.cpp.o.d"
  "/root/repo/src/mrf/icm.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/icm.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/icm.cpp.o.d"
  "/root/repo/src/mrf/metropolis.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/metropolis.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/metropolis.cpp.o.d"
  "/root/repo/src/mrf/rsu_gibbs.cpp" "src/mrf/CMakeFiles/rsu_mrf.dir/rsu_gibbs.cpp.o" "gcc" "src/mrf/CMakeFiles/rsu_mrf.dir/rsu_gibbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/ret/CMakeFiles/rsu_ret.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
