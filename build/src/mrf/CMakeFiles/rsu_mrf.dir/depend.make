# Empty dependencies file for rsu_mrf.
# This may be replaced when dependencies are built.
