# Empty compiler generated dependencies file for rsu_vision.
# This may be replaced when dependencies are built.
