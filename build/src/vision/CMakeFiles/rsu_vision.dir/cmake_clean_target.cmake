file(REMOVE_RECURSE
  "librsu_vision.a"
)
