file(REMOVE_RECURSE
  "CMakeFiles/rsu_vision.dir/denoise.cpp.o"
  "CMakeFiles/rsu_vision.dir/denoise.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/image.cpp.o"
  "CMakeFiles/rsu_vision.dir/image.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/metrics.cpp.o"
  "CMakeFiles/rsu_vision.dir/metrics.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/motion.cpp.o"
  "CMakeFiles/rsu_vision.dir/motion.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/recall.cpp.o"
  "CMakeFiles/rsu_vision.dir/recall.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/segmentation.cpp.o"
  "CMakeFiles/rsu_vision.dir/segmentation.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/stereo.cpp.o"
  "CMakeFiles/rsu_vision.dir/stereo.cpp.o.d"
  "CMakeFiles/rsu_vision.dir/synthetic.cpp.o"
  "CMakeFiles/rsu_vision.dir/synthetic.cpp.o.d"
  "librsu_vision.a"
  "librsu_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
