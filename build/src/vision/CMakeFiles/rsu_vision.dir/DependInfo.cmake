
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/denoise.cpp" "src/vision/CMakeFiles/rsu_vision.dir/denoise.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/denoise.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/rsu_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/metrics.cpp" "src/vision/CMakeFiles/rsu_vision.dir/metrics.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/metrics.cpp.o.d"
  "/root/repo/src/vision/motion.cpp" "src/vision/CMakeFiles/rsu_vision.dir/motion.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/motion.cpp.o.d"
  "/root/repo/src/vision/recall.cpp" "src/vision/CMakeFiles/rsu_vision.dir/recall.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/recall.cpp.o.d"
  "/root/repo/src/vision/segmentation.cpp" "src/vision/CMakeFiles/rsu_vision.dir/segmentation.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/segmentation.cpp.o.d"
  "/root/repo/src/vision/stereo.cpp" "src/vision/CMakeFiles/rsu_vision.dir/stereo.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/stereo.cpp.o.d"
  "/root/repo/src/vision/synthetic.cpp" "src/vision/CMakeFiles/rsu_vision.dir/synthetic.cpp.o" "gcc" "src/vision/CMakeFiles/rsu_vision.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mrf/CMakeFiles/rsu_mrf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rsu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/ret/CMakeFiles/rsu_ret.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
