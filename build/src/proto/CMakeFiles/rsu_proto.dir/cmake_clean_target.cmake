file(REMOVE_RECURSE
  "librsu_proto.a"
)
