# Empty compiler generated dependencies file for rsu_proto.
# This may be replaced when dependencies are built.
