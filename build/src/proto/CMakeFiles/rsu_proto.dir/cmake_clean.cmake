file(REMOVE_RECURSE
  "CMakeFiles/rsu_proto.dir/prototype.cpp.o"
  "CMakeFiles/rsu_proto.dir/prototype.cpp.o.d"
  "librsu_proto.a"
  "librsu_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
