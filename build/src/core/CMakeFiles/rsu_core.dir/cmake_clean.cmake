file(REMOVE_RECURSE
  "CMakeFiles/rsu_core.dir/energy_unit.cpp.o"
  "CMakeFiles/rsu_core.dir/energy_unit.cpp.o.d"
  "CMakeFiles/rsu_core.dir/intensity_map.cpp.o"
  "CMakeFiles/rsu_core.dir/intensity_map.cpp.o.d"
  "CMakeFiles/rsu_core.dir/rsu_g.cpp.o"
  "CMakeFiles/rsu_core.dir/rsu_g.cpp.o.d"
  "CMakeFiles/rsu_core.dir/rsu_isa.cpp.o"
  "CMakeFiles/rsu_core.dir/rsu_isa.cpp.o.d"
  "CMakeFiles/rsu_core.dir/rsu_units.cpp.o"
  "CMakeFiles/rsu_core.dir/rsu_units.cpp.o.d"
  "librsu_core.a"
  "librsu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
