
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy_unit.cpp" "src/core/CMakeFiles/rsu_core.dir/energy_unit.cpp.o" "gcc" "src/core/CMakeFiles/rsu_core.dir/energy_unit.cpp.o.d"
  "/root/repo/src/core/intensity_map.cpp" "src/core/CMakeFiles/rsu_core.dir/intensity_map.cpp.o" "gcc" "src/core/CMakeFiles/rsu_core.dir/intensity_map.cpp.o.d"
  "/root/repo/src/core/rsu_g.cpp" "src/core/CMakeFiles/rsu_core.dir/rsu_g.cpp.o" "gcc" "src/core/CMakeFiles/rsu_core.dir/rsu_g.cpp.o.d"
  "/root/repo/src/core/rsu_isa.cpp" "src/core/CMakeFiles/rsu_core.dir/rsu_isa.cpp.o" "gcc" "src/core/CMakeFiles/rsu_core.dir/rsu_isa.cpp.o.d"
  "/root/repo/src/core/rsu_units.cpp" "src/core/CMakeFiles/rsu_core.dir/rsu_units.cpp.o" "gcc" "src/core/CMakeFiles/rsu_core.dir/rsu_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ret/CMakeFiles/rsu_ret.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
