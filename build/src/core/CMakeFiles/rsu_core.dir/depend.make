# Empty dependencies file for rsu_core.
# This may be replaced when dependencies are built.
