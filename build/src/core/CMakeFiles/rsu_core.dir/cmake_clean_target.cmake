file(REMOVE_RECURSE
  "librsu_core.a"
)
