file(REMOVE_RECURSE
  "librsu_rng.a"
)
