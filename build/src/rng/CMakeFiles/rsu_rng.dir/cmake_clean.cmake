file(REMOVE_RECURSE
  "CMakeFiles/rsu_rng.dir/discrete.cpp.o"
  "CMakeFiles/rsu_rng.dir/discrete.cpp.o.d"
  "CMakeFiles/rsu_rng.dir/distributions.cpp.o"
  "CMakeFiles/rsu_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/rsu_rng.dir/stats.cpp.o"
  "CMakeFiles/rsu_rng.dir/stats.cpp.o.d"
  "CMakeFiles/rsu_rng.dir/xoshiro256.cpp.o"
  "CMakeFiles/rsu_rng.dir/xoshiro256.cpp.o.d"
  "librsu_rng.a"
  "librsu_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
