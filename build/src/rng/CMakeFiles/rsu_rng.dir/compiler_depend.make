# Empty compiler generated dependencies file for rsu_rng.
# This may be replaced when dependencies are built.
