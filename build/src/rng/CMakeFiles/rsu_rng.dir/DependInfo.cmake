
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/discrete.cpp" "src/rng/CMakeFiles/rsu_rng.dir/discrete.cpp.o" "gcc" "src/rng/CMakeFiles/rsu_rng.dir/discrete.cpp.o.d"
  "/root/repo/src/rng/distributions.cpp" "src/rng/CMakeFiles/rsu_rng.dir/distributions.cpp.o" "gcc" "src/rng/CMakeFiles/rsu_rng.dir/distributions.cpp.o.d"
  "/root/repo/src/rng/stats.cpp" "src/rng/CMakeFiles/rsu_rng.dir/stats.cpp.o" "gcc" "src/rng/CMakeFiles/rsu_rng.dir/stats.cpp.o.d"
  "/root/repo/src/rng/xoshiro256.cpp" "src/rng/CMakeFiles/rsu_rng.dir/xoshiro256.cpp.o" "gcc" "src/rng/CMakeFiles/rsu_rng.dir/xoshiro256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
