# Empty compiler generated dependencies file for ret_designer.
# This may be replaced when dependencies are built.
