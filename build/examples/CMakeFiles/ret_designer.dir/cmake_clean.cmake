file(REMOVE_RECURSE
  "CMakeFiles/ret_designer.dir/ret_designer.cpp.o"
  "CMakeFiles/ret_designer.dir/ret_designer.cpp.o.d"
  "ret_designer"
  "ret_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ret_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
