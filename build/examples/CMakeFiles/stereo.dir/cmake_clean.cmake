file(REMOVE_RECURSE
  "CMakeFiles/stereo.dir/stereo.cpp.o"
  "CMakeFiles/stereo.dir/stereo.cpp.o.d"
  "stereo"
  "stereo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stereo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
