# Empty compiler generated dependencies file for stereo.
# This may be replaced when dependencies are built.
