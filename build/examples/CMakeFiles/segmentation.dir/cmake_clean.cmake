file(REMOVE_RECURSE
  "CMakeFiles/segmentation.dir/segmentation.cpp.o"
  "CMakeFiles/segmentation.dir/segmentation.cpp.o.d"
  "segmentation"
  "segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
