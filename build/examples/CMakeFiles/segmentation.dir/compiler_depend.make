# Empty compiler generated dependencies file for segmentation.
# This may be replaced when dependencies are built.
