# Empty dependencies file for segmentation.
# This may be replaced when dependencies are built.
