file(REMOVE_RECURSE
  "CMakeFiles/accelerator_designspace.dir/accelerator_designspace.cpp.o"
  "CMakeFiles/accelerator_designspace.dir/accelerator_designspace.cpp.o.d"
  "accelerator_designspace"
  "accelerator_designspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_designspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
