# Empty compiler generated dependencies file for accelerator_designspace.
# This may be replaced when dependencies are built.
