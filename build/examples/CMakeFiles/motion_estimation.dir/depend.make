# Empty dependencies file for motion_estimation.
# This may be replaced when dependencies are built.
