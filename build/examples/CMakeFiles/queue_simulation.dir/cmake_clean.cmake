file(REMOVE_RECURSE
  "CMakeFiles/queue_simulation.dir/queue_simulation.cpp.o"
  "CMakeFiles/queue_simulation.dir/queue_simulation.cpp.o.d"
  "queue_simulation"
  "queue_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
