# Empty compiler generated dependencies file for queue_simulation.
# This may be replaced when dependencies are built.
