file(REMOVE_RECURSE
  "CMakeFiles/pattern_recall.dir/pattern_recall.cpp.o"
  "CMakeFiles/pattern_recall.dir/pattern_recall.cpp.o.d"
  "pattern_recall"
  "pattern_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
