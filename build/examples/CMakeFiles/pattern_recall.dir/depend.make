# Empty dependencies file for pattern_recall.
# This may be replaced when dependencies are built.
