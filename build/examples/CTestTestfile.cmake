# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;27;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_segmentation "/root/repo/build/examples/segmentation")
set_tests_properties(example_segmentation PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;28;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_motion_estimation "/root/repo/build/examples/motion_estimation" "48" "40" "20")
set_tests_properties(example_motion_estimation PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;29;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stereo "/root/repo/build/examples/stereo" "48" "40" "20")
set_tests_properties(example_stereo PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;30;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_denoise "/root/repo/build/examples/denoise" "5" "6" "20")
set_tests_properties(example_denoise PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;31;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pattern_recall "/root/repo/build/examples/pattern_recall" "0.3" "0.05")
set_tests_properties(example_pattern_recall PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;32;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_queue_simulation "/root/repo/build/examples/queue_simulation" "0.7" "100000")
set_tests_properties(example_queue_simulation PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;33;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ret_designer "/root/repo/build/examples/ret_designer")
set_tests_properties(example_ret_designer PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;34;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accelerator_designspace "/root/repo/build/examples/accelerator_designspace")
set_tests_properties(example_accelerator_designspace PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;35;rsu_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
