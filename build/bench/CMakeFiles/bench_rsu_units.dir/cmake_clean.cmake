file(REMOVE_RECURSE
  "CMakeFiles/bench_rsu_units.dir/bench_rsu_units.cpp.o"
  "CMakeFiles/bench_rsu_units.dir/bench_rsu_units.cpp.o.d"
  "bench_rsu_units"
  "bench_rsu_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsu_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
