# Empty compiler generated dependencies file for bench_rsu_units.
# This may be replaced when dependencies are built.
