# Empty compiler generated dependencies file for bench_fig7_prototype_seg.
# This may be replaced when dependencies are built.
