file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_prototype_seg.dir/bench_fig7_prototype_seg.cpp.o"
  "CMakeFiles/bench_fig7_prototype_seg.dir/bench_fig7_prototype_seg.cpp.o.d"
  "bench_fig7_prototype_seg"
  "bench_fig7_prototype_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_prototype_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
