file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sampling_cycles.dir/bench_table1_sampling_cycles.cpp.o"
  "CMakeFiles/bench_table1_sampling_cycles.dir/bench_table1_sampling_cycles.cpp.o.d"
  "bench_table1_sampling_cycles"
  "bench_table1_sampling_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sampling_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
