file(REMOVE_RECURSE
  "CMakeFiles/bench_accel_bound.dir/bench_accel_bound.cpp.o"
  "CMakeFiles/bench_accel_bound.dir/bench_accel_bound.cpp.o.d"
  "bench_accel_bound"
  "bench_accel_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accel_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
