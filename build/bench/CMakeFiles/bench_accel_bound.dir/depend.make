# Empty dependencies file for bench_accel_bound.
# This may be replaced when dependencies are built.
