file(REMOVE_RECURSE
  "CMakeFiles/bench_rsu_pipeline.dir/bench_rsu_pipeline.cpp.o"
  "CMakeFiles/bench_rsu_pipeline.dir/bench_rsu_pipeline.cpp.o.d"
  "bench_rsu_pipeline"
  "bench_rsu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
