# Empty dependencies file for bench_rsu_pipeline.
# This may be replaced when dependencies are built.
