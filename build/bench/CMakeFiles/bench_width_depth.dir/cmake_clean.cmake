file(REMOVE_RECURSE
  "CMakeFiles/bench_width_depth.dir/bench_width_depth.cpp.o"
  "CMakeFiles/bench_width_depth.dir/bench_width_depth.cpp.o.d"
  "bench_width_depth"
  "bench_width_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
