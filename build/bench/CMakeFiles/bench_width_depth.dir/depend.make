# Empty dependencies file for bench_width_depth.
# This may be replaced when dependencies are built.
