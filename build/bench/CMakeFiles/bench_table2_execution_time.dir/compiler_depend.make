# Empty compiler generated dependencies file for bench_table2_execution_time.
# This may be replaced when dependencies are built.
