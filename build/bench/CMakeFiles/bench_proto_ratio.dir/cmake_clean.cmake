file(REMOVE_RECURSE
  "CMakeFiles/bench_proto_ratio.dir/bench_proto_ratio.cpp.o"
  "CMakeFiles/bench_proto_ratio.dir/bench_proto_ratio.cpp.o.d"
  "bench_proto_ratio"
  "bench_proto_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proto_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
