# Empty compiler generated dependencies file for bench_proto_ratio.
# This may be replaced when dependencies are built.
