# Empty compiler generated dependencies file for bench_accel_sim.
# This may be replaced when dependencies are built.
