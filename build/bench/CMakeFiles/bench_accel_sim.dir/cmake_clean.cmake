file(REMOVE_RECURSE
  "CMakeFiles/bench_accel_sim.dir/bench_accel_sim.cpp.o"
  "CMakeFiles/bench_accel_sim.dir/bench_accel_sim.cpp.o.d"
  "bench_accel_sim"
  "bench_accel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
