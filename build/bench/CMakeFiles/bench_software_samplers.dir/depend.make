# Empty dependencies file for bench_software_samplers.
# This may be replaced when dependencies are built.
