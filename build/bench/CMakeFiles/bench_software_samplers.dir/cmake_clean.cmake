file(REMOVE_RECURSE
  "CMakeFiles/bench_software_samplers.dir/bench_software_samplers.cpp.o"
  "CMakeFiles/bench_software_samplers.dir/bench_software_samplers.cpp.o.d"
  "bench_software_samplers"
  "bench_software_samplers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
