# Empty dependencies file for ret_test.
# This may be replaced when dependencies are built.
