file(REMOVE_RECURSE
  "CMakeFiles/ret_test.dir/ret_test.cpp.o"
  "CMakeFiles/ret_test.dir/ret_test.cpp.o.d"
  "ret_test"
  "ret_test.pdb"
  "ret_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
