# Empty dependencies file for forster_test.
# This may be replaced when dependencies are built.
