file(REMOVE_RECURSE
  "CMakeFiles/forster_test.dir/forster_test.cpp.o"
  "CMakeFiles/forster_test.dir/forster_test.cpp.o.d"
  "forster_test"
  "forster_test.pdb"
  "forster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
