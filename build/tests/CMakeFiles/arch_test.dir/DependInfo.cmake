
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch_test.cpp" "tests/CMakeFiles/arch_test.dir/arch_test.cpp.o" "gcc" "tests/CMakeFiles/arch_test.dir/arch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/rsu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/ret/CMakeFiles/rsu_ret.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rsu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mrf/CMakeFiles/rsu_mrf.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/rsu_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/rsu_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/rsu_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
