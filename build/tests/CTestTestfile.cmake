# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/ret_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mrf_test[1]_include.cmake")
include("/root/repo/build/tests/vision_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/diagnostics_test[1]_include.cmake")
include("/root/repo/build/tests/model_property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/bp_test[1]_include.cmake")
include("/root/repo/build/tests/forster_test[1]_include.cmake")
